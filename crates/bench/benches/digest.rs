//! Criterion microbenchmark of the dispatch-time digest — the one hash
//! the runtime hot path performs per packet — against the pieces it
//! replaced: separate canonicalisation + hash calls, and SipHash-keyed
//! `HashSet<FlowKey>` membership vs the identity-hashed [`DigestSet`]
//! probe the shards use for black/whitelists.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smartwatch_net::{wire, DigestSet, FlowHasher, FlowKey, FrameView, Packet, RawTuple, Ts};
use std::collections::HashSet;
use std::hint::black_box;
use std::net::Ipv4Addr;

/// A deterministic spread of keys, half of them direction-flipped so the
/// canonicalisation branch is exercised both ways.
fn keys(n: u32) -> Vec<FlowKey> {
    (0..n)
        .map(|i| {
            let a = Ipv4Addr::from(0x0A00_0000 + i * 7);
            let b = Ipv4Addr::from(0xC0A8_0000 + i * 3);
            if i % 2 == 0 {
                FlowKey::tcp(a, 1024 + (i % 60_000) as u16, b, 443)
            } else {
                FlowKey::tcp(b, 443, a, 1024 + (i % 60_000) as u16)
            }
        })
        .collect()
}

fn bench_digest(c: &mut Criterion) {
    let hasher = FlowHasher::new(0x51CC);
    let ks = keys(1024);

    let mut g = c.benchmark_group("digest_64b");
    g.throughput(Throughput::Elements(ks.len() as u64));

    g.bench_function("canonical", |b| {
        b.iter(|| {
            for k in &ks {
                black_box(black_box(k).canonical());
            }
        })
    });
    g.bench_function("canonical_then_hash", |b| {
        // The pre-batching shape: canonicalise, then hash, as separate
        // calls at separate pipeline stages.
        b.iter(|| {
            for k in &ks {
                let (canon, _) = black_box(k).canonical();
                black_box(hasher.hash_directed(&canon));
            }
        })
    });
    g.bench_function("digest_symmetric", |b| {
        // The dispatch-time digest: one call yields canon + hash, reused
        // by sharding, verdict sets, and the FlowCache row lookup.
        b.iter(|| {
            for k in &ks {
                black_box(hasher.digest_symmetric(black_box(k)));
            }
        })
    });
    g.finish();

    // The wire data plane: pre-encoded Ethernet/IPv4/TCP frames, parsed
    // in place and digested straight from the header bytes — the work a
    // dispatcher does per frame when replaying a compiled trace or pcap.
    let frames: Vec<Vec<u8>> = ks
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let p = Packet::builder(*k, Ts::from_nanos(i as u64 * 800))
                .payload(10)
                .seq(i as u32)
                .build();
            wire::encode(&p).to_vec()
        })
        .collect();

    let mut g = c.benchmark_group("wire_64b");
    g.throughput(Throughput::Elements(frames.len() as u64));

    g.bench_function("parse_from_bytes", |b| {
        // In-place header walk alone: Ethernet → IPv4 → TCP, no copies.
        b.iter(|| {
            for f in &frames {
                black_box(FrameView::parse(black_box(f)).expect("bench frames are valid"));
            }
        })
    });
    g.bench_function("parse_then_digest_raw", |b| {
        // The scalar wire hot path: parse, lift the raw 5-tuple, digest.
        b.iter(|| {
            for f in &frames {
                let v = FrameView::parse(black_box(f)).expect("bench frames are valid");
                black_box(hasher.digest_raw(v.raw_tuple()));
            }
        })
    });
    g.bench_function("parse_then_digest_batch8", |b| {
        // The burst shape the dispatchers actually run: parse 8 frames,
        // then digest the 8 raw tuples in one interleaved batch.
        b.iter(|| {
            for chunk in frames.chunks_exact(8) {
                let mut tuples = [RawTuple::default(); 8];
                for (t, f) in tuples.iter_mut().zip(chunk) {
                    *t = FrameView::parse(black_box(f))
                        .expect("bench frames are valid")
                        .raw_tuple();
                }
                black_box(hasher.digest_batch8(&tuples));
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("verdict_set_probe");
    g.throughput(Throughput::Elements(ks.len() as u64));
    let key_set: HashSet<FlowKey> = ks.iter().map(|k| k.canonical().0).collect();
    let digest_set: DigestSet = ks.iter().map(|k| hasher.digest_symmetric(k).1 .0).collect();

    g.bench_function("siphash_flowkey_set", |b| {
        // What the shards used to do per packet: SipHash the 13-byte
        // canonical 5-tuple for every black/whitelist membership test.
        b.iter(|| {
            let mut hits = 0usize;
            for k in &ks {
                if key_set.contains(&black_box(k).canonical().0) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("identity_digest_set", |b| {
        // What they do now: probe with the already-computed u64 digest.
        let digests: Vec<u64> = ks.iter().map(|k| hasher.digest_symmetric(k).1 .0).collect();
        b.iter(|| {
            let mut hits = 0usize;
            for d in &digests {
                if digest_set.contains(black_box(d)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_digest);
criterion_main!(benches);
