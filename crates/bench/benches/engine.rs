//! Criterion benchmark of the wall-clock runtime engine: the RX-queue ×
//! shard pipeline mesh and the pipeline-vs-RTC datapath grid, both on
//! the 64-byte stress workload.
//!
//! On a multi-core machine throughput should rise with shards and with
//! RX queues (the acceptance shapes: 4 shards > 1 shard, and 4 queues ≥
//! 1.8× 1 queue on 64B packets), and the fused run-to-completion
//! datapath should beat the mesh at equal core budget — it spends no
//! cycles on lane crossings, recycling or dispatcher/shard cache
//! bouncing. On a single hardware thread the sweeps still exercise the
//! dispatchers, the R×N lane mesh, the fused cores and the drain logic,
//! but the scaling signal is meaningless — read it with `nproc` in
//! hand. Each Criterion cell also prints its own measured Mpps so a
//! scaling table can be read straight off the run log.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smartwatch_bench::exp_engine::{engine_workload, EngineRunSpec, EngineWorkload};
use smartwatch_runtime::{DatapathMode, Engine, EngineConfig, Pace};

fn stress_packets() -> Vec<smartwatch_net::Packet> {
    let spec = EngineRunSpec {
        packets: 100_000,
        workload: EngineWorkload::Stress,
        ..EngineRunSpec::default()
    };
    engine_workload(&spec, 1)
}

fn bench_engine_mesh(c: &mut Criterion) {
    let pkts = stress_packets();
    let mut g = c.benchmark_group("engine_mesh_64b");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);
    for rxq in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            // One out-of-band measured run per cell: Criterion's timing
            // includes engine setup/teardown, so the engine's own Mpps
            // (timed dispatch→drain only) is the number the DESIGN
            // scaling table quotes.
            let mut cfg = EngineConfig::new(shards);
            cfg.rx_queues = rxq;
            let probe = Engine::new(cfg).run(&pkts, Pace::Flatout);
            assert!(probe.conserved());
            println!(
                "engine_mesh_64b/rxq{rxq}_shards{shards}: {:.3} Mpps \
                 ({} pkts, {:?})",
                probe.mpps(),
                probe.processed(),
                probe.elapsed
            );

            g.bench_function(format!("rxq{rxq}_shards{shards}"), |b| {
                b.iter(|| {
                    // Fresh engine (and registry) per run: counters must
                    // not accumulate across iterations.
                    let mut cfg = EngineConfig::new(shards);
                    cfg.rx_queues = rxq;
                    let report = Engine::new(cfg).run(&pkts, Pace::Flatout);
                    assert!(report.conserved());
                    report.processed()
                });
            });
        }
    }
    g.finish();
}

/// Pipeline vs run-to-completion at equal core budget. The pipeline
/// cell uses one dispatcher plus C shards (C+1 threads); the RTC cell
/// uses C fused cores (C threads) — the comparison the DESIGN datapath
/// table quotes, deliberately biased *against* RTC on thread count.
fn bench_engine_datapath(c: &mut Criterion) {
    let pkts = stress_packets();
    let mut g = c.benchmark_group("engine_datapath_64b");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);
    for mode in [DatapathMode::Pipeline, DatapathMode::Rtc] {
        for cores in [1usize, 2, 4] {
            let label = match mode {
                DatapathMode::Pipeline => "pipeline",
                DatapathMode::Rtc => "rtc",
            };
            let mut cfg = EngineConfig::new(cores);
            cfg.datapath = mode;
            let probe = Engine::new(cfg).run(&pkts, Pace::Flatout);
            assert!(probe.conserved());
            println!(
                "engine_datapath_64b/{label}_cores{cores}: {:.3} Mpps \
                 ({} pkts, {:?})",
                probe.mpps(),
                probe.processed(),
                probe.elapsed
            );

            g.bench_function(format!("{label}_cores{cores}"), |b| {
                b.iter(|| {
                    let mut cfg = EngineConfig::new(cores);
                    cfg.datapath = mode;
                    let report = Engine::new(cfg).run(&pkts, Pace::Flatout);
                    assert!(report.conserved());
                    report.processed()
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_mesh, bench_engine_datapath
}
criterion_main!(benches);
