//! Criterion benchmark of the wall-clock runtime engine, sweeping the
//! RX-queue × shard mesh on the 64-byte stress workload.
//!
//! On a multi-core machine throughput should rise with shards and with
//! RX queues (the acceptance shapes: 4 shards > 1 shard, and 4 queues ≥
//! 1.8× 1 queue on 64B packets); on a single hardware thread the sweeps
//! still exercise the dispatchers, the R×N lane mesh and the drain
//! logic, but the scaling signal is meaningless — read it with `nproc`
//! in hand. Each Criterion cell also prints its own measured Mpps so a
//! scaling table can be read straight off the run log.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smartwatch_bench::exp_engine::{engine_workload, EngineRunSpec, EngineWorkload};
use smartwatch_runtime::{Engine, EngineConfig, Pace};

fn bench_engine_mesh(c: &mut Criterion) {
    let spec = EngineRunSpec {
        packets: 100_000,
        workload: EngineWorkload::Stress,
        ..EngineRunSpec::default()
    };
    let pkts = engine_workload(&spec, 1);
    let mut g = c.benchmark_group("engine_mesh_64b");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);
    for rxq in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            // One out-of-band measured run per cell: Criterion's timing
            // includes engine setup/teardown, so the engine's own Mpps
            // (timed dispatch→drain only) is the number the DESIGN
            // scaling table quotes.
            let mut cfg = EngineConfig::new(shards);
            cfg.rx_queues = rxq;
            let probe = Engine::new(cfg).run(&pkts, Pace::Flatout);
            assert!(probe.conserved());
            println!(
                "engine_mesh_64b/rxq{rxq}_shards{shards}: {:.3} Mpps \
                 ({} pkts, {:?})",
                probe.mpps(),
                probe.processed(),
                probe.elapsed
            );

            g.bench_function(format!("rxq{rxq}_shards{shards}"), |b| {
                b.iter(|| {
                    // Fresh engine (and registry) per run: counters must
                    // not accumulate across iterations.
                    let mut cfg = EngineConfig::new(shards);
                    cfg.rx_queues = rxq;
                    let report = Engine::new(cfg).run(&pkts, Pace::Flatout);
                    assert!(report.conserved());
                    report.processed()
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_mesh
}
criterion_main!(benches);
