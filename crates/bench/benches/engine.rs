//! Criterion benchmark of the wall-clock runtime engine, sweeping the
//! shard count on the 64-byte stress workload.
//!
//! On a multi-core machine throughput should rise with shards (the
//! acceptance shape: 4 shards > 1 shard on 64B packets); on a single
//! hardware thread the sweep still exercises the dispatcher, queues and
//! drain logic, but the scaling signal is meaningless — read it with
//! `nproc` in hand.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smartwatch_bench::exp_engine::{engine_workload, EngineRunSpec, EngineWorkload};
use smartwatch_runtime::{Engine, EngineConfig, Pace};

fn bench_engine_shards(c: &mut Criterion) {
    let spec = EngineRunSpec {
        packets: 100_000,
        workload: EngineWorkload::Stress,
        ..EngineRunSpec::default()
    };
    let pkts = engine_workload(&spec, 1);
    let mut g = c.benchmark_group("engine_shards_64b");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);
    for shards in [1usize, 2, 4] {
        g.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| {
                // Fresh engine (and registry) per run: counters must not
                // accumulate across iterations.
                let report = Engine::new(EngineConfig::new(shards)).run(&pkts, Pace::Flatout);
                assert!(report.conserved());
                report.processed()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_shards
}
criterion_main!(benches);
