//! Criterion micro-benchmarks of the FlowCache data path, including the
//! Cuckoo-hash ablation the paper argues against (§3.2: 2.43× worse
//! 99.9th-percentile latency for Cuckoo under the same budget).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use smartwatch_bench::workloads;
use smartwatch_net::FlowHasher;
use smartwatch_snic::concurrent::ConcurrentCache;
use smartwatch_snic::cuckoo::CuckooTable;
use smartwatch_snic::{CachePolicy, FlowCache, FlowCacheConfig, Mode};
use smartwatch_trace::background::Preset;
use std::sync::Arc;

fn bench_flowcache(c: &mut Criterion) {
    let pkts = workloads::caida_64b(Preset::Caida2018, 1, 7).into_packets();
    let mut g = c.benchmark_group("flowcache_process");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    for (name, cfg, mode) in [
        (
            "general_4_8",
            FlowCacheConfig::split(12, 4, 8, CachePolicy::LRU_LPC),
            Mode::General,
        ),
        ("lite_2_0", FlowCacheConfig::general(12), Mode::Lite),
        (
            "flat_lru_12",
            FlowCacheConfig::flat(12, 12, CachePolicy::LRU),
            Mode::General,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut fc = FlowCache::new(cfg.clone());
                    fc.set_mode(mode);
                    fc
                },
                |mut fc| {
                    for p in &pkts {
                        std::hint::black_box(fc.process(p));
                    }
                    fc
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Scalar per-packet probes vs the two-stage batched path
/// (`process_batch`: digest+prefetch a burst, then probe it), across
/// table sizes. At `row_bits = 12` the whole table is cache-resident
/// and the paths should tie; at `row_bits = 16` the General table is
/// ~63 MB — far past L3 — and the prefetch overlap is the difference
/// between serialised and pipelined DRAM misses.
fn bench_batch_vs_scalar(c: &mut Criterion) {
    let pkts = workloads::scattered_flows(200_000, 0x5EED_CAFE);
    let mut g = c.benchmark_group("batch_vs_scalar");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    for (mode_name, mode) in [("general", Mode::General), ("lite", Mode::Lite)] {
        for row_bits in [12u32, 14, 16, 18] {
            let cfg = FlowCacheConfig::general(row_bits);
            let fresh = || {
                let mut fc = FlowCache::new(cfg.clone());
                fc.set_mode(mode);
                fc
            };
            g.bench_function(format!("scalar_{mode_name}_rb{row_bits}"), |b| {
                // Collect accesses exactly as the batched cell does, so
                // the only difference between the cells is the probe
                // pipeline itself.
                let mut out = Vec::with_capacity(pkts.len());
                b.iter_batched(
                    fresh,
                    |mut fc| {
                        for p in &pkts {
                            out.push(fc.process(p));
                        }
                        std::hint::black_box(out.len());
                        out.clear();
                        fc
                    },
                    BatchSize::LargeInput,
                );
            });
            g.bench_function(format!("batch_{mode_name}_rb{row_bits}"), |b| {
                let mut out = Vec::with_capacity(pkts.len());
                b.iter_batched(
                    fresh,
                    |mut fc| {
                        fc.process_batch(&pkts, &mut out);
                        std::hint::black_box(out.len());
                        out.clear();
                        fc
                    },
                    BatchSize::LargeInput,
                );
            });
        }
    }
    g.finish();
}

fn bench_cuckoo_ablation(c: &mut Criterion) {
    let pkts = workloads::caida_64b(Preset::Caida2018, 1, 7).into_packets();
    let mut g = c.benchmark_group("cuckoo_ablation");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("cuckoo_table", |b| {
        b.iter_batched(
            || CuckooTable::new(1 << 16, 5),
            |mut t| {
                for p in &pkts {
                    std::hint::black_box(t.process(p));
                }
                t
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_concurrent_cache(c: &mut Criterion) {
    // Multi-threaded wall-clock throughput of the Algorithm-2 cache: the
    // real-atomics counterpart of the deterministic DES numbers.
    let pkts = workloads::caida_64b(Preset::Caida2018, 1, 7).into_packets();
    let hasher = FlowHasher::new(0x51CC);
    let digests: Arc<Vec<u64>> = Arc::new(
        pkts.iter()
            .map(|p| hasher.hash_symmetric(&p.key).0.max(1))
            .collect(),
    );
    let mut g = c.benchmark_group("concurrent_cache");
    for threads in [1usize, 4, 8] {
        g.throughput(Throughput::Elements(digests.len() as u64));
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let cache = Arc::new(ConcurrentCache::new(12));
                let chunk = digests.len() / threads + 1;
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let cache = Arc::clone(&cache);
                        let digests = Arc::clone(&digests);
                        s.spawn(move || {
                            for d in digests.iter().skip(t * chunk).take(chunk) {
                                std::hint::black_box(cache.process_digest(*d));
                            }
                        });
                    }
                });
                cache
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_flowcache, bench_batch_vs_scalar, bench_cuckoo_ablation, bench_concurrent_cache
}
criterion_main!(benches);
