//! Criterion benchmark of the full platform pipeline per deployment
//! mode, plus the engine-level cell of the batched-FlowCache comparison
//! (the shard-integrated counterpart of `flowcache/batch_vs_scalar`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use smartwatch_bench::workloads;
use smartwatch_core::deploy::DeployMode;
use smartwatch_core::platform::{standard_queries, PlatformConfig, SmartWatch};
use smartwatch_runtime::{Engine, EngineConfig, Pace};

fn bench_platform(c: &mut Criterion) {
    let trace = workloads::attack_mix(1, 3);
    let pkts = trace.packets();
    let mut g = c.benchmark_group("platform_run");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);
    for mode in [
        DeployMode::SmartWatch,
        DeployMode::SnicHost,
        DeployMode::SwitchHost,
    ] {
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter_batched(
                || SmartWatch::new(PlatformConfig::new(mode), standard_queries()),
                |sw| sw.run(pkts),
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// The shard-integrated pair of `flowcache/batch_vs_scalar`: one full
/// engine (1 shard, inline triage, 2^18-row partition) replaying the
/// hash-scattered cold-row workload with the cache burst pipeline off
/// (`1`, the per-packet reference) and on (`8`). Decisions are
/// identical — the delta is pure memory-level parallelism threaded
/// through the whole ingest → merge → cache → triage hot path.
fn bench_engine_cache_burst(c: &mut Criterion) {
    let pkts = workloads::scattered_flows(200_000, 0x5EED_CAFE);
    let mut g = c.benchmark_group("engine_cache_burst");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);
    for burst in [1usize, 8] {
        g.bench_function(format!("burst_{burst}"), |b| {
            b.iter(|| {
                let mut cfg = EngineConfig::new(1);
                cfg.host_workers = 0;
                cfg.cache_row_bits = 18;
                cfg.cache_burst = burst;
                Engine::new(cfg).run(&pkts, Pace::Flatout)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_platform, bench_engine_cache_burst
}
criterion_main!(benches);
