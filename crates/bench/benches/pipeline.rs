//! Criterion benchmark of the full platform pipeline per deployment mode.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use smartwatch_bench::workloads;
use smartwatch_core::deploy::DeployMode;
use smartwatch_core::platform::{standard_queries, PlatformConfig, SmartWatch};

fn bench_platform(c: &mut Criterion) {
    let trace = workloads::attack_mix(1, 3);
    let pkts = trace.packets();
    let mut g = c.benchmark_group("platform_run");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);
    for mode in [
        DeployMode::SmartWatch,
        DeployMode::SnicHost,
        DeployMode::SwitchHost,
    ] {
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter_batched(
                || SmartWatch::new(PlatformConfig::new(mode), standard_queries()),
                |sw| sw.run(pkts),
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_platform
}
criterion_main!(benches);
