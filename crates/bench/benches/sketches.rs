//! Criterion micro-benchmarks of the sketch baselines (feeds Fig. 11b's
//! relative-throughput narrative with real wall-clock numbers).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use smartwatch_bench::workloads;
use smartwatch_sketch::{CountMin, ElasticSketch, FlowCounter, MvSketch, NitroSketch};
use smartwatch_trace::background::Preset;

fn bench_sketch_updates(c: &mut Criterion) {
    let pkts = workloads::caida_64b(Preset::Caida2018, 1, 9).into_packets();
    let mut g = c.benchmark_group("sketch_update");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("countmin_d4", |b| {
        b.iter_batched(
            || CountMin::new(4, 1 << 16, 1),
            |mut s| {
                for p in &pkts {
                    s.update(&p.key, 1);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("elastic", |b| {
        b.iter_batched(
            || ElasticSketch::with_memory(1 << 20, 1),
            |mut s| {
                for p in &pkts {
                    s.update(&p.key, 1);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("mv_d2", |b| {
        b.iter_batched(
            || MvSketch::with_memory(1 << 20, 2, 1),
            |mut s| {
                for p in &pkts {
                    s.update(&p.key, 1);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("nitro_p05", |b| {
        b.iter_batched(
            || NitroSketch::new(4, 1 << 16, 0.05, 1),
            |mut s| {
                for p in &pkts {
                    s.update(&p.key, 1);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sketch_updates
}
criterion_main!(benches);
