//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! repro all                # every experiment at default scale
//! repro fig5 table4        # selected experiments
//! repro all --scale 4      # bigger workloads (slower, tighter shapes)
//! repro fig10 --json       # machine-readable tables
//! repro fig5 --metrics-json m.json   # dump the metric registry
//! repro fig5 --trace-out trace.json  # chrome://tracing / Perfetto trace
//! repro engine --shards 4 --packets 1000000   # wall-clock runtime
//! repro engine --trace-sample 64 --trace-out t.json  # wall-clock spans
//! repro engine --listen 127.0.0.1:9184        # live /metrics plane
//! repro engine --flight-dump flight.json      # black-box event rings
//! repro control --peak 4.0 --bench-json BENCH_control.json  # control plane
//! repro serve --listen 127.0.0.1:9184 --segments 10   # service mode
//! repro soak --segments 5 --segment-ms 2000 --bench-json BENCH_serve.json
//! repro list               # experiment index
//! ```

use smartwatch_bench::exp_control::{
    bench_json as control_bench_json, control_run_full, ControlRunSpec,
};
use smartwatch_bench::exp_engine::{
    bench_json, engine_run_full, EngineRunSpec, EngineSource, EngineWorkload,
};
use smartwatch_bench::exp_serve::{serve_bench_json, serve_run_full, ServeSpec};
use smartwatch_bench::{all_experiments, signal, ExpCtx};
use smartwatch_runtime::{DatapathMode, Engine, EngineReport};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1usize;
    let mut json = false;
    let mut metrics_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut summary_out: Option<String> = None;
    let mut flight_out: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut engine_spec = EngineRunSpec::default();
    let mut control_spec = ControlRunSpec::default();
    let mut serve_spec = ServeSpec::default();
    let mut rss_slack_mb: u64 = 64;
    let mut rx_queues_given = false;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                engine_spec.shards = parse_num(it.next(), "--shards");
                control_spec.shards = engine_spec.shards;
                serve_spec.shards = engine_spec.shards;
            }
            "--rx-queues" => {
                engine_spec.rx_queues = parse_num(it.next(), "--rx-queues");
                control_spec.rx_queues = engine_spec.rx_queues;
                serve_spec.rx_queues = engine_spec.rx_queues;
                rx_queues_given = true;
            }
            "--datapath" => {
                engine_spec.datapath = match it.next().map(String::as_str) {
                    Some("pipeline") => DatapathMode::Pipeline,
                    Some("rtc") => DatapathMode::Rtc,
                    _ => die("--datapath must be `pipeline` or `rtc`"),
                };
            }
            "--pin-cores" => {
                engine_spec.pin_cores = true;
            }
            "--packets" => {
                engine_spec.packets = parse_num(it.next(), "--packets");
                control_spec.packets = engine_spec.packets;
                serve_spec.packets = engine_spec.packets;
            }
            "--batch" => {
                engine_spec.batch = parse_num(it.next(), "--batch");
                control_spec.batch = engine_spec.batch;
                serve_spec.batch = engine_spec.batch;
            }
            "--base" => {
                control_spec.base_mpps = parse_mpps(it.next(), "--base");
            }
            "--peak" => {
                control_spec.peak_mpps = parse_mpps(it.next(), "--peak");
            }
            "--spike-start" => {
                control_spec.spike_start = parse_frac(it.next(), "--spike-start");
            }
            "--spike-end" => {
                control_spec.spike_end = parse_frac(it.next(), "--spike-end");
            }
            "--epoch-ms" => {
                control_spec.epoch_ms = parse_num(it.next(), "--epoch-ms") as u64;
                serve_spec.epoch_ms = control_spec.epoch_ms;
            }
            "--segments" => {
                serve_spec.segments = parse_num(it.next(), "--segments");
            }
            "--segment-ms" => {
                serve_spec.segment_ms = parse_u64(it.next(), "--segment-ms");
            }
            "--serve-config" => {
                serve_spec.config_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--serve-config needs a path")),
                );
            }
            "--carry-flow-state" => {
                serve_spec.carry_flow_state = true;
            }
            "--flat-out" => {
                serve_spec.rate_mpps = None;
            }
            "--rss-slack-mb" => {
                rss_slack_mb = parse_u64(it.next(), "--rss-slack-mb");
            }
            "--host-workers" => {
                engine_spec.host_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--host-workers needs an integer ≥ 0"));
                serve_spec.host_workers = engine_spec.host_workers;
            }
            "--cache-burst" => {
                engine_spec.cache_burst = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cache-burst needs an integer ≥ 0"));
            }
            "--rate" => {
                let r: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--rate needs a Mpps value"));
                if r <= 0.0 {
                    die("--rate must be positive");
                }
                engine_spec.rate_mpps = Some(r);
                serve_spec.rate_mpps = Some(r);
            }
            "--workload" => {
                engine_spec.workload = match it.next().map(String::as_str) {
                    // `stress64` is the spelled-out alias: the stress
                    // workload is already 64-byte truncated.
                    Some("stress") | Some("stress64") => EngineWorkload::Stress,
                    Some("mix") => EngineWorkload::Mix,
                    _ => die("--workload must be `stress`, `stress64` or `mix`"),
                };
                serve_spec.workload = engine_spec.workload;
            }
            "--source" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--source needs synthetic, compiled or pcap:<path>"));
                let src = EngineSource::parse(v).unwrap_or_else(|e| die(&e));
                if let EngineSource::Pcap(path) = &src {
                    if let Err(e) = std::fs::metadata(path) {
                        die(&format!("--source pcap: cannot read {path}: {e}"));
                    }
                }
                engine_spec.source = src.clone();
                control_spec.source = src.clone();
                serve_spec.source = src;
            }
            "--bench-json" => {
                bench_out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--bench-json needs a path")),
                );
            }
            "--summary-out" => {
                summary_out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--summary-out needs a path")),
                );
            }
            "--flight-dump" => {
                flight_out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--flight-dump needs a path")),
                );
            }
            "--trace-sample" => {
                let n = parse_u64(it.next(), "--trace-sample");
                engine_spec.trace_sample = n;
                control_spec.trace_sample = n;
            }
            "--listen" => {
                let addr = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--listen needs an address like 127.0.0.1:9184"));
                engine_spec.listen = Some(addr.clone());
                control_spec.listen = Some(addr.clone());
                serve_spec.listen = Some(addr);
            }
            "--serve-hold-ms" => {
                let ms = parse_u64(it.next(), "--serve-hold-ms");
                engine_spec.serve_hold_ms = ms;
                control_spec.serve_hold_ms = ms;
            }
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
                if scale == 0 {
                    die("--scale must be ≥ 1");
                }
            }
            "--json" => json = true,
            "--metrics-json" => {
                metrics_json = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                );
            }
            "--trace-out" => {
                trace_out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                );
            }
            "-h" | "--help" => {
                usage();
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        usage();
        return;
    }
    // Contradictory topology flags fail fast, before any work: the RTC
    // datapath has no RX dispatcher tier, so a `--rx-queues` the user
    // explicitly asked for cannot be honoured (core count = --shards).
    if engine_spec.datapath == DatapathMode::Rtc && rx_queues_given {
        die(
            "--rx-queues does not apply to `--datapath rtc`: fused run-to-completion \
             cores own their own ingest, so the core count is --shards",
        );
    }
    if engine_spec.pin_cores && engine_spec.datapath != DatapathMode::Rtc {
        die("--pin-cores requires `--datapath rtc` (the mesh is not pinned)");
    }

    let experiments = all_experiments();
    // Reject unknown tokens up front: a typo'd flag must not be
    // silently swallowed as a never-matched "experiment name" just
    // because another selection happened to run.
    for name in &selected {
        let known = matches!(
            name.as_str(),
            "list" | "all" | "engine" | "control" | "serve" | "soak"
        ) || experiments.iter().any(|(id, _)| name == id);
        if !known {
            if name.starts_with('-') {
                die(&format!("unknown flag {name:?}; try `repro --help`"));
            }
            die(&format!("unknown experiment {name:?}; try `repro list`"));
        }
    }
    if selected.iter().any(|s| s == "list") {
        println!("available experiments:");
        for (id, _) in &experiments {
            println!("  {id}");
        }
        return;
    }
    let run_all = selected.iter().any(|s| s == "all");
    let ctx = ExpCtx::new(scale);
    let mut ran = 0;
    let wants_engine = selected.iter().any(|s| s == "engine");
    let wants_control = selected.iter().any(|s| s == "control");
    let wants_serve = selected.iter().any(|s| s == "serve");
    let wants_soak = selected.iter().any(|s| s == "soak");
    let runtime_drivers = [wants_engine, wants_control, wants_serve, wants_soak]
        .iter()
        .filter(|w| **w)
        .count();
    if (bench_out.is_some() || flight_out.is_some()) && runtime_drivers > 1 {
        die("--bench-json/--flight-dump apply to one of `engine`/`control`/`serve`/`soak` per invocation");
    }
    if wants_serve && wants_soak {
        die("`serve` and `soak` are one service run each; pick one per invocation");
    }
    if engine_spec.listen.is_some() && runtime_drivers == 0 {
        die("--listen only applies to the `engine`, `control`, `serve` and `soak` experiments");
    }
    if runtime_drivers > 0 {
        // Ctrl-C / SIGTERM drains the run gracefully: the mesh quiesces
        // through the end-of-trace path and the summary still conserves.
        signal::install();
        engine_spec.watch_signals = true;
        control_spec.watch_signals = true;
        serve_spec.heed_interrupt = true;
    }
    if wants_engine {
        let (table, report, engine) = engine_run_full(&ctx, &engine_spec);
        if json {
            println!("{}", table.to_json());
        } else {
            println!("{}", table.render());
        }
        if let Some(path) = bench_out.take() {
            if let Err(e) = std::fs::write(&path, bench_json(&engine_spec, &report)) {
                die(&format!("writing {path}: {e}"));
            }
            eprintln!("repro: engine bench report written to {path}");
        }
        if let Some(path) = summary_out.take() {
            if let Err(e) = std::fs::write(&path, report.deterministic_summary()) {
                die(&format!("writing {path}: {e}"));
            }
            eprintln!("repro: deterministic summary written to {path}");
        }
        if let Some(path) = flight_out.take() {
            write_flight(&engine, &path, "flight recorder");
        }
        // Black-box rule: an anomalous run dumps its flight recorder
        // unconditionally, so the evidence survives even when nobody
        // asked for it. Flat-out runs apply backpressure instead of
        // dropping, so any drop there is as anomalous as a
        // conservation failure.
        let unexpected_drops = engine_spec.rate_mpps.is_none()
            && report.ingest_dropped() + report.shed() + report.steer_dropped() > 0;
        if !report.conserved() || unexpected_drops {
            eprintln!(
                "repro: anomalous engine run (conserved={}, ingest_dropped={}, shed={}, \
                 steer_dropped={})",
                report.conserved(),
                report.ingest_dropped(),
                report.shed(),
                report.steer_dropped(),
            );
            write_flight(&engine, "FLIGHT_anomaly.json", "anomaly flight dump");
        }
        selected.retain(|s| s != "engine");
        ran += 1;
    }
    if wants_control {
        let (table, outcome, engine) = control_run_full(&ctx, &control_spec);
        if json {
            println!("{}", table.to_json());
        } else {
            println!("{}", table.render());
        }
        if let Some(path) = bench_out.take() {
            if let Err(e) = std::fs::write(&path, control_bench_json(&control_spec, &outcome)) {
                die(&format!("writing {path}: {e}"));
            }
            eprintln!("repro: control bench report written to {path}");
        }
        if let Some(path) = flight_out.take() {
            write_flight(&engine, &path, "flight recorder");
        }
        if !outcome.controlled.conserved() || !outcome.baseline.conserved() {
            report_conservation("controlled", &outcome.controlled);
            report_conservation("baseline", &outcome.baseline);
            write_flight(&engine, "FLIGHT_anomaly.json", "anomaly flight dump");
        }
        selected.retain(|s| s != "control");
        ran += 1;
    }
    if wants_serve || wants_soak {
        let (table, outcome, engine) = serve_run_full(&ctx, &serve_spec);
        if json {
            println!("{}", table.to_json());
        } else {
            println!("{}", table.render());
        }
        if let Some(path) = bench_out.take() {
            if let Err(e) = std::fs::write(&path, serve_bench_json(&serve_spec, &outcome)) {
                die(&format!("writing {path}: {e}"));
            }
            eprintln!("repro: serve bench report written to {path}");
        }
        if let Some(path) = flight_out.take() {
            write_flight(&engine, &path, "flight recorder");
        }
        // The endurance gate: conservation every segment, pools flat
        // after warm-up, RSS growth inside the slack budget. `soak`
        // fails the process on a violation; `serve` reports it (and
        // both leave the flight-recorder evidence behind).
        let violations = outcome.violations(rss_slack_mb << 20);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("repro: soak violation: {v}");
            }
            write_flight(&engine, "FLIGHT_anomaly.json", "anomaly flight dump");
            if wants_soak {
                std::process::exit(1);
            }
        } else if wants_soak {
            eprintln!(
                "repro: soak clean — {} segment(s) conserved, final-segment pool growth {}/{}, \
                 RSS {:+} bytes",
                outcome.segments.len(),
                outcome.steady_pool_growth(),
                outcome.steady_frame_pool_growth(),
                outcome.rss_growth_bytes(),
            );
        }
        selected.retain(|s| s != "serve" && s != "soak");
        ran += 1;
    }
    if let Some(path) = bench_out {
        die(&format!(
            "--bench-json {path} only applies to the `engine`, `control`, `serve` and `soak` \
             experiments"
        ));
    }
    if let Some(path) = flight_out {
        die(&format!(
            "--flight-dump {path} only applies to the `engine`, `control`, `serve` and `soak` \
             experiments"
        ));
    }
    if let Some(path) = summary_out {
        die(&format!(
            "--summary-out {path} only applies to the `engine` experiment"
        ));
    }
    for (id, f) in &experiments {
        if run_all || selected.iter().any(|s| s == id) {
            let table = f(&ctx);
            if json {
                println!("{}", table.to_json());
            } else {
                println!("{}", table.render());
            }
            ran += 1;
        }
    }
    if ran == 0 {
        die(&format!(
            "no experiment matched {selected:?}; try `repro list`"
        ));
    }
    if let Some(path) = metrics_json {
        if let Err(e) = std::fs::write(&path, ctx.registry.snapshot().to_json()) {
            die(&format!("writing {path}: {e}"));
        }
        eprintln!("repro: metrics written to {path}");
    }
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, ctx.tracer.to_chrome_json()) {
            die(&format!("writing {path}: {e}"));
        }
        eprintln!(
            "repro: trace written to {path} (open in chrome://tracing or Perfetto; \
             {} spans dropped at full rings)",
            ctx.tracer.total_dropped()
        );
    } else if ctx.tracer.total_dropped() > 0 {
        eprintln!(
            "repro: tracer dropped {} spans at full rings (no --trace-out given)",
            ctx.tracer.total_dropped()
        );
    }
}

/// Dump the engine's flight recorder to `path` (`--flight-dump` and the
/// anomaly auto-dump share this).
fn write_flight(engine: &Arc<Engine>, path: &str, what: &str) {
    if let Err(e) = std::fs::write(path, engine.flight().to_json()) {
        die(&format!("writing {path}: {e}"));
    }
    eprintln!("repro: {what} written to {path}");
}

/// One line of conservation evidence for an anomalous run.
fn report_conservation(name: &str, r: &EngineReport) {
    eprintln!(
        "repro: {name} run conserved={} (offered={}, processed={}, ingest_dropped={}, \
         shed={}, steer_dropped={})",
        r.conserved(),
        r.offered,
        r.processed(),
        r.ingest_dropped(),
        r.shed(),
        r.steer_dropped(),
    );
}

fn usage() {
    println!(
        "repro — regenerate the SmartWatch paper's tables and figures\n\n\
         usage: repro <experiment…|all|list> [--scale N] [--json]\n\
                      [--metrics-json <path>] [--trace-out <path>]\n\
                repro engine [--shards N] [--rx-queues R] [--packets N]\n\
                      [--datapath pipeline|rtc] [--pin-cores]\n\
                      [--batch N] [--host-workers N] [--rate MPPS]\n\
                      [--cache-burst N]\n\
                      [--workload stress|stress64|mix]\n\
                      [--source synthetic|compiled|pcap:<path>]\n\
                      [--bench-json <path>] [--summary-out <path>]\n\
                      [--trace-sample N] [--listen ADDR]\n\
                      [--serve-hold-ms N] [--flight-dump <path>]\n\
                repro control [--shards N] [--rx-queues R] [--packets N]\n\
                      [--batch N] [--base MPPS] [--peak MPPS]\n\
                      [--spike-start F] [--spike-end F] [--epoch-ms N]\n\
                      [--source synthetic|compiled|pcap:<path>]\n\
                      [--bench-json <path>] [--trace-sample N]\n\
                      [--listen ADDR] [--serve-hold-ms N]\n\
                      [--flight-dump <path>]\n\
                repro serve|soak [--shards N] [--rx-queues R]\n\
                      [--packets N] [--batch N] [--rate MPPS|--flat-out]\n\
                      [--segments N] [--segment-ms N] [--epoch-ms N]\n\
                      [--carry-flow-state] [--serve-config <path>]\n\
                      [--listen ADDR] [--bench-json <path>]\n\
                      [--flight-dump <path>] [--rss-slack-mb N]\n\n\
         --json          print tables as JSON instead of aligned text\n\
         --metrics-json  dump every counter/gauge/histogram the selected\n\
                         experiments registered (deterministic for a seed)\n\
         --trace-out     dump the event trace in chrome-trace format\n\
                         (load in chrome://tracing or ui.perfetto.dev);\n\
                         with `engine`/`control` and --trace-sample it\n\
                         also carries the wall-clock thread spans\n\
         --source        (engine/control) what the dispatchers ingest:\n\
                         `synthetic` (default) replays pre-built Packet\n\
                         structs; `compiled` serialises the workload once\n\
                         into packed wire frames and parses + digests the\n\
                         header bytes in place (the zero-copy data plane);\n\
                         `pcap:<path>` replays a capture file through the\n\
                         same wire path, cycled to --packets\n\
         --bench-json    (engine/control) write the headline wall-clock\n\
                         numbers as JSON (control adds the mode timeline\n\
                         and the per-epoch controller decision audit;\n\
                         engine adds the flowcache hit-mix/probe section)\n\
         --summary-out   (engine) write the byte-stable deterministic\n\
                         summary (exact counters, no wall-clock values)\n\
                         — what CI diffs against its committed golden\n\
         --cache-burst   (engine) FlowCache lookup burst width: shards\n\
                         prefetch N rows ahead before probing (default 8;\n\
                         0/1 = per-packet reference path, same decisions)\n\
         --datapath      (engine) thread topology: `pipeline` (default)\n\
                         runs R dispatchers feeding N shards over SPSC\n\
                         lanes; `rtc` fuses dispatcher and shard into N\n\
                         run-to-completion cores (zero queue crossings,\n\
                         identical decisions; --rx-queues is rejected)\n\
         --pin-cores     (engine, rtc only) pin core i to CPU i via\n\
                         sched_setaffinity — best-effort, Linux only\n\
         --trace-sample  (engine/control) sample 1-in-N batches per\n\
                         engine thread into --trace-out (0 = off; the\n\
                         first batch per thread is always sampled)\n\
         --listen        (engine/control) serve /metrics, /stats.json\n\
                         and /flight.json live during the run\n\
                         (e.g. 127.0.0.1:9184; port 0 = ephemeral)\n\
         --serve-hold-ms (engine/control) keep --listen endpoints up\n\
                         this long after the run ends\n\
         --flight-dump   (engine/control) write the flight recorder\n\
                         (per-thread black-box event rings) as JSON;\n\
                         anomalous runs auto-dump FLIGHT_anomaly.json\n\n\
         `repro engine` runs the sharded wall-clock runtime (OS threads,\n\
         measured Mpps — machine-dependent, unlike every other experiment).\n\
         Default: 2 shards, 1 RX queue, 200k packets, flat-out, 64B\n\
         stress workload. `--rx-queues R` fans ingest out over R\n\
         dispatcher threads (the multi-queue NIC model); `--datapath\n\
         rtc` replaces the mesh with N fused run-to-completion cores.\n\n\
         `repro control` replays one overload spike twice — with the\n\
         adaptive control plane (Alg. 4 mode switching, steering\n\
         snapshots, load shedding) and without — and reports both.\n\
         `repro control-sim` is its deterministic virtual-time sibling.\n\n\
         `repro serve` keeps one engine resident and replays the\n\
         workload in --segments drain/restart segments; --listen mounts\n\
         the POST /admin/* control socket next to the read-only\n\
         endpoints, --serve-config hot-reloads a watched JSON config at\n\
         epoch boundaries, and --segment-ms drains any over-long\n\
         segment gracefully. `repro soak` is the endurance gate: the\n\
         same loop, but conservation / flat pool-allocation / bounded\n\
         RSS (--rss-slack-mb, default 64) violations fail the process\n\
         and auto-dump FLIGHT_anomaly.json. SIGINT/SIGTERM drain any\n\
         runtime driver gracefully — the summary still conserves.\n\n\
         Experiments map 1:1 to the paper's evaluation (see DESIGN.md §3\n\
         and EXPERIMENTS.md for the paper-vs-measured record)."
    );
}

fn parse_num(v: Option<&String>, flag: &str) -> usize {
    let n: usize = v
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")));
    if n == 0 {
        die(&format!("{flag} must be ≥ 1"));
    }
    n
}

fn parse_u64(v: Option<&String>, flag: &str) -> u64 {
    v.and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a non-negative integer")))
}

fn parse_mpps(v: Option<&String>, flag: &str) -> f64 {
    let r: f64 = v
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a Mpps value")));
    if r <= 0.0 {
        die(&format!("{flag} must be positive"));
    }
    r
}

fn parse_frac(v: Option<&String>, flag: &str) -> f64 {
    let f: f64 = v
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a fraction in [0, 1]")));
    if !(0.0..=1.0).contains(&f) {
        die(&format!("{flag} must be within [0, 1]"));
    }
    f
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
