//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! repro all                # every experiment at default scale
//! repro fig5 table4        # selected experiments
//! repro all --scale 4      # bigger workloads (slower, tighter shapes)
//! repro fig10 --json       # machine-readable output
//! repro list               # experiment index
//! ```

use smartwatch_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1usize;
    let mut json = false;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
                if scale == 0 {
                    die("--scale must be ≥ 1");
                }
            }
            "--json" => json = true,
            "-h" | "--help" => {
                usage();
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        usage();
        return;
    }

    let experiments = all_experiments();
    if selected.iter().any(|s| s == "list") {
        println!("available experiments:");
        for (id, _) in &experiments {
            println!("  {id}");
        }
        return;
    }
    let run_all = selected.iter().any(|s| s == "all");
    let mut ran = 0;
    for (id, f) in &experiments {
        if run_all || selected.iter().any(|s| s == id) {
            let table = f(scale);
            if json {
                println!("{}", serde_json::to_string_pretty(&table).expect("serializable"));
            } else {
                println!("{}", table.render());
            }
            ran += 1;
        }
    }
    if ran == 0 {
        die(&format!(
            "no experiment matched {selected:?}; try `repro list`"
        ));
    }
}

fn usage() {
    println!(
        "repro — regenerate the SmartWatch paper's tables and figures\n\n\
         usage: repro <experiment…|all|list> [--scale N] [--json]\n\n\
         Experiments map 1:1 to the paper's evaluation (see DESIGN.md §3\n\
         and EXPERIMENTS.md for the paper-vs-measured record)."
    );
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
