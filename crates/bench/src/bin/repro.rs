//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! repro all                # every experiment at default scale
//! repro fig5 table4        # selected experiments
//! repro all --scale 4      # bigger workloads (slower, tighter shapes)
//! repro fig10 --json       # machine-readable tables
//! repro fig5 --metrics-json m.json   # dump the metric registry
//! repro fig5 --trace-out trace.json  # chrome://tracing / Perfetto trace
//! repro engine --shards 4 --packets 1000000   # wall-clock runtime
//! repro control --peak 4.0 --bench-json BENCH_control.json  # control plane
//! repro list               # experiment index
//! ```

use smartwatch_bench::exp_control::{
    bench_json as control_bench_json, control_run_report, ControlRunSpec,
};
use smartwatch_bench::exp_engine::{bench_json, engine_run_report, EngineRunSpec, EngineWorkload};
use smartwatch_bench::{all_experiments, ExpCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1usize;
    let mut json = false;
    let mut metrics_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut engine_spec = EngineRunSpec::default();
    let mut control_spec = ControlRunSpec::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                engine_spec.shards = parse_num(it.next(), "--shards");
                control_spec.shards = engine_spec.shards;
            }
            "--rx-queues" => {
                engine_spec.rx_queues = parse_num(it.next(), "--rx-queues");
                control_spec.rx_queues = engine_spec.rx_queues;
            }
            "--packets" => {
                engine_spec.packets = parse_num(it.next(), "--packets");
                control_spec.packets = engine_spec.packets;
            }
            "--batch" => {
                engine_spec.batch = parse_num(it.next(), "--batch");
                control_spec.batch = engine_spec.batch;
            }
            "--base" => {
                control_spec.base_mpps = parse_mpps(it.next(), "--base");
            }
            "--peak" => {
                control_spec.peak_mpps = parse_mpps(it.next(), "--peak");
            }
            "--spike-start" => {
                control_spec.spike_start = parse_frac(it.next(), "--spike-start");
            }
            "--spike-end" => {
                control_spec.spike_end = parse_frac(it.next(), "--spike-end");
            }
            "--epoch-ms" => {
                control_spec.epoch_ms = parse_num(it.next(), "--epoch-ms") as u64;
            }
            "--host-workers" => {
                engine_spec.host_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--host-workers needs an integer ≥ 0"));
            }
            "--rate" => {
                let r: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--rate needs a Mpps value"));
                if r <= 0.0 {
                    die("--rate must be positive");
                }
                engine_spec.rate_mpps = Some(r);
            }
            "--workload" => {
                engine_spec.workload = match it.next().map(String::as_str) {
                    // `stress64` is the spelled-out alias: the stress
                    // workload is already 64-byte truncated.
                    Some("stress") | Some("stress64") => EngineWorkload::Stress,
                    Some("mix") => EngineWorkload::Mix,
                    _ => die("--workload must be `stress`, `stress64` or `mix`"),
                };
            }
            "--bench-json" => {
                bench_out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--bench-json needs a path")),
                );
            }
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
                if scale == 0 {
                    die("--scale must be ≥ 1");
                }
            }
            "--json" => json = true,
            "--metrics-json" => {
                metrics_json = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                );
            }
            "--trace-out" => {
                trace_out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                );
            }
            "-h" | "--help" => {
                usage();
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        usage();
        return;
    }

    let experiments = all_experiments();
    if selected.iter().any(|s| s == "list") {
        println!("available experiments:");
        for (id, _) in &experiments {
            println!("  {id}");
        }
        return;
    }
    let run_all = selected.iter().any(|s| s == "all");
    let ctx = ExpCtx::new(scale);
    let mut ran = 0;
    let wants_engine = selected.iter().any(|s| s == "engine");
    let wants_control = selected.iter().any(|s| s == "control");
    if bench_out.is_some() && wants_engine && wants_control {
        die("--bench-json applies to one of `engine`/`control` per invocation");
    }
    if wants_engine {
        let (table, report) = engine_run_report(&ctx, &engine_spec);
        if json {
            println!("{}", table.to_json());
        } else {
            println!("{}", table.render());
        }
        if let Some(path) = bench_out.take() {
            if let Err(e) = std::fs::write(&path, bench_json(&engine_spec, &report)) {
                die(&format!("writing {path}: {e}"));
            }
            eprintln!("repro: engine bench report written to {path}");
        }
        selected.retain(|s| s != "engine");
        ran += 1;
    }
    if wants_control {
        let (table, outcome) = control_run_report(&ctx, &control_spec);
        if json {
            println!("{}", table.to_json());
        } else {
            println!("{}", table.render());
        }
        if let Some(path) = bench_out.take() {
            if let Err(e) = std::fs::write(&path, control_bench_json(&control_spec, &outcome)) {
                die(&format!("writing {path}: {e}"));
            }
            eprintln!("repro: control bench report written to {path}");
        }
        selected.retain(|s| s != "control");
        ran += 1;
    }
    if let Some(path) = bench_out {
        die(&format!(
            "--bench-json {path} only applies to the `engine` and `control` experiments"
        ));
    }
    for (id, f) in &experiments {
        if run_all || selected.iter().any(|s| s == id) {
            let table = f(&ctx);
            if json {
                println!("{}", table.to_json());
            } else {
                println!("{}", table.render());
            }
            ran += 1;
        }
    }
    if ran == 0 {
        die(&format!(
            "no experiment matched {selected:?}; try `repro list`"
        ));
    }
    if let Some(path) = metrics_json {
        if let Err(e) = std::fs::write(&path, ctx.registry.snapshot().to_json()) {
            die(&format!("writing {path}: {e}"));
        }
        eprintln!("repro: metrics written to {path}");
    }
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, ctx.tracer.to_chrome_json()) {
            die(&format!("writing {path}: {e}"));
        }
        eprintln!("repro: trace written to {path} (open in chrome://tracing or Perfetto)");
    }
}

fn usage() {
    println!(
        "repro — regenerate the SmartWatch paper's tables and figures\n\n\
         usage: repro <experiment…|all|list> [--scale N] [--json]\n\
                      [--metrics-json <path>] [--trace-out <path>]\n\
                repro engine [--shards N] [--rx-queues R] [--packets N]\n\
                      [--batch N] [--host-workers N] [--rate MPPS]\n\
                      [--workload stress|stress64|mix] [--bench-json <path>]\n\
                repro control [--shards N] [--rx-queues R] [--packets N]\n\
                      [--batch N] [--base MPPS] [--peak MPPS]\n\
                      [--spike-start F] [--spike-end F] [--epoch-ms N]\n\
                      [--bench-json <path>]\n\n\
         --json          print tables as JSON instead of aligned text\n\
         --metrics-json  dump every counter/gauge/histogram the selected\n\
                         experiments registered (deterministic for a seed)\n\
         --trace-out     dump the sim-time event trace in chrome-trace\n\
                         format (load in chrome://tracing or ui.perfetto.dev)\n\
         --bench-json    (engine/control) write the headline wall-clock\n\
                         numbers as JSON (control adds the mode timeline)\n\n\
         `repro engine` runs the sharded wall-clock runtime (OS threads,\n\
         measured Mpps — machine-dependent, unlike every other experiment).\n\
         Default: 2 shards, 1 RX queue, 200k packets, flat-out, 64B\n\
         stress workload. `--rx-queues R` fans ingest out over R\n\
         dispatcher threads (the multi-queue NIC model).\n\n\
         `repro control` replays one overload spike twice — with the\n\
         adaptive control plane (Alg. 4 mode switching, steering\n\
         snapshots, load shedding) and without — and reports both.\n\
         `repro control-sim` is its deterministic virtual-time sibling.\n\n\
         Experiments map 1:1 to the paper's evaluation (see DESIGN.md §3\n\
         and EXPERIMENTS.md for the paper-vs-measured record)."
    );
}

fn parse_num(v: Option<&String>, flag: &str) -> usize {
    let n: usize = v
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")));
    if n == 0 {
        die(&format!("{flag} must be ≥ 1"));
    }
    n
}

fn parse_mpps(v: Option<&String>, flag: &str) -> f64 {
    let r: f64 = v
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a Mpps value")));
    if r <= 0.0 {
        die(&format!("{flag} must be positive"));
    }
    r
}

fn parse_frac(v: Option<&String>, flag: &str) -> f64 {
    let f: f64 = v
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a fraction in [0, 1]")));
    if !(0.0..=1.0).contains(&f) {
        die(&format!("{flag} must be within [0, 1]"));
    }
    f
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
