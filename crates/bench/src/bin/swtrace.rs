//! `swtrace` — generate, transform and inspect traces as pcap files.
//!
//! The workspace-native equivalent of the paper's MoonGen + editcap +
//! mergecap + tcprewrite toolchain:
//!
//! ```sh
//! swtrace gen --preset caida2018 --flows 5000 --secs 4 --seed 1 -o bg.pcap
//! swtrace attack portscan --delay-ms 50 --probes 200 -o scan.pcap
//! swtrace merge bg.pcap scan.pcap -o mixed.pcap        # mergecap
//! swtrace shift mixed.pcap --ms 500 -o shifted.pcap    # editcap -t
//! swtrace rewrite64 mixed.pcap -o stress.pcap          # tcprewrite
//! swtrace info mixed.pcap                              # capinfos
//! ```
//!
//! Output pcaps are classic little-endian/µs files readable by tcpdump
//! and wireshark. Note that ground-truth labels are generation-side
//! metadata and do not survive the pcap round trip (a capture is what a
//! monitor would actually see).

use smartwatch_net::{pcap, Dur, Ts};
use smartwatch_trace::attacks::auth::{bruteforce, BruteforceConfig};
use smartwatch_trace::attacks::portscan::{portscan, ScanConfig};
use smartwatch_trace::attacks::rst::{forged_rst, ForgedRstConfig};
use smartwatch_trace::attacks::slowloris::{slowloris, SlowlorisConfig};
use smartwatch_trace::background::{preset_trace, Preset};
use smartwatch_trace::Trace;
use std::collections::HashMap;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let cmd = args[0].as_str();
    let rest = &args[1..];
    let result = match cmd {
        "gen" => cmd_gen(rest),
        "attack" => cmd_attack(rest),
        "merge" => cmd_merge(rest),
        "shift" => cmd_shift(rest),
        "rewrite64" => cmd_rewrite64(rest),
        "info" => cmd_info(rest),
        "-h" | "--help" | "help" => {
            usage();
            return;
        }
        other => Err(format!("unknown command {other:?}; try `swtrace help`")),
    };
    if let Err(e) = result {
        eprintln!("swtrace: {e}");
        std::process::exit(1);
    }
}

fn usage() {
    println!(
        "swtrace — generate, transform and inspect SmartWatch traces as pcap\n\n\
         commands:\n  \
         gen --preset <caida2015|caida2016|caida2018|caida2019|wisconsin>\n      \
         [--flows N] [--secs S] [--seed N] -o <file>\n  \
         attack <portscan|ssh|slowloris|rst> [options] -o <file>\n      \
         portscan: [--delay-ms N] [--probes N] [--seed N]\n      \
         ssh:      [--attackers N] [--attempts N] [--seed N]\n      \
         slowloris/rst: [--seed N]\n  \
         merge <in.pcap>… -o <file>\n  \
         shift <in.pcap> --ms <signed offset> -o <file>\n  \
         rewrite64 <in.pcap> -o <file>\n  \
         info <in.pcap>"
    );
}

/// Parse `--key value` options plus positional arguments.
fn parse(rest: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut opts = HashMap::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let v = it.next().cloned().unwrap_or_default();
            opts.insert(key.to_string(), v);
        } else if a == "-o" {
            let v = it.next().cloned().unwrap_or_default();
            opts.insert("out".to_string(), v);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, opts)
}

fn opt<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v:?}")),
    }
}

fn out_path(opts: &HashMap<String, String>) -> Result<PathBuf, String> {
    opts.get("out")
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .ok_or_else(|| "missing -o <file>".to_string())
}

fn save(trace: &Trace, path: &PathBuf) -> Result<(), String> {
    let bytes = pcap::write(trace.packets());
    std::fs::write(path, &bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "wrote {}: {} packets, {:.3}s, {} bytes",
        path.display(),
        trace.len(),
        trace.duration().as_secs_f64(),
        bytes.len()
    );
    Ok(())
}

fn load(path: &str) -> Result<Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let pkts = pcap::read(&bytes).map_err(|e| format!("parse {path}: {e}"))?;
    Ok(Trace::from_packets(pkts))
}

fn cmd_gen(rest: &[String]) -> Result<(), String> {
    let (_, opts) = parse(rest);
    let preset = match opts.get("preset").map(String::as_str) {
        Some("caida2015") => Preset::Caida2015,
        Some("caida2016") => Preset::Caida2016,
        Some("caida2018") | None => Preset::Caida2018,
        Some("caida2019") => Preset::Caida2019,
        Some("wisconsin") => Preset::WisconsinDc,
        Some(other) => return Err(format!("unknown preset {other:?}")),
    };
    let flows = opt(&opts, "flows", 5_000usize)?;
    let secs = opt(&opts, "secs", 4u64)?;
    let seed = opt(&opts, "seed", 1u64)?;
    let trace = preset_trace(preset, flows, Dur::from_secs(secs), seed);
    save(&trace, &out_path(&opts)?)
}

fn cmd_attack(rest: &[String]) -> Result<(), String> {
    let (positional, opts) = parse(rest);
    let kind = positional.first().map(String::as_str).unwrap_or("");
    let seed = opt(&opts, "seed", 1u64)?;
    let trace = match kind {
        "portscan" => {
            let delay = opt(&opts, "delay-ms", 50u64)?;
            let probes = opt(&opts, "probes", 200u32)?;
            portscan(&ScanConfig::with_delay(
                Dur::from_millis(delay),
                probes,
                seed,
            ))
        }
        "ssh" => {
            let mut cfg =
                BruteforceConfig::ssh(smartwatch_trace::attacks::victim_ip(0), Ts::ZERO, seed);
            cfg.attackers = opt(&opts, "attackers", 4u32)?;
            cfg.attempts_per_attacker = opt(&opts, "attempts", 8u32)?;
            bruteforce(&cfg)
        }
        "slowloris" => slowloris(&SlowlorisConfig::new(
            smartwatch_trace::attacks::victim_ip(1),
            Ts::ZERO,
            seed,
        )),
        "rst" => forged_rst(&ForgedRstConfig {
            seed,
            ..Default::default()
        }),
        other => {
            return Err(format!(
                "unknown attack {other:?} (portscan|ssh|slowloris|rst)"
            ))
        }
    };
    save(&trace, &out_path(&opts)?)
}

fn cmd_merge(rest: &[String]) -> Result<(), String> {
    let (positional, opts) = parse(rest);
    if positional.is_empty() {
        return Err("merge needs at least one input pcap".into());
    }
    let traces: Result<Vec<Trace>, String> = positional.iter().map(|p| load(p)).collect();
    let merged = Trace::merge(traces?);
    save(&merged, &out_path(&opts)?)
}

fn cmd_shift(rest: &[String]) -> Result<(), String> {
    let (positional, opts) = parse(rest);
    let input = positional.first().ok_or("shift needs an input pcap")?;
    let ms: i64 = opt(&opts, "ms", 0i64)?;
    let shifted = load(input)?.time_shifted(ms * 1_000_000);
    save(&shifted, &out_path(&opts)?)
}

fn cmd_rewrite64(rest: &[String]) -> Result<(), String> {
    let (positional, opts) = parse(rest);
    let input = positional.first().ok_or("rewrite64 needs an input pcap")?;
    let rewritten = load(input)?.truncated_64b();
    save(&rewritten, &out_path(&opts)?)
}

fn cmd_info(rest: &[String]) -> Result<(), String> {
    let (positional, _) = parse(rest);
    let input = positional.first().ok_or("info needs an input pcap")?;
    let trace = load(input)?;
    let mut flows = std::collections::HashSet::new();
    let (mut tcp, mut udp, mut syns, mut rsts) = (0u64, 0u64, 0u64, 0u64);
    for p in trace.iter() {
        flows.insert(p.key.canonical().0);
        if p.is_tcp() {
            tcp += 1;
            if p.flags.is_syn_only() {
                syns += 1;
            }
            if p.flags.rst() {
                rsts += 1;
            }
        } else if p.is_udp() {
            udp += 1;
        }
    }
    println!("{input}:");
    println!("  packets   : {}", trace.len());
    println!("  flows     : {}", flows.len());
    println!("  duration  : {:.3}s", trace.duration().as_secs_f64());
    println!("  mean rate : {:.1} kpps", trace.mean_pps() / 1e3);
    println!("  bytes     : {}", trace.total_bytes());
    println!("  tcp/udp   : {tcp}/{udp}");
    println!("  syn-only  : {syns}");
    println!("  rst       : {rsts}");
    Ok(())
}
