//! Ablations of the design choices DESIGN.md §4 calls out: the rejected
//! Cuckoo-hash layout, flow-record pinning, steering granularity, and the
//! lazy General→Lite cleanup cost.

use crate::output::{f, pct, Table};
use crate::workloads;
use crate::ExpCtx;
use smartwatch_net::Dur;
use smartwatch_snic::cuckoo::CuckooTable;
use smartwatch_snic::des::LatencyDist;
use smartwatch_snic::hw::{service_time, CycleCosts, NETRONOME_AGILIO_LX};
use smartwatch_snic::{Access, CachePolicy, FlowCache, FlowCacheConfig, Mode, Outcome};
use smartwatch_trace::background::Preset;

/// Cuckoo ablation (paper §3.2): the paper measured FlowCache's
/// 99.9th-percentile latency 2.43× lower than a Cuckoo table with a
/// 12-relocation budget, because sNIC writes are expensive and Cuckoo
/// inserts write repeatedly while FlowCache inserts write once.
pub fn ablation_cuckoo(ctx: &ExpCtx) -> Table {
    let pkts = workloads::caida_64b(Preset::Caida2018, ctx.scale, 2018).into_packets();
    let hw = NETRONOME_AGILIO_LX;
    let costs = CycleCosts::default();

    // FlowCache at a contended size.
    let mut fc = FlowCache::new(FlowCacheConfig::split(6, 4, 8, CachePolicy::LRU_LPC));
    let mut fc_lat: Vec<u64> = Vec::with_capacity(pkts.len());
    for p in &pkts {
        let a = fc.process(p);
        let (busy, wait) = service_time(&hw, &costs, &a);
        fc_lat.push((busy + wait) as u64);
    }

    // Cuckoo table with the same entry budget (2^6 rows × 12 buckets).
    let mut ck = CuckooTable::new((1usize << 6) * 12, 7);
    let mut ck_lat: Vec<u64> = Vec::with_capacity(pkts.len());
    for p in &pkts {
        let a = ck.process(p);
        // Same cost model: reads are hideable waits, every write stalls.
        let access = Access {
            outcome: if a.hit { Outcome::PHit } else { Outcome::Miss },
            probes: a.probes,
            writes: a.writes,
            ring_pushes: u32::from(a.overflow),
            cleaned_row: false,
        };
        let (busy, wait) = service_time(&hw, &costs, &access);
        ck_lat.push((busy + wait) as u64);
    }

    let fcd = LatencyDist::from_samples(fc_lat);
    let ckd = LatencyDist::from_samples(ck_lat);
    let mut t = Table::new(
        "ablation-cuckoo",
        "FlowCache vs Cuckoo hashing at equal memory (service latency)",
        &[
            "structure",
            "p50 (µs)",
            "p99 (µs)",
            "p99.9 (µs)",
            "mean (µs)",
        ],
    );
    for (name, d) in [("FlowCache (4,8)", fcd), ("Cuckoo (12 relocations)", ckd)] {
        t.row(vec![
            name.into(),
            f(d.p50_ns as f64 / 1e3, 2),
            f(d.p99_ns as f64 / 1e3, 2),
            f(d.p999_ns as f64 / 1e3, 2),
            f(d.mean_ns / 1e3, 2),
        ]);
    }
    t.note(format!(
        "Cuckoo p99.9 is {:.2}× FlowCache's (paper: 2.43×) — relocation chains \
         multiply the expensive writes",
        ckd.p999_ns as f64 / fcd.p999_ns.max(1) as f64
    ));
    t
}

/// Pinning ablation (paper §3.2 "Pinning Flow Records"): under eviction
/// pressure, pinned suspect flows keep exact in-sNIC state while unpinned
/// ones are exported piecemeal (state fragmentation ⇒ inaccurate
/// per-packet tracking).
pub fn ablation_pinning(ctx: &ExpCtx) -> Table {
    let trace = workloads::caida_64b(Preset::Caida2018, ctx.scale, 77);
    // Suspect flows: the 32 first flows seen (stand-ins for flows a
    // detector wants tracked per-packet).
    let mut t = Table::new(
        "ablation-pinning",
        "Flow pinning under eviction pressure (tiny cache, flood workload)",
        &[
            "pinning",
            "suspects resident",
            "suspect evictions",
            "to-host pkts",
        ],
    );
    for pin in [true, false] {
        let mut fc = FlowCache::new(FlowCacheConfig::split(4, 2, 2, CachePolicy::LRU_LPC));
        let mut suspects = Vec::new();
        let mut suspect_evictions = 0u64;
        for p in trace.iter() {
            fc.process(p);
            if suspects.len() < 32 && !suspects.contains(&p.key.canonical().0) {
                // A fully-pinned row refuses further pins (the packet
                // would go to the host instead); only successfully pinned
                // flows count as protected suspects.
                if !pin || fc.pin(&p.key) {
                    suspects.push(p.key.canonical().0);
                }
            }
            for r in fc.rings().drain() {
                if suspects.contains(&r.key) {
                    suspect_evictions += 1;
                }
            }
        }
        let resident = suspects.iter().filter(|k| fc.get(k).is_some()).count();
        t.row(vec![
            if pin { "pinned" } else { "unpinned" }.into(),
            format!("{resident}/32"),
            suspect_evictions.to_string(),
            fc.stats().to_host.to_string(),
        ]);
    }
    t.note("pinned suspect flows stay resident (exact per-packet state); unpinned");
    t.note("ones fragment across evictions; the cost is a small to-host overflow");
    t
}

/// Steering-granularity ablation: the control loop can steer matched
/// subsets at /8, /16, /24 or /32 — coarser steering diverts more
/// traffic but tolerates attacker movement; finer steering is cheap but
/// brittle. (Paper §3.1's Sonata-comparison discussion.)
pub fn ablation_steer_width(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    use smartwatch_core::deploy::DeployMode;
    use smartwatch_core::eval::{detection_rate, GroundTruth};
    use smartwatch_core::platform::{PlatformConfig, SmartWatch};
    use smartwatch_net::AttackKind;
    use smartwatch_p4sim::SwitchQuery;
    use smartwatch_trace::attacks::portscan::{portscan, ScanConfig};
    use smartwatch_trace::background::preset_trace;
    use smartwatch_trace::Trace;

    let bg = preset_trace(Preset::Caida2018, 800 * scale, Dur::from_secs(6), 0xAB);
    let scan = portscan(&ScanConfig {
        scanner: 32,
        ..ScanConfig::with_delay(Dur::from_millis(40), 120, 0xAB)
    });
    let trace = Trace::merge([bg, scan]);
    let truth = GroundTruth::from_packets(trace.packets());

    let mut t = Table::new(
        "ablation-steer-width",
        "Steering granularity: monitored share vs detection",
        &[
            "steer width",
            "steered pkts",
            "steered share",
            "scan detected",
        ],
    );
    for width in [8u8, 16, 24, 32] {
        let q = SwitchQuery::scan_probes(width, 12);
        let cfg = PlatformConfig::new(DeployMode::SmartWatch);
        let rep = SmartWatch::new(cfg, vec![q]).run(trace.packets());
        let detected =
            detection_rate(&rep, &truth, AttackKind::StealthyPortScan).unwrap_or(0.0) > 0.0;
        t.row(vec![
            format!("/{width}"),
            rep.metrics.snic_processed.to_string(),
            pct(rep.metrics.snic_processed as f64 / rep.metrics.total.max(1) as f64),
            detected.to_string(),
        ]);
    }
    t.note("coarse steering monitors more innocent bystander traffic for the same");
    t.note("detection outcome; /32 steers the attacker alone");
    t
}

/// Algorithm 3 cleanup-cost ablation: the paper bounds lazy row cleanup
/// at ≤14 µs per row with <5 µs packet wait. Measure the modeled extra
/// latency of packets that performed cleanup during a General→Lite
/// transition under load.
pub fn ablation_cleanup(ctx: &ExpCtx) -> Table {
    let pkts = workloads::caida_64b(Preset::Caida2018, ctx.scale, 2018).into_packets();
    let hw = NETRONOME_AGILIO_LX;
    let costs = CycleCosts::default();
    let mut fc = FlowCache::new(FlowCacheConfig::general(8));
    // Warm the cache in General mode with the first half of the trace.
    let half = pkts.len() / 2;
    for p in &pkts[..half] {
        fc.process(p);
    }
    fc.set_mode(Mode::Lite);
    let mut clean_lat: Vec<u64> = Vec::new();
    let mut plain_lat: Vec<u64> = Vec::new();
    for p in &pkts[half..] {
        let a = fc.process(p);
        let (busy, wait) = service_time(&hw, &costs, &a);
        if a.cleaned_row {
            clean_lat.push((busy + wait) as u64);
        } else {
            plain_lat.push((busy + wait) as u64);
        }
    }
    let rows_cleaned = fc.stats().rows_cleaned;
    let cd = LatencyDist::from_samples(clean_lat.clone());
    let pd = LatencyDist::from_samples(plain_lat);
    let mut t = Table::new(
        "ablation-cleanup",
        "Algorithm 3 lazy cleanup cost during General→Lite transition",
        &["packet class", "count", "mean (µs)", "p99 (µs)"],
    );
    t.row(vec![
        "triggered cleanup".into(),
        clean_lat.len().to_string(),
        f(cd.mean_ns / 1e3, 2),
        f(cd.p99_ns as f64 / 1e3, 2),
    ]);
    t.row(vec![
        "ordinary".into(),
        (pkts.len() - half - clean_lat.len()).to_string(),
        f(pd.mean_ns / 1e3, 2),
        f(pd.p99_ns as f64 / 1e3, 2),
    ]);
    t.note(format!(
        "{rows_cleaned} rows cleaned lazily; cleanup packets pay {:.1} µs extra on \
         average (paper bound: ≤14 µs per row, <5 µs induced wait)",
        (cd.mean_ns - pd.mean_ns) / 1e3
    ));
    t
}

/// Sampling ablation (paper §2.3.2): sampling as NitroSketch does buys
/// throughput but "would not be able to support flow-state tracking" —
/// measure both sides of that trade plus the projected 100 G part.
pub fn ablation_sampling(ctx: &ExpCtx) -> Table {
    use smartwatch_snic::des::{simulate, DesConfig};
    use smartwatch_snic::hw::NETRONOME_100G;

    let pkts = workloads::caida_64b(Preset::Caida2018, ctx.scale, 2018).into_packets();
    let mut t = Table::new(
        "ablation-sampling",
        "Sampling vs lossless tracking (64 B stress, 90 Mpps offered)",
        &[
            "configuration",
            "achieved Mpps",
            "pkts in flow log",
            "coverage",
        ],
    );
    for (name, sampling, hw, pmes) in [
        (
            "40G, lossless",
            1.0f64,
            smartwatch_snic::NETRONOME_AGILIO_LX,
            80u32,
        ),
        (
            "40G, sample 1/2",
            0.5,
            smartwatch_snic::NETRONOME_AGILIO_LX,
            80,
        ),
        (
            "40G, sample 1/10",
            0.1,
            smartwatch_snic::NETRONOME_AGILIO_LX,
            80,
        ),
        ("100G (projected), lossless", 1.0, NETRONOME_100G, 120),
    ] {
        let mut fc = FlowCache::new(FlowCacheConfig::general(12));
        fc.set_mode(Mode::Lite);
        let mut cfg = DesConfig::netronome(90.0e6);
        cfg.hw = hw;
        cfg.pmes = pmes;
        cfg.sampling = sampling;
        let rep = simulate(&mut fc, &pkts, &cfg);
        let logged: u64 = fc.rings().drain().iter().map(|r| r.packets).sum::<u64>()
            + fc.drain_all().iter().map(|r| r.packets).sum::<u64>();
        t.row(vec![
            name.into(),
            f(rep.achieved_mpps(), 1),
            logged.to_string(),
            pct(logged as f64 / rep.completed.max(1) as f64),
        ]);
    }
    t.note("sampling raises throughput but punches holes in the flow log — no");
    t.note("per-packet state tracking; the 100G part keeps losslessness instead");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuckoo_tail_is_worse() {
        let t = ablation_cuckoo(&ExpCtx::new(1));
        let fc_p999: f64 = t.rows[0][3].parse().unwrap();
        let ck_p999: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            ck_p999 > fc_p999 * 1.5,
            "cuckoo tail {ck_p999} vs flowcache {fc_p999}"
        );
    }

    #[test]
    fn pinning_keeps_suspects_resident() {
        let t = ablation_pinning(&ExpCtx::new(1));
        let pinned: u32 = t.rows[0][1].split('/').next().unwrap().parse().unwrap();
        let unpinned: u32 = t.rows[1][1].split('/').next().unwrap().parse().unwrap();
        assert_eq!(pinned, 32, "all pinned suspects must survive");
        assert!(unpinned < 32, "unpinned suspects should churn out");
    }

    #[test]
    fn cleanup_packets_pay_more() {
        let t = ablation_cleanup(&ExpCtx::new(1));
        let clean_mean: f64 = t.rows[0][2].parse().unwrap();
        let plain_mean: f64 = t.rows[1][2].parse().unwrap();
        assert!(clean_mean > plain_mean, "{clean_mean} vs {plain_mean}");
        // And stays within the paper's per-row bound.
        assert!(clean_mean - plain_mean < 14.0, "cleanup overhead too large");
    }
}
