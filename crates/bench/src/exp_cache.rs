//! FlowCache experiments: Figs. 4b, 5, 6, 7 and Table 3.

use crate::output::{f, pct, Table};
use crate::workloads;
use crate::ExpCtx;
use smartwatch_host::HostCostModel;
use smartwatch_net::Packet;
use smartwatch_snic::des::{simulate, simulate_instrumented, DesConfig};
use smartwatch_snic::hw::ALL_PROFILES;
use smartwatch_snic::{CachePolicy, FlowCache, FlowCacheConfig, Mode};
use smartwatch_trace::background::Preset;

fn stress_trace(scale: usize) -> Vec<Packet> {
    workloads::caida_64b(Preset::Caida2018, scale, 2018).into_packets()
}

/// Row bits sized so the workload *contends* for rows, as the paper's
/// full-rate traces do against the 2^21-row table: the policy and
/// hit/miss structure only show up under contention.
const CONTENDED_ROW_BITS: u32 = 6;

/// Fig. 4b: FlowCache latency distribution, hits vs misses.
pub fn fig4(ctx: &ExpCtx) -> Table {
    let pkts = stress_trace(ctx.scale);
    let mut fc = FlowCache::new(FlowCacheConfig::general(CONTENDED_ROW_BITS));
    fc.attach_telemetry(&ctx.registry);
    // Measured below the saturation point so queueing does not swamp the
    // hit/miss service-time structure.
    let shard = ctx.tracer.shard("fig4");
    let rep = simulate_instrumented(
        &mut fc,
        &pkts,
        &DesConfig::netronome(25.0e6),
        Some(&ctx.registry),
        Some(&shard),
    );
    let mut t = Table::new(
        "fig4b",
        "FlowCache packet latency distribution (43 Mpps, 64 B)",
        &["class", "p50 (µs)", "p75 (µs)", "p99 (µs)", "mean (µs)"],
    );
    for (name, l) in [
        ("hit", rep.hit_latency),
        ("miss", rep.miss_latency),
        ("all", rep.latency),
    ] {
        t.row(vec![
            name.into(),
            f(l.p50_ns as f64 / 1e3, 2),
            f(l.p75_ns as f64 / 1e3, 2),
            f(l.p99_ns as f64 / 1e3, 2),
            f(l.mean_ns / 1e3, 2),
        ]);
    }
    t.note("paper Fig. 4b: hit latency strictly below miss latency");
    t.note(format!(
        "hit mean {:.2} µs < miss mean {:.2} µs: {}",
        rep.hit_latency.mean_ns / 1e3,
        rep.miss_latency.mean_ns / 1e3,
        rep.hit_latency.mean_ns < rep.miss_latency.mean_ns
    ));
    t
}

/// Fig. 5: eviction policies — hit/miss rates and latency percentiles.
pub fn fig5(ctx: &ExpCtx) -> Table {
    let pkts = stress_trace(ctx.scale);
    let rb = CONTENDED_ROW_BITS;
    let configs = [
        (
            "LRU (12,0)",
            FlowCacheConfig::flat(rb, 12, CachePolicy::LRU),
        ),
        (
            "LPC (12,0)",
            FlowCacheConfig::flat(rb, 12, CachePolicy::LPC),
        ),
        (
            "FIFO (4,8)",
            FlowCacheConfig::split(rb, 4, 8, CachePolicy::FIFO),
        ),
        (
            "LRU-LPC (4,8)",
            FlowCacheConfig::split(rb, 4, 8, CachePolicy::LRU_LPC),
        ),
    ];
    let mut t = Table::new(
        "fig5",
        "Eviction policies: hits/misses (5a) and latency (5b)",
        &[
            "policy",
            "hit rate",
            "hits @43Mpps",
            "miss @43Mpps",
            "p50 (µs)",
            "p75 (µs)",
            "p99 (µs)",
        ],
    );
    let mut best_hit = ("", 0.0f64);
    let shard = ctx.tracer.shard("fig5");
    let mut escalated = 0u64;
    let mut offered = 0u64;
    for (name, cfg) in configs {
        let policy = cfg.policy.label();
        let mut fc = FlowCache::new(cfg);
        fc.attach_telemetry(&ctx.registry);
        let rep = simulate_instrumented(
            &mut fc,
            &pkts,
            &DesConfig::netronome(43.0e6),
            Some(&ctx.registry),
            Some(&shard),
        );
        let s = fc.stats();
        // Escalation: the fraction of processed packets this policy
        // punted to the host (per-policy gauge plus the run-wide one the
        // control loop publishes when a full platform runs).
        ctx.registry
            .gauge("core.escalation_rate", &[("policy", &policy)])
            .set(s.to_host as f64 / s.processed().max(1) as f64);
        escalated += s.to_host;
        offered += s.processed();
        if s.hit_rate() > best_hit.1 {
            best_hit = (name, s.hit_rate());
        }
        // Fig. 5a expresses hits/misses as rates at the 43 Mpps offered
        // load: fraction of packets × offered rate.
        let total = s.processed().max(1) as f64;
        t.row(vec![
            name.into(),
            pct(s.hit_rate()),
            f((s.p_hits + s.e_hits) as f64 / total * 43.0, 1),
            f(s.misses as f64 / total * 43.0, 1),
            f(rep.latency.p50_ns as f64 / 1e3, 2),
            f(rep.latency.p75_ns as f64 / 1e3, 2),
            f(rep.latency.p99_ns as f64 / 1e3, 2),
        ]);
    }
    ctx.registry
        .gauge("core.escalation_rate", &[])
        .set(escalated as f64 / offered.max(1) as f64);
    t.note("paper Fig. 5: LRU-LPC (4,8) has the highest hit rate and lowest median latency");
    t.note(format!(
        "highest hit rate here: {} ({:.1}%)",
        best_hit.0,
        best_hit.1 * 100.0
    ));
    t
}

/// Fig. 6a: throughput vs FlowCache memory, General vs Lite geometries.
pub fn fig6a(ctx: &ExpCtx) -> Table {
    let pkts = stress_trace(ctx.scale);
    let mut t = Table::new(
        "fig6a",
        "Throughput vs FlowCache memory (achieved Mpps at 60 Mpps offered)",
        &["config", "3 MB", "12 MB", "48 MB", "192 MB"],
    );
    // Memory = 2^row_bits × 12 buckets × 64 B ⇒ row_bits 12,14,16,18.
    type MkConfig = Box<dyn Fn(u32) -> FlowCacheConfig>;
    let geometries: [(&str, MkConfig); 6] = [
        (
            "General (4,8)",
            Box::new(|rb| FlowCacheConfig::split(rb, 4, 8, CachePolicy::LRU_LPC)),
        ),
        (
            "General (6,6)",
            Box::new(|rb| FlowCacheConfig::split(rb, 6, 6, CachePolicy::LRU_LPC)),
        ),
        (
            "General (8,4)",
            Box::new(|rb| FlowCacheConfig::split(rb, 8, 4, CachePolicy::LRU_LPC)),
        ),
        ("Lite (1,0)", Box::new(|rb| lite_cfg(rb, 1))),
        ("Lite (2,0)", Box::new(|rb| lite_cfg(rb, 2))),
        ("Lite (4,0)", Box::new(|rb| lite_cfg(rb, 4))),
    ];
    let mut lite2_best = 0.0f64;
    let mut gen48_best = 0.0f64;
    for (name, mk) in &geometries {
        let mut cells = vec![name.to_string()];
        for rb in [12u32, 14, 16, 18] {
            let mut fc = FlowCache::new(mk(rb));
            if name.starts_with("Lite") {
                fc.set_mode(Mode::Lite);
            }
            let rep = simulate(&mut fc, &pkts, &DesConfig::netronome(60.0e6));
            let mpps = rep.achieved_mpps();
            if *name == "Lite (2,0)" {
                lite2_best = lite2_best.max(mpps);
            }
            if *name == "General (4,8)" {
                gen48_best = gen48_best.max(mpps);
            }
            cells.push(f(mpps, 1));
        }
        t.row(cells);
    }
    t.note(
        "paper Fig. 6a: Lite (1,0)/(2,0) reach near line-rate (~43 Mpps); General tops out near 30",
    );
    t.note(format!(
        "Lite(2,0) best {:.1} Mpps vs General(4,8) best {:.1} Mpps",
        lite2_best, gen48_best
    ));
    t
}

fn lite_cfg(row_bits: u32, lite_buckets: usize) -> FlowCacheConfig {
    FlowCacheConfig {
        lite_buckets,
        ..FlowCacheConfig::general(row_bits)
    }
}

/// Fig. 6b: throughput vs number of PMEs (71–80).
pub fn fig6b(ctx: &ExpCtx) -> Table {
    let pkts = stress_trace(ctx.scale);
    let mut t = Table::new(
        "fig6b",
        "Throughput vs #PME (achieved Mpps at 43 Mpps line rate)",
        &["config", "71", "74", "77", "80"],
    );
    let mut lite2_77 = 0.0f64;
    let mut lite2_80 = 0.0f64;
    for (name, mode, lite) in [
        ("General (4,8)", Mode::General, 2),
        ("Lite (1,0)", Mode::Lite, 1),
        ("Lite (2,0)", Mode::Lite, 2),
    ] {
        let mut cells = vec![name.to_string()];
        for pmes in [71u32, 74, 77, 80] {
            let mut fc = FlowCache::new(lite_cfg(14, lite));
            fc.set_mode(mode);
            let mut cfg = DesConfig::netronome(43.0e6);
            cfg.pmes = pmes;
            let rep = simulate(&mut fc, &pkts, &cfg);
            if name == "Lite (2,0)" && pmes == 77 {
                lite2_77 = rep.achieved_mpps();
            }
            if name == "Lite (2,0)" && pmes == 80 {
                lite2_80 = rep.achieved_mpps();
            }
            cells.push(f(rep.achieved_mpps(), 1));
        }
        t.row(cells);
    }
    t.note(format!(
        "paper Fig. 6b: dedicating 3 MEs as CMEs (80→77) costs no throughput at \
         line rate — Lite(2,0): {lite2_77:.1} vs {lite2_80:.1} Mpps"
    ));
    t
}

/// Fig. 7b: host snapshotting CPU time, General vs Lite (driven by the
/// eviction-rate difference).
pub fn fig7(ctx: &ExpCtx) -> Table {
    let pkts = stress_trace(ctx.scale);
    let host = HostCostModel::default();
    let mut t = Table::new(
        "fig7b",
        "Host snapshot-thread CPU time (scaled) vs FlowCache size",
        &["config", "384 KB", "1.5 MB", "6 MB", "evictions @1.5MB"],
    );
    let mut general_cpu_6mb = 0.0f64;
    let mut lite_cpu_6mb = 0.0f64;
    for (name, mode, lite) in [
        ("General (4,8)", Mode::General, 2),
        ("Lite (1,0)", Mode::Lite, 1),
        ("Lite (2,0)", Mode::Lite, 2),
    ] {
        let mut cells = vec![name.to_string()];
        let mut evict_6mb = 0u64;
        for rb in [9u32, 11, 13] {
            let mut fc = FlowCache::new(lite_cfg(rb, lite));
            fc.set_mode(mode);
            for p in &pkts {
                fc.process(p);
            }
            // The Fig. 7b metric is the host thread consuming *evicted*
            // records from the rings (snapshot batches are identical
            // across configurations and excluded to isolate the effect).
            let exported = fc.stats().evictions;
            let cpu = host.snapshot_cpu(exported.max(1));
            if rb == 11 {
                if name.starts_with("General") {
                    general_cpu_6mb = cpu.as_nanos() as f64;
                } else if name == "Lite (2,0)" {
                    lite_cpu_6mb = cpu.as_nanos() as f64;
                }
                evict_6mb = fc.stats().evictions;
            }
            cells.push(f(cpu.as_nanos() as f64 / 1e6, 2));
        }
        cells.push(evict_6mb.to_string());
        t.row(cells);
    }
    if general_cpu_6mb > 0.0 {
        t.note(format!(
            "Lite(2,0)/General(4,8) eviction-handling CPU ratio at 1.5 MB: {:.2}× \
             (paper: 2.08× from a 47% higher eviction rate)",
            lite_cpu_6mb / general_cpu_6mb
        ));
    }
    t.note("columns are host-thread CPU milliseconds per run at each cache size");
    t
}

/// Table 3: cross-sNIC throughput projection.
pub fn table3(ctx: &ExpCtx) -> Table {
    let pkts = stress_trace(ctx.scale);
    let mut t = Table::new(
        "table3",
        "Cross-sNIC throughput (64 B stress, Lite mode)",
        &[
            "sNIC",
            "cores",
            "clock (GHz)",
            "achieved Mpps",
            "paper Mpps",
        ],
    );
    let paper = [("BlueField", 40.7), ("LiquidIO", 42.2), ("Netronome", 43.0)];
    let mut measured = Vec::new();
    for (hw, (pname, ppaper)) in ALL_PROFILES.iter().zip(paper) {
        let mut fc = FlowCache::new(FlowCacheConfig::general(14));
        fc.set_mode(Mode::Lite);
        let mut cfg = DesConfig::netronome(60.0e6);
        cfg.hw = *hw;
        cfg.pmes = hw.cores;
        let rep = simulate(&mut fc, &pkts, &cfg);
        measured.push(rep.achieved_mpps());
        t.row(vec![
            pname.into(),
            hw.cores.to_string(),
            f(hw.clock_ghz, 1),
            f(rep.achieved_mpps(), 1),
            f(ppaper, 1),
        ]);
    }
    t.note(format!(
        "ordering Netronome ≥ LiquidIO ≥ BlueField holds: {}",
        measured[2] >= measured[1] && measured[1] >= measured[0]
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_hits_faster_than_misses() {
        let t = fig4(&ExpCtx::new(1));
        assert!(t.notes.iter().any(|n| n.ends_with("true")), "{:?}", t.notes);
    }

    #[test]
    fn fig5_lru_lpc_wins_hit_rate() {
        let t = fig5(&ExpCtx::new(1));
        assert!(
            t.notes
                .iter()
                .any(|n| n.contains("LRU-LPC") || n.contains("LRU (12,0)")),
            "{:?}",
            t.notes
        );
    }

    #[test]
    fn table3_ordering() {
        let t = table3(&ExpCtx::new(1));
        assert!(t.notes[0].ends_with("true"), "{:?}", t.notes);
    }
}
