//! `repro control` — the adaptive control-plane experiment.
//!
//! Two runs of the same rectangular overload spike ([`Pace::Spike`]):
//! one with the [`smartwatch_control`] feedback loop attached (Alg. 4
//! mode switching, steering snapshots, hysteretic load shedding) and a
//! baseline without it. The controlled run must conserve every packet
//! (shed and steer drops are named counters, never silent loss), record
//! a General→Lite flip during the spike in its timeline, recover
//! General afterwards, and sustain at least the baseline's throughput.
//!
//! `repro control-sim` is the deterministic sibling: the same
//! controller state machine driven through a synthetic load profile in
//! virtual time ([`smartwatch_control::simulate`]), whose counters-only
//! summary is byte-stable for a seed.

use crate::exp_engine::{replay_data, EngineSource};
use crate::output::Table;
use crate::{workloads, ExpCtx};
use serde::Serialize;
use smartwatch_control::{simulate, ControlConfig, DecisionRecord, LoadProfile};
use smartwatch_runtime::{ControlReport, Engine, EngineConfig, EngineReport, Pace};
use smartwatch_trace::background::Preset;
use smartwatch_trace::Trace;
use std::sync::Arc;

/// One `repro control` invocation, fully specified.
#[derive(Clone, Debug)]
pub struct ControlRunSpec {
    /// Worker shards (threads).
    pub shards: usize,
    /// RX dispatcher queues (threads) — the multi-queue NIC model.
    pub rx_queues: usize,
    /// Packets to replay (the workload is cycled to this length).
    pub packets: usize,
    /// Packets per dispatch batch.
    pub batch: usize,
    /// Offered rate outside the spike, Mpps (aggregate).
    pub base_mpps: f64,
    /// Offered rate inside the spike, Mpps (aggregate).
    pub peak_mpps: f64,
    /// Spike start as a fraction of the sequence, `0.0..1.0`.
    pub spike_start: f64,
    /// Spike end as a fraction of the sequence, `0.0..1.0`.
    pub spike_end: f64,
    /// Controller epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Replay source: synthetic packets, compiled wire frames or a
    /// pcap file (`--source`). Both the controlled run and the
    /// baseline replay the same source.
    pub source: EngineSource,
    /// Wall-clock trace sampling for the controlled run: 1-in-N batches
    /// per engine thread (0 = off).
    pub trace_sample: u64,
    /// Bind this address and serve the live observability endpoints for
    /// the duration of the controlled run.
    pub listen: Option<String>,
    /// Keep `--listen` endpoints up this long after the controlled run.
    pub serve_hold_ms: u64,
    /// Translate SIGINT/SIGTERM into a graceful drain of the controlled
    /// run (the `repro` driver sets this).
    pub watch_signals: bool,
}

impl Default for ControlRunSpec {
    fn default() -> ControlRunSpec {
        ControlRunSpec {
            shards: 2,
            rx_queues: 1,
            packets: 400_000,
            batch: 64,
            base_mpps: 0.2,
            peak_mpps: 2.0,
            spike_start: 0.2,
            spike_end: 0.8,
            epoch_ms: 2,
            source: EngineSource::Synthetic,
            trace_sample: 0,
            listen: None,
            serve_hold_ms: 0,
            watch_signals: false,
        }
    }
}

/// Derive a [`ControlConfig`] whose thresholds bracket the spec's
/// base/peak rates, so the spike reliably drives Lite (and shedding)
/// and the calm tail reliably recovers General — on any machine fast
/// enough to dispatch at `peak_mpps`.
pub fn control_config(spec: &ControlRunSpec) -> ControlConfig {
    assert!(
        spec.base_mpps < spec.peak_mpps,
        "spike must exceed the base rate"
    );
    let shards = spec.shards as f64;
    let mut c = ControlConfig::default();
    c.epoch_ms = spec.epoch_ms;
    // Per-shard Algorithm 4 thresholds: Lite above half the per-shard
    // spike rate, General below 3/4 of the per-shard base rate.
    c.eta_lite_mpps = 0.5 * spec.peak_mpps / shards;
    c.eta_general_mpps = (0.75 * spec.base_mpps / shards).min(0.5 * c.eta_lite_mpps);
    // Aggregate shed hysteresis: engage at 3/4 of peak, release at 2×
    // base (clamped below the engage threshold).
    c.shed_on_mpps = 0.75 * spec.peak_mpps;
    c.shed_off_mpps = (2.0 * spec.base_mpps).min(0.25 * c.shed_on_mpps);
    c.shed_sustain_epochs = 2;
    // A flow carrying ≥1/64 of the spike's per-epoch traffic is a heavy
    // hitter worth a whitelist slot (the default threshold is sized for
    // much longer epochs than bench time-scales).
    let spike_epoch_pkts = spec.peak_mpps * 1e6 * spec.epoch_ms as f64 / 1000.0;
    c.promote_pkts_per_epoch = (spike_epoch_pkts / 64.0).max(1.0) as u64;
    c
}

fn spike_pace(spec: &ControlRunSpec) -> Pace {
    Pace::Spike {
        base_mpps: spec.base_mpps,
        peak_mpps: spec.peak_mpps,
        spike_start: spec.spike_start,
        spike_end: spec.spike_end,
    }
}

fn control_base_trace(scale: usize) -> Trace {
    workloads::caida_64b(Preset::Caida2018, scale, 0xC7)
}

/// Both runs of the experiment, for machine-readable output.
pub struct ControlOutcome {
    /// The run with the controller attached (carries `control`).
    pub controlled: EngineReport,
    /// The identical spike without a controller.
    pub baseline: EngineReport,
}

/// Run the control experiment once and render the report.
pub fn control_run(ctx: &ExpCtx, spec: &ControlRunSpec) -> Table {
    control_run_report(ctx, spec).0
}

/// [`control_run`], also handing back both raw reports for
/// machine-readable output ([`bench_json`], CI artifacts).
pub fn control_run_report(ctx: &ExpCtx, spec: &ControlRunSpec) -> (Table, ControlOutcome) {
    let (table, outcome, _) = control_run_full(ctx, spec);
    (table, outcome)
}

/// [`control_run_report`], also handing back the controlled [`Engine`]
/// so callers can dump its flight recorder (mode switches, shed edges)
/// after the run.
pub fn control_run_full(
    ctx: &ExpCtx,
    spec: &ControlRunSpec,
) -> (Table, ControlOutcome, Arc<Engine>) {
    let replay = replay_data(&spec.source, || control_base_trace(ctx.scale), spec.packets);
    let pace = spike_pace(spec);

    let mut cfg = EngineConfig::new(spec.shards);
    cfg.rx_queues = spec.rx_queues;
    cfg.batch = spec.batch;
    cfg.trace_sample = spec.trace_sample;
    let mut engine = Engine::with_registry(cfg.with_control(control_config(spec)), &ctx.registry);
    engine.attach_tracer(&ctx.tracer);
    let engine = Arc::new(engine);
    let _signals = spec
        .watch_signals
        .then(|| crate::signal::drain_watch(&engine));
    let controlled = crate::exp_engine::serve_during(
        &engine,
        spec.listen.as_deref(),
        spec.serve_hold_ms,
        || replay.run(&engine, pace),
    );

    // Baseline: same spike, no controller, private registry so the two
    // runs' counters don't mix in `--metrics-json`.
    let mut base_cfg = EngineConfig::new(spec.shards);
    base_cfg.rx_queues = spec.rx_queues;
    base_cfg.batch = spec.batch;
    let baseline = replay.run(&Engine::new(base_cfg), pace);

    let outcome = ControlOutcome {
        controlled,
        baseline,
    };
    (render(spec, &outcome), outcome, engine)
}

/// One engine run's headline numbers in the bench artifact.
#[derive(Debug, Serialize)]
struct RunJson {
    offered: u64,
    processed: u64,
    ingest_dropped: u64,
    shed: u64,
    steer_dropped: u64,
    drop_pct: f64,
    mpps: f64,
    handled_mpps: f64,
    conserved: bool,
}

/// Disposal rate: packets per second the pipeline *kept up with* —
/// processed plus deliberately dropped with accounting (shed, steering
/// blacklist). Uncontrolled ingest overruns are excluded: those are the
/// packets the system failed to keep up with.
fn handled_mpps(r: &EngineReport) -> f64 {
    let secs = r.elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        (r.processed() + r.shed() + r.steer_dropped()) as f64 / secs / 1e6
    }
}

impl RunJson {
    fn from(r: &EngineReport) -> RunJson {
        RunJson {
            offered: r.offered,
            processed: r.processed(),
            ingest_dropped: r.ingest_dropped(),
            shed: r.shed(),
            steer_dropped: r.steer_dropped(),
            drop_pct: r.drop_rate() * 100.0,
            mpps: r.mpps(),
            handled_mpps: handled_mpps(r),
            conserved: r.conserved(),
        }
    }
}

/// One timeline entry: the epoch it happened in plus the rendered event.
#[derive(Debug, Serialize)]
struct TimelineJson {
    epoch: u64,
    event: String,
}

/// One per-epoch controller decision in the bench artifact: the inputs
/// the controller saw and every output it decided (mirrors
/// [`DecisionRecord`]).
#[derive(Debug, Serialize)]
struct DecisionJson {
    epoch: u64,
    offered_mpps: f64,
    smoothed_mpps: Vec<f64>,
    max_backlog: u64,
    modes: Vec<String>,
    shed: bool,
    promotions: u64,
    whitelist_evictions: u64,
    whitelist_len: u64,
    blacklist_len: u64,
    snapshot_published: bool,
}

impl DecisionJson {
    fn from(d: &DecisionRecord) -> DecisionJson {
        DecisionJson {
            epoch: d.epoch,
            offered_mpps: d.offered_mpps,
            smoothed_mpps: d.smoothed_mpps.clone(),
            max_backlog: d.max_backlog,
            modes: d.modes.iter().map(|m| m.label().to_string()).collect(),
            shed: d.shed,
            promotions: d.promotions,
            whitelist_evictions: d.whitelist_evictions,
            whitelist_len: d.whitelist_len as u64,
            blacklist_len: d.blacklist_len as u64,
            snapshot_published: d.snapshot_published,
        }
    }
}

/// The controller's side of the artifact (mirrors [`ControlReport`]).
#[derive(Debug, Serialize)]
struct CtrlJson {
    epochs: u64,
    mode_switches: u64,
    whitelist_promotions: u64,
    whitelist_expired: u64,
    blacklist_expired: u64,
    shed_epochs: u64,
    shed_packets: u64,
    snapshot_publishes: u64,
    shed_active: bool,
    final_modes: Vec<String>,
    timeline: Vec<TimelineJson>,
    timeline_dropped: u64,
    decisions: Vec<DecisionJson>,
    decisions_dropped: u64,
}

impl CtrlJson {
    fn from(c: &ControlReport) -> CtrlJson {
        CtrlJson {
            epochs: c.epochs,
            mode_switches: c.mode_switches,
            whitelist_promotions: c.whitelist_promotions,
            whitelist_expired: c.whitelist_expired,
            blacklist_expired: c.blacklist_expired,
            shed_epochs: c.shed_epochs,
            shed_packets: c.shed_packets,
            snapshot_publishes: c.snapshot_publishes,
            shed_active: c.shed_active,
            final_modes: c
                .final_modes
                .iter()
                .map(|m| m.label().to_string())
                .collect(),
            timeline: c
                .timeline
                .iter()
                .map(|e| TimelineJson {
                    epoch: e.epoch(),
                    event: e.render(),
                })
                .collect(),
            timeline_dropped: c.timeline_dropped,
            decisions: c.decisions.iter().map(DecisionJson::from).collect(),
            decisions_dropped: c.decisions_dropped,
        }
    }
}

/// The `BENCH_control.json` schema (field order = emission order).
#[derive(Debug, Serialize)]
struct ControlBenchJson {
    bench: String,
    shards: usize,
    rx_queues: usize,
    packets: usize,
    batch: usize,
    source: String,
    base_mpps: f64,
    peak_mpps: f64,
    spike_start: f64,
    spike_end: f64,
    epoch_ms: u64,
    controlled: RunJson,
    control: CtrlJson,
    baseline: RunJson,
    handled_ratio: f64,
}

/// The CI benchmark artifact (`BENCH_control.json`): both runs'
/// headline numbers plus the full mode/shed timeline, so CI can assert
/// the spike actually flipped shards Lite and back without parsing the
/// rendered table.
pub fn bench_json(spec: &ControlRunSpec, o: &ControlOutcome) -> String {
    let ctrl = o
        .controlled
        .control
        .as_ref()
        .expect("controlled run carries a ControlReport");
    let v = ControlBenchJson {
        bench: "control".to_string(),
        shards: spec.shards,
        rx_queues: spec.rx_queues,
        packets: spec.packets,
        batch: spec.batch,
        source: spec.source.label().to_string(),
        base_mpps: spec.base_mpps,
        peak_mpps: spec.peak_mpps,
        spike_start: spec.spike_start,
        spike_end: spec.spike_end,
        epoch_ms: spec.epoch_ms,
        controlled: RunJson::from(&o.controlled),
        control: CtrlJson::from(ctrl),
        baseline: RunJson::from(&o.baseline),
        handled_ratio: handled_mpps(&o.controlled)
            / handled_mpps(&o.baseline).max(f64::MIN_POSITIVE),
    };
    serde_json::to_string_pretty(&v).expect("bench report serializes")
}

fn run_row(name: &str, r: &EngineReport) -> Vec<String> {
    vec![
        name.to_string(),
        r.offered.to_string(),
        r.processed().to_string(),
        r.shed().to_string(),
        r.steer_dropped().to_string(),
        r.ingest_dropped().to_string(),
        format!("{:.2}", r.drop_rate() * 100.0),
        format!("{:.3}", r.mpps()),
        format!("{:.3}", handled_mpps(r)),
    ]
}

fn render(spec: &ControlRunSpec, o: &ControlOutcome) -> Table {
    let ctrl = o
        .controlled
        .control
        .as_ref()
        .expect("controlled run carries a ControlReport");
    let mut t = Table::new(
        "control",
        "adaptive control plane under a rectangular overload spike",
        &[
            "run",
            "offered",
            "processed",
            "shed",
            "steer_drop",
            "ingest_drop",
            "drop%",
            "Mpps",
            "handled",
        ],
    );
    t.row(run_row("controlled", &o.controlled));
    t.row(run_row("baseline", &o.baseline));
    t.note(format!(
        "spike: {} → {} Mpps over [{:.0}%, {:.0}%) of {} pkts ({} source); \
         controller epoch {} ms; {} RX queue(s)",
        spec.base_mpps,
        spec.peak_mpps,
        spec.spike_start * 100.0,
        spec.spike_end * 100.0,
        spec.packets,
        spec.source.label(),
        spec.epoch_ms,
        spec.rx_queues,
    ));
    t.note(format!(
        "controller: {} epochs, {} mode switches, {} shed epochs ({} pkts shed), \
         {} promotions, final modes [{}]",
        ctrl.epochs,
        ctrl.mode_switches,
        ctrl.shed_epochs,
        ctrl.shed_packets,
        ctrl.whitelist_promotions,
        ctrl.final_modes
            .iter()
            .map(|m| m.label())
            .collect::<Vec<_>>()
            .join(","),
    ));
    let shown = ctrl.timeline.len().min(12);
    let mut timeline: Vec<String> = ctrl.timeline[..shown].iter().map(|e| e.render()).collect();
    if ctrl.timeline.len() > shown {
        timeline.push(format!("… +{} more", ctrl.timeline.len() - shown));
    }
    t.note(format!("mode timeline: {}", timeline.join(" ; ")));
    t.note(format!(
        "conservation: controlled {} | baseline {} (offered = processed + named drops)",
        if o.controlled.conserved() {
            "OK"
        } else {
            "VIOLATED"
        },
        if o.baseline.conserved() {
            "OK"
        } else {
            "VIOLATED"
        },
    ));
    t.note(
        "`handled` = (processed + shed + steer_drop) / s — the rate the \
         pipeline kept up with offered load; ingest_drop is the loss it \
         did not keep up with (RX ring overruns)",
    );
    t.note(
        "wall-clock numbers — machine- and load-dependent; `control-sim` is \
         the deterministic virtual-time drive of the same state machine",
    );
    t
}

/// `repro control-sim` — the deterministic controller drive: default
/// [`LoadProfile`] (4 shards, 120 × 5 ms epochs, 1 → 12 Mpps spike)
/// through the default [`ControlConfig`] in virtual time. Byte-stable
/// for a seed; the determinism tests pin the summary.
pub fn control_sim(_ctx: &ExpCtx) -> Table {
    let profile = LoadProfile::default();
    let out = simulate(ControlConfig::default(), &profile);
    let r = &out.report;
    let mut t = Table::new(
        "control-sim",
        "deterministic controller drive (virtual time, synthetic spike)",
        &["metric", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("epochs", r.epochs.to_string()),
        ("all_lite_epochs", out.lite_epochs.to_string()),
        ("mode_switches", r.mode_switches.to_string()),
        ("whitelist_promotions", r.whitelist_promotions.to_string()),
        ("whitelist_expired", r.whitelist_expired.to_string()),
        ("blacklist_expired", r.blacklist_expired.to_string()),
        ("shed_epochs", r.shed_epochs.to_string()),
        ("shed_packets", r.shed_packets.to_string()),
        ("snapshot_publishes", r.snapshot_publishes.to_string()),
        (
            "final_modes",
            r.final_modes
                .iter()
                .map(|m| m.label())
                .collect::<Vec<_>>()
                .join(","),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t.note(format!(
        "profile: {} shards, {} epochs × {} s, {} → {} Mpps spike over epochs [{}, {})",
        profile.shards,
        profile.epochs,
        profile.epoch_secs,
        profile.base_mpps,
        profile.peak_mpps,
        profile.spike_start,
        profile.spike_end,
    ));
    t.note(
        "deterministic for the profile seed: two identical runs render \
         byte-identical tables and counters-only summaries",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_snic::Mode;

    fn small_spec() -> ControlRunSpec {
        ControlRunSpec {
            packets: 100_000,
            ..ControlRunSpec::default()
        }
    }

    #[test]
    fn control_experiment_conserves_and_flips_lite() {
        let ctx = ExpCtx::new(1);
        let (t, o) = control_run_report(&ctx, &small_spec());
        assert_eq!(t.rows.len(), 2);
        assert!(t
            .notes
            .iter()
            .any(|n| n.contains("conservation: controlled OK | baseline OK")));
        let ctrl = o.controlled.control.as_ref().expect("controller ran");
        assert!(
            ctrl.mode_switches >= 2,
            "spike then recovery implies flips both ways"
        );
        assert!(ctrl.final_modes.iter().all(|&m| m == Mode::General));
        // The run published control metrics into the shared registry.
        let snap = ctx.registry.snapshot();
        assert!(snap.counter("control.epochs").unwrap_or(0) > 0);
    }

    #[test]
    fn bench_json_carries_timeline_and_both_runs() {
        let ctx = ExpCtx::new(1);
        let spec = small_spec();
        let (_, o) = control_run_report(&ctx, &spec);
        let json = bench_json(&spec, &o);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let field = |k: &str| v.get(k).unwrap_or_else(|| panic!("missing field {k}"));
        assert_eq!(field("bench").as_str(), Some("control"));
        assert_eq!(
            field("controlled")
                .get("conserved")
                .and_then(|x| x.as_bool()),
            Some(true)
        );
        assert_eq!(
            field("baseline").get("conserved").and_then(|x| x.as_bool()),
            Some(true)
        );
        let timeline = field("control")
            .get("timeline")
            .and_then(|x| x.as_array())
            .expect("timeline array");
        assert!(
            timeline
                .iter()
                .any(|e| e["event"].as_str().unwrap_or("").contains("lite")),
            "timeline must record a General→Lite flip: {timeline:?}"
        );
        // The controller must keep up with offered load at least as
        // well as the uncontrolled baseline (the Lite + shed fast path
        // is cheaper than falling behind into RX overruns).
        assert!(field("handled_ratio").as_f64().expect("ratio") > 0.9);
    }

    #[test]
    fn control_sim_table_is_deterministic() {
        let ctx = ExpCtx::new(1);
        let a = control_sim(&ctx).render();
        let b = control_sim(&ctx).render();
        assert_eq!(a, b, "virtual-time drive must be reproducible");
        assert!(a.contains("mode_switches"));
    }
}
