//! Covert-channel experiments: Fig. 9a (timing-channel ROC vs switch
//! memory) and Fig. 9b (website fingerprinting accuracy vs switch SRAM).

use crate::output::{f, pct, Table};
use crate::ExpCtx;
use smartwatch_detect::covert::{bimodality, CovertChannelDetector, IpdCollector};
use smartwatch_detect::wfp::{PldCollector, WfpClassifier};
use smartwatch_net::{AttackKind, Dur, FlowKey, Label, Ts};
use smartwatch_p4sim::{Feature, FlowLens, NetWarden, SramBudget};
use smartwatch_trace::attacks::covert::{covert_timing, CovertConfig};
use smartwatch_trace::attacks::wfp::{page_loads, WfpConfig};
use std::collections::{HashMap, HashSet};

/// Fig. 9a: covert timing-channel detection across platform variants,
/// memory configurations and modulation depths. The paper's ROC family
/// collapses here to TPR/FPR at a fixed KS threshold per depth, plus the
/// switch-SRAM cost of each variant.
pub fn fig9a(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    let mut t = Table::new(
        "fig9a",
        "Covert timing-channel detection vs switch memory and modulation depth",
        &[
            "platform",
            "SRAM (KB)",
            "depth 10µs TPR/FPR",
            "16µs TPR/FPR",
            "48µs TPR/FPR",
        ],
    );
    // platform → (sram, per-depth (tpr, fpr))
    type TprFpr = (f64, f64);
    let mut results: Vec<(String, usize, Vec<TprFpr>)> = Vec::new();
    let depths = [10u64, 16, 48];
    for &depth_us in &depths {
        let cfg = CovertConfig::with_depth(Dur::from_micros(depth_us), (800 * scale) as u32, 0x9A);
        let trace = covert_timing(&cfg);
        let modulated: HashSet<FlowKey> = trace
            .labelled_flows(AttackKind::CovertTimingChannel)
            .into_iter()
            .collect();
        let n_benign = cfg.flows as usize - modulated.len();

        // Benign KS reference, trained offline on known-good flows.
        let mut trainer = IpdCollector::paper_default();
        for p in trace.iter().filter(|p| p.label.is_benign()).take(120_000) {
            trainer.on_packet(p);
        }
        let benign_hists: Vec<Vec<u64>> = trainer.readout().into_iter().map(|(_, h)| h).collect();
        let detector = CovertChannelDetector::train(&benign_hists, 0.25);

        let mut score = |name: &str, sram: usize, tp: usize, fp: usize| {
            let tpr = tp as f64 / modulated.len().max(1) as f64;
            let fpr = fp as f64 / n_benign.max(1) as f64;
            match results.iter_mut().find(|(n, _, _)| n == name) {
                Some((_, _, v)) => v.push((tpr, fpr)),
                None => results.push((name.to_string(), sram, vec![(tpr, fpr)])),
            }
        };

        // Standalone FlowLens at high (QL0) / low (QL3) switch memory.
        for (name, ql) in [("FlowLens high-mem", 0u8), ("FlowLens low-mem", 3u8)] {
            let mut fl = FlowLens::new(Feature::IpdMicros(128), ql, 1 << 20);
            for p in trace.iter() {
                fl.on_packet(p);
            }
            let sram = fl.sram_bytes();
            // Window: ±8 µs of benign jitter expressed in this QL's bins.
            let window = (8usize >> ql).max(1);
            let (mut tp, mut fp) = (0usize, 0usize);
            for (flow, marker) in fl.readout() {
                if marker.packets < 50 {
                    continue;
                }
                let h: Vec<u64> = marker.bins.iter().map(|&v| u64::from(v)).collect();
                if bimodality(&h, window) > 0.25 {
                    if modulated.contains(&flow) {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            }
            score(name, sram, tp, fp);
        }

        // SmartWatch_NetWarden: small switch sketches run a range
        // pre-check on the "ones" delay band; flagged flows get sNIC
        // fine bins + the CME KS test. Standalone NetWarden stops at the
        // pre-check.
        for standalone in [false, true] {
            let name = if standalone {
                "NetWarden low-mem (standalone)"
            } else {
                "SmartWatch-NetWarden"
            };
            let mut nw = NetWarden::with_memory(32 << 10, 128, 1);
            nw.set_precheck_band(
                (cfg.one_gap.as_micros() as u32).saturating_sub(3),
                cfg.one_gap.as_micros() as u32 + 20,
                0.30,
            );
            let mut snic_bins = IpdCollector::paper_default();
            let mut steered: HashSet<FlowKey> = HashSet::new();
            for p in trace.iter() {
                if nw.on_packet(p) {
                    steered.insert(p.key.canonical().0);
                }
                if !standalone && steered.contains(&p.key.canonical().0) {
                    snic_bins.on_packet(p);
                }
            }
            let (mut tp, mut fp) = (0usize, 0usize);
            if standalone {
                for flow in &steered {
                    if modulated.contains(flow) {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            } else {
                for (flow, hist) in snic_bins.readout() {
                    if detector.classify(flow, &hist, Ts::ZERO).is_some() {
                        if modulated.contains(&flow) {
                            tp += 1;
                        } else {
                            fp += 1;
                        }
                    }
                }
            }
            score(name, nw.sram_bytes(), tp, fp);
        }
    }

    let fmt_pair = |(tpr, fpr): (f64, f64)| format!("{}/{}", pct(tpr), pct(fpr));
    let mut sw_sram = 0usize;
    let mut fl_sram = 0usize;
    let mut sw_deep = 0.0;
    let mut fl_deep = 0.0;
    for (name, sram, per_depth) in &results {
        if name == "SmartWatch-NetWarden" {
            sw_sram = *sram;
            sw_deep = per_depth.last().map(|p| p.0).unwrap_or(0.0);
        }
        if name == "FlowLens high-mem" {
            fl_sram = *sram;
            fl_deep = per_depth.last().map(|p| p.0).unwrap_or(0.0);
        }
        let mut row = vec![name.clone(), f(*sram as f64 / 1024.0, 1)];
        row.extend(per_depth.iter().map(|p| fmt_pair(*p)));
        t.row(row);
    }
    t.note(format!(
        "SmartWatch matches the high-memory baseline at depth 48µs ({} vs {}) with \
         {:.1}× less switch SRAM (paper: ~8×)",
        pct(sw_deep),
        pct(fl_deep),
        fl_sram as f64 / sw_sram.max(1) as f64
    ));
    t.note(
        "modulation depth separates the variants: at 16µs the sNIC's 1µs bins still \
         resolve the channel while the quantized low-memory switch marker cannot; \
         ~10µs hides inside benign jitter for every honest detector",
    );
    t
}

/// Fig. 9b: website fingerprinting accuracy vs P4Switch SRAM occupancy.
pub fn fig9b(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    let sites = 12u32;
    let train_cfg = WfpConfig::new(sites, (10 * scale) as u32, 0x9B1);
    let test_cfg = WfpConfig::new(sites, (6 * scale) as u32, 0x9B2);
    let budget = SramBudget::default().total() as f64;

    // Feature extraction at a given FlowLens quantization+capacity; QL 255
    // means "SmartWatch": full-resolution PLDs collected on the sNIC, the
    // switch only holding the (tiny) steering state.
    // Returns (labelled features, switch SRAM, total labelled loads): loads
    // the structure could not track still count against accuracy.
    let features =
        |cfg: &WfpConfig, ql: u8, max_flows: usize| -> (Vec<(usize, Vec<u64>)>, usize, usize) {
            let trace = page_loads(cfg);
            let mut site_of: HashMap<FlowKey, usize> = HashMap::new();
            for p in trace.iter() {
                if let Label::Attack {
                    kind: AttackKind::WebsiteFingerprint,
                    instance,
                } = p.label
                {
                    site_of.insert(p.key.canonical().0, instance as usize);
                }
            }
            let total_loads = site_of.len();
            if ql == 255 {
                let mut c = PldCollector::new(cfg.proxy_port);
                for p in trace.iter() {
                    c.on_packet(p);
                }
                let out: Vec<(usize, Vec<u64>)> = c
                    .readout()
                    .into_iter()
                    .filter_map(|(k, f)| site_of.get(&k).map(|s| (*s, f)))
                    .collect();
                // Switch state: one steer rule + per-flow pre-check registers.
                (out, 16 + site_of.len() * 16, total_loads)
            } else {
                let mut fl = FlowLens::new(Feature::Pld, ql, max_flows);
                for p in trace.iter() {
                    fl.on_packet(p);
                }
                let sram = fl.sram_bytes();
                let out: Vec<(usize, Vec<u64>)> = fl
                    .readout()
                    .into_iter()
                    .filter_map(|(k, m)| {
                        site_of.get(&k).map(|s| {
                            // Re-bin the quantized marker onto the classifier's
                            // 30×2 feature layout (out-direction unavailable on
                            // the switch: single histogram doubled).
                            let mut feat = vec![0u64; 60];
                            for (i, v) in m.bins.iter().enumerate() {
                                let len = (i << ql) as u16;
                                let bin = usize::from(len / 50).min(29);
                                feat[30 + bin] += u64::from(*v);
                            }
                            (*s, feat)
                        })
                    })
                    .collect();
                (out, sram, total_loads)
            }
        };

    let mut t = Table::new(
        "fig9b",
        "Website fingerprinting accuracy vs switch SRAM",
        &["platform", "SRAM (KB)", "SRAM (% budget)", "accuracy"],
    );
    let mut results = Vec::new();
    for (name, ql, max_flows) in [
        ("SmartWatch (sNIC full PLD)", 255u8, usize::MAX),
        ("FlowLens QL0 (high mem)", 0, 1 << 20),
        ("FlowLens QL3 (low mem)", 3, 1 << 20),
        ("FlowLens QL5 (starved)", 5, 24),
    ] {
        let (train, _, _) = features(&train_cfg, ql, max_flows);
        let (test, sram, total_loads) = features(&test_cfg, ql, max_flows);
        let clf = WfpClassifier::train(sites as usize, &train);
        // Untracked loads (capacity overflow) count as misclassified.
        let correct = test
            .iter()
            .filter(|(site, feat)| clf.classify(feat) == *site)
            .count();
        let acc = correct as f64 / total_loads.max(1) as f64;
        results.push((name, sram, acc));
        t.row(vec![
            name.into(),
            f(sram as f64 / 1024.0, 1),
            pct(sram as f64 / budget),
            pct(acc),
        ]);
    }
    t.note("paper Fig. 9b: SmartWatch reaches >90% accuracy at ~14% of the SRAM the");
    t.note("standalone switch baselines need (~30%); starved configurations collapse");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_smartwatch_uses_less_sram_with_comparable_tpr() {
        let t = fig9a(&ExpCtx::new(1));
        let find = |name: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| {
                    let deep_tpr: f64 = r[4]
                        .split('/')
                        .next()
                        .unwrap()
                        .trim_end_matches('%')
                        .parse()
                        .unwrap();
                    (r[1].parse::<f64>().unwrap(), deep_tpr)
                })
                .unwrap()
        };
        let (sw_sram, sw_tpr) = find("SmartWatch-NetWarden");
        let (fl_sram, fl_tpr) = find("FlowLens high-mem");
        assert!(sw_sram * 3.0 < fl_sram, "{sw_sram} vs {fl_sram}");
        assert!(sw_tpr >= fl_tpr - 10.0, "sw {sw_tpr}% vs fl {fl_tpr}%");
        assert!(sw_tpr > 80.0, "sw tpr {sw_tpr}");
    }

    #[test]
    fn fig9b_smartwatch_accuracy_with_tiny_switch_state() {
        let t = fig9b(&ExpCtx::new(1));
        let sw_acc: f64 = t.rows[0][3].trim_end_matches('%').parse().unwrap();
        let starved_acc: f64 = t.rows[3][3].trim_end_matches('%').parse().unwrap();
        assert!(sw_acc > 70.0, "SmartWatch accuracy {sw_acc}");
        assert!(sw_acc > starved_acc, "starved config should trail");
    }
}
