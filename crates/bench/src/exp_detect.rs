//! Detection experiments: Fig. 8 (SSH latency, RST buffering, port-scan
//! rate vs delay), Table 2 (resource summary) and Table 4 (detection rate
//! relative to host).

use crate::output::{f, pct, Table};
use crate::workloads;
use crate::ExpCtx;
use smartwatch_core::deploy::DeployMode;
use smartwatch_core::eval::{detection_rate, GroundTruth};
use smartwatch_core::platform::{standard_queries, PlatformConfig, SmartWatch};
use smartwatch_detect::rst::{ForgedRstDetector, RstEvent};
use smartwatch_net::{AttackKind, Dur, Ts};
use smartwatch_trace::attacks::auth::{benign_logins, bruteforce, BruteforceConfig};
use smartwatch_trace::attacks::portscan::{portscan, ScanConfig};
use smartwatch_trace::attacks::rst::{forged_rst, ForgedRstConfig};
use smartwatch_trace::background::{preset_trace, Preset};
use smartwatch_trace::Trace;

/// Fig. 8a: SSH packet processing latency, SmartWatch vs baseline Zeek.
pub fn fig8a(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    let server = smartwatch_trace::attacks::victim_ip(0);
    let bg = preset_trace(Preset::Caida2018, 400 * scale, Dur::from_secs(6), 0x8A);
    let mut campaign = BruteforceConfig::ssh(server, Ts::from_millis(300), 0x8A);
    campaign.attempt_gap = Dur::from_millis(500);
    campaign.final_success = true;
    let benign = benign_logins(server, 22, 15, Ts::from_millis(100), 0x8A);
    let trace = Trace::merge([bg, bruteforce(&campaign), benign]);

    let mut t = Table::new(
        "fig8a",
        "SSH session handling: SmartWatch vs host-based Zeek",
        &[
            "deployment",
            "mean latency (µs)",
            "host pkts",
            "whitelisted flows",
        ],
    );
    let mut latencies = Vec::new();
    for mode in [
        DeployMode::SmartWatch,
        DeployMode::SnicHost,
        DeployMode::HostOnly,
    ] {
        let rep =
            SmartWatch::new(PlatformConfig::new(mode), standard_queries()).run(trace.packets());
        latencies.push(rep.metrics.mean_latency_ns());
        t.row(vec![
            mode.name().into(),
            f(rep.metrics.mean_latency_ns() / 1e3, 2),
            rep.metrics.host_processed.to_string(),
            rep.whitelist_entries.to_string(),
        ]);
    }
    // The paper's "reduce latency by 72.32%" compares the sNIC+host
    // partitioning against everything-on-the-host over the same traffic.
    // (The full-SmartWatch row monitors only the suspicious subset, which
    // is dominated by pre-authentication host escalations — its mean is
    // over a different, far smaller population.)
    let reduction = 1.0 - latencies[1] / latencies[2];
    t.note(format!(
        "sNIC-offload latency reduction vs host-only: {:.1}% (paper: 72.32% overall, 77% for SSH)",
        reduction * 100.0
    ));
    t
}

/// Fig. 8b: forged-RST buffering — Bloom fast-path share and wheel cost
/// as the horizon T grows.
pub fn fig8b(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    let mut t = Table::new(
        "fig8b",
        "RST buffering: fast-path share and buffered population vs T",
        &["T (s)", "RSTs", "fast path", "max buffered", "forged found"],
    );
    for t_secs in [1u64, 2, 4] {
        let trace = Trace::merge([
            preset_trace(Preset::Caida2018, 300 * scale, Dur::from_secs(6), 0x8B),
            forged_rst(&ForgedRstConfig {
                seed: 0x8B,
                forged_victims: 25,
                genuine_rsts: 50,
                race_gap: Dur::from_millis(30),
                rst_retransmit_fraction: 0.3,
                start: Ts::from_millis(100),
            }),
        ]);
        let mut det = ForgedRstDetector::new(Dur::from_secs(t_secs));
        let mut forged = 0u64;
        let mut max_buffered = 0usize;
        for p in trace.iter() {
            for ev in det.on_packet(p) {
                if matches!(ev, RstEvent::ForgedDetected(_)) {
                    forged += 1;
                }
            }
            max_buffered = max_buffered.max(det.buffered());
        }
        let total_rsts = det.fast_path + det.slow_path;
        t.row(vec![
            t_secs.to_string(),
            total_rsts.to_string(),
            pct(det.fast_path as f64 / total_rsts.max(1) as f64),
            max_buffered.to_string(),
            forged.to_string(),
        ]);
    }
    t.note("paper Fig. 8b: larger T ⇒ more RSTs buffered concurrently ⇒ costlier scans;");
    t.note("the Bloom filter keeps most RSTs on the fast path (paper: 69.7%)");
    t
}

/// Fig. 8c: port-scan detection rate vs scan delay, SmartWatch vs
/// standalone P4Switch.
pub fn fig8c(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    let mut t = Table::new(
        "fig8c",
        "Port-scan detection rate vs scan delay",
        &["delay (ms)", "SmartWatch", "P4Switch"],
    );
    let mut sw_slowest = 0.0;
    let mut p4_slowest = 0.0;
    for delay_ms in [5u64, 10, 1_000, 15_000, 300_000] {
        // Probe count scales down with delay (NMAP sweeps take as long as
        // they take); every campaign spans multiple monitoring intervals.
        let probes = (6_000 / delay_ms).clamp(60, 1_200) as u32;
        let bg_secs = (delay_ms * 60 / 1_000).clamp(6, 90);
        // Rate-constant background: the DC link stays busy for the whole
        // campaign, keeping its server subnets steered (which is what
        // lets the sNIC see a paranoid scanner's sparse probes at all).
        let bg = preset_trace(
            Preset::WisconsinDc,
            (100 * bg_secs as usize) * scale,
            Dur::from_secs(bg_secs),
            0x8C,
        );
        let scan = portscan(&ScanConfig {
            scanner: 32,
            ..ScanConfig::with_delay(Dur::from_millis(delay_ms), probes, 0x8C)
        });
        let trace = Trace::merge([bg, scan]);
        let truth = GroundTruth::from_packets(trace.packets());
        let rate = |mode| {
            let rep =
                SmartWatch::new(PlatformConfig::new(mode), standard_queries()).run(trace.packets());
            detection_rate(&rep, &truth, AttackKind::StealthyPortScan).unwrap_or(0.0)
        };
        let sw = rate(DeployMode::SmartWatch);
        let p4 = rate(DeployMode::SwitchHost);
        if delay_ms == 300_000 {
            sw_slowest = sw;
            p4_slowest = p4;
        }
        t.row(vec![delay_ms.to_string(), pct(sw), pct(p4)]);
    }
    t.note(format!(
        "paper Fig. 8c: SmartWatch keeps detecting paranoid scans; switch queries fade \
         (at 300 s delay: SmartWatch {} vs P4Switch {})",
        pct(sw_slowest),
        pct(p4_slowest)
    ));
    t
}

/// Table 2: per-detector resource summary. Cycle shares are *derived*:
/// FlowCache cycles come from the calibrated per-access cost model over
/// the run's actual hit/miss mix; each detector's cycles come from its
/// measured data-path operation count at a fixed per-operation cost.
pub fn table2(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    use smartwatch_core::suite::DetectorSuite;
    use smartwatch_host::ArtefactRegistry;
    use smartwatch_snic::hw::CycleCosts;
    use smartwatch_snic::{Access, Outcome};

    let (trace, certs, tickets) = workloads::attack_mix_full(scale, 0x72);
    let suite = DetectorSuite::new()
        .with_cert_registry(
            ArtefactRegistry::from_pairs(certs.iter().map(|a| (a.digest, a.expires_at))),
            Dur::from_secs(30 * 86_400),
        )
        .with_krb_registry(
            ArtefactRegistry::from_pairs(tickets.iter().map(|a| (a.digest, a.expires_at))),
            Dur::from_secs(36_000),
        );
    let mut sw =
        SmartWatch::new(PlatformConfig::new(DeployMode::SnicHost), vec![]).with_suite(suite);
    for p in trace.packets() {
        sw.on_packet(p);
    }
    let ops = sw.suite.ops;
    let cache_stats = sw.cache.stats();
    let rep = sw.finish(trace.packets().last().unwrap().ts + Dur::from_secs(1));
    let m = rep.metrics;

    // FlowCache cycles from the calibrated cost model over the measured
    // access mix (a representative access per outcome class).
    let costs = CycleCosts::default();
    let hit = |probes| Access {
        outcome: Outcome::PHit,
        probes,
        writes: 1,
        ring_pushes: 0,
        cleaned_row: false,
    };
    let miss = Access {
        outcome: Outcome::Miss,
        probes: 12,
        writes: 3,
        ring_pushes: 1,
        cleaned_row: false,
    };
    let cache_cycles = cache_stats.p_hits as f64 * costs.busy_cycles(&hit(3)) as f64
        + cache_stats.e_hits as f64 * costs.busy_cycles(&hit(8)) as f64
        + cache_stats.misses as f64 * costs.busy_cycles(&miss) as f64;

    // Detector data-path work: every detector pays a relevance check on
    // every packet (~12 cycles: a port/flag compare) plus a state
    // operation (~140 cycles: a DRAM-resident counter update) on the
    // packets it actually tracks.
    const CHECK_CYCLES: f64 = 12.0;
    const STATE_CYCLES: f64 = 140.0;
    let det = |state_ops: u64| ops.total as f64 * CHECK_CYCLES + state_ops as f64 * STATE_CYCLES;
    let rows: Vec<(&str, f64, f64)> = vec![
        // (name, cycles, host-processed share of this detector's packets)
        ("Zeek SSH Bruteforcing", det(ops.auth / 2), 0.45),
        ("Zeek FTP Bruteforcing", det(ops.auth / 2), 0.45),
        ("Expiring SSL cert + Kerberos", det(ops.artefacts), 0.0),
        ("In-Sequence Forged TCP RST", det(ops.rst), 0.10),
        ("Stealthy Port Scan + TCP Incomplete", det(ops.scan), 0.0),
        ("DNS Amplification", det(ops.dns), 0.0),
        ("EarlyBird Detection Worms", det(ops.worm), 0.0),
        (
            "Slowloris (offline, flow logs)",
            ops.total as f64 * CHECK_CYCLES,
            0.0,
        ),
    ];
    let total_cycles: f64 = cache_cycles + rows.iter().map(|(_, c, _)| c).sum::<f64>();
    let host_pct = m.host_fraction() * 100.0;

    let mut t = Table::new(
        "table2",
        "Resource summary (all detectors running; SnicHost deployment)",
        &["component", "sNIC cycles (%)", "host processed (%)"],
    );
    t.row(vec![
        "FlowCache (flow logging)".into(),
        f(cache_cycles / total_cycles * 100.0, 1),
        "0".into(),
    ]);
    for (name, cycles, host_share) in rows {
        t.row(vec![
            name.into(),
            f(cycles / total_cycles * 100.0, 1),
            f(host_pct * host_share, 2),
        ]);
    }
    t.note(format!(
        "FlowCache share derived from the measured access mix ({} hits / {} misses);          paper: 80.32% with ~2% per detector",
        cache_stats.p_hits + cache_stats.e_hits,
        cache_stats.misses
    ));
    t.note(format!(
        "measured host fraction of sNIC-processed packets: {:.2}% (paper bound: <16%)",
        host_pct
    ));
    t.note(format!(
        "mean monitored-packet latency {:.2} µs over {} packets",
        m.mean_latency_ns() / 1e3,
        m.monitored
    ));
    t
}

/// Table 4: detection rate relative to host, Sonata vs SmartWatch.
pub fn table4(ctx: &ExpCtx) -> Table {
    let scale = ctx.scale;
    use smartwatch_core::suite::DetectorSuite;
    use smartwatch_host::ArtefactRegistry;

    let (trace, certs, tickets) = workloads::attack_mix_full(scale, 0x74);
    let truth = GroundTruth::from_packets(trace.packets());
    let suite = || {
        DetectorSuite::new()
            .with_cert_registry(
                ArtefactRegistry::from_pairs(certs.iter().map(|a| (a.digest, a.expires_at))),
                Dur::from_secs(30 * 86_400),
            )
            .with_krb_registry(
                ArtefactRegistry::from_pairs(tickets.iter().map(|a| (a.digest, a.expires_at))),
                Dur::from_secs(36_000),
            )
    };
    let host = SmartWatch::new(PlatformConfig::new(DeployMode::HostOnly), vec![])
        .with_suite(suite())
        .run(trace.packets());
    // The full-SmartWatch run is the one whose control-loop behaviour the
    // paper evaluates; publish its tier/steering metrics and trace.
    let mut sw_platform = SmartWatch::new(
        PlatformConfig::new(DeployMode::SmartWatch),
        standard_queries(),
    )
    .with_suite(suite());
    sw_platform.attach_telemetry(&ctx.registry);
    sw_platform.attach_tracer(&ctx.tracer);
    let sw = sw_platform.run(trace.packets());
    let sonata = SmartWatch::new(
        PlatformConfig::new(DeployMode::SwitchHost),
        standard_queries(),
    )
    .run(trace.packets());

    let kinds = [
        AttackKind::Slowloris,
        AttackKind::SshBruteforce,
        AttackKind::ExpiringSslCert,
        AttackKind::FtpBruteforce,
        AttackKind::KerberosTicket,
        AttackKind::ForgedTcpRst,
        AttackKind::TcpIncompleteFlows,
        AttackKind::StealthyPortScan,
        AttackKind::DnsAmplification,
        AttackKind::Worm,
    ];
    let mut t = Table::new(
        "table4",
        "Detection rate relative to host",
        &["attack", "host", "Sonata", "SmartWatch"],
    );
    let mut sums = (0.0f64, 0.0f64, 0usize);
    for kind in kinds {
        let h = detection_rate(&host, &truth, kind).unwrap_or(0.0);
        let so = detection_rate(&sonata, &truth, kind).unwrap_or(0.0);
        let s = detection_rate(&sw, &truth, kind).unwrap_or(0.0);
        let (rel_so, rel_sw) = if h > 0.0 { (so / h, s / h) } else { (0.0, 0.0) };
        if h > 0.0 {
            sums.0 += rel_so;
            sums.1 += rel_sw;
            sums.2 += 1;
        }
        t.row(vec![
            kind.name().into(),
            f(h, 2),
            f(rel_so, 2),
            f(rel_sw, 2),
        ]);
    }
    let mean_sonata = sums.0 / sums.2.max(1) as f64;
    let mean_sw = sums.1 / sums.2.max(1) as f64;
    t.note(format!(
        "mean relative detection: SmartWatch {:.2} vs Sonata {:.2} ⇒ {:.2}× better \
         (paper: 2.39×)",
        mean_sw,
        mean_sonata,
        if mean_sonata > 0.0 {
            mean_sw / mean_sonata
        } else {
            f64::INFINITY
        }
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_snic_offload_cuts_latency() {
        let t = fig8a(&ExpCtx::new(1));
        let snic: f64 = t.rows[1][1].parse().unwrap();
        let host: f64 = t.rows[2][1].parse().unwrap();
        assert!(snic < host * 0.5, "sNIC {snic} vs host {host}");
    }

    #[test]
    fn table4_smartwatch_beats_sonata() {
        let t = table4(&ExpCtx::new(1));
        let mut sw_sum = 0.0;
        let mut so_sum = 0.0;
        for row in &t.rows {
            so_sum += row[2].parse::<f64>().unwrap();
            sw_sum += row[3].parse::<f64>().unwrap();
        }
        assert!(
            sw_sum > so_sum * 1.5,
            "SmartWatch {sw_sum} vs Sonata {so_sum} (expect ≥1.5× aggregate)"
        );
    }
}
