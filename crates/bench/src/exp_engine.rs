//! `repro engine` — the wall-clock runtime experiment.
//!
//! Unlike every figure/table experiment (which runs in virtual time and
//! is deterministic for a seed), this one executes the full pipeline on
//! real OS threads via [`smartwatch_runtime`] and reports *measured*
//! throughput. Numbers are machine-dependent by design; the exact
//! counters (conservation, escalations, verdicts) are still checkable.

use crate::output::Table;
use crate::{workloads, ExpCtx};
use serde::Serialize;
use smartwatch_net::{FrameStore, Packet};
use smartwatch_runtime::{DatapathMode, Engine, EngineConfig, EngineReport, Pace};
use smartwatch_telemetry::HistSnapshot;
use smartwatch_trace::background::Preset;
use smartwatch_trace::compile::compile_cycled;
use smartwatch_trace::Trace;
use std::sync::Arc;

/// Which replay workload the engine run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineWorkload {
    /// 64-byte-truncated CAIDA stand-in — the paper's packet-rate worst
    /// case (max packets per byte of bandwidth).
    Stress,
    /// The Table-4 attack mix — exercises escalation and verdicts.
    Mix,
}

/// Where the replay bytes come from (`--source`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum EngineSource {
    /// Generator output replayed as owned model packets — the pre-wire
    /// path, and the default.
    #[default]
    Synthetic,
    /// The workload compiled once into packed wire frames
    /// ([`smartwatch_trace::compile`]) and replayed through the
    /// engine's zero-copy path (`Engine::run_frames`).
    Compiled,
    /// A classic pcap file replayed through the zero-copy path (cycled
    /// to the requested packet count).
    Pcap(String),
}

impl EngineSource {
    /// Parse a `--source` argument: `synthetic`, `compiled` or
    /// `pcap:<path>`.
    pub fn parse(s: &str) -> Result<EngineSource, String> {
        match s {
            "synthetic" => Ok(EngineSource::Synthetic),
            "compiled" => Ok(EngineSource::Compiled),
            _ => match s.strip_prefix("pcap:") {
                Some(path) if !path.is_empty() => Ok(EngineSource::Pcap(path.to_string())),
                _ => Err(format!(
                    "unknown --source '{s}' (expected synthetic, compiled or pcap:<path>)"
                )),
            },
        }
    }

    /// Stable one-word label for tables and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            EngineSource::Synthetic => "synthetic",
            EngineSource::Compiled => "compiled",
            EngineSource::Pcap(_) => "pcap",
        }
    }
}

/// A materialised replay input: owned packets (synthetic) or a packed
/// wire-frame store (compiled / pcap).
pub enum ReplayData {
    /// Owned model packets.
    Packets(Vec<Packet>),
    /// Packed wire frames for the zero-copy path.
    Wire(FrameStore),
}

impl ReplayData {
    /// Packets this replay offers.
    pub fn len(&self) -> usize {
        match self {
            ReplayData::Packets(p) => p.len(),
            ReplayData::Wire(s) => s.len(),
        }
    }

    /// True when the replay offers nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `engine` over this replay input.
    pub fn run(&self, engine: &Engine, pace: Pace) -> EngineReport {
        match self {
            ReplayData::Packets(p) => engine.run(p, pace),
            ReplayData::Wire(s) => engine.run_frames(s, pace),
        }
    }
}

/// Materialise a replay input from a source selector: generate-and-cycle
/// for the synthetic path, compile-once-replay-many for the wire path,
/// read-validate-cycle for pcap files. `base` builds the generator
/// trace and is only invoked for the sources that need it.
pub fn replay_data(
    source: &EngineSource,
    base: impl FnOnce() -> Trace,
    total: usize,
) -> ReplayData {
    match source {
        EngineSource::Synthetic => {
            let b = base().into_packets();
            assert!(!b.is_empty(), "workload generator produced no packets");
            ReplayData::Packets(b.iter().cycle().take(total).copied().collect())
        }
        EngineSource::Compiled => ReplayData::Wire(compile_cycled(&base(), total)),
        EngineSource::Pcap(path) => {
            let data = std::fs::read(path).unwrap_or_else(|e| panic!("repro: reading {path}: {e}"));
            let store = FrameStore::from_pcap(&data)
                .unwrap_or_else(|e| panic!("repro: parsing {path}: {e}"));
            assert!(!store.is_empty(), "pcap {path} contains no frames");
            ReplayData::Wire(store.cycled_to(total))
        }
    }
}

/// One `repro engine` invocation, fully specified.
#[derive(Clone, Debug)]
pub struct EngineRunSpec {
    /// Worker shards (threads).
    pub shards: usize,
    /// RX dispatcher queues (threads) — the multi-queue NIC model.
    /// Ignored under [`DatapathMode::Rtc`], where every fused core owns
    /// its ingest (the CLI rejects the combination up front).
    pub rx_queues: usize,
    /// Thread topology: the dispatcher→lane→shard mesh (`pipeline`,
    /// the default) or fused run-to-completion cores (`rtc`).
    pub datapath: DatapathMode,
    /// Pin each fused RTC core to CPU *i* (`--pin-cores`; best-effort,
    /// Linux `sched_setaffinity`, no-op elsewhere).
    pub pin_cores: bool,
    /// Packets to replay (the workload is cycled to this length).
    pub packets: usize,
    /// Packets per dispatch batch.
    pub batch: usize,
    /// Host escalation workers (0 = inline deterministic triage).
    pub host_workers: usize,
    /// FlowCache lookup burst width (`--cache-burst`; `<= 1` selects
    /// the per-packet reference path). Decisions are identical at every
    /// width — only memory-level parallelism changes.
    pub cache_burst: usize,
    /// Offered rate in Mpps; `None` replays flat-out with backpressure.
    pub rate_mpps: Option<f64>,
    /// Replay workload.
    pub workload: EngineWorkload,
    /// Replay source: synthetic packets, compiled wire frames or a
    /// pcap file (`--source`).
    pub source: EngineSource,
    /// Wall-clock trace sampling: 1-in-N batches per engine thread
    /// (0 = off; the first unit of work per thread is always sampled).
    pub trace_sample: u64,
    /// Bind this address and serve `/metrics`, `/stats.json` and
    /// `/flight.json` live for the duration of the run.
    pub listen: Option<String>,
    /// Keep the `--listen` endpoints up this long after the run ends,
    /// so scrapers can read the settled final counters.
    pub serve_hold_ms: u64,
    /// Translate a SIGINT/SIGTERM observed by [`crate::signal`] into a
    /// graceful drain of the run (the `repro` drivers set this; the
    /// drained report still conserves and is rendered normally).
    pub watch_signals: bool,
}

impl Default for EngineRunSpec {
    fn default() -> EngineRunSpec {
        EngineRunSpec {
            shards: 2,
            rx_queues: 1,
            datapath: DatapathMode::Pipeline,
            pin_cores: false,
            packets: 200_000,
            batch: 64,
            host_workers: 1,
            cache_burst: smartwatch_snic::BURST,
            rate_mpps: None,
            workload: EngineWorkload::Stress,
            source: EngineSource::Synthetic,
            trace_sample: 0,
            listen: None,
            serve_hold_ms: 0,
            watch_signals: false,
        }
    }
}

/// The spec's base generator trace (before cycling).
pub fn engine_base_trace(spec: &EngineRunSpec, scale: usize) -> Trace {
    match spec.workload {
        EngineWorkload::Stress => workloads::caida_64b(Preset::Caida2018, scale, 0xE1),
        EngineWorkload::Mix => workloads::attack_mix(scale, 0xE2),
    }
}

/// Build the synthetic replay buffer for a spec: generate the base
/// trace, then cycle it up (or cut it down) to exactly `spec.packets`
/// packets.
pub fn engine_workload(spec: &EngineRunSpec, scale: usize) -> Vec<Packet> {
    let base = engine_base_trace(spec, scale).into_packets();
    assert!(!base.is_empty(), "workload generator produced no packets");
    base.iter().cycle().take(spec.packets).copied().collect()
}

fn ns_cell(h: &HistSnapshot) -> String {
    if h.count == 0 {
        "-".to_string()
    } else {
        format!("{}/{}/{}", h.p50, h.p90, h.p99)
    }
}

/// Run the engine once and render the report.
pub fn engine_run(ctx: &ExpCtx, spec: &EngineRunSpec) -> Table {
    engine_run_report(ctx, spec).0
}

/// [`engine_run`], also handing back the raw [`EngineReport`] for
/// machine-readable output ([`bench_json`], CI artifacts).
pub fn engine_run_report(ctx: &ExpCtx, spec: &EngineRunSpec) -> (Table, EngineReport) {
    let (table, report, _) = engine_run_full(ctx, spec);
    (table, report)
}

/// [`engine_run_report`], also handing back the [`Engine`] itself so
/// callers can dump its flight recorder or decision audit after the run
/// (`--flight-dump`, anomaly artifacts).
pub fn engine_run_full(ctx: &ExpCtx, spec: &EngineRunSpec) -> (Table, EngineReport, Arc<Engine>) {
    let replay = replay_data(
        &spec.source,
        || engine_base_trace(spec, ctx.scale),
        spec.packets,
    );
    let mut cfg = EngineConfig::new(spec.shards);
    cfg.rx_queues = spec.rx_queues;
    cfg.datapath = spec.datapath;
    cfg.pin_cores = spec.pin_cores;
    cfg.batch = spec.batch;
    cfg.host_workers = spec.host_workers;
    cfg.cache_burst = spec.cache_burst;
    cfg.trace_sample = spec.trace_sample;
    let pace = match spec.rate_mpps {
        Some(r) => Pace::RateMpps(r),
        None => Pace::Flatout,
    };
    let mut engine = Engine::with_registry(cfg, &ctx.registry);
    engine.attach_tracer(&ctx.tracer);
    let engine = Arc::new(engine);
    let _signals = spec
        .watch_signals
        .then(|| crate::signal::drain_watch(&engine));
    let report = serve_during(&engine, spec.listen.as_deref(), spec.serve_hold_ms, || {
        replay.run(&engine, pace)
    });
    let table = render(spec, pace, &report);
    (table, report, engine)
}

/// Run `work` with the live observability endpoints up on `listen` (if
/// any), holding them for `hold_ms` after the work completes so
/// scrapers can read the settled final counters.
pub(crate) fn serve_during<T>(
    engine: &Arc<Engine>,
    listen: Option<&str>,
    hold_ms: u64,
    work: impl FnOnce() -> T,
) -> T {
    let server = listen.map(|addr| {
        crate::serve::serve(addr, engine)
            .unwrap_or_else(|e| panic!("repro: binding --listen {addr}: {e}"))
    });
    let out = work();
    if let Some(server) = server {
        if hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(hold_ms));
        }
        server.shutdown();
    }
    out
}

/// Stable one-word datapath label for tables and JSON artifacts.
pub fn datapath_label(d: DatapathMode) -> &'static str {
    match d {
        DatapathMode::Pipeline => "pipeline",
        DatapathMode::Rtc => "rtc",
    }
}

/// One stage's tail latencies in the bench artifact, plus its share of
/// the total time the four instrumented stages recorded (so a diff can
/// say "queue wait went from 40% to 0%" without re-deriving sums). RTC
/// runs have no queue crossings, so their queue-wait share is zero by
/// construction.
#[derive(Debug, Serialize)]
struct StageJson {
    p50_ns: u64,
    p99_ns: u64,
    count: u64,
    share: f64,
}

impl StageJson {
    fn from(h: &HistSnapshot, total_stage_ns: u64) -> StageJson {
        StageJson {
            p50_ns: h.p50,
            p99_ns: h.p99,
            count: h.count,
            share: if total_stage_ns == 0 {
                0.0
            } else {
                h.sum as f64 / total_stage_ns as f64
            },
        }
    }
}

/// Sum of recorded time across the four instrumented stages — the
/// denominator of every [`StageJson::share`].
fn total_stage_ns(r: &EngineReport) -> u64 {
    r.stage.queue_ns.sum + r.stage.cache_ns.sum + r.stage.detect_ns.sum + r.stage.escalate_ns.sum
}

/// Mean wall-clock budget per processed packet, derived from the
/// measured Mpps (1 Mpps ⇔ 1000 ns/pkt).
fn ns_per_packet(r: &EngineReport) -> f64 {
    let mpps = r.mpps();
    if mpps > 0.0 {
        1000.0 / mpps
    } else {
        0.0
    }
}

/// The FlowCache section of the bench artifact: hit mix, tag-filtered
/// probe lengths, and the batch pipeline's achieved depth.
#[derive(Debug, Serialize)]
struct FlowCacheJson {
    burst: usize,
    hit_rate: f64,
    p_hits: u64,
    e_hits: u64,
    misses: u64,
    to_host: u64,
    ring_pushes: u64,
    probe_hist: Vec<u64>,
    mean_probe_len: f64,
    bursts: u64,
    burst_pkts: u64,
    mean_burst_depth: f64,
}

impl FlowCacheJson {
    fn from(f: &smartwatch_runtime::FlowCacheSummary) -> FlowCacheJson {
        FlowCacheJson {
            burst: f.burst,
            hit_rate: f.hit_rate(),
            p_hits: f.p_hits,
            e_hits: f.e_hits,
            misses: f.misses,
            to_host: f.to_host,
            ring_pushes: f.ring_pushes,
            probe_hist: f.probe_hist.to_vec(),
            mean_probe_len: f.mean_probe_len(),
            bursts: f.bursts,
            burst_pkts: f.burst_pkts,
            mean_burst_depth: f.mean_burst_depth(),
        }
    }
}

/// The `BENCH_engine.json` schema (field order = emission order).
#[derive(Debug, Serialize)]
struct EngineBenchJson {
    bench: String,
    shards: usize,
    rx_queues: usize,
    datapath: String,
    pin_cores: bool,
    batch: usize,
    workload: String,
    source: String,
    rate_mpps: Option<f64>,
    offered: u64,
    processed: u64,
    dropped: u64,
    drop_pct: f64,
    mpps: f64,
    ns_per_packet: f64,
    escalated: u64,
    escalation_dropped: u64,
    host_processed: u64,
    verdicts: u64,
    idle_parks: u64,
    conserved: bool,
    queue_ns: StageJson,
    cache_ns: StageJson,
    detect_ns: StageJson,
    escalate_ns: StageJson,
    flowcache: FlowCacheJson,
}

/// The CI benchmark artifact (`BENCH_engine.json`): one flat JSON object
/// with the headline throughput numbers and per-stage tail latencies, so
/// runs are diffable across commits without parsing the rendered table.
pub fn bench_json(spec: &EngineRunSpec, r: &EngineReport) -> String {
    let stage_total = total_stage_ns(r);
    let v = EngineBenchJson {
        bench: "engine".to_string(),
        shards: spec.shards,
        rx_queues: spec.rx_queues,
        datapath: datapath_label(spec.datapath).to_string(),
        pin_cores: spec.pin_cores,
        batch: spec.batch,
        workload: format!("{:?}", spec.workload).to_lowercase(),
        source: spec.source.label().to_string(),
        rate_mpps: spec.rate_mpps,
        offered: r.offered,
        processed: r.processed(),
        dropped: r.ingest_dropped(),
        drop_pct: r.drop_rate() * 100.0,
        mpps: r.mpps(),
        ns_per_packet: ns_per_packet(r),
        escalated: r.escalated(),
        escalation_dropped: r.escalation_dropped(),
        host_processed: r.host_processed,
        verdicts: r.verdicts_published,
        idle_parks: r.idle_parks(),
        conserved: r.conserved(),
        queue_ns: StageJson::from(&r.stage.queue_ns, stage_total),
        cache_ns: StageJson::from(&r.stage.cache_ns, stage_total),
        detect_ns: StageJson::from(&r.stage.detect_ns, stage_total),
        escalate_ns: StageJson::from(&r.stage.escalate_ns, stage_total),
        flowcache: FlowCacheJson::from(&r.flowcache),
    };
    serde_json::to_string_pretty(&v).expect("bench report serializes")
}

fn render(spec: &EngineRunSpec, pace: Pace, r: &EngineReport) -> Table {
    let mut t = Table::new(
        "engine",
        "wall-clock sharded runtime (full pipeline on OS threads)",
        &[
            "shards",
            "rxq",
            "datapath",
            "workload",
            "source",
            "pace",
            "offered",
            "processed",
            "dropped",
            "drop%",
            "Mpps",
            "escalated",
            "host",
            "verdicts",
        ],
    );
    let pace_cell = match pace {
        Pace::Flatout => "flat-out".to_string(),
        Pace::RateMpps(mpps) => format!("{mpps} Mpps"),
        Pace::Spike {
            base_mpps,
            peak_mpps,
            ..
        } => format!("{base_mpps}→{peak_mpps} Mpps"),
    };
    t.row(vec![
        spec.shards.to_string(),
        spec.rx_queues.to_string(),
        datapath_label(spec.datapath).to_string(),
        format!("{:?}", spec.workload).to_lowercase(),
        spec.source.label().to_string(),
        pace_cell,
        r.offered.to_string(),
        r.processed().to_string(),
        r.ingest_dropped().to_string(),
        format!("{:.2}", r.drop_rate() * 100.0),
        format!("{:.3}", r.mpps()),
        r.escalated().to_string(),
        r.host_processed.to_string(),
        r.verdicts_published.to_string(),
    ]);
    t.note(format!(
        "stage latency ns (p50/p90/p99): queue-wait {} | flowcache {} | detectors {} \
         | escalation round-trip {}",
        ns_cell(&r.stage.queue_ns),
        ns_cell(&r.stage.cache_ns),
        ns_cell(&r.stage.detect_ns),
        ns_cell(&r.stage.escalate_ns),
    ));
    t.note(format!(
        "delivered batch size: mean {:.1} pkts (configured {})",
        r.stage.batch_pkts.mean, spec.batch
    ));
    let total = total_stage_ns(r);
    let share = |h: &HistSnapshot| {
        if total == 0 {
            0.0
        } else {
            h.sum as f64 / total as f64 * 100.0
        }
    };
    t.note(format!(
        "derived: {:.0} ns/pkt | stage time share: queue-wait {:.1}% | flowcache {:.1}% \
         | detectors {:.1}% | escalation {:.1}%",
        ns_per_packet(r),
        share(&r.stage.queue_ns),
        share(&r.stage.cache_ns),
        share(&r.stage.detect_ns),
        share(&r.stage.escalate_ns),
    ));
    if spec.datapath == DatapathMode::Rtc {
        t.note(format!(
            "run-to-completion datapath: {} fused core(s), zero queue crossings \
             (queue-wait share is structurally 0){}",
            spec.shards,
            if spec.pin_cores {
                " — cores pinned"
            } else {
                ""
            }
        ));
    }
    let fc = &r.flowcache;
    t.note(format!(
        "flowcache: hit rate {:.1}% (P {} / E {} / miss {}), mean probe {:.2} buckets, \
         burst {} → mean depth {:.1} pkts over {} prefetch bursts",
        fc.hit_rate() * 100.0,
        fc.p_hits,
        fc.e_hits,
        fc.misses,
        fc.mean_probe_len(),
        fc.burst,
        fc.mean_burst_depth(),
        fc.bursts,
    ));
    t.note(format!(
        "conservation: {} (offered = Σ processed + dropped, per shard)",
        if r.conserved() { "OK" } else { "VIOLATED" }
    ));
    match &spec.source {
        EngineSource::Synthetic => {}
        EngineSource::Compiled => t.note(
            "wire data plane: workload compiled once into packed frames; \
             dispatchers parse headers in place and digest from the bytes",
        ),
        EngineSource::Pcap(path) => t.note(format!(
            "wire data plane: replaying pcap {path} (cycled to {} pkts) \
             through the in-place parse + digest path",
            spec.packets
        )),
    }
    t.note(
        "wall-clock numbers — machine- and load-dependent, unlike the \
         deterministic virtual-time experiments (see EXPERIMENTS.md)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_experiment_renders_and_conserves() {
        let ctx = ExpCtx::new(1);
        let spec = EngineRunSpec {
            packets: 20_000,
            ..EngineRunSpec::default()
        };
        let t = engine_run(&ctx, &spec);
        assert_eq!(t.rows.len(), 1);
        assert!(t.notes.iter().any(|n| n.contains("conservation: OK")));
        // The run published runtime metrics into the shared registry.
        let names = ctx.registry.snapshot().to_json();
        assert!(names.contains("runtime.shard.processed"));
    }

    #[test]
    fn bench_json_carries_the_headline_numbers() {
        let ctx = ExpCtx::new(1);
        let spec = EngineRunSpec {
            packets: 20_000,
            ..EngineRunSpec::default()
        };
        let (_, report) = engine_run_report(&ctx, &spec);
        let json = bench_json(&spec, &report);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let field = |k: &str| v.get(k).unwrap_or_else(|| panic!("missing field {k}"));
        assert_eq!(field("bench").as_str(), Some("engine"));
        assert_eq!(field("shards").as_u64(), Some(2));
        assert_eq!(field("rx_queues").as_u64(), Some(1));
        assert_eq!(field("offered").as_u64(), Some(20_000));
        assert_eq!(field("conserved").as_bool(), Some(true));
        assert!(field("mpps").as_f64().expect("mpps is a number") > 0.0);
        assert!(field("cache_ns")
            .get("p99_ns")
            .and_then(|x| x.as_u64())
            .is_some());
        // The flowcache section: batched-lookup telemetry (CI asserts
        // its presence, so its shape is part of the artifact contract).
        let fc = field("flowcache");
        assert_eq!(fc["burst"].as_u64(), Some(smartwatch_snic::BURST as u64));
        let hit_rate = fc["hit_rate"].as_f64().expect("hit_rate is a number");
        assert!((0.0..=1.0).contains(&hit_rate));
        let hist = fc["probe_hist"].as_array().expect("probe_hist array");
        assert_eq!(hist.len(), 16);
        let accesses: u64 = hist.iter().map(|v| v.as_u64().unwrap()).sum();
        let processed = fc["p_hits"].as_u64().unwrap()
            + fc["e_hits"].as_u64().unwrap()
            + fc["misses"].as_u64().unwrap();
        assert_eq!(
            accesses,
            processed + fc["to_host"].as_u64().unwrap(),
            "every cache access lands in exactly one probe-length slot"
        );
        assert!(fc["bursts"].as_u64().unwrap() > 0, "batched path engaged");
        let depth = fc["mean_burst_depth"].as_f64().unwrap();
        assert!(depth > 1.0 && depth <= smartwatch_snic::BURST as f64);
    }

    #[test]
    fn rtc_spec_runs_and_tags_the_artifact() {
        let ctx = ExpCtx::new(1);
        let spec = EngineRunSpec {
            packets: 20_000,
            datapath: DatapathMode::Rtc,
            ..EngineRunSpec::default()
        };
        let (t, report) = engine_run_report(&ctx, &spec);
        assert!(t.notes.iter().any(|n| n.contains("conservation: OK")));
        assert!(t.notes.iter().any(|n| n.contains("run-to-completion")));
        let v: serde_json::Value =
            serde_json::from_str(&bench_json(&spec, &report)).expect("valid JSON");
        assert_eq!(v["datapath"].as_str(), Some("rtc"));
        assert_eq!(v["pin_cores"].as_bool(), Some(false));
        let nspp = v["ns_per_packet"].as_f64().expect("ns_per_packet");
        let mpps = v["mpps"].as_f64().expect("mpps");
        assert!(
            (nspp - 1000.0 / mpps).abs() < 1e-9,
            "ns/pkt derives from Mpps"
        );
        // No lanes exist, so no queue-wait time is ever recorded.
        assert_eq!(v["queue_ns"]["share"].as_f64(), Some(0.0));
        let shares: f64 = ["queue_ns", "cache_ns", "detect_ns", "escalate_ns"]
            .iter()
            .map(|k| v[*k]["share"].as_f64().expect("stage share"))
            .sum();
        assert!(
            (shares - 1.0).abs() < 1e-9,
            "stage shares partition the recorded stage time, got {shares}"
        );
    }

    #[test]
    fn multi_queue_run_conserves_and_reports_queue_count() {
        let ctx = ExpCtx::new(1);
        let spec = EngineRunSpec {
            packets: 20_000,
            rx_queues: 2,
            ..EngineRunSpec::default()
        };
        let (t, report) = engine_run_report(&ctx, &spec);
        assert!(t.notes.iter().any(|n| n.contains("conservation: OK")));
        assert_eq!(report.rx_queues(), 2);
        let json = bench_json(&spec, &report);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["rx_queues"].as_u64(), Some(2));
        assert_eq!(v["conserved"].as_bool(), Some(true));
    }

    #[test]
    fn workload_is_cycled_to_requested_length() {
        let spec = EngineRunSpec {
            packets: 1234,
            ..EngineRunSpec::default()
        };
        assert_eq!(engine_workload(&spec, 1).len(), 1234);
    }

    #[test]
    fn source_parses_and_labels() {
        assert_eq!(
            EngineSource::parse("synthetic"),
            Ok(EngineSource::Synthetic)
        );
        assert_eq!(EngineSource::parse("compiled"), Ok(EngineSource::Compiled));
        assert_eq!(
            EngineSource::parse("pcap:/tmp/x.pcap"),
            Ok(EngineSource::Pcap("/tmp/x.pcap".into()))
        );
        assert!(EngineSource::parse("pcap:").is_err());
        assert!(EngineSource::parse("wire").is_err());
        assert_eq!(EngineSource::Pcap("a".into()).label(), "pcap");
    }

    #[test]
    fn compiled_source_conserves_and_tags_the_artifact() {
        let ctx = ExpCtx::new(1);
        let spec = EngineRunSpec {
            packets: 20_000,
            rx_queues: 2,
            source: EngineSource::Compiled,
            ..EngineRunSpec::default()
        };
        let (t, report) = engine_run_report(&ctx, &spec);
        assert!(t.notes.iter().any(|n| n.contains("conservation: OK")));
        assert_eq!(report.offered, 20_000);
        assert!(report.conserved());
        let json = bench_json(&spec, &report);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["source"].as_str(), Some("compiled"));
        assert_eq!(v["conserved"].as_bool(), Some(true));
        // The wire path ran through the frame pools.
        assert!(
            ctx.registry
                .counter("runtime.frame_pool.recycled", &[])
                .get()
                > 0
        );
    }

    #[test]
    fn pcap_source_replays_a_file_through_the_wire_path() {
        let ctx = ExpCtx::new(1);
        // Write a small capture of the stress workload, then replay it.
        let base = engine_base_trace(&EngineRunSpec::default(), 1);
        let pcap_bytes = smartwatch_net::pcap::write(&base.packets()[..2_000]);
        let path = std::env::temp_dir().join("sw_bench_source_test.pcap");
        std::fs::write(&path, &pcap_bytes).expect("write temp pcap");
        let spec = EngineRunSpec {
            packets: 10_000,
            source: EngineSource::Pcap(path.to_string_lossy().into_owned()),
            ..EngineRunSpec::default()
        };
        let (t, report) = engine_run_report(&ctx, &spec);
        std::fs::remove_file(&path).ok();
        assert!(t.notes.iter().any(|n| n.contains("conservation: OK")));
        assert_eq!(report.offered, 10_000, "pcap replay cycles to the spec");
        assert!(report.conserved());
        let v: serde_json::Value =
            serde_json::from_str(&bench_json(&spec, &report)).expect("valid JSON");
        assert_eq!(v["source"].as_str(), Some("pcap"));
    }
}
