//! Scaling experiments: Fig. 2 (switch state vs steered traffic) and
//! Fig. 3 (resources vs arrival rate).

use crate::output::{f, Table};
use crate::ExpCtx;
use smartwatch_core::deploy::{DeployMode, ScalingModel};
use smartwatch_core::platform::{PlatformConfig, SmartWatch};
use smartwatch_net::{Dur, Ts};
use smartwatch_p4sim::SwitchQuery;
use smartwatch_trace::attacks::auth::{bruteforce, BruteforceConfig};
use smartwatch_trace::attacks::portscan::{portscan, ScanConfig};
use smartwatch_trace::background::{preset_trace, Preset};
use smartwatch_trace::Trace;

/// Fig. 2: P4Switch state (whitelist bytes) vs traffic steered to the
/// sNIC, per CAIDA year, for the SSH-bruteforce (2a) and port-scan (2b)
/// queries. Sweeping the whitelist budget trades switch state for
/// steered volume; the knee appears when all elephants are whitelisted.
pub fn fig2(ctx: &ExpCtx, portscan_variant: bool) -> Table {
    let scale = ctx.scale;
    let id = if portscan_variant { "fig2b" } else { "fig2a" };
    let attack_name = if portscan_variant {
        "Port Scan"
    } else {
        "SSH Bruteforcing"
    };
    let mut t = Table::new(
        id,
        &format!("P4Switch state vs traffic steered to sNIC ({attack_name})"),
        &["year", "top-k", "state (KB)", "steered (Mb/s)"],
    );
    for preset in Preset::CAIDA_YEARS {
        let bg = preset_trace(preset, 2_500 * scale, Dur::from_secs(10), 0xF16);
        let attack = if portscan_variant {
            portscan(&ScanConfig {
                scanner: 32,
                ..ScanConfig::with_delay(Dur::from_millis(15), 240, 0xF16)
            })
        } else {
            let mut cfg = BruteforceConfig::ssh(
                smartwatch_trace::attacks::victim_ip(0),
                Ts::from_millis(200),
                0xF16,
            );
            cfg.attempt_gap = Dur::from_millis(300);
            bruteforce(&cfg)
        };
        let trace = Trace::merge([bg, attack]);
        let duration = trace.duration().as_secs_f64().max(1e-9);
        let query = if portscan_variant {
            // Victim-side steering: the scanned server /24 crosses the
            // connection-attempt threshold, so its (benign-elephant-
            // carrying) subset is diverted — the state-vs-steering
            // trade-off of Fig. 2b lives in that subset.
            SwitchQuery {
                name: "scan-victims".into(),
                filter: smartwatch_p4sim::Filter::SynOnly,
                key: smartwatch_p4sim::KeyExpr::DstPrefix(24),
                distinct: None,
                threshold: 32,
            }
        } else {
            SwitchQuery::ssh_attempts(8, 10)
        };
        for top_k in [0usize, 32, 128, 512, 2048] {
            let mut cfg = PlatformConfig::new(DeployMode::SmartWatch);
            cfg.whitelist_top_k = top_k;
            cfg.whitelist_min_packets = 20;
            cfg.blacklist_sources = false; // isolate the whitelist effect
            cfg.suite_whitelist = false; // only top-k hoverboard entries
            let rep = SmartWatch::new(cfg, vec![query.clone()]).run(trace.packets());
            let state_kb = rep.whitelist_entries as f64 * 32.0 / 1024.0;
            let steered_mbps = rep.steered_bytes as f64 * 8.0 / duration / 1e6;
            t.row(vec![
                preset.name().into(),
                top_k.to_string(),
                f(state_kb, 1),
                f(steered_mbps, 2),
            ]);
        }
    }
    t.note("paper Fig. 2: steered traffic falls as whitelist state grows, with a knee");
    t.note("beyond which more state stops helping (all elephants already whitelisted)");
    t
}

/// Fig. 3: CPU cores (3a) and sNICs (3b) required vs packet arrival rate
/// for the four deployments.
pub fn fig3(_ctx: &ExpCtx) -> Table {
    let model = ScalingModel::default();
    let mut t = Table::new(
        "fig3",
        "Resources required vs arrival rate",
        &[
            "rate (Mpps)",
            "Host cores",
            "Host sNICs",
            "No-P4 cores",
            "No-P4 sNICs",
            "SmartWatch cores",
            "SmartWatch sNICs",
            "Sw+Host cores",
            "Sw+Host sNICs",
        ],
    );
    for rate_mpps in [15.0, 30.0, 60.0, 120.0, 240.0, 580.0, 1160.0, 2320.0] {
        let rate = rate_mpps * 1e6;
        let host = model.required(DeployMode::HostOnly, rate);
        let snic = model.required(DeployMode::SnicHost, rate);
        let sw = model.required(DeployMode::SmartWatch, rate);
        let sh = model.required(DeployMode::SwitchHost, rate);
        t.row(vec![
            f(rate_mpps, 0),
            host.cores.to_string(),
            host.snics.to_string(),
            snic.cores.to_string(),
            snic.snics.to_string(),
            sw.cores.to_string(),
            sw.snics.to_string(),
            sh.cores.to_string(),
            sh.snics.to_string(),
        ]);
    }
    let sw = model.required(DeployMode::SmartWatch, 2320.0e6);
    t.note(format!(
        "paper: at 2320 Mpps SmartWatch needs 4 sNICs and 6 cores; model: {} sNICs, {} cores",
        sw.snics, sw.cores
    ));
    t.note("paper: P4Switch reduces sNIC/core needs by ≥14× vs switchless deployments");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_steered_traffic_monotone_nonincreasing_in_topk() {
        let t = fig2(&ExpCtx::new(1), false);
        // For each year, steered traffic with top-k=2048 ≤ top-k=0.
        for year in 0..4 {
            let base: f64 = t.rows[year * 5][3].parse().unwrap();
            let best: f64 = t.rows[year * 5 + 4][3].parse().unwrap();
            assert!(
                best <= base + 1e-9,
                "whitelisting must not increase steering: {base} -> {best}"
            );
        }
    }

    #[test]
    fn fig3_smartwatch_cheapest() {
        let t = fig3(&ExpCtx::new(1));
        let last = t.rows.last().unwrap();
        let host_cores: u32 = last[1].parse().unwrap();
        let sw_cores: u32 = last[5].parse().unwrap();
        assert!(sw_cores * 10 < host_cores);
    }
}
