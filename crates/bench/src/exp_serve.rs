//! `repro serve` / `repro soak` — persistent service mode.
//!
//! Unlike `repro engine` (one run, one report), service mode keeps a
//! single [`Engine`] resident and replays the workload in **segments**:
//! bounded runs separated by graceful drain/restart cycles, exactly the
//! lifecycle a SmartNIC IPS daemon would live through. Between
//! segments nothing is torn down — batch/frame pools (and, under
//! `--carry-flow-state`, the per-shard FlowCaches) park in the engine's
//! garage and are reissued to the next segment, so steady state
//! allocates nothing and the soak harness can pin memory flat.
//!
//! Three control paths reach the resident engine while packets flow:
//!
//! * the **admin socket** (`--listen`, [`crate::serve::admin_routes`]):
//!   POST endpoints queueing [`AdminCmd`]s applied by the controller at
//!   epoch boundaries, plus the immediate pace/drain atomics;
//! * the **config watcher** (`--serve-config <path>`): a JSON file
//!   polled for mtime changes; a validated diff against the previously
//!   applied config is translated into the same admin commands, so a
//!   hot-reload rides the identical epoch-boundary publication path —
//!   the hot loop never takes a lock. Each attempt is recorded on the
//!   `sw-serve` flight ring ([`FlightKind::ConfigReload`] `ok`/`seq`);
//!   a rejected file leaves the running config untouched;
//! * **signals**: the `repro` drivers translate SIGINT/SIGTERM into a
//!   drain request ([`crate::signal`]), so the segment in flight still
//!   quiesces through the end-of-trace path and the final summary is
//!   conserved.
//!
//! `repro soak` is the endurance variant: every segment samples
//! `runtime.mem.rss_bytes` and the pool-allocation counters, and
//! [`ServeOutcome::violations`] asserts that (a) every segment
//! conserves, (b) pool allocation is flat after warm-up (the garage is
//! really being reused), and (c) RSS growth across the whole run stays
//! inside a slack budget. The per-segment timeline lands in
//! `BENCH_serve.json` (see EXPERIMENTS.md for the schema).

use crate::exp_control::{control_config, ControlRunSpec};
use crate::exp_engine::{replay_data, EngineSource, EngineWorkload};
use crate::output::Table;
use crate::{workloads, ExpCtx};
use serde::Serialize;
use smartwatch_runtime::{AdminCmd, Engine, EngineConfig, Pace};
use smartwatch_telemetry::{FlightKind, FlightRing};
use smartwatch_trace::background::Preset;
use smartwatch_trace::Trace;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One `repro serve` / `repro soak` invocation, fully specified.
#[derive(Clone, Debug)]
pub struct ServeSpec {
    /// Worker shards (threads).
    pub shards: usize,
    /// RX dispatcher queues (threads).
    pub rx_queues: usize,
    /// Packets per segment (the workload is cycled to this length).
    pub packets: usize,
    /// Packets per dispatch batch.
    pub batch: usize,
    /// Host escalation workers.
    pub host_workers: usize,
    /// Offered rate in Mpps; `None` replays each segment flat-out.
    /// Paced segments honour live `/admin/pace` overrides.
    pub rate_mpps: Option<f64>,
    /// Replay workload.
    pub workload: EngineWorkload,
    /// Replay source (synthetic / compiled / pcap).
    pub source: EngineSource,
    /// Segments to run (drain/restart cycles = segments − 1).
    pub segments: usize,
    /// Wall-clock budget per segment in ms; when a segment is still
    /// running at the deadline it is drained gracefully (0 = run each
    /// segment to completion).
    pub segment_ms: u64,
    /// Park the per-shard FlowCaches between segments so flow state
    /// survives a drain/restart cycle.
    pub carry_flow_state: bool,
    /// Controller epoch length in ms (admin commands and config
    /// reloads publish at epoch boundaries).
    pub epoch_ms: u64,
    /// Bind this address and serve the observability routes *plus* the
    /// POST admin surface for the lifetime of the service.
    pub listen: Option<String>,
    /// Watch this JSON config file for hot-reloads.
    pub config_path: Option<String>,
    /// Honour the process-wide SIGINT/SIGTERM flag between segments
    /// (the `repro` drivers set this; tests leave it off so parallel
    /// signal tests cannot interfere).
    pub heed_interrupt: bool,
}

impl Default for ServeSpec {
    fn default() -> ServeSpec {
        ServeSpec {
            shards: 2,
            rx_queues: 1,
            packets: 200_000,
            batch: 64,
            host_workers: 1,
            rate_mpps: Some(1.0),
            workload: EngineWorkload::Stress,
            source: EngineSource::Synthetic,
            segments: 3,
            segment_ms: 0,
            carry_flow_state: false,
            epoch_ms: 2,
            listen: None,
            config_path: None,
            heed_interrupt: false,
        }
    }
}

/// Control-plane thresholds for service mode: the configured steady
/// rate is treated as the calm baseline (no mode flapping, no shedding
/// at the offered rate), with headroom so a genuine 4× overload still
/// trips Lite mode and the shed hysteresis.
fn serve_control_config(spec: &ServeSpec) -> smartwatch_runtime::ControlConfig {
    let rate = spec.rate_mpps.unwrap_or(2.0).max(0.05);
    control_config(&ControlRunSpec {
        shards: spec.shards,
        rx_queues: spec.rx_queues,
        epoch_ms: spec.epoch_ms,
        base_mpps: rate,
        peak_mpps: 4.0 * rate,
        ..ControlRunSpec::default()
    })
}

fn serve_base_trace(spec: &ServeSpec, scale: usize) -> Trace {
    match spec.workload {
        EngineWorkload::Stress => workloads::caida_64b(Preset::Caida2018, scale, 0xE1),
        EngineWorkload::Mix => workloads::attack_mix(scale, 0xE2),
    }
}

/// The hot-reloadable service config — the validated shape of
/// `--serve-config <file>`. Absent/`null` fields mean "release":
///
/// ```json
/// {
///   "rate_mpps": 1.5,
///   "force_shed": null,
///   "blacklist": [4242, 99],
///   "whitelist": [7]
/// }
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeConfig {
    /// Live pace override (paced runs only); `None` releases it.
    pub rate_mpps: Option<f64>,
    /// Pin load shedding on/off; `None` returns it to the controller.
    pub force_shed: Option<bool>,
    /// Flow digests the steering table must blacklist.
    pub blacklist: Vec<u64>,
    /// Flow digests pinned onto the whitelist.
    pub whitelist: Vec<u64>,
}

impl ServeConfig {
    /// Parse and validate a config document. Unknown fields are
    /// rejected so a typo cannot silently no-op.
    pub fn parse(text: &str) -> Result<ServeConfig, String> {
        let doc: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = match &doc {
            serde_json::Value::Object(pairs) => pairs,
            _ => return Err("config must be a JSON object".into()),
        };
        let mut cfg = ServeConfig::default();
        for (key, value) in obj {
            match key.as_str() {
                "rate_mpps" => {
                    cfg.rate_mpps = if value.is_null() {
                        None
                    } else {
                        match value.as_f64() {
                            Some(r) if r > 0.0 && r.is_finite() => Some(r),
                            _ => return Err("rate_mpps must be a positive number or null".into()),
                        }
                    }
                }
                "force_shed" => {
                    cfg.force_shed = if value.is_null() {
                        None
                    } else {
                        match value.as_bool() {
                            Some(b) => Some(b),
                            None => return Err("force_shed must be true, false or null".into()),
                        }
                    }
                }
                "blacklist" => cfg.blacklist = digest_list(value, "blacklist")?,
                "whitelist" => cfg.whitelist = digest_list(value, "whitelist")?,
                other => return Err(format!("unknown config field '{other}'")),
            }
        }
        Ok(cfg)
    }

    /// The admin commands that move a running engine from `self` to
    /// `next` (steering/shed edits; the pace override is applied
    /// directly by the caller since it is an immediate atomic).
    pub fn diff(&self, next: &ServeConfig) -> Vec<AdminCmd> {
        let mut cmds = Vec::new();
        for &d in next
            .blacklist
            .iter()
            .filter(|d| !self.blacklist.contains(d))
        {
            cmds.push(AdminCmd::BlacklistAdd(d));
        }
        for &d in self
            .blacklist
            .iter()
            .filter(|d| !next.blacklist.contains(d))
        {
            cmds.push(AdminCmd::BlacklistRemove(d));
        }
        for &d in next
            .whitelist
            .iter()
            .filter(|d| !self.whitelist.contains(d))
        {
            cmds.push(AdminCmd::WhitelistAdd(d));
        }
        for &d in self
            .whitelist
            .iter()
            .filter(|d| !next.whitelist.contains(d))
        {
            cmds.push(AdminCmd::WhitelistRemove(d));
        }
        if self.force_shed != next.force_shed {
            cmds.push(AdminCmd::ForceShed(next.force_shed));
        }
        cmds
    }
}

fn digest_list(value: &serde_json::Value, field: &str) -> Result<Vec<u64>, String> {
    let arr = value
        .as_array()
        .ok_or_else(|| format!("{field} must be an array of unsigned integers"))?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("{field} entries must be unsigned integers"))
        })
        .collect()
}

/// Apply a validated config transition to the engine: queue the
/// steering/shed diff through the admin mailbox (published at the next
/// epoch boundary) and flip the pace atomic. Returns false when the
/// mailbox rejected part of the diff (retried on the next reload).
fn apply_config(engine: &Engine, prev: &ServeConfig, next: &ServeConfig) -> bool {
    let mut ok = true;
    for cmd in prev.diff(next) {
        ok &= engine.admin(cmd);
    }
    if prev.rate_mpps != next.rate_mpps {
        engine.set_rate_override(next.rate_mpps);
    }
    ok
}

/// The config hot-reload watcher: polls the file's mtime from a helper
/// thread, re-validates on change and publishes the diff. Dropping the
/// watcher stops the thread.
struct ConfigWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    shared: Arc<ConfigShared>,
}

#[derive(Default)]
struct ConfigShared {
    /// Successful reloads (the `seq` in `config_reload` flight events).
    reloads: std::sync::atomic::AtomicU64,
    /// Rejected reload attempts (file kept changing or failed to parse).
    errors: std::sync::atomic::AtomicU64,
}

impl ConfigWatcher {
    /// Load `path` once synchronously (so a config present at startup
    /// is active for the first segment), then watch it for changes.
    fn start(path: String, engine: Arc<Engine>, ring: FlightRing) -> ConfigWatcher {
        let shared = Arc::new(ConfigShared::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut applied = ServeConfig::default();
        let mut last_mtime = None;
        Self::reload(
            &path,
            &engine,
            &ring,
            &shared,
            &mut applied,
            &mut last_mtime,
            true,
        );
        let thread_stop = Arc::clone(&stop);
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sw-config".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    Self::reload(
                        &path,
                        &engine,
                        &ring,
                        &thread_shared,
                        &mut applied,
                        &mut last_mtime,
                        false,
                    );
                    std::thread::sleep(Duration::from_millis(100));
                }
            })
            .expect("spawn config watcher");
        ConfigWatcher {
            stop,
            handle: Some(handle),
            shared,
        }
    }

    /// One poll round: skip unless the mtime moved (or `force`), then
    /// parse-validate-diff-apply and record the attempt in flight.
    #[allow(clippy::too_many_arguments)]
    fn reload(
        path: &str,
        engine: &Engine,
        ring: &FlightRing,
        shared: &ConfigShared,
        applied: &mut ServeConfig,
        last_mtime: &mut Option<std::time::SystemTime>,
        force: bool,
    ) {
        let mtime = match std::fs::metadata(path).and_then(|m| m.modified()) {
            Ok(t) => t,
            Err(_) => return, // absent file: nothing to apply yet
        };
        if !force && *last_mtime == Some(mtime) {
            return;
        }
        *last_mtime = Some(mtime);
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| ServeConfig::parse(&text));
        match outcome {
            Ok(next) if next == *applied => {} // touch without change
            Ok(next) => {
                apply_config(engine, applied, &next);
                *applied = next;
                let seq = shared.reloads.fetch_add(1, Ordering::Relaxed) + 1;
                ring.record(FlightKind::ConfigReload, 1, seq);
            }
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let seq = shared.reloads.load(Ordering::Relaxed);
                ring.record(FlightKind::ConfigReload, 0, seq);
                eprintln!("repro: serve-config {path} rejected: {e} (keeping previous config)");
            }
        }
    }

    fn reloads(&self) -> u64 {
        self.shared.reloads.load(Ordering::Relaxed)
    }

    fn errors(&self) -> u64 {
        self.shared.errors.load(Ordering::Relaxed)
    }
}

impl Drop for ConfigWatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

/// A one-shot segment deadline: requests a graceful drain `ms` after
/// creation unless the guard is dropped first (segment finished on its
/// own).
struct SegmentTimer {
    cancel: Arc<AtomicBool>,
    fired: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SegmentTimer {
    fn arm(engine: &Arc<Engine>, ms: u64) -> SegmentTimer {
        let cancel = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicBool::new(false));
        let thread_cancel = Arc::clone(&cancel);
        let thread_fired = Arc::clone(&fired);
        let engine = Arc::clone(engine);
        let handle = std::thread::Builder::new()
            .name("sw-segment".into())
            .spawn(move || {
                let deadline = Instant::now() + Duration::from_millis(ms);
                while Instant::now() < deadline {
                    if thread_cancel.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                thread_fired.store(true, Ordering::Release);
                engine.request_drain();
            })
            .expect("spawn segment timer");
        SegmentTimer {
            cancel,
            fired,
            handle: Some(handle),
        }
    }

    /// True when the deadline elapsed and this timer requested the
    /// drain (as opposed to an operator or signal).
    fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

impl Drop for SegmentTimer {
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

/// One segment of the service timeline (the `BENCH_serve.json` rows).
#[derive(Clone, Debug, Serialize)]
pub struct SegmentRecord {
    /// Segment index, from 0.
    pub segment: usize,
    /// Packets offered to this segment.
    pub offered: u64,
    /// Packets fully processed by the shards.
    pub processed: u64,
    /// Accounted drops (ingest + shed + steer).
    pub dropped: u64,
    /// Measured throughput for the segment.
    pub mpps: f64,
    /// Segment wall-clock, milliseconds.
    pub elapsed_ms: u64,
    /// True when the segment ended by graceful drain rather than
    /// end-of-trace (deadline, admin request or signal).
    pub interrupted: bool,
    /// Two-axis conservation held for this segment.
    pub conserved: bool,
    /// `runtime.mem.rss_bytes` sampled at segment end.
    pub rss_bytes: u64,
    /// Cumulative `runtime.pool.allocated` at segment end — flat after
    /// segment 0 when the garage is reusing batch pools.
    pub pool_allocated: u64,
    /// Cumulative `runtime.frame_pool.allocated` at segment end.
    pub frame_pool_allocated: u64,
    /// ControlLog entries still buffered at segment end (bounded-log
    /// health: must not ratchet upward across segments).
    pub log_buffered: u64,
    /// Cumulative admin commands applied by the controller.
    pub admin_applied: u64,
    /// Config reloads published by segment end.
    pub config_seq: u64,
}

/// The whole service run, for rendering and machine-readable output.
pub struct ServeOutcome {
    /// Per-segment timeline, in order.
    pub segments: Vec<SegmentRecord>,
    /// Successful config hot-reloads.
    pub config_reloads: u64,
    /// Rejected config reload attempts.
    pub config_errors: u64,
}

impl ServeOutcome {
    /// Every segment satisfied two-axis conservation.
    pub fn all_conserved(&self) -> bool {
        self.segments.iter().all(|s| s.conserved)
    }

    /// Batch-pool allocations after the warm-up segment (0 when the
    /// garage reissues every pool).
    pub fn pool_growth(&self) -> u64 {
        growth(self.segments.iter().map(|s| s.pool_allocated))
    }

    /// Frame-pool allocations after the warm-up segment.
    pub fn frame_pool_growth(&self) -> u64 {
        growth(self.segments.iter().map(|s| s.frame_pool_allocated))
    }

    /// Batch-pool allocations during the *final* segment — the
    /// steady-state signal the soak gate pins. Warm-up can span more
    /// than one segment (a paced pipeline grows its buffer working set
    /// until the recycle channel never runs dry), but once warm the
    /// last segment must allocate nothing.
    pub fn steady_pool_growth(&self) -> u64 {
        last_delta(self.segments.iter().map(|s| s.pool_allocated))
    }

    /// Frame-pool allocations during the final segment.
    pub fn steady_frame_pool_growth(&self) -> u64 {
        last_delta(self.segments.iter().map(|s| s.frame_pool_allocated))
    }

    /// RSS delta from the first segment's sample to the last (may be
    /// negative when the allocator returns memory).
    pub fn rss_growth_bytes(&self) -> i64 {
        match (self.segments.first(), self.segments.last()) {
            (Some(a), Some(b)) => b.rss_bytes as i64 - a.rss_bytes as i64,
            _ => 0,
        }
    }

    /// Tolerated final-segment pool allocations. The recycle channels
    /// deliberately *drop* buffers on overflow (footprint stays bounded
    /// by the channel capacity), so scheduler noise can still trim and
    /// refill the odd buffer — churn, not a leak. A broken garage
    /// re-allocates a whole warm-up per restart, far above this.
    const POOL_SLACK: u64 = 8;

    /// The soak gate: human-readable violations, empty when the run is
    /// endurance-clean. `rss_slack_bytes` absorbs allocator noise.
    pub fn violations(&self, rss_slack_bytes: u64) -> Vec<String> {
        let mut out = Vec::new();
        for s in self.segments.iter().filter(|s| !s.conserved) {
            out.push(format!("segment {}: conservation VIOLATED", s.segment));
        }
        let pools = self.steady_pool_growth();
        if pools > Self::POOL_SLACK {
            out.push(format!(
                "batch pools allocated {pools} time(s) in the final segment (garage not reused)"
            ));
        }
        let frames = self.steady_frame_pool_growth();
        if frames > Self::POOL_SLACK {
            out.push(format!(
                "frame pools allocated {frames} time(s) in the final segment (garage not reused)"
            ));
        }
        let rss = self.rss_growth_bytes();
        if rss > rss_slack_bytes as i64 {
            out.push(format!(
                "RSS grew {rss} bytes across the run (slack {rss_slack_bytes})"
            ));
        }
        out
    }
}

/// Growth of a cumulative counter across the run: last sample minus
/// the end-of-warm-up (first-segment) sample.
fn growth(samples: impl Iterator<Item = u64>) -> u64 {
    let samples: Vec<u64> = samples.collect();
    match (samples.first(), samples.last()) {
        (Some(&first), Some(&last)) => last.saturating_sub(first),
        _ => 0,
    }
}

/// Growth of a cumulative counter during the final segment only.
fn last_delta(samples: impl Iterator<Item = u64>) -> u64 {
    let samples: Vec<u64> = samples.collect();
    match samples.len() {
        0 | 1 => 0,
        n => samples[n - 1].saturating_sub(samples[n - 2]),
    }
}

/// Run service mode and render the per-segment report.
pub fn serve_run(ctx: &ExpCtx, spec: &ServeSpec) -> Table {
    serve_run_full(ctx, spec).0
}

/// [`serve_run`], also handing back the raw [`ServeOutcome`] and the
/// resident [`Engine`] (flight dumps, soak gating).
pub fn serve_run_full(ctx: &ExpCtx, spec: &ServeSpec) -> (Table, ServeOutcome, Arc<Engine>) {
    assert!(spec.segments > 0, "service mode needs at least one segment");
    let replay = replay_data(
        &spec.source,
        || serve_base_trace(spec, ctx.scale),
        spec.packets,
    );

    let mut cfg = EngineConfig::new(spec.shards);
    cfg.rx_queues = spec.rx_queues;
    cfg.batch = spec.batch;
    cfg.host_workers = spec.host_workers;
    cfg.carry_flow_state = spec.carry_flow_state;
    let mut engine =
        Engine::with_registry(cfg.with_control(serve_control_config(spec)), &ctx.registry);
    engine.attach_tracer(&ctx.tracer);
    let engine = Arc::new(engine);

    // SIGINT/SIGTERM mid-segment: the watcher drains the running
    // segment; the loop-top check below then stops the service.
    let _signals = spec
        .heed_interrupt
        .then(|| crate::signal::drain_watch(&engine));
    let server = spec.listen.as_deref().map(|addr| {
        crate::serve::serve_admin(addr, &engine)
            .unwrap_or_else(|e| panic!("repro: binding --listen {addr}: {e}"))
    });
    let watcher = spec.config_path.clone().map(|path| {
        ConfigWatcher::start(path, Arc::clone(&engine), engine.flight().ring("sw-serve"))
    });

    let pace = match spec.rate_mpps {
        Some(r) => Pace::RateMpps(r),
        None => Pace::Flatout,
    };
    let registry = engine.registry().clone();
    let pool_allocated = registry.counter("runtime.pool.allocated", &[]);
    let frame_allocated = registry.counter("runtime.frame_pool.allocated", &[]);
    let rss = registry.gauge("runtime.mem.rss_bytes", &[]);

    let mut segments = Vec::with_capacity(spec.segments);
    engine.clear_drain();
    for segment in 0..spec.segments {
        if spec.heed_interrupt && crate::signal::interrupted() {
            break;
        }
        // A drain latched between segments (POST /admin/drain racing
        // the boundary) stops the service rather than burning a segment
        // on an immediately-drained run.
        if engine.drain_requested() {
            break;
        }
        let timer = (spec.segment_ms > 0).then(|| SegmentTimer::arm(&engine, spec.segment_ms));
        let report = replay.run(&engine, pace);
        // A deadline drain only ends the segment: consume the latch and
        // keep serving. An operator/signal drain ends the service (the
        // latch stays set and the loop-top check breaks).
        let deadline_drain = timer.as_ref().is_some_and(SegmentTimer::fired);
        drop(timer);
        if deadline_drain {
            engine.clear_drain();
        }
        segments.push(SegmentRecord {
            segment,
            offered: report.offered,
            processed: report.processed(),
            dropped: report.ingest_dropped() + report.shed() + report.steer_dropped(),
            mpps: report.mpps(),
            elapsed_ms: report.elapsed.as_millis() as u64,
            interrupted: report.interrupted,
            conserved: report.conserved(),
            rss_bytes: rss.get() as u64,
            pool_allocated: pool_allocated.get(),
            frame_pool_allocated: frame_allocated.get(),
            log_buffered: report.log_buffered,
            admin_applied: engine.admin_applied(),
            config_seq: watcher.as_ref().map(|w| w.reloads()).unwrap_or(0),
        });
    }
    engine.clear_drain();

    let outcome = ServeOutcome {
        segments,
        config_reloads: watcher.as_ref().map(|w| w.reloads()).unwrap_or(0),
        config_errors: watcher.as_ref().map(|w| w.errors()).unwrap_or(0),
    };
    drop(watcher);
    if let Some(server) = server {
        server.shutdown();
    }
    (render(spec, &outcome), outcome, engine)
}

/// The `BENCH_serve.json` schema (field order = emission order).
#[derive(Debug, Serialize)]
struct ServeBenchJson {
    bench: String,
    shards: usize,
    rx_queues: usize,
    segments: usize,
    segment_packets: usize,
    rate_mpps: Option<f64>,
    carry_flow_state: bool,
    conserved: bool,
    pool_growth: u64,
    frame_pool_growth: u64,
    steady_pool_growth: u64,
    steady_frame_pool_growth: u64,
    rss_first_bytes: u64,
    rss_last_bytes: u64,
    rss_growth_bytes: i64,
    config_reloads: u64,
    config_errors: u64,
    timeline: Vec<SegmentRecord>,
}

/// The soak/service CI artifact (`BENCH_serve.json`): headline
/// endurance verdicts plus the full per-segment timeline.
pub fn serve_bench_json(spec: &ServeSpec, out: &ServeOutcome) -> String {
    let v = ServeBenchJson {
        bench: "serve".to_string(),
        shards: spec.shards,
        rx_queues: spec.rx_queues,
        segments: out.segments.len(),
        segment_packets: spec.packets,
        rate_mpps: spec.rate_mpps,
        carry_flow_state: spec.carry_flow_state,
        conserved: out.all_conserved(),
        pool_growth: out.pool_growth(),
        frame_pool_growth: out.frame_pool_growth(),
        steady_pool_growth: out.steady_pool_growth(),
        steady_frame_pool_growth: out.steady_frame_pool_growth(),
        rss_first_bytes: out.segments.first().map(|s| s.rss_bytes).unwrap_or(0),
        rss_last_bytes: out.segments.last().map(|s| s.rss_bytes).unwrap_or(0),
        rss_growth_bytes: out.rss_growth_bytes(),
        config_reloads: out.config_reloads,
        config_errors: out.config_errors,
        timeline: out.segments.clone(),
    };
    serde_json::to_string_pretty(&v).expect("serve report serializes")
}

fn render(spec: &ServeSpec, out: &ServeOutcome) -> Table {
    let mut t = Table::new(
        "serve",
        "persistent service mode (resident engine, drain/restart segments)",
        &[
            "seg",
            "offered",
            "processed",
            "dropped",
            "Mpps",
            "end",
            "conserved",
            "rss MiB",
            "pools",
            "admin",
            "cfg",
        ],
    );
    for s in &out.segments {
        t.row(vec![
            s.segment.to_string(),
            s.offered.to_string(),
            s.processed.to_string(),
            s.dropped.to_string(),
            format!("{:.3}", s.mpps),
            if s.interrupted { "drain" } else { "eot" }.to_string(),
            if s.conserved { "OK" } else { "VIOLATED" }.to_string(),
            format!("{:.1}", s.rss_bytes as f64 / (1 << 20) as f64),
            s.pool_allocated.to_string(),
            s.admin_applied.to_string(),
            s.config_seq.to_string(),
        ]);
    }
    t.note(format!(
        "segments: {} requested, {} run; carry_flow_state={}",
        spec.segments,
        out.segments.len(),
        spec.carry_flow_state,
    ));
    t.note(format!(
        "endurance: pool growth {} total / {} in the final segment \
         (frame pools {} / {}), RSS {:+} bytes first→last segment",
        out.pool_growth(),
        out.steady_pool_growth(),
        out.frame_pool_growth(),
        out.steady_frame_pool_growth(),
        out.rss_growth_bytes(),
    ));
    t.note(format!(
        "conservation: {} (two-axis, every segment)",
        if out.all_conserved() {
            "OK"
        } else {
            "VIOLATED"
        }
    ));
    if out.config_reloads + out.config_errors > 0 {
        t.note(format!(
            "config hot-reloads: {} applied, {} rejected",
            out.config_reloads, out.config_errors
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> ServeSpec {
        ServeSpec {
            packets: 20_000,
            rate_mpps: None,
            segments: 3,
            ..ServeSpec::default()
        }
    }

    #[test]
    fn multi_segment_service_conserves_with_flat_pools() {
        let ctx = ExpCtx::new(1);
        let (t, out, _) = serve_run_full(&ctx, &quick_spec());
        assert_eq!(out.segments.len(), 3);
        assert!(out.all_conserved());
        // The garage reuses pools across segments: once warm, the
        // final segment allocates (at most transient-churn) nothing.
        // A broken garage re-allocates a whole warm-up per restart.
        assert!(
            out.steady_pool_growth() <= 8,
            "garage must reuse batch pools (final-segment growth {})",
            out.steady_pool_growth()
        );
        assert!(t.notes.iter().any(|n| n.contains("conservation: OK")));
        // Violations with a generous RSS slack: endurance-clean.
        assert!(out.violations(64 << 20).is_empty());
        let json = serve_bench_json(&quick_spec(), &out);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["bench"].as_str(), Some("serve"));
        assert_eq!(v["segments"].as_u64(), Some(3));
        assert_eq!(v["conserved"].as_bool(), Some(true));
        assert!(v["pool_growth"].as_u64().is_some());
        assert_eq!(v["timeline"].as_array().map(|a| a.len()), Some(3));
    }

    #[test]
    fn admin_edit_and_config_reload_are_visible_in_the_service_run() {
        let ctx = ExpCtx::new(1);
        let dir = std::env::temp_dir();
        let path = dir.join("sw_serve_config_test.json");
        std::fs::write(&path, r#"{"blacklist": [12345], "force_shed": false}"#).unwrap();
        let spec = ServeSpec {
            packets: 60_000,
            rate_mpps: Some(0.5),
            segments: 2,
            config_path: Some(path.to_string_lossy().into_owned()),
            listen: Some("127.0.0.1:0".to_string()),
            ..ServeSpec::default()
        };
        let (_, out, engine) = serve_run_full(&ctx, &spec);
        std::fs::remove_file(&path).ok();
        assert!(out.all_conserved());
        assert_eq!(out.config_reloads, 1, "startup config counts as a reload");
        assert_eq!(out.config_errors, 0);
        // The blacklist edit and shed pin were applied by the
        // controller (admin_applied counts them) and the reload is in
        // the flight recorder.
        assert!(engine.admin_applied() >= 2);
        let flight = engine.flight().to_json();
        assert!(flight.contains("config_reload"));
        assert!(flight.contains("admin_edit"));
        // And the service state shows up in stats_json.
        let stats: serde_json::Value =
            serde_json::from_str(&engine.stats_json()).expect("valid stats");
        let service = stats.get("service").expect("service section");
        assert!(
            service
                .get("admin_applied")
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                >= 2
        );
    }

    #[test]
    fn bad_config_is_rejected_and_the_run_survives() {
        let ctx = ExpCtx::new(1);
        let dir = std::env::temp_dir();
        let path = dir.join("sw_serve_bad_config_test.json");
        std::fs::write(&path, r#"{"rate_mpps": "fast"}"#).unwrap();
        let spec = ServeSpec {
            packets: 20_000,
            rate_mpps: None,
            segments: 1,
            config_path: Some(path.to_string_lossy().into_owned()),
            ..ServeSpec::default()
        };
        let (_, out, engine) = serve_run_full(&ctx, &spec);
        std::fs::remove_file(&path).ok();
        assert!(out.all_conserved());
        assert_eq!(out.config_reloads, 0);
        assert_eq!(out.config_errors, 1);
        assert!(engine.rate_override().is_none());
    }

    #[test]
    fn segment_deadline_drains_gracefully_and_still_conserves() {
        let ctx = ExpCtx::new(1);
        let spec = ServeSpec {
            packets: 4_000_000, // far more than 50 ms of paced replay
            rate_mpps: Some(0.5),
            segments: 2,
            segment_ms: 50,
            ..ServeSpec::default()
        };
        let (_, out, _) = serve_run_full(&ctx, &spec);
        assert_eq!(out.segments.len(), 2);
        for s in &out.segments {
            assert!(s.interrupted, "deadline must drain the segment");
            assert!(s.conserved, "drained segment must still conserve");
            assert!(s.offered < 4_000_000);
        }
    }

    #[test]
    fn config_parses_validates_and_diffs() {
        let cfg = ServeConfig::parse(
            r#"{"rate_mpps": 1.5, "force_shed": true, "blacklist": [1, 2], "whitelist": [9]}"#,
        )
        .unwrap();
        assert_eq!(cfg.rate_mpps, Some(1.5));
        assert_eq!(cfg.force_shed, Some(true));
        assert_eq!(cfg.blacklist, vec![1, 2]);
        assert!(ServeConfig::parse(r#"{"rate_mpps": -1}"#).is_err());
        assert!(ServeConfig::parse(r#"{"surprise": 1}"#).is_err());
        assert!(ServeConfig::parse("[]").is_err());

        let next = ServeConfig::parse(r#"{"blacklist": [2, 3], "force_shed": null}"#).unwrap();
        let cmds = cfg.diff(&next);
        assert!(cmds.contains(&AdminCmd::BlacklistAdd(3)));
        assert!(cmds.contains(&AdminCmd::BlacklistRemove(1)));
        assert!(cmds.contains(&AdminCmd::WhitelistRemove(9)));
        assert!(cmds.contains(&AdminCmd::ForceShed(None)));
        assert_eq!(cmds.len(), 4);
        // No-op diff queues nothing.
        assert!(cfg.diff(&cfg.clone()).is_empty());
    }
}
