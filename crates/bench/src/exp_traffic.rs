//! Traffic-analysis experiments: Fig. 10 (volumetric accuracy), Fig. 11a
//! (microburst flow capture), Fig. 11b (throughput vs baselines).

use crate::output::{f, pct, Table};
use crate::workloads;
use crate::ExpCtx;
use smartwatch_detect::microburst::MicroburstDetector;
use smartwatch_detect::volumetric::{
    ground_truth, mean_relative_error, true_heavy_changes, true_heavy_hitters,
};
use smartwatch_net::{Dur, Packet};
use smartwatch_sketch::{ElasticSketch, FlowCounter, MvSketch};
use smartwatch_snic::des::{simulate, DesConfig};
use smartwatch_snic::{CachePolicy, FlowCache, FlowCacheConfig, Mode};
use smartwatch_trace::attacks::microburst::{burst_flows, microbursts, MicroburstConfig};
use smartwatch_trace::background::Preset;
use std::collections::HashMap;

const SKETCH_BYTES: usize = 256 << 10;

/// SmartWatch's exact counts for an interval: FlowCache + ring/snapshot
/// aggregation (lossless by construction — the Fig. 10 mechanism).
fn smartwatch_counts(packets: &[Packet], mode: Mode) -> HashMap<smartwatch_net::FlowKey, u64> {
    let mut fc = FlowCache::new(FlowCacheConfig::split(10, 4, 8, CachePolicy::LRU_LPC));
    fc.set_mode(mode);
    let mut agg: HashMap<smartwatch_net::FlowKey, u64> = HashMap::new();
    for (i, p) in packets.iter().enumerate() {
        fc.process(p);
        if i % 4096 == 4095 {
            for r in fc.rings().drain() {
                *agg.entry(r.key).or_default() += r.packets;
            }
        }
    }
    for r in fc.rings().drain() {
        *agg.entry(r.key).or_default() += r.packets;
    }
    for r in fc.drain_all() {
        *agg.entry(r.key).or_default() += r.packets;
    }
    agg
}

/// Fig. 10a/b/c: mean relative error for heavy hitters, heavy changes and
/// flow-size distribution vs monitoring-interval size.
pub fn fig10(ctx: &ExpCtx) -> Table {
    let trace = workloads::caida_64b(Preset::Caida2018, 2 * ctx.scale, 2018);
    let pkts = trace.packets();
    let mut t = Table::new(
        "fig10",
        "Volumetric accuracy (mean relative error) vs interval size",
        &[
            "interval (pkts)",
            "task",
            "Elastic",
            "MV",
            "SW General",
            "SW Lite",
        ],
    );
    let sizes: Vec<usize> = [pkts.len() / 8, pkts.len() / 3, pkts.len()]
        .into_iter()
        .filter(|&n| n > 1000)
        .collect();
    for n in sizes {
        let window = &pkts[..n];
        let truth = ground_truth(window);
        let hh_threshold = ((n as f64) * 0.0005).max(4.0) as u64;
        let hh = true_heavy_hitters(&truth, hh_threshold);

        let mut elastic = ElasticSketch::with_memory(SKETCH_BYTES, 1);
        let mut mv = MvSketch::with_memory(SKETCH_BYTES, 2, 1);
        for p in window {
            elastic.update(&p.key, 1);
            mv.update(&p.key, 1);
        }
        let sw_gen = smartwatch_counts(window, Mode::General);
        let sw_lite = smartwatch_counts(window, Mode::Lite);

        let mre_of =
            |est: &dyn Fn(&smartwatch_net::FlowKey) -> u64| mean_relative_error(&truth, &hh, est);
        t.row(vec![
            n.to_string(),
            "heavy hitter".into(),
            f(mre_of(&|k| elastic.estimate(k)), 3),
            f(mre_of(&|k| mv.estimate(k)), 3),
            f(
                mre_of(&|k| sw_gen.get(&k.canonical().0).copied().unwrap_or(0)),
                3,
            ),
            f(
                mre_of(&|k| sw_lite.get(&k.canonical().0).copied().unwrap_or(0)),
                3,
            ),
        ]);

        // Heavy change: split the window into two halves.
        let (a, b) = window.split_at(n / 2);
        let (ta, tb) = (ground_truth(a), ground_truth(b));
        let hc_threshold = ((n as f64) * 0.0004).max(4.0) as u64;
        let hc = true_heavy_changes(&ta, &tb, hc_threshold);
        let change_truth: HashMap<_, u64> = hc
            .iter()
            .map(|k| {
                let d = ta
                    .get(k)
                    .copied()
                    .unwrap_or(0)
                    .abs_diff(tb.get(k).copied().unwrap_or(0));
                (*k, d)
            })
            .collect();
        let mut e1 = ElasticSketch::with_memory(SKETCH_BYTES, 3);
        let mut e2 = ElasticSketch::with_memory(SKETCH_BYTES, 3);
        let mut m1 = MvSketch::with_memory(SKETCH_BYTES, 2, 3);
        let mut m2 = MvSketch::with_memory(SKETCH_BYTES, 2, 3);
        for p in a {
            e1.update(&p.key, 1);
            m1.update(&p.key, 1);
        }
        for p in b {
            e2.update(&p.key, 1);
            m2.update(&p.key, 1);
        }
        let swa = smartwatch_counts(a, Mode::General);
        let swb = smartwatch_counts(b, Mode::General);
        let sla = smartwatch_counts(a, Mode::Lite);
        let slb = smartwatch_counts(b, Mode::Lite);
        let hc_mre = |est: &dyn Fn(&smartwatch_net::FlowKey) -> u64| {
            mean_relative_error(&change_truth, &hc, est)
        };
        t.row(vec![
            n.to_string(),
            "heavy change".into(),
            f(hc_mre(&|k| e1.estimate(k).abs_diff(e2.estimate(k))), 3),
            f(hc_mre(&|k| m1.estimate(k).abs_diff(m2.estimate(k))), 3),
            f(
                hc_mre(&|k| {
                    swa.get(&k.canonical().0)
                        .copied()
                        .unwrap_or(0)
                        .abs_diff(swb.get(&k.canonical().0).copied().unwrap_or(0))
                }),
                3,
            ),
            f(
                hc_mre(&|k| {
                    sla.get(&k.canonical().0)
                        .copied()
                        .unwrap_or(0)
                        .abs_diff(slb.get(&k.canonical().0).copied().unwrap_or(0))
                }),
                3,
            ),
        ]);

        // Flow-size distribution: per-decade flow-count error, averaged.
        let fsd = |est: &dyn Fn(&smartwatch_net::FlowKey) -> u64| {
            let errs = smartwatch_detect::volumetric::fsd_mre(&truth, est, 6);
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        t.row(vec![
            n.to_string(),
            "flow size dist".into(),
            f(fsd(&|k| elastic.estimate(k)), 3),
            f(fsd(&|k| mv.estimate(k)), 3),
            f(
                fsd(&|k| sw_gen.get(&k.canonical().0).copied().unwrap_or(0)),
                3,
            ),
            f(
                fsd(&|k| sw_lite.get(&k.canonical().0).copied().unwrap_or(0)),
                3,
            ),
        ]);
    }
    t.note("paper Fig. 10: SmartWatch's lossless logging has zero error on HH/HC while");
    t.note("sketch error grows with interval size; small flows hurt sketches on FSD");
    t
}

/// Fig. 11a: fraction of ground-truth burst flows captured vs the burst
/// classification threshold.
pub fn fig11a(ctx: &ExpCtx) -> Table {
    let cfg = MicroburstConfig {
        flows_per_burst: 48,
        pkts_per_flow: 16,
        ..MicroburstConfig::new((8 * ctx.scale) as u32, 0x11A)
    };
    let trace = microbursts(&cfg);
    let total_truth: usize = (0..cfg.bursts).map(|b| burst_flows(&trace, b).len()).sum();
    let mut t = Table::new(
        "fig11a",
        "Microburst flow capture vs classification threshold",
        &[
            "threshold (µs)",
            "bursts found",
            "flows captured",
            "capture %",
        ],
    );
    for thresh_us in [60u64, 120, 240, 400, 520] {
        let mut det = MicroburstDetector::new(10.0, Dur::from_micros(thresh_us), 1 << 14);
        for p in trace.iter() {
            det.on_packet(p);
        }
        let last = trace.packets().last().unwrap().ts;
        let reports = det.finish(last + Dur::from_secs(1));
        let mut captured: Vec<_> = reports
            .iter()
            .flat_map(|r| r.flows.iter().map(|(k, _)| *k))
            .collect();
        captured.sort();
        captured.dedup();
        let mut hit = 0usize;
        for b in 0..cfg.bursts {
            for fkey in burst_flows(&trace, b) {
                if captured.binary_search(&fkey).is_ok() {
                    hit += 1;
                }
            }
        }
        t.row(vec![
            thresh_us.to_string(),
            reports.len().to_string(),
            format!("{hit}/{total_truth}"),
            pct(hit as f64 / total_truth.max(1) as f64),
        ]);
    }
    t.note("paper Fig. 11a: low thresholds open bursts late/split them and miss member");
    t.note("flows; a permissive threshold captures ~100% (92.7% → 100% in the paper)");
    t
}

/// Fig. 11b: throughput vs number of PMEs, SmartWatch vs host sketches.
///
/// Host-sketch throughput uses a per-packet CPU-cost model calibrated
/// from the paper's measured ordering (NitroSketch > SmartWatch-Lite >
/// Elastic > CountMin); sketch lines are flat in PME count because they
/// run on the host.
pub fn fig11b(ctx: &ExpCtx) -> Table {
    let pkts = workloads::caida_64b(Preset::Caida2018, ctx.scale, 2018).into_packets();
    let host_cores = 16.0;
    // ns per packet per core: hash+update cost of each sketch on a DPDK
    // host (NitroSketch samples, so most packets touch no counters).
    let host_baselines = [
        ("NitroSketch (host)", 280.0),
        ("Elastic Sketch (host)", 460.0),
        ("CountMIN Sketch", 1_050.0),
    ];
    let mut t = Table::new(
        "fig11b",
        "Throughput (Mpps) vs #PME, SmartWatch vs sketch baselines",
        &["platform", "72 PME", "76 PME", "80 PME"],
    );
    for (name, mode) in [
        ("SmartWatch (General)", Mode::General),
        ("SmartWatch (Lite)", Mode::Lite),
    ] {
        let mut cells = vec![name.to_string()];
        for pmes in [72u32, 76, 80] {
            let mut fc = FlowCache::new(FlowCacheConfig::general(14));
            fc.set_mode(mode);
            let mut cfg = DesConfig::netronome(60.0e6);
            cfg.pmes = pmes;
            let rep = simulate(&mut fc, &pkts, &cfg);
            cells.push(f(rep.achieved_mpps(), 1));
        }
        t.row(cells);
    }
    for (name, ns_per_pkt) in host_baselines {
        let mpps = host_cores * 1e3 / ns_per_pkt;
        t.row(vec![name.into(), f(mpps, 1), f(mpps, 1), f(mpps, 1)]);
    }
    t.note("paper Fig. 11b: only NitroSketch out-throughputs SmartWatch — by sampling,");
    t.note("which is precisely what rules out flow-state tracking (§2.3.2)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_smartwatch_exact_on_heavy_hitters() {
        let t = fig10(&ExpCtx::new(1));
        for row in t.rows.iter().filter(|r| r[1] == "heavy hitter") {
            let sw_gen: f64 = row[4].parse().unwrap();
            assert_eq!(sw_gen, 0.0, "lossless logging must have zero HH error");
        }
    }

    #[test]
    fn fig11a_permissive_threshold_captures_nearly_all() {
        let t = fig11a(&ExpCtx::new(1));
        let best: f64 = t
            .rows
            .iter()
            .map(|r| r[3].trim_end_matches('%').parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(best > 90.0, "best capture {best}%");
    }

    #[test]
    fn fig11b_nitrosketch_fastest_countmin_slowest() {
        let t = fig11b(&ExpCtx::new(1));
        let by_name = |n: &str| -> f64 {
            t.rows.iter().find(|r| r[0].starts_with(n)).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(by_name("NitroSketch") > by_name("SmartWatch (Lite)"));
        assert!(by_name("SmartWatch (Lite)") > by_name("CountMIN"));
    }
}
