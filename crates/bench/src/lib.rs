//! # smartwatch-bench
//!
//! The reproduction harness: one function per table/figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index), shared
//! workload builders, and output formatting. The `repro` binary drives
//! everything; Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_ablation;
pub mod exp_cache;
pub mod exp_covert;
pub mod exp_detect;
pub mod exp_scale;
pub mod exp_traffic;
pub mod output;
pub mod workloads;

use output::Table;

/// Every reproducible experiment, in paper order.
pub fn all_experiments() -> Vec<(&'static str, fn(usize) -> Table)> {
    vec![
        ("fig2a", |s| exp_scale::fig2(s, false)),
        ("fig2b", |s| exp_scale::fig2(s, true)),
        ("fig3", |_| exp_scale::fig3()),
        ("fig4", exp_cache::fig4),
        ("fig5", exp_cache::fig5),
        ("fig6a", exp_cache::fig6a),
        ("fig6b", exp_cache::fig6b),
        ("fig7", exp_cache::fig7),
        ("fig8a", exp_detect::fig8a),
        ("fig8b", exp_detect::fig8b),
        ("fig8c", exp_detect::fig8c),
        ("fig9a", exp_covert::fig9a),
        ("fig9b", exp_covert::fig9b),
        ("fig10", exp_traffic::fig10),
        ("fig11a", exp_traffic::fig11a),
        ("fig11b", exp_traffic::fig11b),
        ("table2", exp_detect::table2),
        ("table3", exp_cache::table3),
        ("table4", exp_detect::table4),
        ("ablation-cuckoo", exp_ablation::ablation_cuckoo),
        ("ablation-pinning", exp_ablation::ablation_pinning),
        ("ablation-steer-width", exp_ablation::ablation_steer_width),
        ("ablation-cleanup", exp_ablation::ablation_cleanup),
        ("ablation-sampling", exp_ablation::ablation_sampling),
    ]
}
