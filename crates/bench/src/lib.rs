//! # smartwatch-bench
//!
//! The reproduction harness: one function per table/figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index), shared
//! workload builders, and output formatting. The `repro` binary drives
//! everything; Criterion micro-benchmarks live under `benches/`.

// `deny` rather than `forbid`: the `signal` module carries the one
// narrowly-scoped `#[allow(unsafe_code)]` needed for the libc signal(2)
// declaration; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_ablation;
pub mod exp_cache;
pub mod exp_control;
pub mod exp_covert;
pub mod exp_detect;
pub mod exp_engine;
pub mod exp_scale;
pub mod exp_serve;
pub mod exp_traffic;
pub mod output;
pub mod serve;
pub mod signal;
pub mod workloads;

use output::Table;
use smartwatch_telemetry::{Registry, Tracer};

/// Shared context threaded through every experiment: the workload scale
/// plus the observability sinks. Experiments attach components to
/// `registry` (metrics accumulate across experiments in one `repro`
/// invocation) and open shards on `tracer` for sim-time events; the
/// `repro` binary dumps both via `--metrics-json` / `--trace-out`.
pub struct ExpCtx {
    /// Workload multiplier (`repro --scale N`).
    pub scale: usize,
    /// Metric sink shared by every experiment of the invocation.
    pub registry: Registry,
    /// Sim-time trace sink shared by every experiment.
    pub tracer: Tracer,
}

impl ExpCtx {
    /// Fresh context at `scale` with empty metric/trace sinks.
    pub fn new(scale: usize) -> ExpCtx {
        ExpCtx {
            scale,
            registry: Registry::new(),
            tracer: Tracer::default(),
        }
    }
}

/// One experiment entry point: context in, rendered table out.
pub type Experiment = fn(&ExpCtx) -> Table;

/// Every reproducible experiment, in paper order.
pub fn all_experiments() -> Vec<(&'static str, Experiment)> {
    vec![
        ("fig2a", |c| exp_scale::fig2(c, false)),
        ("fig2b", |c| exp_scale::fig2(c, true)),
        ("fig3", exp_scale::fig3),
        ("fig4", exp_cache::fig4),
        ("fig5", exp_cache::fig5),
        ("fig6a", exp_cache::fig6a),
        ("fig6b", exp_cache::fig6b),
        ("fig7", exp_cache::fig7),
        ("fig8a", exp_detect::fig8a),
        ("fig8b", exp_detect::fig8b),
        ("fig8c", exp_detect::fig8c),
        ("fig9a", exp_covert::fig9a),
        ("fig9b", exp_covert::fig9b),
        ("fig10", exp_traffic::fig10),
        ("fig11a", exp_traffic::fig11a),
        ("fig11b", exp_traffic::fig11b),
        ("table2", exp_detect::table2),
        ("table3", exp_cache::table3),
        ("table4", exp_detect::table4),
        ("ablation-cuckoo", exp_ablation::ablation_cuckoo),
        ("ablation-pinning", exp_ablation::ablation_pinning),
        ("ablation-steer-width", exp_ablation::ablation_steer_width),
        ("ablation-cleanup", exp_ablation::ablation_cleanup),
        ("ablation-sampling", exp_ablation::ablation_sampling),
        ("control-sim", exp_control::control_sim),
    ]
}
