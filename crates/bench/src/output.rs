//! Output helpers for the reproduction harness: aligned text tables plus
//! optional JSON dumps for downstream plotting.

use serde::Serialize;

/// A printable experiment result: a title, column headers, and rows.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id, e.g. "fig5a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper expectation vs measured).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as pretty-printed JSON (the `repro --json` output; schema
    /// documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialises")
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&rule.join("-+-"));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Format a float with fixed precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("fig0", "demo", &["x", "value"]);
        t.row(vec!["1".into(), "10.0".into()]);
        t.row(vec!["100".into(), "3.5".into()]);
        t.note("shape holds");
        let s = t.render();
        assert!(s.contains("fig0"));
        assert!(s.contains("  1 |  10.0"));
        assert!(s.contains("note: shape holds"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
