//! Live observability + admin endpoints over a running [`Engine`].
//!
//! `repro engine --listen 127.0.0.1:9184` binds the std-only HTTP
//! listener from [`smartwatch_telemetry::http`] and serves three
//! read-only routes for the lifetime of the run (plus
//! `--serve-hold-ms` afterwards):
//!
//! * `GET /metrics` — the shared registry in Prometheus text exposition
//!   format ([`Snapshot::to_prometheus`](smartwatch_telemetry::Snapshot::to_prometheus)).
//! * `GET /stats.json` — [`Engine::stats_json`]: live
//!   EngineReport-shaped conservation counters, per-shard/per-queue
//!   breakdowns, stage latency snapshots, memory/pool gauges, service
//!   state, and the controller decision audit.
//! * `GET /flight.json` — the engine's flight recorder
//!   ([`FlightRecorder::to_json`](smartwatch_telemetry::FlightRecorder::to_json)).
//!
//! `repro serve` / `repro soak` additionally mount the **admin
//! surface** ([`admin_routes`]): POST endpoints that steer the engine
//! live. Every admin edit rides the engine's lock-free publication
//! machinery — steering/mode/shed commands queue into the bounded
//! [`AdminCmd`] mailbox and are applied by the controller thread at the
//! next epoch boundary; pacing changes flip one atomic the dispatchers
//! re-read at checkpoints; drain raises the graceful-quiesce flag. The
//! packet hot loop never takes a lock on behalf of an operator.
//!
//! | route | body | effect |
//! |---|---|---|
//! | `POST /admin/steer` | `{"table":"blacklist","op":"add","digest":N}` | queue a steering-table edit |
//! | `POST /admin/mode`  | `{"shard":N,"mode":"lite"\|"general"\|"auto"}` | pin / release one shard's mode |
//! | `POST /admin/shed`  | `{"force":true\|false\|null}` | pin / release load shedding |
//! | `POST /admin/pace`  | `{"rate_mpps":2.5\|null}` | live rate override (paced runs) |
//! | `POST /admin/drain` | — | gracefully drain the current segment |
//!
//! Queued commands answer `202 Accepted` (applied at the next epoch);
//! immediate atomics answer `200`; a full mailbox answers `409`;
//! malformed bodies answer `400`/`422`.

use smartwatch_runtime::{AdminCmd, Engine};
use smartwatch_snic::Mode;
use smartwatch_telemetry::http::{HttpRequest, HttpResponse, HttpServer, Route};
use std::sync::Arc;

/// Prometheus text exposition content type.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The standard read-only observability route set over one engine.
pub fn routes(engine: &Arc<Engine>) -> Vec<Route> {
    let metrics = Arc::clone(engine);
    let stats = Arc::clone(engine);
    let flight = Arc::clone(engine);
    vec![
        Route::get("/metrics", move || {
            HttpResponse::ok(
                PROMETHEUS_CONTENT_TYPE,
                metrics.registry().snapshot().to_prometheus(),
            )
        }),
        Route::get("/stats.json", move || {
            HttpResponse::ok("application/json", stats.stats_json())
        }),
        Route::get("/flight.json", move || {
            HttpResponse::ok("application/json", flight.flight().to_json())
        }),
    ]
}

/// The admin control surface over one engine (see the module docs for
/// the endpoint table). Mounted *in addition to* [`routes`] by the
/// service-mode drivers; the plain `--listen` observability plane stays
/// read-only.
pub fn admin_routes(engine: &Arc<Engine>) -> Vec<Route> {
    let steer = Arc::clone(engine);
    let mode = Arc::clone(engine);
    let shed = Arc::clone(engine);
    let pace = Arc::clone(engine);
    let drain = Arc::clone(engine);
    vec![
        Route::on("/admin/steer", &["POST"], move |req| {
            admin_steer(&steer, req)
        }),
        Route::on("/admin/mode", &["POST"], move |req| admin_mode(&mode, req)),
        Route::on("/admin/shed", &["POST"], move |req| admin_shed(&shed, req)),
        Route::on("/admin/pace", &["POST"], move |req| admin_pace(&pace, req)),
        Route::on("/admin/drain", &["POST"], move |_req| {
            drain.request_drain();
            HttpResponse::text(202, "draining\n")
        }),
    ]
}

/// Parse the request body as a JSON object, or answer 400.
fn body_json(req: &HttpRequest) -> Result<serde_json::Value, HttpResponse> {
    serde_json::from_str::<serde_json::Value>(&req.body)
        .map_err(|_| HttpResponse::text(400, "body must be a JSON object\n"))
}

/// Queue an [`AdminCmd`], mapping mailbox back-pressure to 409.
fn queue(engine: &Engine, cmd: AdminCmd) -> HttpResponse {
    if engine.admin(cmd) {
        HttpResponse::text(202, "queued; applies at the next epoch boundary\n")
    } else {
        HttpResponse::text(409, "admin mailbox full; retry after the next epoch\n")
    }
}

fn admin_steer(engine: &Engine, req: &HttpRequest) -> HttpResponse {
    let doc = match body_json(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let digest = match doc.get("digest").and_then(|v| v.as_u64()) {
        Some(d) => d,
        None => return HttpResponse::text(422, "digest must be an unsigned integer\n"),
    };
    let table = doc.get("table").and_then(|v| v.as_str()).unwrap_or("");
    let op = doc.get("op").and_then(|v| v.as_str()).unwrap_or("add");
    let cmd = match (table, op) {
        ("blacklist", "add") => AdminCmd::BlacklistAdd(digest),
        ("blacklist", "remove") => AdminCmd::BlacklistRemove(digest),
        ("whitelist", "add") => AdminCmd::WhitelistAdd(digest),
        ("whitelist", "remove") => AdminCmd::WhitelistRemove(digest),
        _ => {
            return HttpResponse::text(
                422,
                "table must be blacklist|whitelist, op must be add|remove\n",
            )
        }
    };
    queue(engine, cmd)
}

fn admin_mode(engine: &Engine, req: &HttpRequest) -> HttpResponse {
    let doc = match body_json(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let shard = match doc.get("shard").and_then(|v| v.as_u64()) {
        Some(s) if (s as usize) < engine.config().shards => s as usize,
        _ => return HttpResponse::text(422, "shard must index a configured shard\n"),
    };
    let mode = match doc.get("mode").and_then(|v| v.as_str()) {
        Some("general") => Some(Mode::General),
        Some("lite") => Some(Mode::Lite),
        Some("auto") => None,
        _ => return HttpResponse::text(422, "mode must be general|lite|auto\n"),
    };
    queue(engine, AdminCmd::ForceMode { shard, mode })
}

fn admin_shed(engine: &Engine, req: &HttpRequest) -> HttpResponse {
    let doc = match body_json(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let force = match doc.get("force") {
        Some(v) => match v.as_bool() {
            Some(b) => Some(b),
            None if v.is_null() => None,
            None => return HttpResponse::text(422, "force must be true, false or null\n"),
        },
        None => return HttpResponse::text(422, "force must be true, false or null\n"),
    };
    queue(engine, AdminCmd::ForceShed(force))
}

fn admin_pace(engine: &Engine, req: &HttpRequest) -> HttpResponse {
    let doc = match body_json(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    match doc.get("rate_mpps") {
        Some(v) if v.is_null() => {
            engine.set_rate_override(None);
            HttpResponse::text(200, "rate override released\n")
        }
        Some(v) => match v.as_f64() {
            Some(r) if r > 0.0 && r.is_finite() => {
                engine.set_rate_override(Some(r));
                HttpResponse::text(200, "rate override set\n")
            }
            _ => HttpResponse::text(422, "rate_mpps must be a positive number or null\n"),
        },
        None => HttpResponse::text(422, "rate_mpps must be a positive number or null\n"),
    }
}

/// Bind `addr` and serve the read-only [`routes`] over `engine` until
/// the returned server is shut down (or dropped). Port 0 picks an
/// ephemeral port; the bound address is announced on stderr so scripts
/// can scrape it.
pub fn serve(addr: &str, engine: &Arc<Engine>) -> std::io::Result<HttpServer> {
    let server = HttpServer::serve(addr, routes(engine))?;
    eprintln!(
        "repro: serving /metrics /stats.json /flight.json on http://{}",
        server.local_addr()
    );
    Ok(server)
}

/// Bind `addr` and serve [`routes`] *plus* [`admin_routes`] — the
/// service-mode control socket.
pub fn serve_admin(addr: &str, engine: &Arc<Engine>) -> std::io::Result<HttpServer> {
    let mut all = routes(engine);
    all.extend(admin_routes(engine));
    let server = HttpServer::serve(addr, all)?;
    eprintln!(
        "repro: service admin socket on http://{} \
         (GET /metrics /stats.json /flight.json; POST /admin/*)",
        server.local_addr()
    );
    Ok(server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_runtime::EngineConfig;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let status: u16 = out
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = out
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
        request(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn all_three_routes_answer_before_and_after_a_run() {
        let engine = Arc::new(Engine::new(EngineConfig::new(1)));
        let server = serve("127.0.0.1:0", &engine).unwrap();
        let addr = server.local_addr();

        // Before any run: endpoints answer with empty-but-valid bodies.
        let (status, body) = get(addr, "/stats.json");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(v.get("offered").and_then(|x| x.as_u64()), Some(0));

        let (status, body) = get(addr, "/flight.json");
        assert_eq!(status, 200);
        assert!(serde_json::from_str::<serde_json::Value>(&body).is_ok());

        let (status, _) = get(addr, "/metrics");
        assert_eq!(status, 200);

        server.shutdown();
    }

    #[test]
    fn admin_routes_queue_commands_and_validate_bodies() {
        let engine = Arc::new(Engine::new(EngineConfig::new(2)));
        let server = serve_admin("127.0.0.1:0", &engine).unwrap();
        let addr = server.local_addr();

        // Valid steering edits queue into the admin mailbox.
        let (status, _) = post(
            addr,
            "/admin/steer",
            r#"{"table":"blacklist","op":"add","digest":42}"#,
        );
        assert_eq!(status, 202);
        let (status, _) = post(
            addr,
            "/admin/steer",
            r#"{"table":"whitelist","op":"remove","digest":7}"#,
        );
        assert_eq!(status, 202);
        let (status, _) = post(addr, "/admin/mode", r#"{"shard":1,"mode":"lite"}"#);
        assert_eq!(status, 202);
        let (status, _) = post(addr, "/admin/shed", r#"{"force":true}"#);
        assert_eq!(status, 202);
        assert_eq!(engine.admin_queued(), 4);

        // Pace override applies immediately via the atomic.
        let (status, _) = post(addr, "/admin/pace", r#"{"rate_mpps":2.5}"#);
        assert_eq!(status, 200);
        assert!(engine.rate_override().is_some());
        let (status, _) = post(addr, "/admin/pace", r#"{"rate_mpps":null}"#);
        assert_eq!(status, 200);
        assert!(engine.rate_override().is_none());

        // Drain raises the graceful-quiesce flag.
        let (status, _) = post(addr, "/admin/drain", "");
        assert_eq!(status, 202);
        assert!(engine.drain_requested());
        engine.clear_drain();

        // Validation: bad table, out-of-range shard, malformed JSON,
        // wrong method on an admin route.
        let (status, _) = post(addr, "/admin/steer", r#"{"table":"greylist","digest":1}"#);
        assert_eq!(status, 422);
        let (status, _) = post(addr, "/admin/mode", r#"{"shard":9,"mode":"lite"}"#);
        assert_eq!(status, 422);
        let (status, _) = post(addr, "/admin/shed", "not json");
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/admin/drain");
        assert_eq!(status, 405);

        // Nothing leaked into the queue from the rejected requests.
        assert_eq!(engine.admin_queued(), 4);
        server.shutdown();
    }
}
