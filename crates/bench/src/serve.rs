//! Live observability endpoints over a running [`Engine`].
//!
//! `repro engine --listen 127.0.0.1:9184` binds the std-only HTTP
//! listener from [`smartwatch_telemetry::http`] and serves three routes
//! for the lifetime of the run (plus `--serve-hold-ms` afterwards):
//!
//! * `/metrics` — the shared registry in Prometheus text exposition
//!   format ([`Snapshot::to_prometheus`](smartwatch_telemetry::Snapshot::to_prometheus)).
//! * `/stats.json` — [`Engine::stats_json`]: live EngineReport-shaped
//!   conservation counters, per-shard/per-queue breakdowns, stage
//!   latency snapshots, and the controller decision audit.
//! * `/flight.json` — the engine's flight recorder
//!   ([`FlightRecorder::to_json`](smartwatch_telemetry::FlightRecorder::to_json)).
//!
//! Every handler is a snapshot read over lock-free state, so polling
//! never perturbs the hot path beyond the shared-counter loads the
//! engine already pays.

use smartwatch_runtime::Engine;
use smartwatch_telemetry::http::{HttpResponse, HttpServer, Route};
use std::sync::Arc;

/// Prometheus text exposition content type.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The standard observability route set over one engine.
pub fn routes(engine: &Arc<Engine>) -> Vec<Route> {
    let metrics = Arc::clone(engine);
    let stats = Arc::clone(engine);
    let flight = Arc::clone(engine);
    vec![
        (
            "/metrics".to_string(),
            Box::new(move || {
                HttpResponse::ok(
                    PROMETHEUS_CONTENT_TYPE,
                    metrics.registry().snapshot().to_prometheus(),
                )
            }),
        ),
        (
            "/stats.json".to_string(),
            Box::new(move || HttpResponse::ok("application/json", stats.stats_json())),
        ),
        (
            "/flight.json".to_string(),
            Box::new(move || HttpResponse::ok("application/json", flight.flight().to_json())),
        ),
    ]
}

/// Bind `addr` and serve [`routes`] over `engine` until the returned
/// server is shut down (or dropped). Port 0 picks an ephemeral port;
/// the bound address is announced on stderr so scripts can scrape it.
pub fn serve(addr: &str, engine: &Arc<Engine>) -> std::io::Result<HttpServer> {
    let server = HttpServer::serve(addr, routes(engine))?;
    eprintln!(
        "repro: serving /metrics /stats.json /flight.json on http://{}",
        server.local_addr()
    );
    Ok(server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_runtime::EngineConfig;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn all_three_routes_answer_before_and_after_a_run() {
        let engine = Arc::new(Engine::new(EngineConfig::new(1)));
        let server = serve("127.0.0.1:0", &engine).unwrap();
        let addr = server.local_addr();

        // Before any run: endpoints answer with empty-but-valid bodies.
        let (status, body) = get(addr, "/stats.json");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(v.get("offered").and_then(|x| x.as_u64()), Some(0));

        let (status, body) = get(addr, "/flight.json");
        assert_eq!(status, 200);
        assert!(serde_json::from_str::<serde_json::Value>(&body).is_ok());

        let (status, _) = get(addr, "/metrics");
        assert_eq!(status, 200);

        server.shutdown();
    }
}
