//! Graceful SIGINT/SIGTERM handling for the long-running `repro`
//! drivers (`engine`, `control`, `serve`, `soak`) — std-only, no
//! external crates.
//!
//! The handler does the only async-signal-safe thing possible: it sets
//! a process-global atomic flag. Drivers install it once
//! ([`install`]) and watch the flag — either directly between
//! segments, or via [`drain_watch`], which polls from a helper thread
//! and translates the first observation into
//! [`Engine::request_drain`](smartwatch_runtime::Engine::request_drain),
//! so the mesh quiesces through the exact end-of-trace path and the
//! final summary is still conserved.
//!
//! The second signal falls back to the process default (the handler is
//! restored after the first delivery), so a wedged run can still be
//! killed with a second Ctrl-C.

use smartwatch_runtime::Engine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the handler on the first SIGINT/SIGTERM.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// `SIG_DFL` — restore default disposition (see `signal(2)`).
const SIG_DFL: usize = 0;
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

// The libc signal-disposition call; std links libc on every supported
// platform, so declaring it here adds no dependency. `signal(2)`
// semantics (one-shot re-arm handled below) are all we need for a
// set-a-flag handler.
#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The installed handler: restore the default disposition (so a
    /// second signal kills a wedged process) and raise the flag. Both
    /// operations are async-signal-safe.
    pub extern "C" fn on_signal(signum: i32) {
        unsafe {
            signal(signum, super::SIG_DFL);
        }
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Install the SIGINT/SIGTERM flag handler. Idempotent; call once at
/// driver start.
#[allow(unsafe_code)]
pub fn install() {
    unsafe {
        ffi::signal(SIGINT, ffi::on_signal as *const () as usize);
        ffi::signal(SIGTERM, ffi::on_signal as *const () as usize);
    }
}

/// Whether a SIGINT/SIGTERM has been observed (or [`trigger`] called).
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Clear the flag (tests; drivers treat the flag as latched).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Raise the flag as if a signal had arrived (tests, internal wiring).
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Watch the interrupt flag from a helper thread for the duration of a
/// run: the first observation calls `engine.request_drain()`, so the
/// running segment quiesces gracefully and its report stays conserved.
/// Dropping the guard stops the watcher.
pub fn drain_watch(engine: &Arc<Engine>) -> DrainWatch {
    let stop = Arc::new(AtomicBool::new(false));
    let engine = Arc::clone(engine);
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("sw-signal".into())
        .spawn(move || {
            while !thread_stop.load(Ordering::Acquire) {
                if interrupted() {
                    engine.request_drain();
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
        .expect("spawn signal watcher");
    DrainWatch {
        stop,
        handle: Some(handle),
    }
}

/// Guard for [`drain_watch`]; stops and joins the watcher on drop.
pub struct DrainWatch {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DrainWatch {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_runtime::EngineConfig;

    #[test]
    fn flag_latches_and_resets() {
        reset();
        assert!(!interrupted());
        trigger();
        assert!(interrupted());
        reset();
        assert!(!interrupted());
    }

    #[test]
    fn drain_watch_translates_the_flag_into_a_drain_request() {
        reset();
        let engine = Arc::new(Engine::new(EngineConfig::new(1)));
        let watch = drain_watch(&engine);
        assert!(!engine.drain_requested());
        trigger();
        // The watcher polls every 25 ms; give it a few rounds.
        for _ in 0..200 {
            if engine.drain_requested() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(engine.drain_requested());
        drop(watch);
        reset();
    }
}
