//! Shared workload builders for the reproduction harness.
//!
//! All experiments run on scaled-down stand-ins for the paper's traces
//! (see DESIGN.md §1). `scale` multiplies the default workload size;
//! scale 1 keeps every experiment in seconds on a laptop.

use smartwatch_net::{Dur, Ts};
use smartwatch_trace::attacks::auth::{
    bruteforce, kerberos_tickets, tls_with_certs, ArtefactInfo, BruteforceConfig, KerberosConfig,
    TlsConfig,
};
use smartwatch_trace::attacks::dns_amp::{dns_amplification, DnsAmpConfig};
use smartwatch_trace::attacks::portscan::{incomplete_flows, portscan, ScanConfig};
use smartwatch_trace::attacks::rst::{forged_rst, ForgedRstConfig};
use smartwatch_trace::attacks::slowloris::{slowloris, SlowlorisConfig};
use smartwatch_trace::attacks::worm::{worm_outbreak, WormConfig};
use smartwatch_trace::background::{preset_trace, Preset};
use smartwatch_trace::Trace;

/// A CAIDA-year stand-in sized for FlowCache experiments.
pub fn caida(preset: Preset, scale: usize, seed: u64) -> Trace {
    preset_trace(preset, 25_000 * scale, Dur::from_secs(4), seed)
}

/// The 64-byte stress rewrite of a CAIDA trace (the paper's worst case).
pub fn caida_64b(preset: Preset, scale: usize, seed: u64) -> Trace {
    caida(preset, scale, seed).truncated_64b()
}

/// `n` packets over `n` *distinct* flows in hash-scattered order: the
/// cold-row adversarial workload for the FlowCache. Nearly every lookup
/// probes a different row, so on any table larger than the last-level
/// cache the data path is DRAM-latency-bound — the regime the batched
/// prefetch pipeline exists for.
pub fn scattered_flows(n: usize, seed: u64) -> Vec<smartwatch_net::Packet> {
    use smartwatch_net::{hash::splitmix64, FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;
    (0..n)
        .map(|i| {
            let r = splitmix64(i as u64 ^ seed);
            let key = FlowKey::tcp(
                Ipv4Addr::from(0x0A00_0000 | ((r >> 40) as u32 & 0x00FF_FFFF)),
                ((r >> 24) as u16) | 1,
                Ipv4Addr::new(192, 168, (r >> 8) as u8, r as u8),
                443,
            );
            PacketBuilder::new(key, Ts::from_nanos(i as u64)).build()
        })
        .collect()
}

/// The Table-4 evaluation mix plus the TLS/Kerberos artefact registries
/// the host analyzers resolve against.
pub fn attack_mix_full(scale: usize, seed: u64) -> (Trace, Vec<ArtefactInfo>, Vec<ArtefactInfo>) {
    let base = attack_mix(scale, seed);
    let (tls, certs) = tls_with_certs(&TlsConfig {
        seed: seed + 8,
        sessions: 60,
        expiring_fraction: 0.25,
        window: Dur::from_secs(8),
        now: Ts::from_millis(600),
        horizon: Dur::from_secs(30 * 86_400),
    });
    let (krb, tickets) = kerberos_tickets(&KerberosConfig {
        seed: seed + 9,
        requests: 60,
        suspicious_fraction: 0.25,
        window: Dur::from_secs(8),
        now: Ts::from_millis(700),
        max_lifetime: Dur::from_secs(36_000),
    });
    (Trace::merge([base, tls, krb]), certs, tickets)
}

/// The Table-4 evaluation mix: background plus every labelled attack the
/// relative-detection comparison scores, with disjoint attacker pools.
pub fn attack_mix(scale: usize, seed: u64) -> Trace {
    let bg = preset_trace(Preset::Caida2018, 600 * scale, Dur::from_secs(12), seed);

    let mut ssh = BruteforceConfig::ssh(
        smartwatch_trace::attacks::victim_ip(0),
        Ts::from_millis(300),
        seed,
    );
    ssh.attempt_gap = Dur::from_millis(600);
    ssh.source_base = 0;

    let mut ftp = BruteforceConfig::ftp(
        smartwatch_trace::attacks::victim_ip(2),
        Ts::from_millis(500),
        seed + 1,
    );
    ftp.attempt_gap = Dur::from_millis(700);
    ftp.source_base = 16;

    let scan = portscan(&ScanConfig {
        scanner: 32,
        ..ScanConfig::with_delay(Dur::from_millis(80), 80, seed + 2)
    });

    let rst = forged_rst(&ForgedRstConfig {
        seed: seed + 3,
        forged_victims: 12,
        genuine_rsts: 12,
        race_gap: Dur::from_millis(40),
        rst_retransmit_fraction: 0.3,
        start: Ts::from_secs(1),
    });

    let slow = slowloris(&SlowlorisConfig {
        conns_per_attacker: 28,
        fragments: 8,
        fragment_gap: Dur::from_millis(2_200),
        ..SlowlorisConfig::new(
            smartwatch_trace::attacks::victim_ip(1),
            Ts::from_millis(800),
            seed + 4,
        )
    });

    let mut amp_cfg = DnsAmpConfig::new(
        smartwatch_trace::background::client_ip(999),
        Ts::from_secs(2),
        seed + 5,
    );
    amp_cfg.query_gap = Dur::from_millis(120);
    amp_cfg.queries_per_resolver = 60;
    let amp = dns_amplification(&amp_cfg);

    // Worm sized so the outbreak is detectable but does not flood the
    // whole mix with single-packet flows (the default saturates its pool).
    let worm = worm_outbreak(&WormConfig {
        signature: 0x3333_0000_5EED_0001,
        start: Ts::from_secs(1),
        patient_zeros: 4,
        probe_rate: 8.0,
        infect_prob: 0.08,
        address_pool: 2_000,
        duration: Dur::from_secs(8),
        ..WormConfig::new(seed + 6)
    });

    let incomplete = incomplete_flows(80, Ts::from_millis(400), seed + 7);

    Trace::merge([
        bg,
        bruteforce(&ssh),
        bruteforce(&ftp),
        scan,
        rst,
        slow,
        amp,
        worm,
        incomplete,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::AttackKind;

    #[test]
    fn attack_mix_contains_all_scored_kinds() {
        let t = attack_mix(1, 5);
        for kind in [
            AttackKind::SshBruteforce,
            AttackKind::FtpBruteforce,
            AttackKind::StealthyPortScan,
            AttackKind::ForgedTcpRst,
            AttackKind::Slowloris,
            AttackKind::DnsAmplification,
            AttackKind::Worm,
            AttackKind::TcpIncompleteFlows,
        ] {
            assert!(!t.labelled_flows(kind).is_empty(), "missing {kind}");
        }
    }

    #[test]
    fn attacker_pools_are_disjoint() {
        let t = attack_mix(1, 5);
        use std::collections::{HashMap, HashSet};
        let mut per_kind: HashMap<AttackKind, HashSet<std::net::Ipv4Addr>> = HashMap::new();
        for p in t.iter() {
            if let Some(k) = p.label.kind() {
                if matches!(
                    k,
                    AttackKind::SshBruteforce
                        | AttackKind::FtpBruteforce
                        | AttackKind::StealthyPortScan
                ) {
                    per_kind.entry(k).or_default().insert(p.key.src_ip);
                }
            }
        }
        let ssh = &per_kind[&AttackKind::SshBruteforce];
        let ftp = &per_kind[&AttackKind::FtpBruteforce];
        let scan: HashSet<_> = per_kind[&AttackKind::StealthyPortScan]
            .iter()
            .filter(|ip| u32::from(**ip) >> 17 == 0xC612_0000 >> 17)
            .copied()
            .collect();
        assert!(ssh.is_disjoint(ftp), "ssh/ftp sources overlap");
        assert!(ssh.is_disjoint(&scan), "ssh/scan sources overlap");
    }
}

#[cfg(test)]
mod full_mix_tests {
    use super::*;
    use smartwatch_net::AttackKind;

    #[test]
    fn full_mix_carries_artefacts_on_the_wire() {
        let (trace, certs, tickets) = attack_mix_full(1, 5);
        assert!(!certs.is_empty() && !tickets.is_empty());
        // Every registered digest appears on some packet.
        let wire: std::collections::HashSet<u64> = trace
            .iter()
            .map(|p| p.payload_digest)
            .filter(|d| *d != 0)
            .collect();
        for a in certs.iter().chain(&tickets) {
            assert!(wire.contains(&a.digest), "digest {:x} missing", a.digest);
        }
        assert!(!trace.labelled_flows(AttackKind::ExpiringSslCert).is_empty());
        assert!(!trace.labelled_flows(AttackKind::KerberosTicket).is_empty());
    }
}
