//! Integration tests that execute the real `repro` and `swtrace`
//! binaries, exercising argument parsing, pcap I/O and experiment output
//! end to end.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn repro_list_shows_every_experiment() {
    let (stdout, _, ok) = run(env!("CARGO_BIN_EXE_repro"), &["list"]);
    assert!(ok);
    for id in ["fig2a", "fig5", "fig10", "table4", "ablation-cuckoo"] {
        assert!(stdout.contains(id), "missing {id} in repro list");
    }
}

#[test]
fn repro_rejects_unknown_experiment() {
    let (_, stderr, ok) = run(env!("CARGO_BIN_EXE_repro"), &["fig99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown experiment \"fig99\""));
}

#[test]
fn repro_rejects_unknown_flag_even_next_to_a_valid_experiment() {
    // A typo'd flag must not be silently swallowed just because the
    // other token names a real experiment.
    let (_, stderr, ok) = run(env!("CARGO_BIN_EXE_repro"), &["fig3", "--bogus-flag"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag \"--bogus-flag\""));
}

#[test]
fn repro_rejects_rx_queues_with_rtc_datapath() {
    // The fused datapath has no dispatcher tier: an explicit
    // `--rx-queues` cannot be honoured and must fail fast (exit 2)
    // with a named explanation, not run with the flag silently ignored.
    let (_, stderr, ok) = run(
        env!("CARGO_BIN_EXE_repro"),
        &["engine", "--datapath", "rtc", "--rx-queues", "2"],
    );
    assert!(!ok);
    assert!(
        stderr.contains("--rx-queues does not apply to `--datapath rtc`"),
        "want the named contradiction, got: {stderr}"
    );
}

#[test]
fn repro_rejects_pin_cores_without_rtc() {
    let (_, stderr, ok) = run(env!("CARGO_BIN_EXE_repro"), &["engine", "--pin-cores"]);
    assert!(!ok);
    assert!(stderr.contains("--pin-cores requires `--datapath rtc`"));
}

#[test]
fn repro_rejects_a_bad_datapath_value() {
    let (_, stderr, ok) = run(
        env!("CARGO_BIN_EXE_repro"),
        &["engine", "--datapath", "fused"],
    );
    assert!(!ok);
    assert!(stderr.contains("--datapath must be `pipeline` or `rtc`"));
}

#[test]
fn repro_engine_rtc_runs_and_reports_the_datapath() {
    let (stdout, _, ok) = run(
        env!("CARGO_BIN_EXE_repro"),
        &[
            "engine",
            "--datapath",
            "rtc",
            "--packets",
            "20000",
            "--json",
        ],
    );
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    let row = &v["rows"][0];
    assert!(
        row.as_array()
            .expect("row array")
            .iter()
            .any(|c| c.as_str() == Some("rtc")),
        "datapath column carries the mode: {row}"
    );
}

#[test]
fn repro_json_output_parses() {
    let (stdout, _, ok) = run(env!("CARGO_BIN_EXE_repro"), &["fig3", "--json"]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["id"], "fig3");
    assert!(v["rows"].as_array().map(|r| !r.is_empty()).unwrap_or(false));
}

#[test]
fn swtrace_pipeline_round_trips() {
    let dir = std::env::temp_dir().join(format!("swtrace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bg = dir.join("bg.pcap");
    let scan = dir.join("scan.pcap");
    let mixed = dir.join("mixed.pcap");
    let stress = dir.join("stress.pcap");
    let sw = env!("CARGO_BIN_EXE_swtrace");

    let (_, e, ok) = run(
        sw,
        &[
            "gen",
            "--preset",
            "caida2018",
            "--flows",
            "200",
            "--secs",
            "2",
            "--seed",
            "5",
            "-o",
            bg.to_str().unwrap(),
        ],
    );
    assert!(ok, "gen failed: {e}");
    let (_, e, ok) = run(
        sw,
        &[
            "attack",
            "portscan",
            "--delay-ms",
            "20",
            "--probes",
            "50",
            "-o",
            scan.to_str().unwrap(),
        ],
    );
    assert!(ok, "attack failed: {e}");
    let (_, e, ok) = run(
        sw,
        &[
            "merge",
            bg.to_str().unwrap(),
            scan.to_str().unwrap(),
            "-o",
            mixed.to_str().unwrap(),
        ],
    );
    assert!(ok, "merge failed: {e}");
    let (_, e, ok) = run(
        sw,
        &[
            "rewrite64",
            mixed.to_str().unwrap(),
            "-o",
            stress.to_str().unwrap(),
        ],
    );
    assert!(ok, "rewrite64 failed: {e}");

    let (info, _, ok) = run(sw, &["info", mixed.to_str().unwrap()]);
    assert!(ok);
    assert!(info.contains("packets"));
    assert!(info.contains("syn-only"));

    // The merged pcap parses back in-process with the right packet count.
    let merged = smartwatch_net::pcap::read(&std::fs::read(&mixed).unwrap()).unwrap();
    let background = smartwatch_net::pcap::read(&std::fs::read(&bg).unwrap()).unwrap();
    let scan_pkts = smartwatch_net::pcap::read(&std::fs::read(&scan).unwrap()).unwrap();
    assert_eq!(merged.len(), background.len() + scan_pkts.len());
    // And the 64 B rewrite really truncates every frame.
    let rewritten = smartwatch_net::pcap::read(&std::fs::read(&stress).unwrap()).unwrap();
    assert!(rewritten.iter().all(|p| p.wire_len == 64));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swtrace_reports_missing_output_flag() {
    let (_, stderr, ok) = run(env!("CARGO_BIN_EXE_swtrace"), &["gen", "--flows", "10"]);
    assert!(!ok);
    assert!(stderr.contains("-o"));
}
