//! Satellite: the control plane's deterministic-summary contract.
//!
//! The controller is a pure state machine; driven through the same
//! seeded virtual-time load profile twice it must produce byte-stable
//! output — the counters-only summary, the rendered `control-sim`
//! table, and the event timeline all identical across runs.

use smartwatch_bench::{exp_control, ExpCtx};
use smartwatch_control::{simulate, ControlConfig, LoadProfile};

#[test]
fn control_sim_summary_is_byte_identical_across_runs() {
    let a = simulate(ControlConfig::default(), &LoadProfile::default());
    let b = simulate(ControlConfig::default(), &LoadProfile::default());
    assert_eq!(
        a.summary, b.summary,
        "identical seeded drives must summarise identically"
    );
    assert!(
        a.summary.contains("control-summary v1"),
        "summary must carry its schema tag:\n{}",
        a.summary
    );
    // The timeline (excluded from the summary on purpose) is still
    // deterministic: same events in the same epochs.
    assert_eq!(a.report.timeline, b.report.timeline);
    assert_eq!(a.lite_epochs, b.lite_epochs);
}

#[test]
fn control_sim_table_is_byte_identical_across_runs() {
    let ctx = ExpCtx::new(1);
    let t1 = exp_control::control_sim(&ctx);
    let t2 = exp_control::control_sim(&ctx);
    assert_eq!(t1.render(), t2.render());
    assert_eq!(t1.to_json(), t2.to_json());
}

#[test]
fn control_sim_seed_changes_the_stream_but_not_the_shape() {
    let base = simulate(ControlConfig::default(), &LoadProfile::default());
    let other = simulate(
        ControlConfig::default(),
        &LoadProfile {
            seed: 0xD1FF_5EED,
            ..LoadProfile::default()
        },
    );
    // Shape invariants survive any seed: the spike flips Lite and the
    // tail recovers, under the same epoch count.
    assert_eq!(base.report.epochs, other.report.epochs);
    assert!(base.lite_epochs > 0 && other.lite_epochs > 0);
    assert_eq!(base.report.shed_active, other.report.shed_active);
}
