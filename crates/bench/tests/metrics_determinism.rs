//! The `--metrics-json` / `--trace-out` contract: two same-seed runs of
//! an experiment must register the same metrics with byte-identical
//! exported values, and the fig5 registry must carry the observability
//! surface the harness promises (per-policy cache counters, per-PME
//! accounting, latency histograms, the escalation-rate gauge).

use smartwatch_bench::{exp_cache, ExpCtx};
use smartwatch_telemetry::Snapshot;

fn fig5_run() -> (String, String, Snapshot) {
    let ctx = ExpCtx::new(1);
    let _ = exp_cache::fig5(&ctx);
    let snap = ctx.registry.snapshot();
    (snap.to_json(), ctx.tracer.to_chrome_json(), snap)
}

#[test]
fn fig5_metrics_json_is_byte_identical_across_runs() {
    let (m1, t1, _) = fig5_run();
    let (m2, t2, _) = fig5_run();
    assert_eq!(m1, m2, "same-seed runs must export identical metrics JSON");
    assert_eq!(t1, t2, "same-seed runs must export identical traces");
}

#[test]
fn fig5_registry_carries_the_promised_surface() {
    let (_, _, snap) = fig5_run();

    // FlowCache hit/miss/evict per policy: all four fig5 policies.
    for policy in ["lru", "lpc", "fifo", "lru-lpc"] {
        for metric in ["p_hits", "misses", "evictions"] {
            let rendered = format!("snic.cache.{metric}{{policy={policy}}}");
            assert!(
                snap.counter(&rendered).is_some(),
                "missing counter {rendered}"
            );
        }
    }

    // Per-PME busy/stall counters, one pair per simulated PME.
    let pme_busy = snap
        .counters
        .iter()
        .filter(|(id, _)| id.name == "snic.pme.busy_ns")
        .count();
    let pme_stall = snap
        .counters
        .iter()
        .filter(|(id, _)| id.name == "snic.pme.stall_ns")
        .count();
    assert!(
        pme_busy >= 2,
        "expected per-PME busy counters, got {pme_busy}"
    );
    assert_eq!(pme_busy, pme_stall, "busy/stall counters must pair up");

    // Escalation-rate gauge, overall and per policy, in [0, 1].
    let esc = snap
        .gauge("core.escalation_rate")
        .expect("escalation gauge");
    assert!((0.0..=1.0).contains(&esc), "escalation rate {esc}");
    assert!(snap.gauge("core.escalation_rate{policy=lru-lpc}").is_some());

    // At least three latency histograms with populated percentiles.
    let lat_hists: Vec<_> = snap
        .hists
        .iter()
        .filter(|(id, h)| id.name.ends_with("_ns") && h.count > 0)
        .collect();
    assert!(
        lat_hists.len() >= 3,
        "expected ≥3 populated latency histograms, got {}",
        lat_hists.len()
    );
    for (id, h) in &lat_hists {
        assert!(
            h.p50 <= h.p99 && h.p99 <= h.p999 && h.p999 <= h.max,
            "percentiles out of order for {}",
            id.render()
        );
    }
}

#[test]
fn experiments_accumulate_into_one_registry() {
    // Running a second experiment on the same context must not clobber
    // fig5's metrics — the registry accumulates across the invocation.
    let ctx = ExpCtx::new(1);
    let _ = exp_cache::fig5(&ctx);
    let before = ctx.registry.snapshot().counters.len();
    let _ = exp_cache::fig4(&ctx);
    let after = ctx.registry.snapshot();
    assert!(after.counters.len() >= before);
    assert!(after.counter("snic.cache.p_hits{policy=lru-lpc}").is_some());
}
