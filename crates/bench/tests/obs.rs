//! Observability-plane integration tests: wall-clock tracing coverage,
//! live `/stats.json` vs the final report, per-queue Prometheus
//! families, and the flight recorder as a faithful control-plane
//! black box.

use smartwatch_bench::exp_control::{control_config, ControlRunSpec};
use smartwatch_bench::exp_engine::{engine_run_full, EngineRunSpec, EngineWorkload};
use smartwatch_bench::{serve, workloads, ExpCtx};
use smartwatch_runtime::{Engine, EngineConfig, MergePolicy, Pace};
use smartwatch_snic::Mode;
use smartwatch_telemetry::FlightKind;
use smartwatch_trace::background::Preset;
use std::io::{Read, Write};
use std::net::TcpStream;

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The `runtime_queue_*` slice of the Prometheus exposition, in
/// rendered order (HELP/TYPE lines included).
fn queue_section(ctx: &ExpCtx) -> String {
    ctx.registry
        .snapshot()
        .to_prometheus()
        .lines()
        .filter(|l| l.contains("runtime_queue_"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// S4: the per-queue counter families are complete (every family ×
/// every queue label) and byte-deterministic across same-spec runs,
/// for 1, 2 and 4 RX queues.
#[test]
fn per_queue_prometheus_families_are_complete_and_deterministic() {
    for rx_queues in [1usize, 2, 4] {
        let spec = EngineRunSpec {
            packets: 20_000,
            rx_queues,
            ..EngineRunSpec::default()
        };
        let run = || {
            let ctx = ExpCtx::new(1);
            let (_, report, _) = engine_run_full(&ctx, &spec);
            assert!(report.conserved());
            queue_section(&ctx)
        };
        let a = run();
        let b = run();
        assert_eq!(
            a, b,
            "runtime.queue.* families must be byte-deterministic for rx_queues={rx_queues}"
        );
        for family in [
            "runtime_queue_offered",
            "runtime_queue_ingested",
            "runtime_queue_ingest_dropped",
            "runtime_queue_shed",
            "runtime_queue_steer_dropped",
        ] {
            assert!(
                a.contains(&format!("# TYPE {family} counter")),
                "missing TYPE line for {family} at rx_queues={rx_queues}"
            );
            for q in 0..rx_queues {
                let series = format!("{family}{{queue=\"{q}\"}}");
                assert!(
                    a.contains(&series),
                    "missing series {series} at rx_queues={rx_queues}:\n{a}"
                );
            }
        }
    }
}

/// Tentpole: a traced run produces a parseable chrome-trace document
/// with at least one complete span on every dispatcher, shard, and
/// host-worker track.
#[test]
fn traced_run_covers_every_engine_thread() {
    let ctx = ExpCtx::new(1);
    let spec = EngineRunSpec {
        packets: 20_000,
        rx_queues: 2,
        workload: EngineWorkload::Mix, // exercises host escalation
        trace_sample: 1,
        ..EngineRunSpec::default()
    };
    let (_, report, _) = engine_run_full(&ctx, &spec);
    assert!(report.escalated() > 0, "mix workload must escalate");
    assert!(report.host_processed > 0, "host workers must see traffic");

    let doc: serde_json::Value =
        serde_json::from_str(&ctx.tracer.to_chrome_json()).expect("valid chrome-trace JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut tracks: Vec<(u64, String)> = Vec::new();
    let mut span_tids: Vec<u64> = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let tid = e.get("tid").and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
        if ph == "M" {
            if let Some(name) = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
            {
                tracks.push((tid, name.to_string()));
            }
        } else if ph == "X" {
            span_tids.push(tid);
        }
    }
    for thread in [
        "sw-rxq-0",
        "sw-rxq-1",
        "sw-shard-0",
        "sw-shard-1",
        "sw-host-0",
    ] {
        let tid = tracks
            .iter()
            .find(|(_, n)| n == thread)
            .map(|(t, _)| *t)
            .unwrap_or_else(|| panic!("no track named {thread}: {tracks:?}"));
        assert!(
            span_tids.contains(&tid),
            "track {thread} carries no spans (tids with spans: {span_tids:?})"
        );
    }
}

/// Tentpole: after a run, `/stats.json` (the same document the live
/// endpoint serves) agrees with the final [`EngineReport`] on every
/// conservation number, and all three routes answer over HTTP.
#[test]
fn live_stats_match_the_final_report() {
    let ctx = ExpCtx::new(1);
    let spec = EngineRunSpec {
        packets: 20_000,
        ..EngineRunSpec::default()
    };
    let (_, report, engine) = engine_run_full(&ctx, &spec);

    let stats: serde_json::Value =
        serde_json::from_str(&engine.stats_json()).expect("stats.json is valid JSON");
    let field = |k: &str| {
        stats
            .get(k)
            .unwrap_or_else(|| panic!("stats.json missing {k}"))
    };
    assert_eq!(field("offered").as_u64(), Some(report.offered));
    assert_eq!(field("processed").as_u64(), Some(report.processed()));
    assert_eq!(
        field("ingest_dropped").as_u64(),
        Some(report.ingest_dropped())
    );
    assert_eq!(field("shed").as_u64(), Some(report.shed()));
    assert_eq!(
        field("steer_dropped").as_u64(),
        Some(report.steer_dropped())
    );
    assert_eq!(field("conserved").as_bool(), Some(report.conserved()));
    assert_eq!(
        field("shards").as_array().map(Vec::len),
        Some(spec.shards),
        "one stats object per shard"
    );

    // The same numbers over the wire.
    let server = serve::serve("127.0.0.1:0", &engine).expect("bind ephemeral port");
    let addr = server.local_addr();
    let (status, body) = get(addr, "/stats.json");
    assert_eq!(status, 200);
    let live: serde_json::Value = serde_json::from_str(&body).expect("live stats parse");
    assert_eq!(
        live.get("offered").and_then(|v| v.as_u64()),
        Some(report.offered)
    );
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.starts_with("# HELP"), "Prometheus exposition format");
    assert!(body.contains("runtime_shard_processed"));
    let (status, body) = get(addr, "/flight.json");
    assert_eq!(status, 200);
    assert!(serde_json::from_str::<serde_json::Value>(&body).is_ok());
    server.shutdown();
}

/// Tentpole: under [`MergePolicy::Ordered`] the flight recorder's
/// control-thread ring reproduces the controller's mode-switch and
/// shed sequence exactly as the [`ControlReport`] timeline records it.
#[test]
fn ordered_flight_recorder_mirrors_the_control_timeline() {
    let spec = ControlRunSpec {
        packets: 100_000,
        ..ControlRunSpec::default()
    };
    let base = workloads::caida_64b(Preset::Caida2018, 1, 0xC7).into_packets();
    let packets: Vec<_> = base.iter().cycle().take(spec.packets).copied().collect();
    let mut cfg = EngineConfig::new(spec.shards);
    cfg.merge = MergePolicy::Ordered;
    let engine = Engine::new(cfg.with_control(control_config(&spec)));
    let report = engine.run(
        &packets,
        Pace::Spike {
            base_mpps: spec.base_mpps,
            peak_mpps: spec.peak_mpps,
            spike_start: spec.spike_start,
            spike_end: spec.spike_end,
        },
    );
    assert!(report.conserved());
    let ctrl = report.control.as_ref().expect("controller ran");
    assert!(ctrl.mode_switches >= 2, "spike must flip modes both ways");

    let mode_code = |m: Mode| match m {
        Mode::General => 0u64,
        Mode::Lite => 1,
    };
    let mut want_switches: Vec<(u64, u64)> = Vec::new();
    let mut want_shed: Vec<(bool, u64)> = Vec::new();
    for e in &ctrl.timeline {
        match e {
            smartwatch_runtime::ControlEvent::ModeSwitch { shard, mode, .. } => {
                want_switches.push((*shard as u64, mode_code(*mode)));
            }
            smartwatch_runtime::ControlEvent::ShedOn { epoch } => want_shed.push((true, *epoch)),
            smartwatch_runtime::ControlEvent::ShedOff { epoch } => want_shed.push((false, *epoch)),
        }
    }

    let rings = engine.flight().snapshot();
    let control_ring = rings
        .iter()
        .find(|(name, _)| name == "sw-control")
        .map(|(_, events)| events)
        .expect("control thread owns a flight ring");
    let got_switches: Vec<(u64, u64)> = control_ring
        .iter()
        .filter(|e| e.kind == FlightKind::ModeSwitch)
        .map(|e| (e.a, e.b))
        .collect();
    let got_shed: Vec<(bool, u64)> = control_ring
        .iter()
        .filter(|e| matches!(e.kind, FlightKind::ShedOn | FlightKind::ShedOff))
        .map(|e| (e.kind == FlightKind::ShedOn, e.a))
        .collect();
    assert_eq!(
        got_switches, want_switches,
        "flight ModeSwitch sequence must match the control timeline"
    );
    assert_eq!(
        got_shed, want_shed,
        "flight shed edges must match the control timeline"
    );
    assert_eq!(
        report.control.as_ref().map(|c| c.decisions.is_empty()),
        Some(false),
        "decision audit rides along in the control report"
    );
}
