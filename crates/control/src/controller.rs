//! The epoch-driven control brain.
//!
//! [`Controller`] is a *pure* state machine: the runtime feeds it one
//! [`EpochInput`] per epoch (cumulative shard counters, host verdicts,
//! heavy-hitter candidates) and it returns one [`EpochDecision`]
//! (per-shard Algorithm 4 mode, the shed flag, and a fresh
//! [`SteeringSnapshot`] when the steering tables changed). It owns no
//! threads and reads no clocks, so identical input streams produce
//! byte-identical decisions — the property the `control-sim`
//! determinism experiment pins down.
//!
//! Per epoch the controller:
//!
//! 1. Derives each shard's arrival rate from the cumulative counter
//!    deltas and runs it through the paper's Algorithm 4 EWMA
//!    ([`smartwatch_snic::SwitchOver`], α = 0.75 with η₂ < η₁
//!    hysteresis) to pick General or Lite per shard.
//! 2. Applies host verdicts to the steering tables: `Whitelist` inserts
//!    into the aging whitelist, `Blacklist` inserts into the aging
//!    blacklist *and* revokes any whitelist entry (blacklist wins).
//! 3. Promotes sustained heavy hitters: a digest whose sampled estimate
//!    clears `promote_pkts_per_epoch` for `promote_epochs` consecutive
//!    epochs joins the whitelist (the paper's benign-elephant
//!    "hoverboard" steering rule).
//! 4. Ages both tables (TTL sweep + capacity bound via
//!    [`smartwatch_net::AgingDigestSet`]).
//! 5. Runs the shed hysteresis: sustained aggregate overload (offered
//!    rate or escalation backlog) turns load shedding on — every shard
//!    is forced to Lite and the dispatcher passes whitelisted flows
//!    only — and sustained calm turns it back off.

use crate::snapshot::SteeringSnapshot;
use smartwatch_host::Verdict;
use smartwatch_net::{AgingDigestSet, BuildDigestHasher, DigestSet, FlowHasher};
use smartwatch_snic::{Mode, SwitchOver};
use smartwatch_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Tuning knobs for the control loop. The defaults target the software
/// engine (per-shard Mpps, not the paper's 30 Mpps hardware ceiling) —
/// construct, then override fields as needed.
#[derive(Clone, Debug)]
pub struct ControlConfig {
    /// Wall-clock epoch period in milliseconds (used by the runtime's
    /// controller thread; the state machine itself is time-free).
    pub epoch_ms: u64,
    /// Flow-hash seed — must match the engine's dispatch seed so
    /// verdict digests line up with dispatch digests.
    pub hash_seed: u64,
    /// Per-shard rate above which Algorithm 4 flips to Lite, in Mpps.
    pub eta_lite_mpps: f64,
    /// Per-shard rate below which Algorithm 4 returns to General, in
    /// Mpps. Must be `< eta_lite_mpps` (hysteresis).
    pub eta_general_mpps: f64,
    /// Aggregate offered rate (all shards, Mpps) that counts as
    /// overload for the shed decision.
    pub shed_on_mpps: f64,
    /// Aggregate offered rate below which an epoch counts as calm.
    pub shed_off_mpps: f64,
    /// Escalation-ring backlog (any shard) that also counts as overload.
    pub shed_backlog: u64,
    /// Consecutive overload (resp. calm) epochs required to enter
    /// (resp. leave) shedding.
    pub shed_sustain_epochs: u32,
    /// Sampled per-epoch packet estimate a digest must clear to count
    /// towards heavy-hitter promotion.
    pub promote_pkts_per_epoch: u64,
    /// Consecutive qualifying epochs before a heavy hitter is promoted
    /// into the whitelist.
    pub promote_epochs: u32,
    /// Whitelist entries untouched for this many epochs expire.
    pub whitelist_ttl_epochs: u64,
    /// Blacklist entries untouched for this many epochs expire.
    pub blacklist_ttl_epochs: u64,
    /// Hard capacity bound on the whitelist (stalest evicted beyond).
    pub whitelist_capacity: usize,
    /// Hard capacity bound on the blacklist.
    pub blacklist_capacity: usize,
    /// Bound on the retained event timeline (oldest dropped beyond).
    pub timeline_capacity: usize,
    /// Bound on the retained per-epoch decision audit ring (oldest
    /// [`DecisionRecord`]s dropped beyond).
    pub decision_capacity: usize,
}

impl Default for ControlConfig {
    fn default() -> ControlConfig {
        ControlConfig {
            epoch_ms: 5,
            hash_seed: 0x51CC,
            eta_lite_mpps: 2.5,
            eta_general_mpps: 1.8,
            shed_on_mpps: 6.0,
            shed_off_mpps: 2.0,
            shed_backlog: 3072,
            shed_sustain_epochs: 3,
            promote_pkts_per_epoch: 2000,
            promote_epochs: 2,
            whitelist_ttl_epochs: 200,
            blacklist_ttl_epochs: 1000,
            whitelist_capacity: 65_536,
            blacklist_capacity: 65_536,
            timeline_capacity: 4096,
            decision_capacity: 512,
        }
    }
}

/// One shard's telemetry as sampled at an epoch boundary. `offered`,
/// `processed` and `shed` are *cumulative* counters (the controller
/// takes deltas); `escalation_backlog` is instantaneous.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSample {
    /// Packets the dispatcher has offered this shard so far.
    pub offered: u64,
    /// Packets the shard has ingested and processed so far.
    pub processed: u64,
    /// Packets shed at dispatch for this shard so far.
    pub shed: u64,
    /// Current occupancy of the shard's escalation path (queued packets
    /// awaiting host triage).
    pub escalation_backlog: u64,
}

/// Everything the controller consumes for one epoch.
#[derive(Clone, Debug, Default)]
pub struct EpochInput {
    /// Wall-clock (or virtual) seconds since the previous epoch.
    pub elapsed_secs: f64,
    /// One sample per shard, indexed by shard id.
    pub shards: Vec<ShardSample>,
    /// Host verdicts published since the previous epoch.
    pub verdicts: Vec<Verdict>,
    /// Heavy-hitter candidates flushed by shards since the previous
    /// epoch: `(flow digest, estimated packets this epoch)`. May repeat
    /// a digest (one entry per reporting shard); the controller sums.
    pub heavy: Vec<(u64, u64)>,
}

/// The controller's output for one epoch.
#[derive(Clone, Debug)]
pub struct EpochDecision {
    /// Epoch number (1-based; increments per [`Controller::epoch`]).
    pub epoch: u64,
    /// Algorithm 4 decision per shard (forced to Lite while shedding).
    pub modes: Vec<Mode>,
    /// Whether load shedding is active after this epoch.
    pub shed: bool,
    /// Freshly built steering snapshot, present only when the steering
    /// state (tables or shed flag) changed this epoch.
    pub snapshot: Option<Arc<SteeringSnapshot>>,
    /// Full audit record of the inputs and outputs of this epoch (also
    /// retained in the controller's bounded decision ring).
    pub record: DecisionRecord,
}

/// One epoch's decision audit: what the controller saw and what it did.
/// Bounded copies live in the controller ([`ControlReport::decisions`])
/// and, via the runtime, in `/stats.json` and `BENCH_control.json` —
/// the answer to "why did the control plane do *that*?".
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Aggregate offered rate observed this epoch, Mpps.
    pub offered_mpps: f64,
    /// Per-shard Algorithm 4 EWMA-smoothed rate, Mpps.
    pub smoothed_mpps: Vec<f64>,
    /// Largest instantaneous escalation backlog across shards.
    pub max_backlog: u64,
    /// Decided per-shard mode.
    pub modes: Vec<Mode>,
    /// Shed state after this epoch.
    pub shed: bool,
    /// Heavy hitters promoted into the whitelist this epoch.
    pub promotions: u64,
    /// Whitelist entries expired by TTL this epoch.
    pub whitelist_evictions: u64,
    /// Whitelist size after this epoch.
    pub whitelist_len: usize,
    /// Blacklist size after this epoch.
    pub blacklist_len: usize,
    /// Whether a steering snapshot was published this epoch.
    pub snapshot_published: bool,
}

/// A notable control-plane transition, kept in a bounded timeline for
/// the bench report's mode timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlEvent {
    /// One shard's decided mode changed.
    ModeSwitch {
        /// Epoch of the transition.
        epoch: u64,
        /// Shard that switched.
        shard: usize,
        /// The mode it switched to.
        mode: Mode,
    },
    /// Load shedding engaged.
    ShedOn {
        /// Epoch shedding engaged.
        epoch: u64,
    },
    /// Load shedding released.
    ShedOff {
        /// Epoch shedding released.
        epoch: u64,
    },
}

impl ControlEvent {
    /// Compact human-readable rendering (`e12 shard3->lite`).
    pub fn render(&self) -> String {
        match self {
            ControlEvent::ModeSwitch { epoch, shard, mode } => {
                format!("e{epoch} shard{shard}->{}", mode.label())
            }
            ControlEvent::ShedOn { epoch } => format!("e{epoch} shed-on"),
            ControlEvent::ShedOff { epoch } => format!("e{epoch} shed-off"),
        }
    }

    /// The epoch the event occurred in.
    pub fn epoch(&self) -> u64 {
        match self {
            ControlEvent::ModeSwitch { epoch, .. }
            | ControlEvent::ShedOn { epoch }
            | ControlEvent::ShedOff { epoch } => *epoch,
        }
    }
}

/// End-of-run accounting for the control plane.
#[derive(Clone, Debug, Default)]
pub struct ControlReport {
    /// Epochs executed.
    pub epochs: u64,
    /// Decided per-shard mode transitions.
    pub mode_switches: u64,
    /// Heavy hitters promoted into the whitelist.
    pub whitelist_promotions: u64,
    /// Whitelist entries expired by TTL.
    pub whitelist_expired: u64,
    /// Blacklist entries expired by TTL.
    pub blacklist_expired: u64,
    /// Epochs spent with shedding active.
    pub shed_epochs: u64,
    /// Packets shed at dispatch (summed from shard counters).
    pub shed_packets: u64,
    /// Steering snapshots published.
    pub snapshot_publishes: u64,
    /// Final decided mode per shard.
    pub final_modes: Vec<Mode>,
    /// Whether shedding was active at the end.
    pub shed_active: bool,
    /// Bounded event timeline (oldest events dropped past the bound).
    pub timeline: Vec<ControlEvent>,
    /// Events dropped from the timeline because of the bound.
    pub timeline_dropped: u64,
    /// Bounded per-epoch decision audit (oldest dropped past the bound).
    pub decisions: Vec<DecisionRecord>,
    /// Decision records dropped because of the bound.
    pub decisions_dropped: u64,
}

impl ControlReport {
    /// Counters-only summary: every line is an integer or a mode label,
    /// so two identical seeded drives render byte-identical strings.
    /// (Deliberately excludes floats and the timeline tail.)
    pub fn summary(&self) -> String {
        let modes: Vec<&str> = self.final_modes.iter().map(|m| m.label()).collect();
        format!(
            "control-summary v1\nepochs={}\nmode_switches={}\nwhitelist_promotions={}\n\
             whitelist_expired={}\nblacklist_expired={}\nshed_epochs={}\nshed_packets={}\n\
             snapshot_publishes={}\nshed_active={}\nfinal_modes={}\n",
            self.epochs,
            self.mode_switches,
            self.whitelist_promotions,
            self.whitelist_expired,
            self.blacklist_expired,
            self.shed_epochs,
            self.shed_packets,
            self.snapshot_publishes,
            self.shed_active,
            modes.join(",")
        )
    }
}

struct Counters {
    epochs: Counter,
    mode_switches: Counter,
    whitelist_promotions: Counter,
    shed_packets: Counter,
    whitelist_expired: Counter,
    blacklist_expired: Counter,
    snapshot_publishes: Counter,
    shed_active: Gauge,
}

impl Counters {
    fn detached() -> Counters {
        Counters {
            epochs: Counter::detached(),
            mode_switches: Counter::detached(),
            whitelist_promotions: Counter::detached(),
            shed_packets: Counter::detached(),
            whitelist_expired: Counter::detached(),
            blacklist_expired: Counter::detached(),
            snapshot_publishes: Counter::detached(),
            shed_active: Gauge::detached(),
        }
    }

    fn registered(reg: &Registry) -> Counters {
        Counters {
            epochs: reg.counter("control.epochs", &[]),
            mode_switches: reg.counter("control.mode_switches", &[]),
            whitelist_promotions: reg.counter("control.whitelist_promotions", &[]),
            shed_packets: reg.counter("control.shed_packets", &[]),
            whitelist_expired: reg.counter("control.whitelist_expired", &[]),
            blacklist_expired: reg.counter("control.blacklist_expired", &[]),
            snapshot_publishes: reg.counter("control.snapshot_publishes", &[]),
            shed_active: reg.gauge("control.shed_active", &[]),
        }
    }
}

/// Per-shard EWMA state plus the counters the controller diffs against.
struct ShardState {
    switcher: SwitchOver,
    decided: Mode,
    prev_offered: u64,
    prev_shed: u64,
    smoothed_gauge: Option<Gauge>,
    mode_gauge: Option<Gauge>,
}

/// The control-plane state machine (see module docs).
pub struct Controller {
    cfg: ControlConfig,
    hasher: FlowHasher,
    registry: Option<Registry>,
    counters: Counters,
    epoch: u64,
    shards: Vec<ShardState>,
    whitelist: AgingDigestSet,
    blacklist: AgingDigestSet,
    /// digest -> (last qualifying epoch, consecutive-epoch streak).
    streaks: HashMap<u64, (u64, u32), BuildDigestHasher>,
    shed: bool,
    /// Admin override: `Some(v)` pins shedding to `v` and pauses the
    /// hysteresis until cleared.
    force_shed: Option<bool>,
    overload_streak: u32,
    calm_streak: u32,
    shed_epochs: u64,
    snapshot_version: u64,
    dirty: bool,
    timeline: VecDeque<ControlEvent>,
    timeline_dropped: u64,
    decisions: VecDeque<DecisionRecord>,
    decisions_dropped: u64,
}

impl Controller {
    /// Controller with detached (unregistered) telemetry.
    ///
    /// # Panics
    /// Panics unless `eta_general_mpps < eta_lite_mpps` and
    /// `shed_off_mpps < shed_on_mpps` (both hystereses need a band).
    pub fn new(cfg: ControlConfig) -> Controller {
        Controller::build(cfg, None)
    }

    /// Controller registering its `control.*` metrics in `reg`.
    pub fn with_registry(cfg: ControlConfig, reg: &Registry) -> Controller {
        Controller::build(cfg, Some(reg.clone()))
    }

    fn build(cfg: ControlConfig, registry: Option<Registry>) -> Controller {
        assert!(
            cfg.eta_general_mpps < cfg.eta_lite_mpps,
            "need eta_general_mpps < eta_lite_mpps for hysteresis"
        );
        assert!(
            cfg.shed_off_mpps < cfg.shed_on_mpps,
            "need shed_off_mpps < shed_on_mpps for hysteresis"
        );
        let counters = match &registry {
            Some(r) => Counters::registered(r),
            None => Counters::detached(),
        };
        Controller {
            hasher: FlowHasher::new(cfg.hash_seed),
            whitelist: AgingDigestSet::new(cfg.whitelist_capacity, cfg.whitelist_ttl_epochs),
            blacklist: AgingDigestSet::new(cfg.blacklist_capacity, cfg.blacklist_ttl_epochs),
            cfg,
            registry,
            counters,
            epoch: 0,
            shards: Vec::new(),
            streaks: HashMap::default(),
            shed: false,
            force_shed: None,
            overload_streak: 0,
            calm_streak: 0,
            shed_epochs: 0,
            snapshot_version: 0,
            dirty: false,
            timeline: VecDeque::new(),
            timeline_dropped: 0,
            decisions: VecDeque::new(),
            decisions_dropped: 0,
        }
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    fn push_event(&mut self, ev: ControlEvent) {
        if self.timeline.len() == self.cfg.timeline_capacity {
            self.timeline.pop_front();
            self.timeline_dropped += 1;
        }
        self.timeline.push_back(ev);
    }

    fn ensure_shards(&mut self, n: usize) {
        while self.shards.len() < n {
            let shard = self.shards.len();
            let (smoothed_gauge, mode_gauge) = match &self.registry {
                Some(r) => {
                    let label = shard.to_string();
                    (
                        Some(r.gauge("control.smoothed_mpps", &[("shard", &label)])),
                        Some(r.gauge("control.mode", &[("shard", &label)])),
                    )
                }
                None => (None, None),
            };
            self.shards.push(ShardState {
                switcher: SwitchOver::new(
                    self.cfg.eta_lite_mpps * 1e6,
                    self.cfg.eta_general_mpps * 1e6,
                ),
                decided: Mode::General,
                prev_offered: 0,
                prev_shed: 0,
                smoothed_gauge,
                mode_gauge,
            });
        }
    }

    fn apply_verdicts(&mut self, verdicts: &[Verdict]) {
        for v in verdicts {
            match v {
                Verdict::Whitelist(key) => {
                    let (_, digest) = self.hasher.digest_symmetric(key);
                    if !self.blacklist.contains(&digest.0)
                        && self.whitelist.insert(digest.0, self.epoch)
                    {
                        self.dirty = true;
                    }
                }
                Verdict::Blacklist(key) => {
                    let (_, digest) = self.hasher.digest_symmetric(key);
                    if self.blacklist.insert(digest.0, self.epoch) {
                        self.dirty = true;
                    }
                    // Blacklist wins: revoke any standing whitelist entry
                    // so a flow can't stay on the fast path after the
                    // host flagged it.
                    if self.whitelist.remove(&digest.0) {
                        self.dirty = true;
                    }
                }
                Verdict::Alert(_) | Verdict::Drop => {}
            }
        }
    }

    fn promote_heavy(&mut self, heavy: &[(u64, u64)]) {
        if heavy.is_empty() {
            // Streak pruning still has to run so stale entries don't
            // resurrect later.
            self.prune_streaks();
            return;
        }
        // Sum per digest (shards report independently).
        let mut totals: HashMap<u64, u64, BuildDigestHasher> = HashMap::default();
        for &(digest, est) in heavy {
            *totals.entry(digest).or_insert(0) += est;
        }
        // Deterministic iteration: sort by digest. Promotion order only
        // affects capacity-eviction tie-breaks, but determinism is a
        // contract of this type.
        let mut qualifying: Vec<(u64, u64)> = totals
            .into_iter()
            .filter(|&(_, est)| est >= self.cfg.promote_pkts_per_epoch)
            .collect();
        qualifying.sort_unstable();
        for (digest, _) in qualifying {
            let streak = match self.streaks.get(&digest) {
                Some(&(last, s)) if last + 1 == self.epoch => s + 1,
                _ => 1,
            };
            self.streaks.insert(digest, (self.epoch, streak));
            if streak >= self.cfg.promote_epochs
                && !self.blacklist.contains(&digest)
                && self.whitelist.insert(digest, self.epoch)
            {
                self.counters.whitelist_promotions.inc();
                self.dirty = true;
            }
        }
        self.prune_streaks();
    }

    fn prune_streaks(&mut self) {
        let epoch = self.epoch;
        self.streaks.retain(|_, &mut (last, _)| last + 1 >= epoch);
    }

    fn age_tables(&mut self) {
        let wl = self.whitelist.sweep(self.epoch);
        let bl = self.blacklist.sweep(self.epoch);
        if wl > 0 {
            self.counters.whitelist_expired.add(wl);
            self.dirty = true;
        }
        if bl > 0 {
            self.counters.blacklist_expired.add(bl);
            self.dirty = true;
        }
    }

    fn decide_shed(&mut self, offered_mpps: f64, max_backlog: u64) {
        let overload =
            offered_mpps >= self.cfg.shed_on_mpps || max_backlog >= self.cfg.shed_backlog;
        let calm = offered_mpps <= self.cfg.shed_off_mpps && max_backlog < self.cfg.shed_backlog;
        if overload {
            self.overload_streak += 1;
            self.calm_streak = 0;
        } else if calm {
            self.calm_streak += 1;
            self.overload_streak = 0;
        } else {
            // Inside the hysteresis band: hold state, reset streaks.
            self.overload_streak = 0;
            self.calm_streak = 0;
        }
        if !self.shed && self.overload_streak >= self.cfg.shed_sustain_epochs {
            self.shed = true;
            self.dirty = true;
            self.counters.shed_active.set(1.0);
            self.push_event(ControlEvent::ShedOn { epoch: self.epoch });
        } else if self.shed && self.calm_streak >= self.cfg.shed_sustain_epochs {
            self.shed = false;
            self.dirty = true;
            self.counters.shed_active.set(0.0);
            self.push_event(ControlEvent::ShedOff { epoch: self.epoch });
        }
    }

    /// Pin shedding to the admin-forced value; the hysteresis streaks
    /// are cleared so releasing the override decides afresh from the
    /// next epoch's load, not a stale streak.
    fn apply_forced_shed(&mut self, force: bool) {
        self.overload_streak = 0;
        self.calm_streak = 0;
        if force == self.shed {
            return;
        }
        self.shed = force;
        self.dirty = true;
        if force {
            self.counters.shed_active.set(1.0);
            self.push_event(ControlEvent::ShedOn { epoch: self.epoch });
        } else {
            self.counters.shed_active.set(0.0);
            self.push_event(ControlEvent::ShedOff { epoch: self.epoch });
        }
    }

    fn build_snapshot(&mut self) -> Arc<SteeringSnapshot> {
        self.snapshot_version += 1;
        self.counters.snapshot_publishes.inc();
        let mut whitelist = DigestSet::default();
        whitelist.extend(self.whitelist.iter().copied());
        let mut blacklist = DigestSet::default();
        blacklist.extend(self.blacklist.iter().copied());
        Arc::new(SteeringSnapshot {
            version: self.snapshot_version,
            shed: self.shed,
            whitelist,
            blacklist,
        })
    }

    /// Run one epoch (see module docs for the five stages).
    pub fn epoch(&mut self, input: &EpochInput) -> EpochDecision {
        self.epoch += 1;
        self.counters.epochs.inc();
        self.ensure_shards(input.shards.len());

        let elapsed = input.elapsed_secs.max(1e-9);
        let mut offered_delta_total = 0u64;
        let mut shed_delta_total = 0u64;
        let mut max_backlog = 0u64;
        for (state, sample) in self.shards.iter_mut().zip(&input.shards) {
            let offered_delta = sample.offered.saturating_sub(state.prev_offered);
            state.prev_offered = sample.offered;
            let shed_delta = sample.shed.saturating_sub(state.prev_shed);
            state.prev_shed = sample.shed;
            offered_delta_total += offered_delta;
            shed_delta_total += shed_delta;
            max_backlog = max_backlog.max(sample.escalation_backlog);
            let rate_pps = offered_delta as f64 / elapsed;
            state.switcher.observe(rate_pps);
            if let Some(g) = &state.smoothed_gauge {
                g.set(state.switcher.smoothed_rate() / 1e6);
            }
        }
        if shed_delta_total > 0 {
            self.counters.shed_packets.add(shed_delta_total);
        }

        self.apply_verdicts(&input.verdicts);
        let promos_before = self.counters.whitelist_promotions.get();
        self.promote_heavy(&input.heavy);
        let promotions = self.counters.whitelist_promotions.get() - promos_before;
        let evict_before = self.counters.whitelist_expired.get();
        self.age_tables();
        let whitelist_evictions = self.counters.whitelist_expired.get() - evict_before;

        let offered_mpps = offered_delta_total as f64 / elapsed / 1e6;
        match self.force_shed {
            Some(force) => self.apply_forced_shed(force),
            None => self.decide_shed(offered_mpps, max_backlog),
        }
        if self.shed {
            self.shed_epochs += 1;
        }

        // Decide per-shard modes; shedding forces Lite everywhere (the
        // whole point is to survive, not to model individual shards).
        let epoch = self.epoch;
        let shed = self.shed;
        let mut modes = Vec::with_capacity(self.shards.len());
        let mut switches = Vec::new();
        for (shard, state) in self.shards.iter_mut().enumerate() {
            let decided = if shed {
                Mode::Lite
            } else {
                state.switcher.mode()
            };
            if decided != state.decided {
                state.decided = decided;
                switches.push((shard, decided));
            }
            if let Some(g) = &state.mode_gauge {
                g.set(match decided {
                    Mode::General => 0.0,
                    Mode::Lite => 1.0,
                });
            }
            modes.push(decided);
        }
        for (shard, mode) in switches {
            self.counters.mode_switches.inc();
            self.push_event(ControlEvent::ModeSwitch { epoch, shard, mode });
        }

        let snapshot = if self.dirty {
            self.dirty = false;
            Some(self.build_snapshot())
        } else {
            None
        };

        let record = DecisionRecord {
            epoch,
            offered_mpps,
            smoothed_mpps: self
                .shards
                .iter()
                .map(|s| s.switcher.smoothed_rate() / 1e6)
                .collect(),
            max_backlog,
            modes: modes.clone(),
            shed,
            promotions,
            whitelist_evictions,
            whitelist_len: self.whitelist.len(),
            blacklist_len: self.blacklist.len(),
            snapshot_published: snapshot.is_some(),
        };
        if self.decisions.len() == self.cfg.decision_capacity {
            self.decisions.pop_front();
            self.decisions_dropped += 1;
        }
        self.decisions.push_back(record.clone());

        EpochDecision {
            epoch,
            modes,
            shed,
            snapshot,
            record,
        }
    }

    /// Current whitelist size (tests/diagnostics).
    pub fn whitelist_len(&self) -> usize {
        self.whitelist.len()
    }

    /// Current blacklist size (tests/diagnostics).
    pub fn blacklist_len(&self) -> usize {
        self.blacklist.len()
    }

    /// Admin edit: blacklist `digest` directly (no Verdict round-trip).
    /// Revokes any standing whitelist entry (blacklist wins) and marks
    /// the controller dirty so the next epoch republishes the steering
    /// snapshot through the normal lock-free path. Returns whether the
    /// tables changed.
    pub fn admin_blacklist_insert(&mut self, digest: u64) -> bool {
        let mut changed = self.blacklist.insert(digest, self.epoch);
        changed |= self.whitelist.remove(&digest);
        self.dirty |= changed;
        changed
    }

    /// Admin edit: drop `digest` from the blacklist.
    pub fn admin_blacklist_remove(&mut self, digest: u64) -> bool {
        let changed = self.blacklist.remove(&digest);
        self.dirty |= changed;
        changed
    }

    /// Admin edit: whitelist `digest`. The operator is authoritative,
    /// so a standing blacklist entry is revoked (unlike host verdicts,
    /// where blacklist wins).
    pub fn admin_whitelist_insert(&mut self, digest: u64) -> bool {
        let mut changed = self.blacklist.remove(&digest);
        changed |= self.whitelist.insert(digest, self.epoch);
        self.dirty |= changed;
        changed
    }

    /// Admin edit: drop `digest` from the whitelist.
    pub fn admin_whitelist_remove(&mut self, digest: u64) -> bool {
        let changed = self.whitelist.remove(&digest);
        self.dirty |= changed;
        changed
    }

    /// Admin edit: `Some(v)` pins shedding to `v` from the next epoch
    /// (pausing the hysteresis); `None` hands control back to it.
    pub fn admin_force_shed(&mut self, force: Option<bool>) {
        self.force_shed = force;
    }

    /// End-of-run report. Non-destructive; callable repeatedly.
    pub fn report(&self) -> ControlReport {
        ControlReport {
            epochs: self.epoch,
            mode_switches: self.counters.mode_switches.get(),
            whitelist_promotions: self.counters.whitelist_promotions.get(),
            whitelist_expired: self.counters.whitelist_expired.get(),
            blacklist_expired: self.counters.blacklist_expired.get(),
            shed_epochs: self.shed_epochs,
            shed_packets: self.counters.shed_packets.get(),
            snapshot_publishes: self.counters.snapshot_publishes.get(),
            final_modes: self.shards.iter().map(|s| s.decided).collect(),
            shed_active: self.shed,
            timeline: self.timeline.iter().cloned().collect(),
            timeline_dropped: self.timeline_dropped,
            decisions: self.decisions.iter().cloned().collect(),
            decisions_dropped: self.decisions_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::FlowKey;

    fn key(n: u32) -> FlowKey {
        FlowKey::tcp(
            std::net::Ipv4Addr::from(n),
            (n % 60_000) as u16 + 1024,
            std::net::Ipv4Addr::from(n ^ 0xdead_beef),
            443,
        )
    }

    fn input(
        rate_mpps: f64,
        shards: usize,
        epoch_secs: f64,
        prev: &mut Vec<ShardSample>,
    ) -> EpochInput {
        if prev.is_empty() {
            prev.resize(shards, ShardSample::default());
        }
        let per_shard = (rate_mpps * 1e6 * epoch_secs / shards as f64) as u64;
        for s in prev.iter_mut() {
            s.offered += per_shard;
            s.processed += per_shard;
        }
        EpochInput {
            elapsed_secs: epoch_secs,
            shards: prev.clone(),
            verdicts: Vec::new(),
            heavy: Vec::new(),
        }
    }

    #[test]
    fn sustained_overload_flips_lite_then_recovers() {
        let cfg = ControlConfig::default();
        let mut c = Controller::new(cfg);
        let mut cum = Vec::new();
        // Calm: everyone stays General.
        for _ in 0..10 {
            let d = c.epoch(&input(1.0, 2, 0.005, &mut cum));
            assert!(d.modes.iter().all(|&m| m == Mode::General));
        }
        // Per-shard 4 Mpps > eta_lite 2.5 → Lite within a few epochs.
        let mut saw_lite = false;
        for _ in 0..10 {
            let d = c.epoch(&input(8.0, 2, 0.005, &mut cum));
            saw_lite |= d.modes.iter().all(|&m| m == Mode::Lite);
        }
        assert!(saw_lite, "sustained overload must reach Lite");
        // Recovery below eta_general.
        let mut back = false;
        for _ in 0..20 {
            let d = c.epoch(&input(1.0, 2, 0.005, &mut cum));
            back |= d.modes.iter().all(|&m| m == Mode::General);
        }
        assert!(back, "calm must return to General");
        let r = c.report();
        // 2 shards x (General->Lite, Lite->General) = 4 switches.
        assert_eq!(r.mode_switches, 4);
        assert_eq!(
            r.timeline
                .iter()
                .filter(|e| matches!(e, ControlEvent::ModeSwitch { .. }))
                .count(),
            4
        );
    }

    #[test]
    fn shed_engages_on_sustained_overload_and_forces_lite() {
        let cfg = ControlConfig {
            shed_on_mpps: 4.0,
            shed_off_mpps: 1.5,
            shed_sustain_epochs: 2,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg);
        let mut cum = Vec::new();
        // One hot epoch is not enough.
        let d = c.epoch(&input(10.0, 2, 0.005, &mut cum));
        assert!(!d.shed);
        let d = c.epoch(&input(10.0, 2, 0.005, &mut cum));
        assert!(d.shed, "second sustained overload epoch engages shed");
        assert!(d.modes.iter().all(|&m| m == Mode::Lite), "shed forces Lite");
        assert!(
            d.snapshot.as_ref().is_some_and(|s| s.shed),
            "shed flip publishes a snapshot carrying the flag"
        );
        // Band (between off and on) holds the state.
        let d = c.epoch(&input(2.0, 2, 0.005, &mut cum));
        assert!(d.shed);
        // Calm epochs release it.
        let d1 = c.epoch(&input(0.5, 2, 0.005, &mut cum));
        let d2 = c.epoch(&input(0.5, 2, 0.005, &mut cum));
        assert!(d1.shed && !d2.shed, "sustained calm releases shed");
        let r = c.report();
        assert_eq!(r.shed_epochs, 3);
        assert!(r.timeline.contains(&ControlEvent::ShedOn { epoch: 2 }));
        assert!(r.timeline.contains(&ControlEvent::ShedOff { epoch: 5 }));
    }

    #[test]
    fn verdicts_update_tables_and_blacklist_wins() {
        let mut c = Controller::new(ControlConfig::default());
        let mut cum = Vec::new();
        let mut inp = input(1.0, 1, 0.005, &mut cum);
        inp.verdicts = vec![Verdict::Whitelist(key(7)), Verdict::Whitelist(key(9))];
        let d = c.epoch(&inp);
        let snap = d.snapshot.expect("table change publishes");
        assert_eq!(snap.whitelist.len(), 2);
        assert!(snap.blacklist.is_empty());

        // Blacklisting key(7) revokes its whitelist entry.
        let mut inp = input(1.0, 1, 0.005, &mut cum);
        inp.verdicts = vec![Verdict::Blacklist(key(7))];
        let d = c.epoch(&inp);
        let snap = d.snapshot.expect("table change publishes");
        assert_eq!(snap.whitelist.len(), 1);
        assert_eq!(snap.blacklist.len(), 1);

        // A later whitelist verdict for a blacklisted flow is ignored.
        let mut inp = input(1.0, 1, 0.005, &mut cum);
        inp.verdicts = vec![Verdict::Whitelist(key(7))];
        let d = c.epoch(&inp);
        assert!(d.snapshot.is_none(), "no state change, no publication");
        assert_eq!(c.whitelist_len(), 1);
    }

    #[test]
    fn heavy_hitters_promote_after_streak_only() {
        let cfg = ControlConfig {
            promote_pkts_per_epoch: 100,
            promote_epochs: 3,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg);
        let mut cum = Vec::new();
        for round in 1..=3u64 {
            let mut inp = input(1.0, 1, 0.005, &mut cum);
            // Shard reports digest 0xAB split across two entries; sums
            // to 120 ≥ 100. Digest 0xCD stays below threshold.
            inp.heavy = vec![(0xAB, 70), (0xAB, 50), (0xCD, 30)];
            let d = c.epoch(&inp);
            if round < 3 {
                assert_eq!(c.whitelist_len(), 0, "no promotion before the streak");
                assert!(d.snapshot.is_none());
            } else {
                assert_eq!(c.whitelist_len(), 1, "promoted on the 3rd epoch");
                assert!(d.snapshot.unwrap().whitelist.contains(&0xAB));
            }
        }
        assert_eq!(c.report().whitelist_promotions, 1);

        // A gap resets the streak.
        let mut c2 = Controller::new(c.config().clone());
        let mut cum2 = Vec::new();
        for round in 0..4u64 {
            let mut inp = input(1.0, 1, 0.005, &mut cum2);
            if round != 1 {
                inp.heavy = vec![(0xAB, 200)];
            }
            c2.epoch(&inp);
        }
        assert_eq!(c2.whitelist_len(), 0, "interrupted streak never promotes");
    }

    #[test]
    fn ttl_expiry_republishes_without_the_entry() {
        let cfg = ControlConfig {
            whitelist_ttl_epochs: 3,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg);
        let mut cum = Vec::new();
        let mut inp = input(1.0, 1, 0.005, &mut cum);
        inp.verdicts = vec![Verdict::Whitelist(key(1))];
        c.epoch(&inp);
        assert_eq!(c.whitelist_len(), 1);
        let mut last_snap = None;
        for _ in 0..4 {
            if let Some(s) = c.epoch(&input(1.0, 1, 0.005, &mut cum)).snapshot {
                last_snap = Some(s);
            }
        }
        assert_eq!(c.whitelist_len(), 0, "TTL expired the entry");
        let snap = last_snap.expect("expiry republishes");
        assert!(snap.whitelist.is_empty());
        assert_eq!(c.report().whitelist_expired, 1);
    }

    #[test]
    fn timeline_is_bounded() {
        // Shedding thresholds far out of reach so the timeline holds
        // mode switches only.
        let cfg = ControlConfig {
            timeline_capacity: 8,
            eta_lite_mpps: 2.0,
            eta_general_mpps: 1.0,
            shed_on_mpps: 1e9,
            shed_off_mpps: 1e8,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg);
        let mut cum = Vec::new();
        // Alternate far above / far below the thresholds to force many
        // switches. EWMA needs a couple of epochs per side.
        for round in 0..200u64 {
            let rate = if (round / 4) % 2 == 0 { 10.0 } else { 0.1 };
            c.epoch(&input(rate, 1, 0.005, &mut cum));
        }
        let r = c.report();
        assert!(r.mode_switches > 8, "stress must overflow the bound");
        assert_eq!(r.timeline.len(), 8, "timeline stays at its bound");
        assert_eq!(
            r.timeline_dropped,
            r.mode_switches - 8,
            "drops are accounted"
        );
    }

    #[test]
    fn decision_audit_records_inputs_and_outputs() {
        let cfg = ControlConfig {
            shed_on_mpps: 4.0,
            shed_off_mpps: 1.5,
            shed_sustain_epochs: 2,
            decision_capacity: 4,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg);
        let mut cum = Vec::new();
        let d = c.epoch(&input(10.0, 2, 0.005, &mut cum));
        assert_eq!(d.record.epoch, 1);
        assert!(d.record.offered_mpps > 4.0, "audit carries the input rate");
        assert_eq!(d.record.smoothed_mpps.len(), 2);
        assert_eq!(d.record.modes, d.modes);
        assert!(!d.record.shed);
        for _ in 0..6 {
            c.epoch(&input(10.0, 2, 0.005, &mut cum));
        }
        let r = c.report();
        assert_eq!(r.decisions.len(), 4, "ring holds its bound");
        assert_eq!(r.decisions_dropped, 3, "overflow is accounted");
        let last = r.decisions.last().unwrap();
        assert_eq!(last.epoch, 7, "newest record retained");
        assert!(last.shed, "sustained overload shows up in the audit");
        assert!(last.modes.iter().all(|&m| m == Mode::Lite));
        // The ring and the per-epoch decision carry identical records.
        assert_eq!(r.decisions[0].epoch, 4);
    }

    #[test]
    fn registered_counters_surface_in_registry() {
        let reg = Registry::new();
        let cfg = ControlConfig {
            shed_on_mpps: 1.0,
            shed_off_mpps: 0.5,
            shed_sustain_epochs: 1,
            ..ControlConfig::default()
        };
        let mut c = Controller::with_registry(cfg, &reg);
        let mut cum = Vec::new();
        for _ in 0..6 {
            c.epoch(&input(8.0, 2, 0.005, &mut cum));
        }
        let snap = reg.snapshot().with_prefix("control.");
        assert_eq!(snap.counter("control.epochs"), Some(6));
        assert!(snap.counter("control.mode_switches").unwrap_or(0) >= 2);
        assert_eq!(snap.gauge("control.shed_active"), Some(1.0));
        assert!(snap.gauge("control.smoothed_mpps{shard=0}").is_some());
    }

    #[test]
    fn admin_edits_mark_dirty_and_publish_next_epoch() {
        let mut c = Controller::new(ControlConfig::default());
        let mut cum = Vec::new();
        // Settle: no publications while nothing changes.
        c.epoch(&input(1.0, 2, 0.005, &mut cum));
        let d = c.epoch(&input(1.0, 2, 0.005, &mut cum));
        assert!(d.snapshot.is_none(), "steady state publishes nothing");

        assert!(c.admin_blacklist_insert(0xBAD));
        assert!(!c.admin_blacklist_insert(0xBAD), "idempotent");
        let d = c.epoch(&input(1.0, 2, 0.005, &mut cum));
        let snap = d.snapshot.expect("admin edit publishes");
        assert!(snap.blacklist.contains(&0xBAD));

        // Whitelisting the same digest revokes the blacklist entry:
        // the operator is authoritative.
        assert!(c.admin_whitelist_insert(0xBAD));
        let d = c.epoch(&input(1.0, 2, 0.005, &mut cum));
        let snap = d.snapshot.expect("edit publishes again");
        assert!(!snap.blacklist.contains(&0xBAD));
        assert!(snap.whitelist.contains(&0xBAD));

        assert!(c.admin_whitelist_remove(0xBAD));
        assert!(!c.admin_whitelist_remove(0xBAD));
        let d = c.epoch(&input(1.0, 2, 0.005, &mut cum));
        assert!(!d
            .snapshot
            .expect("removal publishes")
            .whitelist
            .contains(&0xBAD));
    }

    #[test]
    fn forced_shed_overrides_hysteresis_both_ways() {
        let mut c = Controller::new(ControlConfig::default());
        let mut cum = Vec::new();
        // Calm traffic, forced shed: engages in one epoch, no sustain
        // streak needed, and every shard goes Lite.
        c.admin_force_shed(Some(true));
        let d = c.epoch(&input(0.5, 2, 0.005, &mut cum));
        assert!(d.shed, "forced shed ignores calm load");
        assert!(d.modes.iter().all(|&m| m == Mode::Lite));
        assert!(d.snapshot.expect("shed flip publishes").shed);

        // Overloaded traffic, forced off: shedding never engages.
        c.admin_force_shed(Some(false));
        for _ in 0..8 {
            let d = c.epoch(&input(50.0, 2, 0.005, &mut cum));
            assert!(!d.shed, "forced-off pins shedding under overload");
        }

        // Released: hysteresis resumes and overload re-engages it.
        c.admin_force_shed(None);
        let mut shed_again = false;
        for _ in 0..8 {
            shed_again |= c.epoch(&input(50.0, 2, 0.005, &mut cum)).shed;
        }
        assert!(shed_again, "hysteresis resumes after release");
    }
}
