//! `smartwatch-control` — the wall-clock adaptive control plane.
//!
//! The paper's headline loop (§3.3/§4) is *cooperative*: a CME samples
//! the packet arrival rate, Algorithm 4's EWMA flips the FlowCache
//! between General and Lite, and host verdicts flow back to the switch
//! as whitelist/blacklist ("hoverboard") steering rules. This crate is
//! that loop as a reusable state machine for the runtime engine:
//!
//! * [`Controller`] — the epoch brain. Each epoch it consumes one
//!   [`EpochInput`] (per-shard offered/processed deltas, escalation
//!   backlog, host verdicts, heavy-hitter candidates) and emits one
//!   [`EpochDecision`] (per-shard [`Mode`], the shed flag, and — when
//!   the steering tables changed — a freshly built snapshot). The
//!   controller is pure state: no threads, no clocks, so the same input
//!   stream always yields byte-identical decisions (see [`sim`]).
//! * [`SteeringSnapshot`] — the immutable steering table (whitelist +
//!   blacklist digests + shed flag), published RCU-style through a
//!   [`SnapshotCell`]. Readers hold a [`SnapshotReader`] that caches an
//!   `Arc`: the per-packet path dereferences plain memory, and a single
//!   atomic version load per *batch* detects publications — no lock is
//!   ever taken on the packet path.
//! * [`ModeCell`] — one atomic cell per shard carrying the current
//!   Algorithm 4 decision; shards apply it to their live FlowCache at
//!   batch boundaries via `FlowCache::set_mode` (lazy Algorithm 3
//!   cleanup, never a stop-the-world rebuild).
//! * [`sim`] — a deterministic virtual-time drive of the controller
//!   over a synthetic load spike, used by the determinism tests and the
//!   `control-sim` experiment.
//!
//! The wall-clock wiring — the thread that samples shard telemetry,
//! polls the verdict log and publishes decisions — lives in
//! `smartwatch-runtime`, which depends on this crate.
//!
//! Telemetry: the controller registers `control.epochs`,
//! `control.mode_switches`, `control.whitelist_promotions`,
//! `control.shed_packets`, `control.whitelist_expired`,
//! `control.blacklist_expired`, `control.snapshot_publishes` counters
//! plus per-shard `control.smoothed_mpps{shard=N}` /
//! `control.mode{shard=N}` gauges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod sim;
pub mod snapshot;

pub use controller::{
    ControlConfig, ControlEvent, ControlReport, Controller, DecisionRecord, EpochDecision,
    EpochInput, ShardSample,
};
pub use sim::{simulate, LoadProfile, SimOutcome};
pub use snapshot::{ModeCell, SnapshotCell, SnapshotReader, SteeringSnapshot};
