//! Deterministic virtual-time drive of the [`Controller`].
//!
//! The wall-clock engine run is inherently nondeterministic (thread
//! scheduling decides exactly when each epoch samples each counter), so
//! the determinism contract for the control plane is pinned here
//! instead: [`simulate`] replays a synthetic load spike through the
//! pure controller state machine under virtual time. Same
//! [`LoadProfile`] → byte-identical [`SimOutcome::summary`] — that is
//! the `control-sim` experiment and its determinism test.
//!
//! The synthetic drive exercises every controller path: ramp →
//! overload spike (Algorithm 4 flips to Lite, shedding engages) →
//! recovery (General returns, shedding releases), with a seeded stream
//! of heavy-hitter candidates and periodic host verdicts.

use crate::controller::{ControlConfig, ControlReport, Controller, EpochInput, ShardSample};
use smartwatch_host::Verdict;
use smartwatch_net::FlowKey;
use smartwatch_snic::Mode;
use std::net::Ipv4Addr;

/// A synthetic offered-load trajectory: flat base rate with one
/// rectangular spike, plus background verdict and heavy-hitter traffic.
#[derive(Clone, Debug)]
pub struct LoadProfile {
    /// Shard count.
    pub shards: usize,
    /// Total epochs to simulate.
    pub epochs: u64,
    /// Virtual epoch length in seconds.
    pub epoch_secs: f64,
    /// Aggregate offered rate outside the spike, in Mpps.
    pub base_mpps: f64,
    /// Aggregate offered rate during the spike, in Mpps.
    pub peak_mpps: f64,
    /// First epoch of the spike (0-based, inclusive).
    pub spike_start: u64,
    /// First epoch after the spike (exclusive).
    pub spike_end: u64,
    /// PRNG seed for the heavy-hitter / verdict stream.
    pub seed: u64,
}

impl Default for LoadProfile {
    fn default() -> LoadProfile {
        LoadProfile {
            shards: 4,
            epochs: 120,
            epoch_secs: 0.005,
            base_mpps: 1.0,
            peak_mpps: 12.0,
            spike_start: 40,
            spike_end: 80,
            seed: 0x5117_c0de,
        }
    }
}

/// What a simulated drive produced.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The controller's end-of-run report (timeline included).
    pub report: ControlReport,
    /// Epochs during which every shard's decided mode was Lite.
    pub lite_epochs: u64,
    /// The byte-stable counters-only summary (see
    /// [`ControlReport::summary`], prefixed with the drive's shape).
    pub summary: String,
}

/// Splitmix64 — tiny, deterministic, good enough for synthetic streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_key(rng: &mut u64) -> FlowKey {
    let r = splitmix(rng);
    FlowKey::tcp(
        Ipv4Addr::from(0x0A00_0000 | (r as u32 & 0xFFFF)),
        1024 + ((r >> 32) as u16 % 50_000),
        Ipv4Addr::from(0xC0A8_0001u32),
        443,
    )
}

/// Drive `ctrl_cfg` through `profile` under virtual time and return the
/// outcome. Pure function of its arguments.
pub fn simulate(ctrl_cfg: ControlConfig, profile: &LoadProfile) -> SimOutcome {
    assert!(profile.shards > 0, "need at least one shard");
    assert!(
        profile.spike_start <= profile.spike_end,
        "spike must not end before it starts"
    );
    let mut ctrl = Controller::new(ctrl_cfg);
    let mut rng = profile.seed;
    let mut cumulative: Vec<ShardSample> = vec![ShardSample::default(); profile.shards];
    // A fixed pool of recurring heavy-hitter digests so streaks can
    // actually build across consecutive epochs.
    let heavy_pool: Vec<u64> = (0..8).map(|_| splitmix(&mut rng)).collect();
    let mut lite_epochs = 0u64;

    for epoch in 0..profile.epochs {
        let in_spike = (profile.spike_start..profile.spike_end).contains(&epoch);
        let rate_mpps = if in_spike {
            profile.peak_mpps
        } else {
            profile.base_mpps
        };
        let per_shard = (rate_mpps * 1e6 * profile.epoch_secs / profile.shards as f64) as u64;
        let backlog = if in_spike { 4096 } else { 0 };
        for s in cumulative.iter_mut() {
            s.offered += per_shard;
            // Under overload the shards fall behind; modelled as a flat
            // 70% service rate during the spike.
            s.processed += if in_spike {
                per_shard * 7 / 10
            } else {
                per_shard
            };
            s.escalation_backlog = backlog;
        }

        // Heavy hitters: the same pool digests recur every epoch with a
        // seeded estimate; a rotating extra digest adds churn that never
        // builds a streak.
        let mut heavy = Vec::new();
        for &d in &heavy_pool {
            let est = 1500 + (splitmix(&mut rng) % 2000);
            heavy.push((d, est));
        }
        heavy.push((splitmix(&mut rng), 5000));

        // Verdicts: a whitelist verdict most epochs, a blacklist verdict
        // every 16th.
        let mut verdicts = Vec::new();
        if epoch % 2 == 0 {
            verdicts.push(Verdict::Whitelist(synth_key(&mut rng)));
        }
        if epoch % 16 == 9 {
            verdicts.push(Verdict::Blacklist(synth_key(&mut rng)));
        }

        let decision = ctrl.epoch(&EpochInput {
            elapsed_secs: profile.epoch_secs,
            shards: cumulative.clone(),
            verdicts,
            heavy,
        });
        if decision.modes.iter().all(|&m| m == Mode::Lite) {
            lite_epochs += 1;
        }
    }

    let report = ctrl.report();
    let summary = format!(
        "control-sim v1\nshards={}\nepochs={}\nspike={}..{}\nseed={:#x}\nlite_epochs={}\n{}",
        profile.shards,
        profile.epochs,
        profile.spike_start,
        profile.spike_end,
        profile.seed,
        lite_epochs,
        report.summary()
    );
    SimOutcome {
        report,
        lite_epochs,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControlEvent;

    #[test]
    fn spike_drives_lite_and_shed_then_recovers() {
        let outcome = simulate(ControlConfig::default(), &LoadProfile::default());
        let r = &outcome.report;
        assert!(outcome.lite_epochs > 0, "spike must reach Lite");
        assert!(r.shed_epochs > 0, "12 Mpps > shed_on 6 Mpps must shed");
        assert!(!r.shed_active, "recovery must release shedding");
        assert!(
            r.final_modes.iter().all(|&m| m == Mode::General),
            "recovery must return every shard to General"
        );
        // Lite flips happen during the spike, recovery after it.
        let first_lite = r
            .timeline
            .iter()
            .find_map(|e| match e {
                ControlEvent::ModeSwitch {
                    epoch,
                    mode: Mode::Lite,
                    ..
                } => Some(*epoch),
                _ => None,
            })
            .expect("a Lite switch is recorded");
        // Controller epochs are 1-based; profile epochs 0-based.
        assert!(first_lite > LoadProfile::default().spike_start);
        assert!(
            r.whitelist_promotions > 0,
            "recurring heavy hitters promote"
        );
    }

    #[test]
    fn identical_profiles_summarise_identically() {
        let a = simulate(ControlConfig::default(), &LoadProfile::default());
        let b = simulate(ControlConfig::default(), &LoadProfile::default());
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.report.mode_switches, b.report.mode_switches);
    }

    #[test]
    fn different_seeds_change_the_stream_not_the_shape() {
        let base = simulate(ControlConfig::default(), &LoadProfile::default());
        let other = simulate(
            ControlConfig::default(),
            &LoadProfile {
                seed: 1,
                ..LoadProfile::default()
            },
        );
        assert_ne!(base.summary, other.summary, "seed is part of the summary");
        // The macro behaviour (spike → Lite+shed → recover) is seed-free.
        assert!(other.lite_epochs > 0);
        assert!(other.report.shed_epochs > 0);
        assert!(!other.report.shed_active);
    }
}
