//! RCU-style steering-state publication.
//!
//! The controller publishes immutable [`SteeringSnapshot`]s through a
//! [`SnapshotCell`]; every RX-queue dispatcher and every shard hold
//! their *own* [`SnapshotReader`] — readers are independent cursors, so
//! a multi-queue engine hands one to each of its R dispatcher threads
//! and they refresh (and lag) independently without coordination. The
//! protocol:
//!
//! 1. The publisher builds a fresh snapshot (a new `Arc`), stores it in
//!    the cell's slot, then bumps the version counter (release order).
//! 2. A reader checks the version with one atomic load per *batch*
//!    ([`SnapshotReader::refresh`]). Only when the version moved does it
//!    briefly lock the slot to clone the `Arc` — publications are rare
//!    (one per controller epoch at most), so in the steady state a
//!    refresh is a single uncontended atomic load.
//! 3. The per-*packet* path uses [`SnapshotReader::current`], which is a
//!    plain field access into the cached `Arc` — zero atomics, zero
//!    locks, and immune to concurrent publication by construction.
//!
//! This is safe-Rust RCU: readers never block the publisher, the
//! publisher never blocks readers mid-batch, and old snapshots are freed
//! when the last reader drops its `Arc`.

use smartwatch_net::DigestSet;
use smartwatch_snic::Mode;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// The immutable steering table the data path consults.
///
/// Digests are symmetric flow hashes under the engine's hash seed, so a
/// membership probe on the hot path is one identity-hashed `u64` lookup
/// against the pre-computed dispatch digest.
#[derive(Clone, Debug, Default)]
pub struct SteeringSnapshot {
    /// Monotone publication number (0 = the empty boot snapshot).
    pub version: u64,
    /// Load shedding active: the dispatcher forwards only whitelisted
    /// flows and counts everything else as an accounted shed drop.
    pub shed: bool,
    /// Benign flows steered past the detector suite (and kept during
    /// shedding) — the switch-whitelist analogue.
    pub whitelist: DigestSet,
    /// Hostile flows dropped at dispatch — the switch-blacklist
    /// ("hoverboard" rule) analogue.
    pub blacklist: DigestSet,
}

impl SteeringSnapshot {
    /// The empty boot snapshot every reader starts from.
    pub fn empty() -> SteeringSnapshot {
        SteeringSnapshot::default()
    }
}

/// Single-publisher, multi-reader snapshot cell (see module docs).
#[derive(Debug)]
pub struct SnapshotCell<T> {
    version: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T> SnapshotCell<T> {
    /// Cell seeded with `initial` at version 0.
    pub fn new(initial: T) -> SnapshotCell<T> {
        SnapshotCell {
            version: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// Publish a new snapshot: replace the slot, then bump the version
    /// so readers notice on their next refresh.
    pub fn publish(&self, next: Arc<T>) {
        *self.slot.lock().expect("snapshot slot poisoned") = next;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Publications so far.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A reader holding the current snapshot.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader<T> {
        let version = self.version();
        let cached = Arc::clone(&self.slot.lock().expect("snapshot slot poisoned"));
        SnapshotReader {
            cell: Arc::clone(self),
            seen: version,
            cached,
        }
    }
}

/// A reader-side cache of the latest published snapshot.
#[derive(Debug)]
pub struct SnapshotReader<T> {
    cell: Arc<SnapshotCell<T>>,
    seen: u64,
    cached: Arc<T>,
}

impl<T> SnapshotReader<T> {
    /// One atomic version load; re-clones the `Arc` only when the
    /// publisher moved on. Returns `true` when the cached snapshot
    /// changed. Call once per batch, never per packet.
    #[inline]
    pub fn refresh(&mut self) -> bool {
        let v = self.cell.version.load(Ordering::Acquire);
        if v == self.seen {
            return false;
        }
        self.cached = Arc::clone(&self.cell.slot.lock().expect("snapshot slot poisoned"));
        self.seen = v;
        true
    }

    /// The cached snapshot — a plain dereference, no atomics. This is
    /// the per-packet entry point.
    #[inline]
    pub fn current(&self) -> &T {
        &self.cached
    }
}

/// One shard's live Algorithm 4 decision, applied by the shard thread at
/// its next batch boundary. An `AtomicU8` so the controller's store and
/// the shard's load never contend on anything wider.
#[derive(Debug)]
pub struct ModeCell(AtomicU8);

impl ModeCell {
    /// Cell starting in `mode`.
    pub fn new(mode: Mode) -> ModeCell {
        ModeCell(AtomicU8::new(Self::encode(mode)))
    }

    fn encode(mode: Mode) -> u8 {
        match mode {
            Mode::General => 0,
            Mode::Lite => 1,
        }
    }

    /// Publish a mode decision (controller side).
    pub fn set(&self, mode: Mode) {
        self.0.store(Self::encode(mode), Ordering::Release);
    }

    /// Read the current decision (shard side, once per batch).
    pub fn get(&self) -> Mode {
        match self.0.load(Ordering::Acquire) {
            0 => Mode::General,
            _ => Mode::Lite,
        }
    }
}

impl Default for ModeCell {
    fn default() -> ModeCell {
        ModeCell::new(Mode::General)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_sees_publications_only_after_refresh() {
        let cell = Arc::new(SnapshotCell::new(SteeringSnapshot::empty()));
        let mut reader = cell.reader();
        assert_eq!(reader.current().version, 0);

        let mut next = SteeringSnapshot::empty();
        next.version = 1;
        next.whitelist.insert(42);
        cell.publish(Arc::new(next));

        // Unrefreshed reads keep serving the old snapshot (stability
        // within a batch).
        assert_eq!(reader.current().version, 0);
        assert!(reader.refresh(), "refresh must observe the publication");
        assert_eq!(reader.current().version, 1);
        assert!(reader.current().whitelist.contains(&42));
        assert!(!reader.refresh(), "no further publication, no churn");
    }

    #[test]
    fn concurrent_readers_never_tear() {
        // Publisher spins versions; readers must only ever observe
        // snapshots whose content matches their version stamp.
        let cell = Arc::new(SnapshotCell::new(SteeringSnapshot::empty()));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let mut r = cell.reader();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        r.refresh();
                        let snap = r.current();
                        assert!(snap.version >= last, "version must be monotone");
                        assert_eq!(
                            snap.whitelist.len() as u64,
                            snap.version,
                            "snapshot content must match its version atomically"
                        );
                        last = snap.version;
                    }
                })
            })
            .collect();
        let mut wl = DigestSet::default();
        for v in 1..=1000u64 {
            wl.insert(v);
            cell.publish(Arc::new(SteeringSnapshot {
                version: v,
                shed: false,
                whitelist: wl.clone(),
                blacklist: DigestSet::default(),
            }));
        }
        stop.store(1, Ordering::Relaxed);
        for h in readers {
            h.join().expect("reader never panics");
        }
        assert_eq!(cell.version(), 1000);
    }

    #[test]
    fn per_dispatcher_readers_are_independent_cursors() {
        // The multi-queue engine gives each RX dispatcher its own
        // reader. One dispatcher refreshing must not advance (or
        // invalidate) another's cached snapshot: each converges on its
        // own schedule.
        let cell = Arc::new(SnapshotCell::new(SteeringSnapshot::empty()));
        let mut readers: Vec<_> = (0..4).map(|_| cell.reader()).collect();

        let mut next = SteeringSnapshot::empty();
        next.version = 1;
        next.blacklist.insert(7);
        cell.publish(Arc::new(next));

        // Refresh only queue 0: the others keep serving the boot
        // snapshot until their own batch boundary comes around.
        assert!(readers[0].refresh());
        assert_eq!(readers[0].current().version, 1);
        for r in &readers[1..] {
            assert_eq!(r.current().version, 0, "unrefreshed readers lag safely");
        }
        for r in &mut readers[1..] {
            assert!(r.refresh());
            assert!(r.current().blacklist.contains(&7));
        }
        assert!(
            readers.iter_mut().all(|r| !r.refresh()),
            "all caught up: refreshes are quiescent again"
        );
    }

    #[test]
    fn mode_cell_round_trips() {
        let cell = ModeCell::default();
        assert_eq!(cell.get(), Mode::General);
        cell.set(Mode::Lite);
        assert_eq!(cell.get(), Mode::Lite);
        cell.set(Mode::General);
        assert_eq!(cell.get(), Mode::General);
    }
}
