//! Deployment modes and the Fig. 3 resource-scaling model.
//!
//! The paper simulates four deployments sustaining 15 → 2320 Mpps and
//! counts the CPU cores and sNICs each needs. The driving constants:
//! a 40 GbE sNIC sustains ≈43 Mpps of FlowCache processing; a host core
//! sustains a few Mpps of fine-grained NF processing; the P4Switch
//! forwards the bulk of traffic so only the steered fraction hits the
//! sNIC tier; and of sNIC-processed packets, under 16% continue to the
//! host.

use serde::{Deserialize, Serialize};

/// Which system architecture processes the traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DeployMode {
    /// Everything on host CPUs (DPDK + Zeek-style NFs).
    HostOnly,
    /// sNICs in front of the host, no programmable switch
    /// ("SmartWatch (No P4Switch)" in Fig. 3).
    SnicHost,
    /// The full cooperative platform: P4Switch + sNIC + host.
    SmartWatch,
    /// Programmable switch steering suspicious subsets straight to host
    /// CPUs (Sonata-style, "P4Switch and Host" in Fig. 3).
    SwitchHost,
}

impl DeployMode {
    /// All four modes in Fig. 3's legend order.
    pub const ALL: [DeployMode; 4] = [
        DeployMode::HostOnly,
        DeployMode::SnicHost,
        DeployMode::SmartWatch,
        DeployMode::SwitchHost,
    ];

    /// Display name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            DeployMode::HostOnly => "Host",
            DeployMode::SnicHost => "SmartWatch (No P4Switch)",
            DeployMode::SmartWatch => "SmartWatch",
            DeployMode::SwitchHost => "P4Switch and Host",
        }
    }
}

/// Scaling-model constants (calibrated to the paper's stated end points:
/// at 2320 Mpps SmartWatch needs 4 sNICs + 6 cores, ≥14× fewer than the
/// switchless deployments).
#[derive(Clone, Copy, Debug)]
pub struct ScalingModel {
    /// Packets/sec one sNIC sustains (Netronome Lite mode).
    pub snic_capacity_pps: f64,
    /// Packets/sec one host core sustains doing fine-grained NF work.
    pub core_capacity_pps: f64,
    /// Fraction of total traffic the switch steers to the monitoring tier
    /// in SmartWatch mode (suspicious subsets only).
    pub steer_fraction: f64,
    /// Fraction of sNIC-processed packets escalated to the host (< 0.16).
    pub host_fraction: f64,
}

impl Default for ScalingModel {
    fn default() -> ScalingModel {
        ScalingModel {
            snic_capacity_pps: 43.0e6,
            core_capacity_pps: 12.0e6,
            steer_fraction: 0.065,
            host_fraction: 0.16,
        }
    }
}

/// Resources one deployment needs at a given offered rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    /// Host CPU cores.
    pub cores: u32,
    /// SmartNICs.
    pub snics: u32,
}

impl ScalingModel {
    /// Fig. 3's y-axes: resources to sustain `rate_pps` in `mode`.
    pub fn required(&self, mode: DeployMode, rate_pps: f64) -> Resources {
        let ceil = |x: f64| x.ceil().max(if x > 0.0 { 1.0 } else { 0.0 }) as u32;
        match mode {
            DeployMode::HostOnly => Resources {
                // Host does everything: per-packet NF work on every packet,
                // plus kernel-bypass RX on ordinary NICs (counted in the
                // sNIC column as the paper does).
                cores: ceil(rate_pps / self.core_capacity_pps),
                snics: ceil(rate_pps / self.snic_capacity_pps),
            },
            DeployMode::SnicHost => Resources {
                // sNICs absorb everything; the host sees the <16% residue.
                cores: ceil(rate_pps * self.host_fraction / self.core_capacity_pps),
                snics: ceil(rate_pps / self.snic_capacity_pps),
            },
            DeployMode::SmartWatch => {
                let steered = rate_pps * self.steer_fraction;
                Resources {
                    cores: ceil(steered * self.host_fraction / self.core_capacity_pps).max(1),
                    snics: ceil(steered / self.snic_capacity_pps),
                }
            }
            DeployMode::SwitchHost => {
                // Switch pre-filters, but everything steered needs host
                // CPU processing directly (no sNIC tier).
                let steered = rate_pps * self.steer_fraction;
                Resources {
                    cores: ceil(steered / self.core_capacity_pps).max(1),
                    snics: 0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smartwatch_endpoint_matches_paper() {
        // "The number of required sNIC and CPU cores are 4 and 6" at 2320
        // Mpps — allow the ballpark (same order, single digits).
        let m = ScalingModel::default();
        let r = m.required(DeployMode::SmartWatch, 2320.0e6);
        assert!(r.snics >= 3 && r.snics <= 5, "snics {}", r.snics);
        assert!(r.cores >= 2 && r.cores <= 8, "cores {}", r.cores);
    }

    #[test]
    fn p4switch_saves_an_order_of_magnitude() {
        // Paper: "the P4Switch helps SmartWatch reduce the number of sNIC
        // and CPU cores by at least 14 times" at 2320 Mpps (their counts:
        // ~54 vs 4 sNICs, ~194 vs 6 cores; the sNIC ratio is ≈13.5 before
        // rounding). Assert an ≥12× saving on both axes.
        let m = ScalingModel::default();
        let sw = m.required(DeployMode::SmartWatch, 2320.0e6);
        let no_sw = m.required(DeployMode::SnicHost, 2320.0e6);
        let host = m.required(DeployMode::HostOnly, 2320.0e6);
        assert!(
            no_sw.snics >= sw.snics * 12,
            "{} vs {}",
            no_sw.snics,
            sw.snics
        );
        assert!(
            host.cores >= sw.cores * 14,
            "{} vs {}",
            host.cores,
            sw.cores
        );
    }

    #[test]
    fn host_mode_needs_most_cores() {
        let m = ScalingModel::default();
        for rate in [15.0e6, 120.0e6, 1160.0e6] {
            let host = m.required(DeployMode::HostOnly, rate).cores;
            for mode in [
                DeployMode::SnicHost,
                DeployMode::SmartWatch,
                DeployMode::SwitchHost,
            ] {
                assert!(m.required(mode, rate).cores <= host, "{mode:?} at {rate}");
            }
        }
    }

    #[test]
    fn switchhost_needs_no_snics_but_more_cores_than_smartwatch() {
        let m = ScalingModel::default();
        let sh = m.required(DeployMode::SwitchHost, 580.0e6);
        let sw = m.required(DeployMode::SmartWatch, 580.0e6);
        assert_eq!(sh.snics, 0);
        assert!(sh.cores >= sw.cores);
    }

    #[test]
    fn resources_monotone_in_rate() {
        let m = ScalingModel::default();
        for mode in DeployMode::ALL {
            let lo = m.required(mode, 15.0e6);
            let hi = m.required(mode, 2320.0e6);
            assert!(hi.cores >= lo.cores && hi.snics >= lo.snics, "{mode:?}");
        }
    }
}
