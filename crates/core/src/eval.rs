//! Detection-rate evaluation (paper §5.4, Table 4).
//!
//! Compares a [`RunReport`]'s alerts (or Sonata's on-switch detections)
//! against the ground-truth labels carried by generated traces. An attack
//! *instance* counts as detected when any alert's subject matches the
//! instance's attacker source, victim, flow, or artefact digest; Sonata
//! detections match when a terminal /32 prefix equals an endpoint of the
//! instance's traffic.

use crate::platform::RunReport;
use smartwatch_detect::Subject;
use smartwatch_net::{AttackKind, FlowKey, Label, Packet};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Ground truth for one attack instance.
#[derive(Clone, Debug, Default)]
pub struct InstanceTruth {
    /// Canonical flows of the instance.
    pub flows: HashSet<FlowKey>,
    /// Source addresses of labelled packets.
    pub sources: HashSet<Ipv4Addr>,
    /// Destination addresses of labelled packets.
    pub destinations: HashSet<Ipv4Addr>,
    /// Payload digests of labelled packets.
    pub digests: HashSet<u64>,
}

/// Ground truth per (attack kind, instance).
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    instances: HashMap<(AttackKind, u32), InstanceTruth>,
}

impl GroundTruth {
    /// Extract ground truth from a labelled packet stream.
    pub fn from_packets(packets: &[Packet]) -> GroundTruth {
        let mut gt = GroundTruth::default();
        for p in packets {
            if let Label::Attack { kind, instance } = p.label {
                let t = gt.instances.entry((kind, instance)).or_default();
                t.flows.insert(p.key.canonical().0);
                t.sources.insert(p.key.src_ip);
                t.destinations.insert(p.key.dst_ip);
                if p.payload_digest != 0 {
                    t.digests.insert(p.payload_digest);
                }
            }
        }
        gt
    }

    /// Instances of one kind.
    pub fn instances_of(&self, kind: AttackKind) -> Vec<(u32, &InstanceTruth)> {
        let mut v: Vec<(u32, &InstanceTruth)> = self
            .instances
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|((_, i), t)| (*i, t))
            .collect();
        v.sort_by_key(|(i, _)| *i);
        v
    }

    /// Attack kinds present.
    pub fn kinds(&self) -> Vec<AttackKind> {
        let mut v: Vec<AttackKind> = self.instances.keys().map(|(k, _)| *k).collect();
        v.sort_by_key(|k| k.name());
        v.dedup();
        v
    }
}

/// Does an alert subject implicate an instance?
fn subject_matches(subject: &Subject, t: &InstanceTruth) -> bool {
    match subject {
        Subject::Source(ip) => t.sources.contains(ip),
        Subject::Destination(ip) => t.destinations.contains(ip) || t.sources.contains(ip),
        Subject::Flow(f) => t.flows.contains(f),
        Subject::Digest(d) => t.digests.contains(d),
        Subject::Burst(_) => false,
    }
}

/// Detection rate of `kind` in a report: detected instances / instances.
/// Returns `None` when the trace contains no such instances.
pub fn detection_rate(report: &RunReport, truth: &GroundTruth, kind: AttackKind) -> Option<f64> {
    let instances = truth.instances_of(kind);
    if instances.is_empty() {
        return None;
    }
    let relevant: Vec<&Subject> = report
        .alerts
        .iter()
        .filter(|a| a.kind == kind)
        .map(|a| &a.subject)
        .collect();
    let mut detected = 0usize;
    for (_, t) in &instances {
        let by_alert = relevant.iter().any(|s| subject_matches(s, t));
        let by_sonata = report.sonata_detections.iter().any(|d| {
            let ip = Ipv4Addr::from(d.prefix);
            t.sources.contains(&ip) || t.destinations.contains(&ip)
        });
        if by_alert || by_sonata {
            detected += 1;
        }
    }
    Some(detected as f64 / instances.len() as f64)
}

/// Detection rate relative to a reference (host) run, as Table 4 reports.
pub fn relative_rate(
    report: &RunReport,
    reference: &RunReport,
    truth: &GroundTruth,
    kind: AttackKind,
) -> Option<f64> {
    let r = detection_rate(report, truth, kind)?;
    let h = detection_rate(reference, truth, kind)?;
    if h == 0.0 {
        None
    } else {
        Some(r / h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeployMode;
    use crate::platform::{standard_queries, PlatformConfig, SmartWatch};
    use smartwatch_net::Dur;
    use smartwatch_trace::attacks::portscan::{portscan, ScanConfig};
    use smartwatch_trace::background::{preset_trace, Preset};
    use smartwatch_trace::Trace;

    fn labelled_trace() -> Trace {
        let bg = preset_trace(Preset::Caida2018, 300, Dur::from_secs(4), 7);
        let scan = portscan(&ScanConfig::with_delay(Dur::from_millis(40), 80, 4));
        Trace::merge([bg, scan])
    }

    #[test]
    fn ground_truth_extraction() {
        let t = labelled_trace();
        let gt = GroundTruth::from_packets(t.packets());
        let scans = gt.instances_of(AttackKind::StealthyPortScan);
        assert_eq!(scans.len(), 1);
        assert!(!scans[0].1.sources.is_empty());
        assert!(gt.kinds().contains(&AttackKind::StealthyPortScan));
    }

    #[test]
    fn host_mode_has_full_scan_detection() {
        let t = labelled_trace();
        let gt = GroundTruth::from_packets(t.packets());
        let rep =
            SmartWatch::new(PlatformConfig::new(DeployMode::HostOnly), vec![]).run(t.packets());
        let rate = detection_rate(&rep, &gt, AttackKind::StealthyPortScan).unwrap();
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn smartwatch_beats_sonata_on_stateful_detection() {
        let t = labelled_trace();
        let gt = GroundTruth::from_packets(t.packets());
        let host =
            SmartWatch::new(PlatformConfig::new(DeployMode::HostOnly), vec![]).run(t.packets());
        let sw = SmartWatch::new(
            PlatformConfig::new(DeployMode::SmartWatch),
            standard_queries(),
        )
        .run(t.packets());
        let sonata = SmartWatch::new(
            PlatformConfig::new(DeployMode::SwitchHost),
            standard_queries(),
        )
        .run(t.packets());
        let k = AttackKind::StealthyPortScan;
        let r_sw = relative_rate(&sw, &host, &gt, k).unwrap();
        let r_sonata = relative_rate(&sonata, &host, &gt, k).unwrap_or(0.0);
        assert!(
            r_sw >= r_sonata,
            "SmartWatch ({r_sw}) should be at least Sonata ({r_sonata})"
        );
        assert!(r_sw > 0.5, "SmartWatch relative rate {r_sw}");
    }

    #[test]
    fn missing_kind_yields_none() {
        let t = labelled_trace();
        let gt = GroundTruth::from_packets(t.packets());
        let rep =
            SmartWatch::new(PlatformConfig::new(DeployMode::HostOnly), vec![]).run(t.packets());
        assert!(detection_rate(&rep, &gt, AttackKind::Slowloris).is_none());
    }
}
