//! # smartwatch-core
//!
//! The SmartWatch platform: the paper's primary contribution, wiring the
//! P4Switch simulator, the sNIC FlowCache and the host subsystem into a
//! cooperative two-stage intrusion-prevention monitor.
//!
//! - [`platform`] — the [`platform::SmartWatch`] pipeline with
//!   its switch↔sNIC control loop (steering, whitelisting, blacklisting).
//! - [`suite`] — all online detectors bound to one packet stream, with
//!   per-packet host-escalation decisions (Table 2's partitioning).
//! - [`deploy`] — the four deployment architectures of Fig. 3 and the
//!   resource-scaling model.
//! - [`eval`] — ground-truth extraction and detection-rate scoring for
//!   the Table 4 comparison.
//!
//! ```
//! use smartwatch_core::deploy::DeployMode;
//! use smartwatch_core::platform::{standard_queries, PlatformConfig, SmartWatch};
//! use smartwatch_trace::background::{preset_trace, Preset};
//! use smartwatch_net::Dur;
//!
//! let trace = preset_trace(Preset::Caida2018, 50, Dur::from_secs(1), 1);
//! let sw = SmartWatch::new(PlatformConfig::new(DeployMode::SmartWatch), standard_queries());
//! let report = sw.run(trace.packets());
//! assert_eq!(report.metrics.total, trace.len() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod eval;
pub mod platform;
pub mod suite;

pub use deploy::{DeployMode, Resources, ScalingModel};
pub use eval::{detection_rate, relative_rate, GroundTruth};
pub use platform::{standard_queries, PlatformConfig, RunReport, SmartWatch, TierMetrics};
pub use suite::{DetectorSuite, HostNeed, SuiteOutcome};
