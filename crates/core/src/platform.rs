//! The SmartWatch platform: switch + sNIC + host wired into the
//! cooperative two-stage detector with its control loop (paper §2.3, §3).
//!
//! Per monitoring interval the control loop:
//!
//! 1. reads the switch queries' over-threshold keys and asks each
//!    [`Refiner`] what to do — SmartWatch-mode refiners install steering
//!    rules (traffic subsets head to the sNIC from the next interval);
//!    Sonata-mode refiners zoom the query instead;
//! 2. snapshots the FlowCache and drains the eviction rings into the host
//!    aggregator, flushing per-interval flow logs;
//! 3. whitelists the top-k heavy *benign* flows on the switch (the
//!    "hoverboard" intuition) and blacklists alert sources;
//! 4. runs the interval detectors (Slowloris & friends) over the flow
//!    log.
//!
//! Per packet, the deployment mode decides the path: everything through
//! the host (HostOnly), everything through sNIC+host (SnicHost), switch
//! pre-filtering with sNIC fine-graining (SmartWatch), or switch-only
//! aggregate detection (SwitchHost / Sonata).

use crate::deploy::DeployMode;
use crate::suite::{DetectorSuite, HostNeed};
use smartwatch_detect::{Alert, Subject};
use smartwatch_host::{FlowLogStore, HostCostModel, SnapshotAggregator};
use smartwatch_net::{Dur, Packet, Ts};
use smartwatch_p4sim::{Decision, P4Switch, RefineMode, RefineOutcome, Refiner, SwitchQuery};
use smartwatch_snic::hw::service_time;
use smartwatch_snic::{CycleCosts, FlowCache, FlowCacheConfig, HwProfile, NETRONOME_AGILIO_LX};
use smartwatch_telemetry::{Counter, Gauge, Histogram, Registry, TraceShard, Tracer};

/// Platform configuration.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Deployment architecture.
    pub mode: DeployMode,
    /// Switch monitoring interval.
    pub interval: Dur,
    /// How many heavy benign flows to whitelist per interval.
    pub whitelist_top_k: usize,
    /// Minimum cumulative packets before a flow qualifies as "heavy"
    /// enough to whitelist (the hoverboard picks elephants, not mice).
    pub whitelist_min_packets: u64,
    /// FlowCache geometry.
    pub cache: FlowCacheConfig,
    /// sNIC hardware profile for latency accounting.
    pub hw: HwProfile,
    /// Host path cost model.
    pub host_cost: HostCostModel,
    /// Blacklist alert sources on the switch (intrusion *prevention*).
    pub blacklist_sources: bool,
    /// Let detector verdicts (e.g. successful SSH authentication)
    /// whitelist flows on the switch. Disable to isolate the top-k
    /// heavy-flow whitelisting when studying Fig. 2's trade-off.
    pub suite_whitelist: bool,
}

impl PlatformConfig {
    /// Defaults for a given mode: 1-second intervals, a 2^14-row cache
    /// (laptop-sized; pass 21 row bits for the paper's full table).
    pub fn new(mode: DeployMode) -> PlatformConfig {
        PlatformConfig {
            mode,
            interval: Dur::from_secs(1),
            whitelist_top_k: 64,
            whitelist_min_packets: 200,
            cache: FlowCacheConfig::general(14),
            hw: NETRONOME_AGILIO_LX,
            host_cost: HostCostModel::default(),
            blacklist_sources: true,
            suite_whitelist: true,
        }
    }
}

/// Where packets went and what they cost (the latency/tier ledger) — a
/// point-in-time *view* over the platform's live telemetry counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TierMetrics {
    /// Total packets offered.
    pub total: u64,
    /// Dropped by the switch blacklist.
    pub dropped: u64,
    /// Forwarded by the switch without monitoring-tier involvement.
    pub forwarded_direct: u64,
    /// Steered into the sNIC tier.
    pub snic_processed: u64,
    /// Escalated to host NFs.
    pub host_processed: u64,
    /// Sum of per-packet processing latency (ns) across monitored packets.
    pub latency_sum_ns: f64,
    /// Monitored packets (denominator for mean latency).
    pub monitored: u64,
    /// Packets whose FlowCache row was fully pinned (not in flow logs).
    pub unlogged: u64,
}

/// The ledger's live counters (`core.tier.*` once attached to a
/// [`Registry`]); [`TierMetrics`] is the frozen view. Latency is carried
/// in whole nanoseconds internally.
#[derive(Debug)]
struct TierCounters {
    total: Counter,
    dropped: Counter,
    forwarded_direct: Counter,
    snic_processed: Counter,
    host_processed: Counter,
    latency_ns: Counter,
    monitored: Counter,
    unlogged: Counter,
}

impl TierCounters {
    fn detached() -> TierCounters {
        TierCounters {
            total: Counter::detached(),
            dropped: Counter::detached(),
            forwarded_direct: Counter::detached(),
            snic_processed: Counter::detached(),
            host_processed: Counter::detached(),
            latency_ns: Counter::detached(),
            monitored: Counter::detached(),
            unlogged: Counter::detached(),
        }
    }

    fn registered(reg: &Registry, current: &TierCounters) -> TierCounters {
        let c = TierCounters {
            total: reg.counter("core.tier.total", &[]),
            dropped: reg.counter("core.tier.dropped", &[]),
            forwarded_direct: reg.counter("core.tier.forwarded_direct", &[]),
            snic_processed: reg.counter("core.tier.snic_processed", &[]),
            host_processed: reg.counter("core.tier.host_processed", &[]),
            latency_ns: reg.counter("core.tier.latency_ns", &[]),
            monitored: reg.counter("core.tier.monitored", &[]),
            unlogged: reg.counter("core.tier.unlogged", &[]),
        };
        c.total.add(current.total.get());
        c.dropped.add(current.dropped.get());
        c.forwarded_direct.add(current.forwarded_direct.get());
        c.snic_processed.add(current.snic_processed.get());
        c.host_processed.add(current.host_processed.get());
        c.latency_ns.add(current.latency_ns.get());
        c.monitored.add(current.monitored.get());
        c.unlogged.add(current.unlogged.get());
        c
    }

    fn snapshot(&self) -> TierMetrics {
        TierMetrics {
            total: self.total.get(),
            dropped: self.dropped.get(),
            forwarded_direct: self.forwarded_direct.get(),
            snic_processed: self.snic_processed.get(),
            host_processed: self.host_processed.get(),
            latency_sum_ns: self.latency_ns.get() as f64,
            monitored: self.monitored.get(),
            unlogged: self.unlogged.get(),
        }
    }
}

/// Platform-level derived metrics and control-loop instruments.
#[derive(Debug)]
struct PlatformTelemetry {
    whitelist_installs: Counter,
    blacklist_installs: Counter,
    intervals: Counter,
    /// `host_processed / snic_processed` — the paper bounds this ≤ 16%.
    escalation_rate: Gauge,
    /// `snic_processed / total` — the steered share of traffic.
    steered_share: Gauge,
    /// Virtual CPU time per snapshot-aggregation pass (cost model).
    snapshot_cpu_ns: Histogram,
}

impl TierMetrics {
    /// Mean per-packet processing latency over monitored packets, ns.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.monitored == 0 {
            0.0
        } else {
            self.latency_sum_ns / self.monitored as f64
        }
    }

    /// Packets that could not update any flow record (fully pinned rows)
    /// and therefore are missing from the flow logs.
    pub fn to_host_unlogged(&self) -> u64 {
        self.unlogged
    }

    /// Fraction of sNIC-tier packets that continued to the host.
    pub fn host_fraction(&self) -> f64 {
        if self.snic_processed == 0 {
            0.0
        } else {
            self.host_processed as f64 / self.snic_processed as f64
        }
    }
}

/// One Sonata on-switch detection: (/32 prefix, width, when).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SonataDetection {
    /// Detected prefix value.
    pub prefix: u32,
    /// Prefix width (always the finest ladder level).
    pub width: u8,
    /// Interval-end time of the detection.
    pub ts: Ts,
}

/// Output of a platform run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// All alerts raised (suite + interval detectors).
    pub alerts: Vec<Alert>,
    /// Tier/latency ledger.
    pub metrics: TierMetrics,
    /// Sonata-mode on-switch detections.
    pub sonata_detections: Vec<SonataDetection>,
    /// Switch statistics (steered bytes etc.).
    pub steered_bytes: u64,
    /// Whitelist entries installed over the run.
    pub whitelist_entries: usize,
    /// Switch SRAM high-water mark, bytes.
    pub switch_sram_peak: usize,
    /// The interval-keyed flow logs (offline analysis input).
    pub flow_log: FlowLogStore,
}

/// The platform.
pub struct SmartWatch {
    cfg: PlatformConfig,
    /// The programmable switch (present in SmartWatch / SwitchHost modes).
    pub switch: P4Switch,
    /// The sNIC FlowCache.
    pub cache: FlowCache,
    /// The detector suite.
    pub suite: DetectorSuite,
    /// Host aggregation of sNIC exports (per interval, flushed to logs).
    pub aggregator: SnapshotAggregator,
    /// Cumulative host view across all snapshots (paper §3.4: the host
    /// "collects and stores all flow-related information over multiple
    /// snapshots" — flow *durations* only exist here).
    pub long_term: SnapshotAggregator,
    /// Interval-keyed flow logs.
    pub flowlog: FlowLogStore,
    refiners: Vec<Refiner>,
    costs: CycleCosts,
    metrics: TierCounters,
    telemetry: Option<PlatformTelemetry>,
    trace: Option<TraceShard>,
    alerts: Vec<Alert>,
    sonata_detections: Vec<SonataDetection>,
    interval_idx: u64,
    next_interval: Ts,
    whitelist_entries: usize,
    sram_peak: usize,
    /// Reused export scratch for snapshot/drain batches: after the
    /// first few intervals grow it to the working-set high-water mark,
    /// the per-interval export pass allocates nothing.
    export_scratch: Vec<smartwatch_snic::FlowRecord>,
}

impl SmartWatch {
    /// Build a platform; `refiner_specs` are the coarse base queries to
    /// run on the switch (ignored in switch-less modes).
    pub fn new(cfg: PlatformConfig, base_queries: Vec<SwitchQuery>) -> SmartWatch {
        let refine_mode = match cfg.mode {
            DeployMode::SwitchHost => RefineMode::Sonata,
            _ => RefineMode::SmartWatch,
        };
        let mut switch = P4Switch::new();
        let refiners: Vec<Refiner> = base_queries
            .into_iter()
            .map(|q| {
                // Each query's ladder starts at its own coarse width and
                // climbs through the paper's levels above it.
                let base_width = q.key.prefix_width().unwrap_or(8);
                let mut levels: Vec<u8> = std::iter::once(base_width)
                    .chain(
                        Refiner::paper_levels()
                            .into_iter()
                            .filter(|w| *w > base_width),
                    )
                    .collect();
                levels.dedup();
                Refiner::new(refine_mode, q, levels)
            })
            .collect();
        if uses_switch(cfg.mode) {
            for r in &refiners {
                assert!(
                    switch.install_query(r.initial_query()),
                    "monitoring stage budget exhausted at startup"
                );
            }
        }
        SmartWatch {
            cache: FlowCache::new(cfg.cache.clone()),
            switch,
            suite: DetectorSuite::new(),
            aggregator: SnapshotAggregator::new(),
            long_term: SnapshotAggregator::new(),
            flowlog: FlowLogStore::new(),
            refiners,
            costs: CycleCosts::default(),
            metrics: TierCounters::detached(),
            telemetry: None,
            trace: None,
            alerts: Vec::new(),
            sonata_detections: Vec::new(),
            interval_idx: 0,
            next_interval: Ts::ZERO + cfg.interval,
            whitelist_entries: 0,
            sram_peak: 0,
            export_scratch: Vec::new(),
            cfg,
        }
    }

    /// Replace the default detector suite (e.g. to attach registries).
    pub fn with_suite(mut self, suite: DetectorSuite) -> SmartWatch {
        self.suite = suite;
        self
    }

    /// Wire every tier into `registry`: the FlowCache (`snic.cache.*`),
    /// eviction rings, switch (`p4.switch.*`), refiners (`p4.refine.*`),
    /// host aggregators and flow log (`host.*`), and the platform's own
    /// ledger and control-loop instruments (`core.*`). Current values
    /// carry over, so attaching mid-run loses nothing.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.cache.attach_telemetry(registry);
        self.switch.attach_telemetry(registry);
        for r in &mut self.refiners {
            r.attach_telemetry(registry);
        }
        self.aggregator.attach_telemetry(registry, "interval");
        self.long_term.attach_telemetry(registry, "long_term");
        self.flowlog.attach_telemetry(registry);
        self.metrics = TierCounters::registered(registry, &self.metrics);
        self.telemetry = Some(PlatformTelemetry {
            whitelist_installs: registry.counter("core.whitelist_installs", &[]),
            blacklist_installs: registry.counter("core.blacklist_installs", &[]),
            intervals: registry.counter("core.intervals", &[]),
            escalation_rate: registry.gauge("core.escalation_rate", &[]),
            steered_share: registry.gauge("core.steered_share", &[]),
            snapshot_cpu_ns: registry.histogram("host.aggregate.snapshot_cpu_ns", &[]),
        });
        self.refresh_derived_gauges();
    }

    /// Emit control-loop events (interval boundaries, refinement
    /// outcomes) onto one track of `tracer`, stamped with the virtual
    /// clock.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.trace = Some(tracer.shard("control-loop"));
    }

    fn refresh_derived_gauges(&mut self) {
        if let Some(t) = &self.telemetry {
            let m = self.metrics.snapshot();
            t.escalation_rate.set(m.host_fraction());
            let share = if m.total == 0 {
                0.0
            } else {
                m.snic_processed as f64 / m.total as f64
            };
            t.steered_share.set(share);
        }
    }

    /// Deployment mode.
    pub fn mode(&self) -> DeployMode {
        self.cfg.mode
    }

    /// Process one packet.
    pub fn on_packet(&mut self, pkt: &Packet) {
        while pkt.ts >= self.next_interval {
            let at = self.next_interval;
            self.end_interval(at);
            self.next_interval = at + self.cfg.interval;
        }
        self.metrics.total.inc();

        let monitor = match self.cfg.mode {
            DeployMode::HostOnly => {
                // Everything to host NFs. The host keeps its own flow
                // table (the cache stands in for it) so flow-log driven
                // detectors still run; latency is charged at host rates.
                self.metrics.monitored.inc();
                self.metrics.host_processed.inc();
                self.metrics.latency_ns.add(
                    self.cfg
                        .host_cost
                        .host_path_latency(pkt.wire_len)
                        .as_nanos(),
                );
                self.cache.process(pkt);
                let outcome = self.suite.on_packet(pkt);
                self.ingest_alerts(outcome.alerts);
                return;
            }
            DeployMode::SnicHost => true,
            DeployMode::SmartWatch | DeployMode::SwitchHost => match self.switch.process(pkt) {
                Decision::Drop => {
                    self.metrics.dropped.inc();
                    return;
                }
                Decision::Forward => {
                    self.metrics.forwarded_direct.inc();
                    false
                }
                Decision::Steer => true,
            },
        };

        if !monitor {
            return;
        }

        if self.cfg.mode == DeployMode::SwitchHost {
            // Sonata: steered packets burn host CPU but there is no
            // flow-state tier; detection happens via query refinement.
            self.metrics.monitored.inc();
            self.metrics.host_processed.inc();
            self.metrics.latency_ns.add(
                self.cfg
                    .host_cost
                    .host_path_latency(pkt.wire_len)
                    .as_nanos(),
            );
            return;
        }

        // sNIC tier: FlowCache + detector suite.
        self.metrics.monitored.inc();
        self.metrics.snic_processed.inc();
        let access = self.cache.process(pkt);
        if access.outcome == smartwatch_snic::Outcome::ToHost {
            self.metrics.unlogged.inc();
        }
        let (busy, wait) = service_time(&self.cfg.hw, &self.costs, &access);
        self.metrics.latency_ns.add((busy + wait) as u64);

        let outcome = self.suite.on_packet(pkt);
        if outcome.host == HostNeed::Host {
            self.metrics.host_processed.inc();
            self.metrics.latency_ns.add(
                self.cfg
                    .host_cost
                    .host_path_latency(pkt.wire_len)
                    .as_nanos(),
            );
            // Pin the flow: its state must stay sNIC-resident while the
            // host works on it (§3.2 "Pinning Flow Records").
            self.cache.pin(&pkt.key);
        }
        for flow in &outcome.whitelist {
            self.cache.unpin(flow);
            if self.cfg.suite_whitelist && uses_switch(self.cfg.mode) {
                self.switch.whitelist(*flow);
                self.whitelist_entries += 1;
                if let Some(t) = &self.telemetry {
                    t.whitelist_installs.inc();
                }
            }
        }
        self.ingest_alerts(outcome.alerts);
    }

    fn ingest_alerts(&mut self, alerts: Vec<Alert>) {
        for a in alerts {
            if self.cfg.blacklist_sources && uses_switch(self.cfg.mode) {
                if let Subject::Source(src) = a.subject {
                    self.switch.blacklist(src);
                    if let Some(t) = &self.telemetry {
                        t.blacklist_installs.inc();
                    }
                }
            }
            self.alerts.push(a);
        }
    }

    /// Interval boundary: control loop + exports + interval detectors.
    fn end_interval(&mut self, now: Ts) {
        // 1. Switch query results drive refinement / steering.
        if uses_switch(self.cfg.mode) {
            let results = self.switch.end_interval();
            let mut outcomes = Vec::with_capacity(self.refiners.len());
            for r in &mut self.refiners {
                // Collect this refiner's results under any of its level
                // names (name@width).
                let base = refiner_base(r);
                let over: Vec<(u64, u64)> = results
                    .iter()
                    .filter(|(name, _)| name.split('@').next().unwrap_or("") == base)
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect();
                let initial = r.initial_query();
                outcomes.push((r.on_results(&over), initial));
            }
            for (outcome, initial) in outcomes {
                // Control-loop decisions land on the trace instead of
                // stderr; restarts are the steady state and stay silent.
                if let Some(shard) = &self.trace {
                    match &outcome {
                        RefineOutcome::SteerSubsets(r) => shard.instant(
                            now,
                            format!("steer {} ({} rules)", initial.name, r.len()),
                            "refine",
                        ),
                        RefineOutcome::NextQuery(q) => {
                            shard.instant(now, format!("zoom {}", q.name), "refine")
                        }
                        RefineOutcome::Detected(p) => shard.instant(
                            now,
                            format!("detected {} ({} prefixes)", initial.name, p.len()),
                            "refine",
                        ),
                        RefineOutcome::Restart(_) => {}
                    }
                }
                match outcome {
                    RefineOutcome::SteerSubsets(rules) => {
                        for rule in rules {
                            self.switch.install_steer(rule);
                        }
                    }
                    RefineOutcome::NextQuery(q) => {
                        // Sonata zoom: swap the installed query.
                        self.replace_refiner_query(q);
                    }
                    RefineOutcome::Detected(prefixes) => {
                        for (prefix, width) in prefixes {
                            self.sonata_detections.push(SonataDetection {
                                prefix,
                                width,
                                ts: now,
                            });
                        }
                        self.replace_refiner_query(initial);
                    }
                    RefineOutcome::Restart(q) => {
                        self.replace_refiner_query(q);
                    }
                }
            }
            self.sram_peak = self.sram_peak.max(self.switch.sram_bytes());
        }

        // 2. sNIC exports: snapshot deltas + ring drains → host aggregate
        // (both the per-interval view and the cumulative store). The
        // snapshot lands in the reused scratch buffer, so steady-state
        // intervals allocate nothing for it.
        let mut snapshot = std::mem::take(&mut self.export_scratch);
        self.cache.snapshot_delta_into(&mut snapshot);
        let export_count = snapshot.len();
        self.long_term.ingest_batch(snapshot.iter().copied());
        self.aggregator.ingest_batch(snapshot.iter().copied());
        self.export_scratch = snapshot;
        let evicted = self.cache.rings().drain();
        let export_count = (export_count + evicted.len()) as u64;
        self.long_term.ingest_batch(evicted.iter().copied());
        self.aggregator.ingest_batch(evicted);
        // Virtual CPU cost of this aggregation pass (the paper's
        // snapshot-thread budget).
        let snapshot_cpu = self.cfg.host_cost.snapshot_cpu(export_count);
        if let Some(t) = &self.telemetry {
            t.snapshot_cpu_ns.record_dur(snapshot_cpu);
        }
        if let Some(shard) = &self.trace {
            shard.span(
                now,
                snapshot_cpu,
                format!("aggregate {export_count} exports"),
                "host",
            );
        }

        // 3. Whitelist top-k heavy benign flows (hoverboard): elephants
        // by cumulative count, never mice — whitelisting a low-and-slow
        // flow would blind the fine-grained tier to exactly the traffic
        // it exists for.
        if uses_switch(self.cfg.mode) && self.cfg.whitelist_top_k > 0 {
            for rec in self.long_term.top_k(self.cfg.whitelist_top_k) {
                if rec.packets >= self.cfg.whitelist_min_packets {
                    self.switch.whitelist(rec.key);
                }
            }
            self.whitelist_entries = self.switch.whitelist_len();
        }

        // 4. Flush the interval view to the flow log, then run the
        // interval detectors over the *cumulative* records (durations).
        let records = self.aggregator.flush();
        self.flowlog.store(self.interval_idx, records);
        let cumulative: Vec<smartwatch_snic::FlowRecord> = self.long_term.iter().copied().collect();
        let interval_alerts = self.suite.end_interval(&cumulative, now);
        self.ingest_alerts(interval_alerts);
        self.interval_idx += 1;
        if let Some(t) = &self.telemetry {
            t.intervals.inc();
        }
        self.refresh_derived_gauges();
    }

    fn replace_refiner_query(&mut self, q: SwitchQuery) {
        // Remove any same-base query at another level, then install.
        let base = q.name.split('@').next().unwrap_or("").to_string();
        let stale: Vec<String> = self
            .switch
            .query_names()
            .into_iter()
            .filter(|n| n.split('@').next().unwrap_or("") == base)
            .map(String::from)
            .collect();
        for n in stale {
            self.switch.remove_query(&n);
        }
        // The stale removal freed this query's stages; re-installation at
        // another granularity costs the same, so this cannot fail.
        let installed = self.switch.install_query(q);
        debug_assert!(installed, "refined query lost its stages");
    }

    /// Finish the run: close the last interval and final-sweep detectors.
    pub fn finish(mut self, now: Ts) -> RunReport {
        self.end_interval(now);
        let final_alerts = self.suite.finish(now);
        self.ingest_alerts(final_alerts);
        // Drain the residual cache so flow logs are complete (one last
        // pass through the reused scratch; finish() runs once, but the
        // discipline keeps the allocation profile flat to the end).
        let mut residue = std::mem::take(&mut self.export_scratch);
        self.cache.drain_all_into(&mut residue);
        self.aggregator.ingest_batch(residue.iter().copied());
        self.export_scratch = residue;
        let records = self.aggregator.flush();
        self.flowlog.store(self.interval_idx, records);
        self.refresh_derived_gauges();
        RunReport {
            alerts: self.alerts,
            metrics: self.metrics.snapshot(),
            sonata_detections: self.sonata_detections,
            steered_bytes: self.switch.stats().steered_bytes,
            whitelist_entries: self.whitelist_entries,
            switch_sram_peak: self.sram_peak,
            flow_log: self.flowlog,
        }
    }

    /// Convenience: run a whole packet stream.
    pub fn run(mut self, packets: &[Packet]) -> RunReport {
        for p in packets {
            self.on_packet(p);
        }
        let end = packets.last().map(|p| p.ts).unwrap_or(Ts::ZERO) + Dur::from_secs(1);
        self.finish(end)
    }
}

fn uses_switch(mode: DeployMode) -> bool {
    matches!(mode, DeployMode::SmartWatch | DeployMode::SwitchHost)
}

fn refiner_base(r: &Refiner) -> String {
    r.initial_query()
        .name
        .split('@')
        .next()
        .unwrap_or("")
        .to_string()
}

/// The paper's standing coarse queries for the cooperative experiments.
pub fn standard_queries() -> Vec<SwitchQuery> {
    vec![
        SwitchQuery::ssh_attempts(8, 10),
        SwitchQuery {
            name: "ftp-attempts".into(),
            filter: smartwatch_p4sim::Filter::And(
                Box::new(smartwatch_p4sim::Filter::DstPort(21)),
                Box::new(smartwatch_p4sim::Filter::SynOnly),
            ),
            key: smartwatch_p4sim::KeyExpr::DstPrefix(8),
            distinct: None,
            threshold: 10,
        },
        SwitchQuery::scan_probes(8, 12),
        SwitchQuery {
            name: "conn-attempts".into(),
            filter: smartwatch_p4sim::Filter::SynOnly,
            key: smartwatch_p4sim::KeyExpr::DstPrefix(24),
            distinct: None,
            threshold: 48,
        },
        // RSTs aggregate on their *sender* side: a forged RST spoofs the
        // victim server's address, so the victim /24 accumulates counts
        // even though the targeted clients are scattered.
        SwitchQuery {
            name: "rst".into(),
            filter: smartwatch_p4sim::Filter::Rst,
            key: smartwatch_p4sim::KeyExpr::SrcPrefix(24),
            distinct: None,
            threshold: 8,
        },
        SwitchQuery::dns_responses(24, 48),
        SwitchQuery::conn_fanout(24, 64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::AttackKind;
    use smartwatch_trace::attacks::portscan::{portscan, ScanConfig};
    use smartwatch_trace::background::{preset_trace, Preset};
    use smartwatch_trace::Trace;

    fn mixed_trace() -> Trace {
        let bg = preset_trace(Preset::Caida2018, 400, Dur::from_secs(4), 3);
        let scan = portscan(&ScanConfig::with_delay(Dur::from_millis(40), 80, 4));
        Trace::merge([bg, scan])
    }

    #[test]
    fn smartwatch_mode_detects_scan_with_low_monitoring_share() {
        let trace = mixed_trace();
        let sw = SmartWatch::new(
            PlatformConfig::new(DeployMode::SmartWatch),
            standard_queries(),
        );
        let report = sw.run(trace.packets());
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.kind == AttackKind::StealthyPortScan),
            "scan must be detected"
        );
        let m = report.metrics;
        // The switch forwards the bulk directly.
        assert!(
            m.forwarded_direct > m.snic_processed,
            "bulk should bypass the sNIC: fwd={} snic={}",
            m.forwarded_direct,
            m.snic_processed
        );
    }

    #[test]
    fn snic_offload_cuts_processing_latency() {
        // The paper's 72.32% claim compares processing the same traffic
        // on the sNIC+host partitioning vs entirely on the host.
        let trace = mixed_trace();
        let host_rep =
            SmartWatch::new(PlatformConfig::new(DeployMode::HostOnly), vec![]).run(trace.packets());
        let snic_rep =
            SmartWatch::new(PlatformConfig::new(DeployMode::SnicHost), vec![]).run(trace.packets());
        assert!(host_rep
            .alerts
            .iter()
            .any(|a| a.kind == AttackKind::StealthyPortScan));
        let reduction =
            1.0 - snic_rep.metrics.mean_latency_ns() / host_rep.metrics.mean_latency_ns();
        assert!(
            reduction > 0.5,
            "sNIC offload should cut mean processing latency sharply: {:.1}%",
            reduction * 100.0
        );
    }

    #[test]
    fn snic_host_mode_monitors_everything() {
        let trace = mixed_trace();
        let rep =
            SmartWatch::new(PlatformConfig::new(DeployMode::SnicHost), vec![]).run(trace.packets());
        assert_eq!(rep.metrics.snic_processed, rep.metrics.total);
        assert!(rep.metrics.host_fraction() < 0.20);
    }

    #[test]
    fn sonata_mode_produces_switch_detections_only() {
        let trace = mixed_trace();
        let rep = SmartWatch::new(
            PlatformConfig::new(DeployMode::SwitchHost),
            standard_queries(),
        )
        .run(trace.packets());
        // Sonata raises no flow-level alerts (no sNIC tier) …
        assert!(rep.alerts.is_empty());
        // … but the zoom pipeline should reach /32 on the scanner.
        assert!(
            !rep.sonata_detections.is_empty(),
            "refinement should reach terminal detections"
        );
    }

    #[test]
    fn blacklisted_scanner_gets_dropped() {
        let trace = mixed_trace();
        let sw = SmartWatch::new(
            PlatformConfig::new(DeployMode::SmartWatch),
            standard_queries(),
        );
        let rep = sw.run(trace.packets());
        // After the alert fires, subsequent scanner packets are dropped at
        // the switch — prevention, not just detection.
        assert!(rep.metrics.dropped > 0, "post-alert packets should drop");
    }

    #[test]
    fn interval_exports_reuse_the_scratch_buffer() {
        // Zero-growth discipline for the snapshot path: each interval's
        // snapshot_delta lands in the reused scratch Vec, so once the
        // first intervals have sized it to the working set, snapshots
        // stop allocating — capacity over the second half of the run is
        // flat, and never exceeds the cache's slot count.
        let trace = preset_trace(Preset::Caida2018, 200, Dur::from_secs(6), 21);
        let mut sw = SmartWatch::new(PlatformConfig::new(DeployMode::SnicHost), vec![]);
        let mut caps = Vec::new();
        let mut last_interval = 0;
        for p in trace.packets() {
            sw.on_packet(p);
            if sw.interval_idx != last_interval {
                last_interval = sw.interval_idx;
                caps.push(sw.export_scratch.capacity());
            }
        }
        assert!(
            caps.len() >= 4,
            "trace must span several snapshot intervals, got {}",
            caps.len()
        );
        let slots = sw.cache.config().rows() * sw.cache.config().buckets_per_row;
        assert!(caps.iter().all(|&c| c <= slots));
        assert!(*caps.last().unwrap() > 0, "snapshots are non-empty");
        let tail = &caps[caps.len() / 2..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "scratch capacity must stop growing once warmed: {caps:?}"
        );
    }

    #[test]
    fn flow_logs_reconstruct_monitored_packet_counts() {
        let trace = preset_trace(Preset::Caida2018, 100, Dur::from_secs(2), 9);
        let rep =
            SmartWatch::new(PlatformConfig::new(DeployMode::SnicHost), vec![]).run(trace.packets());
        let logged: u64 = (0..rep.flow_log.n_intervals() as u64)
            .map(|i| rep.flow_log.flow_counts(i).values().sum::<u64>())
            .sum();
        // Lossless flow logging: every sNIC-processed packet is accounted
        // for in the flow logs (to-host escalations still update records).
        assert_eq!(
            logged,
            rep.metrics.snic_processed - rep.metrics.to_host_unlogged()
        );
    }
}
