//! The detector suite: all online detectors wired to one packet stream.
//!
//! This is the "15 attack detectors simultaneously running in SmartWatch"
//! of Table 2. The suite also decides, per packet, whether the host must
//! be involved — the paper's partitioning: SSH/FTP sessions stay on the
//! host only until their authentication outcome is known, RST packets
//! visit the timing wheel, everything else completes on the sNIC.

use smartwatch_detect::auth::{BruteforceDetector, CertExpiryMonitor, KerberosMonitor};
use smartwatch_detect::dnsamp::DnsAmpDetector;
use smartwatch_detect::portscan::ScanPipeline;
use smartwatch_detect::rst::{ForgedRstDetector, RstEvent};
use smartwatch_detect::slowloris::SlowlorisDetector;
use smartwatch_detect::worm::EarlyBirdDetector;
use smartwatch_detect::Alert;
use smartwatch_host::{ArtefactRegistry, AuthHeuristic, AuthOutcome, ConnEvent, ConnTable};
use smartwatch_net::{Dur, FlowKey, Packet, Ts};
use smartwatch_snic::FlowRecord;
use std::collections::HashSet;

/// Where a packet finished processing (for tier accounting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostNeed {
    /// Fully handled by the sNIC.
    SnicOnly,
    /// Escalated to a host NF (Zeek analysis, timing wheel…).
    Host,
}

/// Per-packet outcome from the suite.
#[derive(Clone, Debug)]
pub struct SuiteOutcome {
    /// Alerts raised by this packet.
    pub alerts: Vec<Alert>,
    /// Tier the packet needed.
    pub host: HostNeed,
    /// Flows the platform may whitelist on the switch (benign verdicts,
    /// e.g. successful SSH authentication).
    pub whitelist: Vec<FlowKey>,
}

/// Per-detector data-path operation counts, used to derive Table 2's
/// cycle-share column from the cost model instead of asserting it.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuiteOps {
    /// Packets inspected by the scan pipeline (conn tracking + TRW).
    pub scan: u64,
    /// Packets that touched the RST detector (RSTs + racing data).
    pub rst: u64,
    /// UDP/53 packets the DNS-amplification detector accounted.
    pub dns: u64,
    /// Digest-bearing packets the worm detector sighted.
    pub worm: u64,
    /// Packets of auth sessions (SSH/FTP) tracked for outcomes.
    pub auth: u64,
    /// Certificate/ticket digests resolved.
    pub artefacts: u64,
    /// Total packets through the suite.
    pub total: u64,
}

/// The full detector suite.
pub struct DetectorSuite {
    /// TRW port-scan pipeline (sNIC outcome tracking + host hypothesis
    /// test).
    pub scan: ScanPipeline,
    /// Forged-RST detector (host timing wheel + Bloom fast path).
    pub rst: ForgedRstDetector,
    /// DNS amplification.
    pub dns: DnsAmpDetector,
    /// EarlyBird worm detection.
    pub worm: EarlyBirdDetector,
    /// SSH bruteforce.
    pub ssh: BruteforceDetector,
    /// FTP bruteforce.
    pub ftp: BruteforceDetector,
    /// Slowloris (interval-driven, over exported flow records).
    pub slowloris: SlowlorisDetector,
    /// TLS certificate expiry (None disables).
    pub cert: Option<CertExpiryMonitor>,
    /// Kerberos ticket monitoring (None disables).
    pub krb: Option<KerberosMonitor>,
    /// Session tracker feeding the auth-outcome heuristic.
    conns: ConnTable,
    heuristic: AuthHeuristic,
    /// Auth sessions already classified (no further host escalation).
    classified: HashSet<FlowKey>,
    /// Data-path operation counters (Table 2 accounting).
    pub ops: SuiteOps,
}

impl DetectorSuite {
    /// Suite with default thresholds and no TLS/Kerberos registries.
    pub fn new() -> DetectorSuite {
        DetectorSuite {
            scan: ScanPipeline::new(),
            rst: ForgedRstDetector::paper_default(),
            dns: DnsAmpDetector::new(),
            worm: EarlyBirdDetector::paper_default(),
            ssh: BruteforceDetector::ssh(),
            ftp: BruteforceDetector::ftp(),
            slowloris: SlowlorisDetector::new(),
            cert: None,
            krb: None,
            conns: ConnTable::new(),
            heuristic: AuthHeuristic::default(),
            classified: HashSet::new(),
            ops: SuiteOps::default(),
        }
    }

    /// Attach the TLS certificate registry (enables the expiry monitor).
    pub fn with_cert_registry(mut self, reg: ArtefactRegistry, horizon: Dur) -> DetectorSuite {
        self.cert = Some(CertExpiryMonitor::new(reg, horizon));
        self
    }

    /// Attach the Kerberos ticket registry.
    pub fn with_krb_registry(mut self, reg: ArtefactRegistry, max_lifetime: Dur) -> DetectorSuite {
        self.krb = Some(KerberosMonitor::new(reg, max_lifetime));
        self
    }

    fn is_auth_port(port: u16) -> bool {
        port == 22 || port == 21
    }

    /// Feed one packet through every online detector.
    pub fn on_packet(&mut self, pkt: &Packet) -> SuiteOutcome {
        let mut alerts = Vec::new();
        let mut whitelist = Vec::new();
        let mut host = HostNeed::SnicOnly;
        self.ops.total += 1;

        // Port scan (conn tracking + TRW). The pipeline owns its own
        // ConnTable; cheap because it's keyed the same way.
        if pkt.is_tcp() {
            self.ops.scan += 1;
        }
        alerts.extend(self.scan.on_packet(pkt));

        // Forged RST: RST packets visit the host timing wheel.
        if pkt.is_tcp() && (pkt.flags.rst() || pkt.payload_len > 0) {
            self.ops.rst += 1;
            for ev in self.rst.on_packet(pkt) {
                match ev {
                    RstEvent::ForgedDetected(a) | RstEvent::DuplicateRst(a) => alerts.push(a),
                    RstEvent::BufferedFast | RstEvent::BufferedSlow => host = HostNeed::Host,
                    RstEvent::Released(_) => {}
                }
            }
        }

        // DNS amplification.
        if pkt.is_udp() && (pkt.key.dst_port == 53 || pkt.key.src_port == 53) {
            self.ops.dns += 1;
        }
        alerts.extend(self.dns.on_packet(pkt));

        // Worm signatures.
        if pkt.payload_digest != 0 && pkt.payload_len > 0 {
            self.ops.worm += 1;
        }
        alerts.extend(self.worm.on_packet(pkt));

        // TLS / Kerberos artefacts (server-side data segments).
        if pkt.payload_digest != 0 {
            if pkt.key.src_port == 443 || pkt.key.src_port == 88 {
                self.ops.artefacts += 1;
            }
            if let Some(c) = self.cert.as_mut() {
                if pkt.key.src_port == 443 {
                    alerts.extend(c.observe(pkt.payload_digest, pkt.ts));
                }
            }
            if let Some(k) = self.krb.as_mut() {
                if pkt.key.src_port == 88 {
                    alerts.extend(k.observe(pkt.payload_digest, pkt.ts));
                }
            }
        }

        // SSH/FTP sessions: packets go to the host (Zeek) until the
        // authentication outcome is determined.
        let auth_port =
            Self::is_auth_port(pkt.key.dst_port) || Self::is_auth_port(pkt.key.src_port);
        if auth_port && pkt.is_tcp() {
            self.ops.auth += 1;
            let canon = pkt.key.canonical().0;
            let already = self.classified.contains(&canon);
            if !already {
                host = HostNeed::Host;
            }
            let event = self.conns.process(pkt);
            // Classify on termination, or once the session has clearly
            // succeeded (long/heavy), whichever comes first.
            let outcome = match event {
                Some(ConnEvent::Finished) | Some(ConnEvent::Reset(_)) => {
                    self.conns.get(&canon).map(|r| self.heuristic.classify(r))
                }
                _ => self.conns.get(&canon).and_then(|r| {
                    let o = self.heuristic.classify(r);
                    (o == AuthOutcome::Success).then_some(o)
                }),
            };
            if let Some(outcome) = outcome {
                if !already && outcome != AuthOutcome::Unknown {
                    self.classified.insert(canon);
                    let rec = self.conns.get(&canon).expect("classified conn exists");
                    let src = if rec.orig_is_forward {
                        rec.key.src_ip
                    } else {
                        rec.key.dst_ip
                    };
                    let service = if rec.orig_is_forward {
                        rec.key.dst_port
                    } else {
                        rec.key.src_port
                    };
                    if outcome == AuthOutcome::Success {
                        // Benign verdict: whitelist so the switch stops
                        // steering this flow (§3.1).
                        whitelist.push(canon);
                    }
                    let det = if service == 21 {
                        &mut self.ftp
                    } else {
                        &mut self.ssh
                    };
                    alerts.extend(det.observe(src, pkt.ts, outcome));
                    self.conns.remove(&canon);
                }
            }
        }

        SuiteOutcome {
            alerts,
            host,
            whitelist,
        }
    }

    /// Interval boundary: run the flow-log detectors (Slowloris) over the
    /// interval's exported records.
    pub fn end_interval(&mut self, records: &[FlowRecord], now: Ts) -> Vec<Alert> {
        self.slowloris.analyze(records, now)
    }

    /// Final sweep at end of trace.
    pub fn finish(&mut self, now: Ts) -> Vec<Alert> {
        let mut alerts = self.scan.finish(now);
        for ev in self.rst.finish(now) {
            if let RstEvent::ForgedDetected(a) | RstEvent::DuplicateRst(a) = ev {
                alerts.push(a);
            }
        }
        alerts
    }
}

impl Default for DetectorSuite {
    fn default() -> Self {
        DetectorSuite::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::AttackKind;
    use smartwatch_trace::attacks::auth::{bruteforce, BruteforceConfig};
    use smartwatch_trace::attacks::portscan::{portscan, ScanConfig};
    use smartwatch_trace::attacks::rst::{forged_rst, ForgedRstConfig};

    #[test]
    fn suite_detects_bruteforce_and_escalates_auth_packets() {
        let cfg = BruteforceConfig::ssh(smartwatch_trace::attacks::victim_ip(0), Ts::ZERO, 9);
        let trace = bruteforce(&cfg);
        let mut suite = DetectorSuite::new();
        let mut alerts = Vec::new();
        let mut host_pkts = 0u64;
        for p in trace.iter() {
            let o = suite.on_packet(p);
            if o.host == HostNeed::Host {
                host_pkts += 1;
            }
            alerts.extend(o.alerts);
        }
        let brute: Vec<&Alert> = alerts
            .iter()
            .filter(|a| a.kind == AttackKind::SshBruteforce)
            .collect();
        assert!(!brute.is_empty(), "bruteforce campaign must be flagged");
        assert!(host_pkts > 0, "auth sessions visit the host");
    }

    #[test]
    fn successful_login_whitelists_flow() {
        let mut cfg = BruteforceConfig::ssh(smartwatch_trace::attacks::victim_ip(0), Ts::ZERO, 9);
        cfg.attackers = 1;
        cfg.attempts_per_attacker = 1;
        cfg.final_success = true;
        let trace = bruteforce(&cfg);
        let mut suite = DetectorSuite::new();
        let mut whitelisted = Vec::new();
        for p in trace.iter() {
            whitelisted.extend(suite.on_packet(p).whitelist);
        }
        assert!(
            !whitelisted.is_empty(),
            "successful session gets whitelisted"
        );
    }

    #[test]
    fn suite_detects_scanner() {
        let trace = portscan(&ScanConfig::with_delay(Dur::from_millis(50), 60, 4));
        let mut suite = DetectorSuite::new();
        let mut alerts = Vec::new();
        for p in trace.iter() {
            alerts.extend(suite.on_packet(p).alerts);
        }
        alerts.extend(suite.finish(trace.packets().last().unwrap().ts));
        assert!(alerts
            .iter()
            .any(|a| a.kind == AttackKind::StealthyPortScan));
    }

    #[test]
    fn suite_detects_forged_rst() {
        let trace = forged_rst(&ForgedRstConfig::default());
        let mut suite = DetectorSuite::new();
        let mut alerts = Vec::new();
        for p in trace.iter() {
            alerts.extend(suite.on_packet(p).alerts);
        }
        assert!(alerts.iter().any(|a| a.kind == AttackKind::ForgedTcpRst));
    }

    #[test]
    fn registry_equipped_suite_flags_certs_and_tickets() {
        use smartwatch_host::ArtefactRegistry;
        use smartwatch_trace::attacks::auth::{
            kerberos_tickets, tls_with_certs, KerberosConfig, TlsConfig,
        };
        let (tls, certs) = tls_with_certs(&TlsConfig {
            seed: 1,
            sessions: 30,
            expiring_fraction: 0.3,
            window: Dur::from_secs(4),
            now: Ts::from_millis(100),
            horizon: Dur::from_secs(30 * 86_400),
        });
        let (krb, tickets) = kerberos_tickets(&KerberosConfig {
            seed: 2,
            requests: 30,
            suspicious_fraction: 0.3,
            window: Dur::from_secs(4),
            now: Ts::from_millis(100),
            max_lifetime: Dur::from_secs(36_000),
        });
        let trace = smartwatch_trace::Trace::merge([tls, krb]);
        let mut suite = DetectorSuite::new()
            .with_cert_registry(
                ArtefactRegistry::from_pairs(certs.iter().map(|a| (a.digest, a.expires_at))),
                Dur::from_secs(30 * 86_400),
            )
            .with_krb_registry(
                ArtefactRegistry::from_pairs(tickets.iter().map(|a| (a.digest, a.expires_at))),
                Dur::from_secs(36_000),
            );
        let mut alerts = Vec::new();
        for p in trace.iter() {
            alerts.extend(suite.on_packet(p).alerts);
        }
        assert!(alerts.iter().any(|a| a.kind == AttackKind::ExpiringSslCert));
        assert!(alerts.iter().any(|a| a.kind == AttackKind::KerberosTicket));
        assert!(suite.ops.artefacts > 0, "artefact ops counted");
    }

    #[test]
    fn op_counters_track_detector_relevance() {
        use smartwatch_trace::attacks::dns_amp::{dns_amplification, DnsAmpConfig};
        let amp = dns_amplification(&DnsAmpConfig::new(
            smartwatch_trace::background::client_ip(1),
            Ts::ZERO,
            3,
        ));
        let mut suite = DetectorSuite::new();
        for p in amp.iter() {
            suite.on_packet(p);
        }
        assert_eq!(suite.ops.total, amp.len() as u64);
        assert_eq!(suite.ops.dns, amp.len() as u64, "pure DNS trace");
        assert_eq!(suite.ops.scan, 0, "no TCP in a UDP reflection trace");
    }

    #[test]
    fn benign_traffic_mostly_stays_on_snic() {
        use smartwatch_trace::background::{preset_trace, Preset};
        let trace = preset_trace(Preset::Caida2018, 300, Dur::from_secs(2), 5);
        let mut suite = DetectorSuite::new();
        let mut host = 0u64;
        for p in trace.iter() {
            if suite.on_packet(p).host == HostNeed::Host {
                host += 1;
            }
        }
        let frac = host as f64 / trace.len() as f64;
        assert!(frac < 0.16, "host fraction should be <16%: {frac:.3}");
    }
}
