//! Authentication-abuse detectors: SSH/FTP bruteforce, expiring SSL
//! certificates, Kerberos ticket monitoring (paper §5.1.1 and Table 2).
//!
//! The bruteforce detector mirrors Zeek's `detect-bruteforcing` policy:
//! count failed login attempts ψ per remote source within a sliding time
//! window, alert when ψ crosses a threshold (Zeek defaults to 30 failures
//! in 30 minutes; the paper's demo uses 3). Outcomes come from the
//! [`AuthHeuristic`](smartwatch_host::AuthHeuristic) applied to finished
//! sessions.

use crate::{Alert, Subject};
use smartwatch_host::AuthOutcome;
use smartwatch_net::{AttackKind, Dur, Ts};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

/// Sliding-window failed-login detector for SSH (port 22) or FTP (21).
#[derive(Clone, Debug)]
pub struct BruteforceDetector {
    /// Which attack this instance reports.
    pub kind: AttackKind,
    /// Failures within the window that trigger an alert (ψ threshold).
    pub threshold: u32,
    /// Sliding window length.
    pub window: Dur,
    failures: HashMap<Ipv4Addr, VecDeque<Ts>>,
    alerted: HashSet<Ipv4Addr>,
}

impl BruteforceDetector {
    /// SSH detector with the paper's demo threshold (3 failures / 30 min).
    pub fn ssh() -> BruteforceDetector {
        BruteforceDetector {
            kind: AttackKind::SshBruteforce,
            threshold: 3,
            window: Dur::from_secs(30 * 60),
            failures: HashMap::new(),
            alerted: HashSet::new(),
        }
    }

    /// FTP variant.
    pub fn ftp() -> BruteforceDetector {
        BruteforceDetector {
            kind: AttackKind::FtpBruteforce,
            ..BruteforceDetector::ssh()
        }
    }

    /// Feed one classified session outcome.
    pub fn observe(&mut self, src: Ipv4Addr, ts: Ts, outcome: AuthOutcome) -> Option<Alert> {
        if outcome != AuthOutcome::Failure {
            return None;
        }
        let q = self.failures.entry(src).or_default();
        q.push_back(ts);
        while let Some(&front) = q.front() {
            if ts.since(front) > self.window {
                q.pop_front();
            } else {
                break;
            }
        }
        if q.len() as u32 >= self.threshold && self.alerted.insert(src) {
            Some(Alert::new(
                self.kind,
                Subject::Source(src),
                ts,
                format!("{} failed logins within window", q.len()),
            ))
        } else {
            None
        }
    }

    /// Sources currently flagged.
    pub fn flagged(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self.alerted.iter().copied().collect();
        v.sort();
        v
    }
}

/// Expiring-certificate monitor (Zeek `expiring-certs` equivalent):
/// resolves observed certificate digests against the registry and alerts
/// once per certificate expiring within the horizon.
#[derive(Clone, Debug)]
pub struct CertExpiryMonitor {
    /// Alert horizon (Zeek default: 30 days).
    pub horizon: Dur,
    registry: smartwatch_host::ArtefactRegistry,
    seen: HashSet<u64>,
}

impl CertExpiryMonitor {
    /// Monitor over a registry.
    pub fn new(registry: smartwatch_host::ArtefactRegistry, horizon: Dur) -> CertExpiryMonitor {
        CertExpiryMonitor {
            horizon,
            registry,
            seen: HashSet::new(),
        }
    }

    /// Observe a certificate digest presented at `now`.
    pub fn observe(&mut self, digest: u64, now: Ts) -> Option<Alert> {
        if digest == 0 || !self.seen.insert(digest) {
            return None;
        }
        match self.registry.expires_within(digest, now, self.horizon) {
            Some(true) => Some(Alert::new(
                AttackKind::ExpiringSslCert,
                Subject::Digest(digest),
                now,
                "certificate expires within horizon",
            )),
            _ => None,
        }
    }
}

/// Kerberos ticket monitor: alerts on tickets whose lifetime exceeds the
/// domain maximum (golden-ticket indicator).
#[derive(Clone, Debug)]
pub struct KerberosMonitor {
    /// Maximum legitimate ticket lifetime (default 10 h).
    pub max_lifetime: Dur,
    registry: smartwatch_host::ArtefactRegistry,
    seen: HashSet<u64>,
}

impl KerberosMonitor {
    /// Monitor over a ticket registry.
    pub fn new(registry: smartwatch_host::ArtefactRegistry, max_lifetime: Dur) -> KerberosMonitor {
        KerberosMonitor {
            max_lifetime,
            registry,
            seen: HashSet::new(),
        }
    }

    /// Observe a ticket digest issued at `issued`.
    pub fn observe(&mut self, digest: u64, issued: Ts) -> Option<Alert> {
        if digest == 0 || !self.seen.insert(digest) {
            return None;
        }
        match self
            .registry
            .lifetime_exceeds(digest, issued, self.max_lifetime)
        {
            Some(true) => Some(Alert::new(
                AttackKind::KerberosTicket,
                Subject::Digest(digest),
                issued,
                "ticket lifetime exceeds domain maximum",
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_host::ArtefactRegistry;

    fn src(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 0, i)
    }

    #[test]
    fn threshold_failures_trigger_once() {
        let mut d = BruteforceDetector::ssh();
        assert!(d
            .observe(src(1), Ts::from_secs(0), AuthOutcome::Failure)
            .is_none());
        assert!(d
            .observe(src(1), Ts::from_secs(60), AuthOutcome::Failure)
            .is_none());
        let a = d.observe(src(1), Ts::from_secs(120), AuthOutcome::Failure);
        assert!(a.is_some());
        assert_eq!(a.unwrap().subject, Subject::Source(src(1)));
        // No duplicate alert.
        assert!(d
            .observe(src(1), Ts::from_secs(180), AuthOutcome::Failure)
            .is_none());
        assert_eq!(d.flagged(), vec![src(1)]);
    }

    #[test]
    fn window_expiry_forgets_old_failures() {
        let mut d = BruteforceDetector::ssh();
        d.observe(src(2), Ts::from_secs(0), AuthOutcome::Failure);
        d.observe(src(2), Ts::from_secs(10), AuthOutcome::Failure);
        // Third failure far outside the 30-minute window: no alert.
        let a = d.observe(src(2), Ts::from_secs(4_000), AuthOutcome::Failure);
        assert!(a.is_none());
    }

    #[test]
    fn successes_and_unknowns_ignored() {
        let mut d = BruteforceDetector::ssh();
        for i in 0..10 {
            assert!(d
                .observe(src(3), Ts::from_secs(i), AuthOutcome::Success)
                .is_none());
            assert!(d
                .observe(src(3), Ts::from_secs(i), AuthOutcome::Unknown)
                .is_none());
        }
    }

    #[test]
    fn per_source_isolation() {
        let mut d = BruteforceDetector::ssh();
        for i in 0..2 {
            d.observe(src(4), Ts::from_secs(i), AuthOutcome::Failure);
            d.observe(src(5), Ts::from_secs(i), AuthOutcome::Failure);
        }
        // Each source has 2 failures; neither crosses 3.
        assert!(d.flagged().is_empty());
    }

    #[test]
    fn cert_expiry_alerts_once() {
        let reg = ArtefactRegistry::from_pairs([
            (10, Ts::from_secs(100)),
            (11, Ts::from_secs(1_000_000)),
        ]);
        let mut m = CertExpiryMonitor::new(reg, Dur::from_secs(500));
        let now = Ts::from_secs(0);
        assert!(m.observe(10, now).is_some());
        assert!(m.observe(10, now).is_none(), "dedupe");
        assert!(m.observe(11, now).is_none(), "healthy cert");
        assert!(m.observe(0, now).is_none(), "zero digest ignored");
        assert!(m.observe(99, now).is_none(), "unknown digest ignored");
    }

    #[test]
    fn kerberos_long_ticket_alerts() {
        let reg = ArtefactRegistry::from_pairs([
            (20, Ts::from_secs(1_000_000)), // huge lifetime
            (21, Ts::from_secs(30_000)),    // normal
        ]);
        let mut m = KerberosMonitor::new(reg, Dur::from_secs(36_000));
        assert!(m.observe(20, Ts::ZERO).is_some());
        assert!(m.observe(21, Ts::ZERO).is_none());
    }
}
