//! Covert timing-channel detection (paper §5.2.1).
//!
//! The sNIC keeps fine-grained IPD bins (1 µs) for flows the switch
//! pre-checked as suspicious; when the collection timer fires, a CME runs
//! a Kolmogorov–Smirnov test between each flow's IPD histogram and a
//! known-good reference distribution learned from benign traffic. Flows
//! whose KS statistic exceeds the decision threshold are classified as
//! modulated channels.

use crate::stats::ks_from_histograms;
use crate::{Alert, Subject};

/// Bimodality statistic of an IPD histogram: the fraction of probability
/// mass *outside* ± `window` bins of the median bin. Benign flows are
/// unimodal around their own mean (score ≈ jitter tail, near 0); a
/// modulated flow alternating between two delays parks ~half its mass
/// away from the median (score ≈ 0.5). Being self-referential, the
/// statistic is robust to benign heterogeneity, unlike comparing every
/// flow against one global reference.
pub fn bimodality(hist: &[u64], window: usize) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Median bin.
    let mut acc = 0u64;
    let mut median = 0usize;
    for (i, v) in hist.iter().enumerate() {
        acc += v;
        if acc * 2 >= total {
            median = i;
            break;
        }
    }
    let lo = median.saturating_sub(window);
    let hi = (median + window).min(hist.len() - 1);
    let inside: u64 = hist[lo..=hi].iter().sum();
    1.0 - inside as f64 / total as f64
}
use smartwatch_net::{AttackKind, Dur, FlowKey, Packet, Ts};
use std::collections::HashMap;

/// Fine-grained per-flow IPD binning (the sNIC side).
#[derive(Clone, Debug)]
pub struct IpdCollector {
    /// Bin width.
    pub bin_width: Dur,
    /// Number of bins (values beyond clip into the last bin).
    pub n_bins: usize,
    flows: HashMap<FlowKey, (Ts, Vec<u64>)>,
}

impl IpdCollector {
    /// Collector with 1 µs bins over 0–`n_bins` µs (paper: bin size 1 µs
    /// to catch 1–100 µs modulation).
    pub fn new(bin_width: Dur, n_bins: usize) -> IpdCollector {
        assert!(n_bins > 1 && bin_width > Dur::ZERO);
        IpdCollector {
            bin_width,
            n_bins,
            flows: HashMap::new(),
        }
    }

    /// Paper default: 1 µs bins, 128 bins.
    pub fn paper_default() -> IpdCollector {
        IpdCollector::new(Dur::from_micros(1), 128)
    }

    /// Fold a packet into its flow's histogram.
    pub fn on_packet(&mut self, p: &Packet) {
        let key = p.key.canonical().0;
        let n_bins = self.n_bins;
        let entry = self
            .flows
            .entry(key)
            .or_insert_with(|| (p.ts, vec![0; n_bins]));
        if entry.0 != p.ts {
            let gap = p.ts - entry.0;
            let bin =
                ((gap.as_nanos() / self.bin_width.as_nanos().max(1)) as usize).min(n_bins - 1);
            entry.1[bin] += 1;
        }
        entry.0 = p.ts;
    }

    /// Histogram of one flow.
    pub fn histogram(&self, key: &FlowKey) -> Option<&Vec<u64>> {
        self.flows.get(&key.canonical().0).map(|(_, h)| h)
    }

    /// Drain all (flow, histogram) pairs — the CME timer readout.
    pub fn readout(&mut self) -> Vec<(FlowKey, Vec<u64>)> {
        self.flows.drain().map(|(k, (_, h))| (k, h)).collect()
    }

    /// Tracked flow count.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

/// The CME-side classifier: a bimodality test against the flow's own
/// median (primary), with the trained benign reference retained for
/// KS-based diagnostics ([`CovertChannelDetector::score`]).
#[derive(Clone, Debug)]
pub struct CovertChannelDetector {
    reference: Vec<u64>,
    /// Bimodality score above which a flow is declared modulated.
    pub threshold: f64,
    /// Minimum IPD samples before a verdict is meaningful.
    pub min_samples: u64,
    /// Half-width, in bins, of the unimodal window around the median
    /// (covers benign jitter; default ±8 bins = ±8 µs at 1 µs bins).
    pub window: usize,
}

impl CovertChannelDetector {
    /// Detector with a benign reference histogram and decision threshold.
    pub fn new(reference: Vec<u64>, threshold: f64) -> CovertChannelDetector {
        assert!(!reference.is_empty());
        CovertChannelDetector {
            reference,
            threshold,
            min_samples: 50,
            window: 8,
        }
    }

    /// Train the reference from benign flow histograms (summed).
    pub fn train(benign: &[Vec<u64>], threshold: f64) -> CovertChannelDetector {
        assert!(!benign.is_empty());
        let n = benign[0].len();
        let mut reference = vec![0u64; n];
        for h in benign {
            assert_eq!(h.len(), n);
            for (r, v) in reference.iter_mut().zip(h) {
                *r += v;
            }
        }
        CovertChannelDetector::new(reference, threshold)
    }

    /// KS statistic of a flow histogram against the reference.
    pub fn score(&self, hist: &[u64]) -> f64 {
        ks_from_histograms(&self.reference, hist)
    }

    /// Classify one flow via the bimodality statistic; `Some(alert)` when
    /// modulated.
    pub fn classify(&self, key: FlowKey, hist: &[u64], now: Ts) -> Option<Alert> {
        let samples: u64 = hist.iter().sum();
        if samples < self.min_samples {
            return None;
        }
        let b = bimodality(hist, self.window);
        (b > self.threshold).then(|| {
            Alert::new(
                AttackKind::CovertTimingChannel,
                Subject::Flow(key),
                now,
                format!("bimodality {b:.3} over {samples} IPDs"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn flow(i: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from(0x0A000000 + i),
            9,
            Ipv4Addr::from(0xAC100001u32),
            443,
        )
    }

    fn feed_gaps(c: &mut IpdCollector, f: FlowKey, gaps_us: &[u64]) {
        let mut t = Ts::from_micros(1);
        c.on_packet(&PacketBuilder::new(f, t).build());
        for g in gaps_us {
            t += Dur::from_micros(*g);
            c.on_packet(&PacketBuilder::new(f, t).build());
        }
    }

    fn benign_hist() -> Vec<u64> {
        let mut c = IpdCollector::paper_default();
        let gaps: Vec<u64> = (0..500).map(|i| 43 + (i % 5)).collect(); // ~45 µs unimodal
        feed_gaps(&mut c, flow(0), &gaps);
        c.histogram(&flow(0)).unwrap().clone()
    }

    #[test]
    fn collector_bins_gaps() {
        let mut c = IpdCollector::paper_default();
        feed_gaps(&mut c, flow(1), &[30, 30, 80]);
        let h = c.histogram(&flow(1)).unwrap();
        assert_eq!(h[30], 2);
        assert_eq!(h[80], 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn modulated_flow_scores_high_benign_low() {
        let det = CovertChannelDetector::train(&[benign_hist()], 0.3);
        // Modulated: bimodal 30/80.
        let mut c = IpdCollector::paper_default();
        let gaps: Vec<u64> = (0..200).map(|i| if i % 2 == 0 { 30 } else { 80 }).collect();
        feed_gaps(&mut c, flow(2), &gaps);
        let mod_hist = c.histogram(&flow(2)).unwrap();
        assert!(det.score(mod_hist) > 0.3, "score {}", det.score(mod_hist));
        assert!(det.classify(flow(2), mod_hist, Ts::ZERO).is_some());
        // Benign-like flow: low score.
        let mut c2 = IpdCollector::paper_default();
        let gaps: Vec<u64> = (0..200).map(|i| 44 + (i % 4)).collect();
        feed_gaps(&mut c2, flow(3), &gaps);
        let ben = c2.histogram(&flow(3)).unwrap();
        assert!(det.classify(flow(3), ben, Ts::ZERO).is_none());
    }

    #[test]
    fn small_samples_withhold_verdict() {
        let det = CovertChannelDetector::train(&[benign_hist()], 0.3);
        let mut c = IpdCollector::paper_default();
        feed_gaps(&mut c, flow(4), &[30, 80, 30]);
        let h = c.histogram(&flow(4)).unwrap();
        assert!(det.classify(flow(4), h, Ts::ZERO).is_none());
    }

    #[test]
    fn subtle_modulation_depth_lowers_score() {
        // Fig. 9a's underlying gradient: 2 µs modulation around the benign
        // mode is harder than 60 µs.
        let det = CovertChannelDetector::train(&[benign_hist()], 0.3);
        let score_for = |lo: u64, hi: u64| {
            let mut c = IpdCollector::paper_default();
            let gaps: Vec<u64> = (0..400).map(|i| if i % 2 == 0 { lo } else { hi }).collect();
            feed_gaps(&mut c, flow(9), &gaps);
            det.score(c.histogram(&flow(9)).unwrap())
        };
        assert!(score_for(30, 90) > score_for(44, 46));
    }

    #[test]
    fn readout_drains() {
        let mut c = IpdCollector::paper_default();
        feed_gaps(&mut c, flow(5), &[10, 10]);
        feed_gaps(&mut c, flow(6), &[20, 20]);
        let batch = c.readout();
        assert_eq!(batch.len(), 2);
        assert!(c.is_empty());
    }
}
