//! DNS amplification detection (paper §5.1.3 "Similar Attacks").
//!
//! Instead of the port-scan indicator φ, the detector computes the
//! amplification factor `sizeof(response)/sizeof(request)` per
//! (client, resolver) session. Reflection victims show high factors
//! across *many* resolvers simultaneously, so the alert keys on the
//! victim address once enough amplified sessions accumulate.

use crate::{Alert, Subject};
use smartwatch_net::{AttackKind, Packet};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Per-(client, resolver) byte accounting.
#[derive(Clone, Copy, Debug, Default)]
struct PairBytes {
    request: u64,
    response: u64,
}

/// DNS amplification detector.
#[derive(Clone, Debug)]
pub struct DnsAmpDetector {
    /// Response/request byte ratio that marks a session amplified.
    pub factor_threshold: f64,
    /// Minimum request bytes before a ratio is meaningful.
    pub min_request_bytes: u64,
    /// Amplified (client, resolver) pairs needed to flag a victim.
    pub pair_threshold: usize,
    pairs: HashMap<(Ipv4Addr, Ipv4Addr), PairBytes>,
    alerted: HashSet<Ipv4Addr>,
}

impl DnsAmpDetector {
    /// Defaults: factor ≥ 10 over ≥ 4 resolvers.
    pub fn new() -> DnsAmpDetector {
        DnsAmpDetector {
            factor_threshold: 10.0,
            min_request_bytes: 120,
            pair_threshold: 4,
            pairs: HashMap::new(),
            alerted: HashSet::new(),
        }
    }

    /// Feed one packet (only UDP/53 packets are considered).
    pub fn on_packet(&mut self, p: &Packet) -> Option<Alert> {
        if !p.is_udp() {
            return None;
        }
        let (client, resolver, response) = if p.key.dst_port == 53 {
            (p.key.src_ip, p.key.dst_ip, false)
        } else if p.key.src_port == 53 {
            (p.key.dst_ip, p.key.src_ip, true)
        } else {
            return None;
        };
        let e = self.pairs.entry((client, resolver)).or_default();
        if response {
            e.response += u64::from(p.payload_len);
        } else {
            e.request += u64::from(p.payload_len);
        }
        // Check victim status.
        if self.alerted.contains(&client) {
            return None;
        }
        let amplified = self
            .pairs
            .iter()
            .filter(|((c, _), b)| {
                *c == client
                    && b.request >= self.min_request_bytes
                    && b.response as f64 / b.request.max(1) as f64 >= self.factor_threshold
            })
            .count();
        if amplified >= self.pair_threshold {
            self.alerted.insert(client);
            Some(Alert::new(
                AttackKind::DnsAmplification,
                Subject::Destination(client),
                p.ts,
                format!("amplified responses from {amplified} resolvers"),
            ))
        } else {
            None
        }
    }

    /// Mean amplification factor observed for an address (diagnostics).
    pub fn amplification_factor(&self, client: Ipv4Addr) -> f64 {
        let (req, resp) = self
            .pairs
            .iter()
            .filter(|((c, _), _)| *c == client)
            .fold((0u64, 0u64), |(rq, rs), (_, b)| {
                (rq + b.request, rs + b.response)
            });
        if req == 0 {
            0.0
        } else {
            resp as f64 / req as f64
        }
    }
}

impl Default for DnsAmpDetector {
    fn default() -> Self {
        DnsAmpDetector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::packet::udp;
    use smartwatch_net::Dur;
    use smartwatch_net::Ts;

    fn victim() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 99)
    }

    fn resolver(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(172, 16, 50, i)
    }

    #[test]
    fn amplified_reflection_flags_victim() {
        let mut d = DnsAmpDetector::new();
        let mut alerts = Vec::new();
        let mut t = Ts::ZERO;
        for r in 0..6u8 {
            for _ in 0..3 {
                t += Dur::from_millis(1);
                alerts.extend(d.on_packet(&udp(victim(), 5353, resolver(r), 53, t, 64)));
                t += Dur::from_millis(1);
                alerts.extend(d.on_packet(&udp(resolver(r), 53, victim(), 5353, t, 1400)));
            }
        }
        assert_eq!(alerts.len(), 1, "exactly one alert for the victim");
        let a = alerts.remove(0);
        assert_eq!(a.subject, Subject::Destination(victim()));
        assert!(d.amplification_factor(victim()) > 10.0);
    }

    #[test]
    fn normal_dns_not_flagged() {
        let mut d = DnsAmpDetector::new();
        let client = Ipv4Addr::new(10, 0, 0, 5);
        let mut t = Ts::ZERO;
        for r in 0..8u8 {
            for _ in 0..10 {
                t += Dur::from_millis(1);
                assert!(d
                    .on_packet(&udp(client, 40000, resolver(r), 53, t, 60))
                    .is_none());
                t += Dur::from_millis(1);
                // Typical response ~2–4× the query.
                assert!(d
                    .on_packet(&udp(resolver(r), 53, client, 40000, t, 180))
                    .is_none());
            }
        }
    }

    #[test]
    fn single_resolver_is_not_enough() {
        let mut d = DnsAmpDetector::new();
        let mut t = Ts::ZERO;
        for _ in 0..50 {
            t += Dur::from_millis(1);
            d.on_packet(&udp(victim(), 5353, resolver(0), 53, t, 64));
            t += Dur::from_millis(1);
            assert!(d
                .on_packet(&udp(resolver(0), 53, victim(), 5353, t, 1400))
                .is_none());
        }
    }

    #[test]
    fn non_dns_traffic_ignored() {
        let mut d = DnsAmpDetector::new();
        assert!(d
            .on_packet(&udp(victim(), 1000, resolver(0), 2000, Ts::ZERO, 1400))
            .is_none());
    }
}
