//! # smartwatch-detect
//!
//! Every attack detector in the paper's Tables 2 and 4, plus the
//! statistics toolkit they share.
//!
//! | Detector (paper row) | Module |
//! |---|---|
//! | SSH / FTP bruteforcing (§5.1.1) | [`auth`] |
//! | Expiring SSL certificates, Kerberos tickets | [`auth`] |
//! | In-sequence forged TCP RST (§5.1.2) | [`rst`] |
//! | Stealthy port scan + TCP incomplete flows (§5.1.3) | [`portscan`] |
//! | Slowloris (§2.1.2) | [`slowloris`] |
//! | DNS amplification | [`dnsamp`] |
//! | Covert timing channel (§5.2.1) | [`covert`] |
//! | Website fingerprinting (§5.2.2) | [`wfp`] |
//! | EarlyBird worms | [`worm`] |
//! | Micro-bursts (§5.3.2) | [`microburst`] |
//! | Heavy hitter / change / cardinality / flow size (§5.3.1) | [`volumetric`] |
//! | KS-test, TRW, Naive-Bayes, EWMA | [`stats`] |
//!
//! Detectors are deliberately *transport-agnostic*: they consume packets,
//! connection events, or exported flow records, so the same code runs
//! against the host-only, sNIC-host, and full-SmartWatch deployments in
//! the Table 4 comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod covert;
pub mod dnsamp;
pub mod microburst;
pub mod portscan;
pub mod rst;
pub mod slowloris;
pub mod stats;
pub mod volumetric;
pub mod wfp;
pub mod worm;

use smartwatch_net::{AttackKind, FlowKey, Ts};
use std::net::Ipv4Addr;

/// What an alert points at.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum Subject {
    /// A remote source address (scanner, bruteforcer…).
    Source(Ipv4Addr),
    /// A destination/victim address.
    Destination(Ipv4Addr),
    /// A specific connection.
    Flow(FlowKey),
    /// A content digest (worm signature, certificate, ticket).
    Digest(u64),
    /// A microburst event id.
    Burst(u32),
}

/// A detector alert.
#[derive(Clone, PartialEq, Debug)]
pub struct Alert {
    /// Attack class.
    pub kind: AttackKind,
    /// What the alert points at.
    pub subject: Subject,
    /// Virtual time of detection.
    pub ts: Ts,
    /// Human-readable detail.
    pub detail: String,
}

impl Alert {
    /// Construct an alert.
    pub fn new(kind: AttackKind, subject: Subject, ts: Ts, detail: impl Into<String>) -> Alert {
        Alert {
            kind,
            subject,
            ts,
            detail: detail.into(),
        }
    }
}
