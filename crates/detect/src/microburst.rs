//! Microburst detection (paper §5.3.2): composition of the egress-queue
//! model and the sNIC burst log into a packet-in, report-out detector.

use crate::{Alert, Subject};
use smartwatch_net::{AttackKind, Dur, Packet, Ts};
use smartwatch_snic::burstlog::{BurstLog, BurstReport, EgressQueue};

/// End-to-end microburst detector.
#[derive(Clone, Debug)]
pub struct MicroburstDetector {
    queue: EgressQueue,
    log: BurstLog,
}

impl MicroburstDetector {
    /// Detector watching an egress of `rate_gbps`, classifying bursts at
    /// `threshold` queuing delay, logging up to `capacity` flows each.
    pub fn new(rate_gbps: f64, threshold: Dur, capacity: usize) -> MicroburstDetector {
        MicroburstDetector {
            queue: EgressQueue::new(rate_gbps),
            log: BurstLog::new(threshold, capacity),
        }
    }

    /// Feed one packet.
    pub fn on_packet(&mut self, p: &Packet) {
        let delay = self.queue.on_packet(p);
        self.log.on_packet(p, delay);
    }

    /// Close any in-progress burst and return all reports.
    pub fn finish(&mut self, now: Ts) -> &[BurstReport] {
        self.log.finish(now);
        self.log.reports()
    }

    /// Reports so far.
    pub fn reports(&self) -> &[BurstReport] {
        self.log.reports()
    }

    /// Reports converted to alerts.
    pub fn alerts(&self) -> Vec<Alert> {
        self.log
            .reports()
            .iter()
            .map(|r| {
                Alert::new(
                    AttackKind::Microburst,
                    Subject::Burst(r.id),
                    r.end,
                    format!("{} flows over {}", r.flows.len(), r.duration()),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_trace::attacks::microburst::{burst_flows, microbursts, MicroburstConfig};

    #[test]
    fn generated_bursts_are_found_with_high_flow_capture() {
        let cfg = MicroburstConfig::new(6, 55);
        let trace = microbursts(&cfg);
        // Egress sized so in-burst load exceeds drain: 24 flows × 12 pkts
        // × ~1254 B in 150 µs ≈ 19 Gbps instantaneous; use a 10 G egress.
        let mut det = MicroburstDetector::new(10.0, Dur::from_micros(20), 4096);
        for p in trace.iter() {
            det.on_packet(p);
        }
        let last = trace.packets().last().unwrap().ts;
        let reports = det.finish(last + Dur::from_secs(1)).to_vec();
        assert!(
            reports.len() >= cfg.bursts as usize,
            "found {} bursts of {}",
            reports.len(),
            cfg.bursts
        );
        // Flow capture: the union of reported flows must cover nearly all
        // ground-truth flows of each burst (Fig. 11a at permissive
        // thresholds reaches 100%).
        let mut reported: Vec<_> = reports
            .iter()
            .flat_map(|r| r.flows.iter().map(|(k, _)| *k))
            .collect();
        reported.sort();
        reported.dedup();
        let mut total = 0usize;
        let mut captured = 0usize;
        for b in 0..cfg.bursts {
            for f in burst_flows(&trace, b) {
                total += 1;
                if reported.binary_search(&f).is_ok() {
                    captured += 1;
                }
            }
        }
        let rate = captured as f64 / total as f64;
        assert!(rate > 0.9, "captured {rate:.2} of burst flows");
    }

    #[test]
    fn idle_traffic_reports_nothing() {
        let mut det = MicroburstDetector::new(40.0, Dur::from_micros(100), 1024);
        // Sparse packets on a fat pipe never build queue.
        for i in 0..1000u64 {
            let key = smartwatch_net::FlowKey::tcp(
                std::net::Ipv4Addr::new(10, 0, 0, 1),
                1,
                std::net::Ipv4Addr::new(172, 16, 0, 1),
                80,
            );
            let p = smartwatch_net::PacketBuilder::new(key, Ts::from_micros(i * 500))
                .payload(1200)
                .build();
            det.on_packet(&p);
        }
        assert!(det.finish(Ts::from_secs(1)).is_empty());
    }

    #[test]
    fn higher_threshold_misses_flows() {
        // Fig. 11a's shape: stricter (higher) classification thresholds
        // open the burst later and capture fewer member flows... inverted
        // axis in the paper; here: a very high threshold finds nothing.
        let cfg = MicroburstConfig::new(3, 56);
        let trace = microbursts(&cfg);
        let mut strict = MicroburstDetector::new(10.0, Dur::from_millis(50), 4096);
        for p in trace.iter() {
            strict.on_packet(p);
        }
        let last = trace.packets().last().unwrap().ts;
        assert!(
            strict.finish(last).is_empty(),
            "50 ms threshold can never trip"
        );
    }
}
