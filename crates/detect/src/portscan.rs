//! Stealthy port-scan and TCP-incomplete-flow detection (paper §5.1.3).
//!
//! The port-scan detector is the Jung et al. TRW scheme: the sNIC tracks
//! each connection attempt's outcome φᵢʳ per packet (pinning the flow
//! until the three-way handshake resolves), exports the indicator to the
//! host, and the host runs sequential hypothesis testing per remote node.
//!
//! Crucially for the Fig. 8c comparison: the detector consumes *outcomes*,
//! not rates — a paranoid scanner spacing probes minutes apart still
//! accumulates evidence, which is exactly what volumetric switch queries
//! cannot do.

use crate::stats::{Trw, TrwVerdict};
use crate::{Alert, Subject};
use smartwatch_host::{ConnEvent, ConnTable};
use smartwatch_net::{AttackKind, Dur, Packet, Ts};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Per-remote TRW port-scan detector.
#[derive(Clone, Debug, Default)]
pub struct PortscanDetector {
    walks: HashMap<Ipv4Addr, Trw>,
    alerted: HashSet<Ipv4Addr>,
    /// Distinct destinations probed per source (context for alerts).
    probed: HashMap<Ipv4Addr, HashSet<(Ipv4Addr, u16)>>,
}

impl PortscanDetector {
    /// Fresh detector with classic TRW parameters.
    pub fn new() -> PortscanDetector {
        PortscanDetector::default()
    }

    /// Feed one resolved connection-attempt outcome (`success` = the
    /// handshake completed) from remote `src` towards `(dst, port)`.
    pub fn observe(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
        success: bool,
        ts: Ts,
    ) -> Option<Alert> {
        self.probed.entry(src).or_default().insert((dst, port));
        let walk = self.walks.entry(src).or_default();
        if walk.observe(success) == TrwVerdict::Scanner && self.alerted.insert(src) {
            let fanout = self.probed[&src].len();
            return Some(Alert::new(
                AttackKind::StealthyPortScan,
                Subject::Source(src),
                ts,
                format!(
                    "TRW flagged scanner after {} outcomes, fanout {fanout}",
                    walk.observations()
                ),
            ));
        }
        None
    }

    /// Sources flagged as scanners.
    pub fn scanners(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self.alerted.iter().copied().collect();
        v.sort();
        v
    }
}

/// Drives a [`ConnTable`] over raw packets and feeds resolved outcomes to
/// the TRW detector — the composition the sNIC + host performs online.
#[derive(Debug)]
pub struct ScanPipeline {
    /// Connection tracker (the sNIC's pinned flow-state role).
    pub conns: ConnTable,
    /// TRW (the host's role).
    pub detector: PortscanDetector,
    /// TCP-incomplete-flows detector, fed from the same sweeps.
    pub incomplete: IncompleteFlowDetector,
    /// S0 attempts older than this count as failed (no response).
    pub attempt_timeout: Dur,
    last_sweep: Ts,
}

impl Default for ScanPipeline {
    fn default() -> Self {
        ScanPipeline::new()
    }
}

impl ScanPipeline {
    /// Pipeline with the standard 2-second attempt timeout.
    pub fn new() -> ScanPipeline {
        ScanPipeline {
            conns: ConnTable::new(),
            detector: PortscanDetector::new(),
            incomplete: IncompleteFlowDetector::new(8),
            attempt_timeout: Dur::from_secs(2),
            last_sweep: Ts::ZERO,
        }
    }

    /// Feed one packet; returns any new alert.
    pub fn on_packet(&mut self, pkt: &Packet) -> Vec<Alert> {
        let mut alerts = Vec::new();
        // Periodic timeout sweep (every 500 ms of virtual time).
        if pkt.ts.since(self.last_sweep) >= Dur::from_millis(500) {
            self.last_sweep = pkt.ts;
            for rec in self
                .conns
                .sweep_attempt_timeouts(pkt.ts, self.attempt_timeout)
            {
                let (src, dst, port) = originator_view(&rec);
                if let Some(a) = self.detector.observe(src, dst, port, false, pkt.ts) {
                    alerts.push(a);
                }
                alerts.extend(self.incomplete.observe_incomplete(&rec, pkt.ts));
            }
            // Established-but-dataless connections are incomplete too
            // (half-open probes answered by SYN/ACK).
            for rec in self
                .conns
                .sweep_dataless(pkt.ts, self.attempt_timeout.mul(4))
            {
                alerts.extend(self.incomplete.observe_incomplete(&rec, pkt.ts));
            }
        }
        let key = pkt.key;
        match self.conns.process(pkt) {
            Some(ConnEvent::Established) => {
                if let Some(rec) = self.conns.get(&key) {
                    let (src, dst, port) = originator_view(rec);
                    if let Some(a) = self.detector.observe(src, dst, port, true, pkt.ts) {
                        alerts.push(a);
                    }
                }
            }
            Some(ConnEvent::Rejected) => {
                if let Some(rec) = self.conns.remove(&key) {
                    let (src, dst, port) = originator_view(&rec);
                    if let Some(a) = self.detector.observe(src, dst, port, false, pkt.ts) {
                        alerts.push(a);
                    }
                }
            }
            _ => {}
        }
        alerts
    }

    /// Final sweep at end of trace.
    pub fn finish(&mut self, now: Ts) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let horizon = now + self.attempt_timeout;
        for rec in self
            .conns
            .sweep_attempt_timeouts(horizon, self.attempt_timeout)
        {
            let (src, dst, port) = originator_view(&rec);
            if let Some(a) = self.detector.observe(src, dst, port, false, now) {
                alerts.push(a);
            }
            alerts.extend(self.incomplete.observe_incomplete(&rec, now));
        }
        for rec in self.conns.sweep_dataless(horizon, self.attempt_timeout) {
            alerts.extend(self.incomplete.observe_incomplete(&rec, now));
        }
        alerts
    }
}

/// (originator addr, responder addr, responder port) of a connection.
fn originator_view(rec: &smartwatch_host::ConnRecord) -> (Ipv4Addr, Ipv4Addr, u16) {
    if rec.orig_is_forward {
        (rec.key.src_ip, rec.key.dst_ip, rec.key.dst_port)
    } else {
        (rec.key.dst_ip, rec.key.src_ip, rec.key.src_port)
    }
}

/// TCP-incomplete-flows detector (Table 2): sources accumulating many
/// connections that open but never carry data.
#[derive(Clone, Debug)]
pub struct IncompleteFlowDetector {
    /// Incomplete connections per source that trigger an alert.
    pub threshold: u32,
    counts: HashMap<Ipv4Addr, u32>,
    alerted: HashSet<Ipv4Addr>,
}

impl IncompleteFlowDetector {
    /// Detector alerting after `threshold` incomplete flows per source.
    pub fn new(threshold: u32) -> IncompleteFlowDetector {
        IncompleteFlowDetector {
            threshold,
            counts: HashMap::new(),
            alerted: HashSet::new(),
        }
    }

    /// Report a connection that ended (timed out / was swept) with no
    /// payload in either direction.
    pub fn observe_incomplete(
        &mut self,
        rec: &smartwatch_host::ConnRecord,
        now: Ts,
    ) -> Option<Alert> {
        if rec.total_bytes() > 0 {
            return None;
        }
        let (src, _, _) = originator_view(rec);
        let c = self.counts.entry(src).or_insert(0);
        *c += 1;
        if *c >= self.threshold && self.alerted.insert(src) {
            Some(Alert::new(
                AttackKind::TcpIncompleteFlows,
                Subject::Source(src),
                now,
                format!("{c} dataless connections"),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{FlowKey, PacketBuilder, TcpFlags};

    fn scanner() -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 0, 1)
    }

    fn probe(i: u32, ts: Ts, refused: bool) -> Vec<Packet> {
        let key = FlowKey::tcp(
            scanner(),
            30000 + i as u16,
            Ipv4Addr::new(172, 16, 0, (i % 200) as u8 + 1),
            (1 + i * 13 % 1024) as u16,
        );
        let syn = PacketBuilder::new(key, ts).flags(TcpFlags::SYN).build();
        if refused {
            let rst = PacketBuilder::new(key.reversed(), ts + Dur::from_micros(300))
                .flags(TcpFlags::RST_ACK)
                .build();
            vec![syn, rst]
        } else {
            vec![syn]
        }
    }

    #[test]
    fn refused_probes_flag_scanner() {
        let mut p = ScanPipeline::new();
        let mut alerts = Vec::new();
        for i in 0..10 {
            for pkt in probe(i, Ts::from_millis(u64::from(i) * 10), true) {
                alerts.extend(p.on_packet(&pkt));
            }
        }
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].subject, Subject::Source(scanner()));
    }

    #[test]
    fn silent_probes_flag_scanner_via_timeout() {
        let mut p = ScanPipeline::new();
        let mut alerts = Vec::new();
        // Filtered ports: lone SYNs, spaced 1 s apart so sweeps run.
        for i in 0..10 {
            for pkt in probe(i, Ts::from_secs(u64::from(i)), false) {
                alerts.extend(p.on_packet(&pkt));
            }
        }
        alerts.extend(p.finish(Ts::from_secs(30)));
        let scans: Vec<&Alert> = alerts
            .iter()
            .filter(|a| a.kind == smartwatch_net::AttackKind::StealthyPortScan)
            .collect();
        assert_eq!(scans.len(), 1, "paranoid scanner must still be caught");
        // The same lone-SYN probes are also (correctly) incomplete flows.
        assert!(alerts
            .iter()
            .any(|a| a.kind == smartwatch_net::AttackKind::TcpIncompleteFlows));
    }

    #[test]
    fn slow_scan_detected_regardless_of_delay() {
        // Fig. 8c's point: outcomes are outcome-count-driven, not
        // rate-driven. 5-minute probe spacing still converges.
        let mut p = ScanPipeline::new();
        let mut alerts = Vec::new();
        for i in 0..10 {
            for pkt in probe(i, Ts::from_secs(u64::from(i) * 300), true) {
                alerts.extend(p.on_packet(&pkt));
            }
        }
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn benign_clients_not_flagged() {
        let mut d = PortscanDetector::new();
        let benign = Ipv4Addr::new(10, 0, 0, 5);
        for i in 0..50 {
            let a = d.observe(
                benign,
                Ipv4Addr::new(172, 16, 0, 1),
                443,
                true,
                Ts::from_secs(i),
            );
            assert!(a.is_none());
        }
        assert!(d.scanners().is_empty());
    }

    #[test]
    fn incomplete_flow_threshold() {
        let mut d = IncompleteFlowDetector::new(3);
        let key = FlowKey::tcp(scanner(), 1, Ipv4Addr::new(172, 16, 0, 1), 80);
        let rec = smartwatch_host::ConnRecord {
            key: key.canonical().0,
            state: smartwatch_host::ConnState::S0,
            orig_is_forward: key.canonical().1 == smartwatch_net::key::Direction::Forward,
            orig_pkts: 1,
            resp_pkts: 0,
            orig_bytes: 0,
            resp_bytes: 0,
            start: Ts::ZERO,
            last: Ts::ZERO,
            fin_orig: false,
            fin_resp: false,
        };
        assert!(d.observe_incomplete(&rec, Ts::ZERO).is_none());
        assert!(d.observe_incomplete(&rec, Ts::ZERO).is_none());
        assert!(d.observe_incomplete(&rec, Ts::ZERO).is_some());
        // Once flagged, silent.
        assert!(d.observe_incomplete(&rec, Ts::ZERO).is_none());
    }

    #[test]
    fn connections_with_data_are_not_incomplete() {
        let mut d = IncompleteFlowDetector::new(1);
        let key = FlowKey::tcp(scanner(), 1, Ipv4Addr::new(172, 16, 0, 1), 80);
        let mut rec = smartwatch_host::ConnRecord {
            key: key.canonical().0,
            state: smartwatch_host::ConnState::SF,
            orig_is_forward: true,
            orig_pkts: 5,
            resp_pkts: 5,
            orig_bytes: 100,
            resp_bytes: 100,
            start: Ts::ZERO,
            last: Ts::ZERO,
            fin_orig: true,
            fin_resp: true,
        };
        assert!(d.observe_incomplete(&rec, Ts::ZERO).is_none());
        rec.orig_bytes = 0;
        rec.resp_bytes = 0;
        assert!(d.observe_incomplete(&rec, Ts::ZERO).is_some());
    }
}
