//! In-sequence forged TCP RST detection (paper §5.1.2).
//!
//! Strategy (Weaver–Sommer–Paxson): buffer suspect RST packets in a
//! timing wheel for T (= 2 s) instead of delivering them. If genuine data
//! from the allegedly-resetting endpoint arrives while the RST is
//! buffered — the *race condition* — the RST was forged: discard it and
//! alert. If the timer expires quietly, release the RST to its
//! destination.
//!
//! The Bloom-filter fast path reproduces the paper's measurement: before
//! paying for a wheel scan (needed to detect *duplicate* RSTs for the
//! same flow), a membership check answers "no previous RST buffered" in
//! O(k) hashes — 69.7% of RSTs take this path in their trace.

use crate::{Alert, Subject};
use smartwatch_host::TimingWheel;
use smartwatch_net::{AttackKind, Dur, FlowKey, Packet, Ts};
use smartwatch_sketch::BloomFilter;

/// A buffered suspect RST.
#[derive(Clone, Copy, Debug)]
pub struct BufferedRst {
    /// Canonical flow the RST belongs to.
    pub flow: FlowKey,
    /// Direction marker: true if the RST travelled in canonical-forward
    /// direction.
    pub forward: bool,
    /// Sequence number carried by the RST.
    pub seq: u32,
    /// Arrival time.
    pub arrived: Ts,
}

/// Events the detector reports per packet.
#[derive(Clone, Debug, PartialEq)]
pub enum RstEvent {
    /// RST buffered pending verification (took the Bloom fast path).
    BufferedFast,
    /// RST buffered after a wheel scan (Bloom hit ⇒ possible duplicate).
    BufferedSlow,
    /// Second RST for a flow that already has one buffered — immediately
    /// suspicious (duplicate-RST signature).
    DuplicateRst(Alert),
    /// Genuine data raced a buffered RST: forged. RST discarded.
    ForgedDetected(Alert),
    /// Timer expired; RST released to its destination (genuine).
    Released(FlowKey),
}

/// The forged-RST detector.
pub struct ForgedRstDetector {
    /// Buffering horizon T (paper: 2 s).
    pub horizon: Dur,
    wheel: TimingWheel<BufferedRst>,
    bloom: BloomFilter,
    hasher: smartwatch_net::FlowHasher,
    /// RSTs that took the fast path (no scan needed).
    pub fast_path: u64,
    /// RSTs that required a wheel scan.
    pub slow_path: u64,
}

impl ForgedRstDetector {
    /// Detector with horizon T. The wheel tick is T/256.
    pub fn new(horizon: Dur) -> ForgedRstDetector {
        let tick = Dur::from_nanos((horizon.as_nanos() / 128).max(1_000));
        ForgedRstDetector {
            horizon,
            wheel: TimingWheel::new(512, tick),
            bloom: BloomFilter::for_items(100_000, 0.01, 0xF0F0),
            hasher: smartwatch_net::FlowHasher::new(0xF0F0),
            fast_path: 0,
            slow_path: 0,
        }
    }

    /// Paper configuration: T = 2 s.
    pub fn paper_default() -> ForgedRstDetector {
        ForgedRstDetector::new(Dur::from_secs(2))
    }

    fn flow_id(&self, flow: &FlowKey) -> u64 {
        self.hasher.hash_symmetric(flow).0
    }

    /// Buffered RST count.
    pub fn buffered(&self) -> usize {
        self.wheel.len()
    }

    /// Process one packet at its timestamp. Expired RSTs are released as
    /// `Released` events; the packet itself may buffer, duplicate-flag, or
    /// race-detect.
    pub fn on_packet(&mut self, pkt: &Packet) -> Vec<RstEvent> {
        let mut events: Vec<RstEvent> = self
            .wheel
            .advance(pkt.ts)
            .into_iter()
            .map(|(_, r)| RstEvent::Released(r.flow))
            .collect();

        if !pkt.is_tcp() {
            return events;
        }
        let (flow, dir) = pkt.key.canonical();
        let forward = dir == smartwatch_net::key::Direction::Forward;

        if pkt.flags.rst() {
            let fid = self.flow_id(&flow);
            if self.bloom.contains(fid) {
                // Possible duplicate: scan the wheel (slow path).
                self.slow_path += 1;
                let dup = !self.wheel.scan(|r| r.flow == flow).is_empty();
                if dup {
                    events.push(RstEvent::DuplicateRst(Alert::new(
                        AttackKind::ForgedTcpRst,
                        Subject::Flow(flow),
                        pkt.ts,
                        "duplicate RST while one is buffered",
                    )));
                    return events;
                }
                events.push(RstEvent::BufferedSlow);
            } else {
                self.fast_path += 1;
                events.push(RstEvent::BufferedFast);
            }
            self.bloom.insert(fid);
            self.wheel.schedule(
                pkt.ts + self.horizon,
                BufferedRst {
                    flow,
                    forward,
                    seq: pkt.seq,
                    arrived: pkt.ts,
                },
            );
            return events;
        }

        // Data packet: does it race a buffered RST from the same sender?
        if pkt.payload_len > 0 {
            if let Some(rst) = self
                .wheel
                .remove_first(|r| r.flow == flow && r.forward == forward)
            {
                events.push(RstEvent::ForgedDetected(Alert::new(
                    AttackKind::ForgedTcpRst,
                    Subject::Flow(flow),
                    pkt.ts,
                    format!(
                        "data seq {} raced RST seq {} after {}",
                        pkt.seq,
                        rst.seq,
                        pkt.ts.since(rst.arrived)
                    ),
                )));
            }
        }
        events
    }

    /// Flush: release everything still buffered (end of trace).
    pub fn finish(&mut self, now: Ts) -> Vec<RstEvent> {
        self.wheel
            .advance(now + self.horizon + Dur::from_secs(1))
            .into_iter()
            .map(|(_, r)| RstEvent::Released(r.flow))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{PacketBuilder, TcpFlags};
    use std::net::Ipv4Addr;

    fn flow(i: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from(0x0A000000 + i),
            40000,
            Ipv4Addr::from(0xAC100001u32),
            443,
        )
    }

    fn rst(f: FlowKey, ts: Ts, seq: u32) -> Packet {
        PacketBuilder::new(f, ts)
            .flags(TcpFlags::RST)
            .seq(seq)
            .build()
    }

    fn data(f: FlowKey, ts: Ts, seq: u32) -> Packet {
        PacketBuilder::new(f, ts)
            .flags(TcpFlags::PSH | TcpFlags::ACK)
            .seq(seq)
            .payload(500)
            .build()
    }

    #[test]
    fn forged_rst_detected_via_race() {
        let mut d = ForgedRstDetector::paper_default();
        // RST "from server" (reverse direction of flow(1)).
        let server_side = flow(1).reversed();
        let ev = d.on_packet(&rst(server_side, Ts::from_millis(10), 5000));
        assert_eq!(ev, vec![RstEvent::BufferedFast]);
        // Genuine server data 30 ms later: race detected.
        let ev = d.on_packet(&data(server_side, Ts::from_millis(40), 5000));
        assert!(matches!(ev.as_slice(), [RstEvent::ForgedDetected(_)]));
        assert_eq!(d.buffered(), 0, "forged RST discarded");
    }

    #[test]
    fn genuine_rst_released_after_horizon() {
        let mut d = ForgedRstDetector::paper_default();
        d.on_packet(&rst(flow(2), Ts::from_millis(10), 1));
        // No data follows; a later unrelated packet advances the wheel.
        let ev = d.on_packet(&data(flow(3), Ts::from_secs(3), 0));
        assert!(ev.contains(&RstEvent::Released(flow(2).canonical().0)));
    }

    #[test]
    fn duplicate_rst_flagged() {
        let mut d = ForgedRstDetector::paper_default();
        d.on_packet(&rst(flow(4), Ts::from_millis(10), 1));
        let ev = d.on_packet(&rst(flow(4), Ts::from_millis(20), 2));
        assert!(matches!(ev.as_slice(), [RstEvent::DuplicateRst(_)]));
    }

    #[test]
    fn data_from_other_side_does_not_trip_race() {
        // The race requires data from the *same sender* as the RST.
        let mut d = ForgedRstDetector::paper_default();
        let server_side = flow(5).reversed();
        d.on_packet(&rst(server_side, Ts::from_millis(10), 1));
        // Client keeps sending: not a race.
        let ev = d.on_packet(&data(flow(5), Ts::from_millis(30), 77));
        assert!(ev.is_empty());
        assert_eq!(d.buffered(), 1);
    }

    #[test]
    fn fast_path_dominates_distinct_flows() {
        let mut d = ForgedRstDetector::paper_default();
        for i in 0..100 {
            d.on_packet(&rst(flow(100 + i), Ts::from_millis(u64::from(i)), 1));
        }
        assert!(
            d.fast_path >= 95,
            "fast {} slow {}",
            d.fast_path,
            d.slow_path
        );
    }

    #[test]
    fn finish_releases_everything() {
        let mut d = ForgedRstDetector::paper_default();
        d.on_packet(&rst(flow(6), Ts::from_millis(1), 1));
        d.on_packet(&rst(flow(7), Ts::from_millis(2), 1));
        let ev = d.finish(Ts::from_millis(3));
        assert_eq!(ev.len(), 2);
        assert_eq!(d.buffered(), 0);
    }
}
