//! Slowloris detection (paper §2.1.2's coarse/fine case study).
//!
//! Two detectors, mirroring the paper's motivating contrast:
//!
//! - [`coarse_indicator`] — the switch-style aggregate: per destination
//!   prefix, `#connections / #bytes` above a threshold. Cheap, prefix
//!   granularity, can only say "something is off around this server".
//! - [`SlowlorisDetector`] — the Zeek-style fine detector over flow
//!   records: *stalling* connections (duration beyond 10 s with almost no
//!   payload), counted per destination; many stalling connections to one
//!   server identifies the attack, the victim, and the attacker set.

use crate::{Alert, Subject};
use smartwatch_net::{AttackKind, Dur, Ts};
use smartwatch_snic::FlowRecord;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Coarse switch-style indicator: destinations whose connection count per
/// byte is anomalously high. Returns `(destination /24 prefix, ratio)`.
pub fn coarse_indicator(records: &[FlowRecord], min_conns: usize, ratio: f64) -> Vec<(u32, f64)> {
    let mut per_dst: HashMap<u32, (usize, u64)> = HashMap::new();
    for r in records {
        // The record key is canonical; aggregate on the *server* side.
        let e = per_dst
            .entry(smartwatch_net::key::prefix_of(server_of(r), 24))
            .or_insert((0, 0));
        e.0 += 1;
        e.1 += r.bytes;
    }
    let mut out: Vec<(u32, f64)> = per_dst
        .into_iter()
        .filter_map(|(prefix, (conns, bytes))| {
            let rr = conns as f64 / (bytes.max(1)) as f64;
            (conns >= min_conns && rr >= ratio).then_some((prefix, rr))
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    out
}

/// Fine-grained stalling-connection detector.
#[derive(Clone, Debug)]
pub struct SlowlorisDetector {
    /// A connection older than this with below `max_bytes` payload is
    /// "stalling" (Zeek's HTTP-stall policy uses 10 s).
    pub stall_threshold: Dur,
    /// Maximum bytes for a connection to still count as stalling.
    pub max_bytes: u64,
    /// Stalling connections to one destination that trigger the alert.
    pub conn_threshold: usize,
    alerted: HashSet<Ipv4Addr>,
}

impl SlowlorisDetector {
    /// Paper-flavoured defaults: 10 s stall, ≤ 2 KB, 50 connections.
    pub fn new() -> SlowlorisDetector {
        SlowlorisDetector {
            stall_threshold: Dur::from_secs(10),
            max_bytes: 2_048,
            conn_threshold: 50,
            alerted: HashSet::new(),
        }
    }

    /// Analyze one interval's flow records at time `now`. Emits at most
    /// one alert per victim server.
    pub fn analyze(&mut self, records: &[FlowRecord], now: Ts) -> Vec<Alert> {
        let mut stalling: HashMap<Ipv4Addr, Vec<&FlowRecord>> = HashMap::new();
        for r in records {
            let dst = server_of(r);
            if r.duration() >= self.stall_threshold && r.bytes <= self.max_bytes {
                stalling.entry(dst).or_default().push(r);
            }
        }
        let mut alerts = Vec::new();
        for (victim, conns) in stalling {
            if conns.len() >= self.conn_threshold && self.alerted.insert(victim) {
                let attackers: HashSet<Ipv4Addr> = conns.iter().map(|r| client_of(r)).collect();
                alerts.push(Alert::new(
                    AttackKind::Slowloris,
                    Subject::Destination(victim),
                    now,
                    format!(
                        "{} stalling connections from {} sources",
                        conns.len(),
                        attackers.len()
                    ),
                ));
            }
        }
        alerts.sort_by_key(|a| format!("{:?}", a.subject));
        alerts
    }
}

impl Default for SlowlorisDetector {
    fn default() -> Self {
        SlowlorisDetector::new()
    }
}

/// The server side of a canonical flow (the well-known-port endpoint).
fn server_of(r: &FlowRecord) -> Ipv4Addr {
    if r.key.dst_port < r.key.src_port {
        r.key.dst_ip
    } else {
        r.key.src_ip
    }
}

fn client_of(r: &FlowRecord) -> Ipv4Addr {
    if r.key.dst_port < r.key.src_port {
        r.key.src_ip
    } else {
        r.key.dst_ip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::FlowKey;

    fn stalling_record(i: u32, server: Ipv4Addr, bytes: u64, dur_s: u64) -> FlowRecord {
        let key = FlowKey::tcp(
            Ipv4Addr::from(0xC6120000 + i),
            10_000 + i as u16,
            server,
            80,
        );
        let mut r = FlowRecord::new(key.canonical().0, Ts::ZERO, 64);
        r.bytes = bytes;
        r.packets = 6;
        r.last_ts = Ts::from_secs(dur_s);
        r
    }

    #[test]
    fn many_stalling_conns_alert_once() {
        let server = Ipv4Addr::new(172, 16, 0, 3);
        let mut d = SlowlorisDetector::new();
        let records: Vec<FlowRecord> = (0..60)
            .map(|i| stalling_record(i, server, 500, 30))
            .collect();
        let alerts = d.analyze(&records, Ts::from_secs(31));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].subject, Subject::Destination(server));
        // Re-analysis of the same interval does not re-alert.
        assert!(d.analyze(&records, Ts::from_secs(32)).is_empty());
    }

    #[test]
    fn short_or_bulky_conns_do_not_count() {
        let server = Ipv4Addr::new(172, 16, 0, 3);
        let mut d = SlowlorisDetector::new();
        // 60 short-lived conns.
        let short: Vec<FlowRecord> = (0..60)
            .map(|i| stalling_record(i, server, 500, 2))
            .collect();
        assert!(d.analyze(&short, Ts::from_secs(3)).is_empty());
        // 60 long but data-heavy conns (ordinary long downloads).
        let bulky: Vec<FlowRecord> = (0..60)
            .map(|i| stalling_record(i, server, 1_000_000, 30))
            .collect();
        assert!(d.analyze(&bulky, Ts::from_secs(31)).is_empty());
    }

    #[test]
    fn below_conn_threshold_is_quiet() {
        let server = Ipv4Addr::new(172, 16, 0, 3);
        let mut d = SlowlorisDetector::new();
        let records: Vec<FlowRecord> = (0..10)
            .map(|i| stalling_record(i, server, 500, 30))
            .collect();
        assert!(d.analyze(&records, Ts::from_secs(31)).is_empty());
    }

    #[test]
    fn coarse_indicator_ranks_conn_heavy_prefixes() {
        let victim = Ipv4Addr::new(172, 16, 0, 3);
        let normal = Ipv4Addr::new(172, 16, 99, 3);
        let mut records: Vec<FlowRecord> = (0..100)
            .map(|i| stalling_record(i, victim, 300, 30))
            .collect();
        // Normal server: few connections, lots of bytes.
        for i in 0..5 {
            records.push(stalling_record(1000 + i, normal, 5_000_000, 30));
        }
        let hits = coarse_indicator(&records, 20, 1e-4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, smartwatch_net::key::prefix_of(victim, 24));
    }
}
