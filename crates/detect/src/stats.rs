//! Statistics toolkit backing the detectors.
//!
//! - [`ks_test`] — two-sample Kolmogorov–Smirnov test (covert-channel
//!   detection compares observed IPD distributions against a known-good
//!   reference, §5.2.1).
//! - [`Trw`] — Threshold Random Walk sequential hypothesis testing (Jung
//!   et al.), the port-scan detector's core (§5.1.3).
//! - [`NaiveBayes`] — multinomial Naive-Bayes over histogram features
//!   (website fingerprinting, §5.2.2).
//! - [`Ewma`] — exponentially weighted moving average (Algorithm 4 and
//!   assorted rate trackers).

/// Two-sample Kolmogorov–Smirnov statistic over raw samples.
///
/// Returns `(d, crit)`: the KS statistic and the critical value at the
/// given significance `alpha` (reject "same distribution" when
/// `d > crit`). Both sample sets must be non-empty.
pub fn ks_test(a: &[f64], b: &[f64], alpha: f64) -> (f64, f64) {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs samples");
    let mut xs: Vec<f64> = a.to_vec();
    let mut ys: Vec<f64> = b.to_vec();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    let (n, m) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = xs[i];
        let y = ys[j];
        let v = x.min(y);
        while i < n && xs[i] <= v {
            i += 1;
        }
        while j < m && ys[j] <= v {
            j += 1;
        }
        let f1 = i as f64 / n as f64;
        let f2 = j as f64 / m as f64;
        d = d.max((f1 - f2).abs());
    }
    // c(α) = sqrt(-ln(α/2)/2); critical D = c(α)·sqrt((n+m)/(n·m)).
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    let crit = c * (((n + m) as f64) / ((n * m) as f64)).sqrt();
    (d, crit)
}

/// KS statistic between two *histograms* over the same bins (the sNIC CME
/// operates on binned IPDs, not raw samples).
pub fn ks_from_histograms(h1: &[u64], h2: &[u64]) -> f64 {
    assert_eq!(h1.len(), h2.len(), "histograms must share binning");
    let n1: f64 = h1.iter().map(|&v| v as f64).sum();
    let n2: f64 = h2.iter().map(|&v| v as f64).sum();
    if n1 == 0.0 || n2 == 0.0 {
        return 0.0;
    }
    let mut c1 = 0.0;
    let mut c2 = 0.0;
    let mut d: f64 = 0.0;
    for (a, b) in h1.iter().zip(h2) {
        c1 += *a as f64 / n1;
        c2 += *b as f64 / n2;
        d = d.max((c1 - c2).abs());
    }
    d
}

/// Threshold Random Walk sequential hypothesis test (Jung et al. 2004).
///
/// For each remote host, connection-attempt outcomes update a likelihood
/// ratio; crossing the upper threshold declares a scanner, the lower a
/// benign host. Operates in log space for numerical robustness.
#[derive(Clone, Debug)]
pub struct Trw {
    /// P(success | benign), θ₀ in the paper (default 0.8).
    pub theta0: f64,
    /// P(success | scanner), θ₁ (default 0.2).
    pub theta1: f64,
    log_lambda: f64,
    log_upper: f64,
    log_lower: f64,
    decided: Option<bool>,
    observations: u32,
}

/// TRW verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrwVerdict {
    /// Evidence insufficient so far.
    Pending,
    /// Declared a scanner.
    Scanner,
    /// Declared benign.
    Benign,
}

impl Trw {
    /// Detector with the classic parameters: θ₀=0.8, θ₁=0.2, target false
    /// positive α=0.01 and detection β=0.99.
    pub fn new() -> Trw {
        Trw::with_params(0.8, 0.2, 0.01, 0.99)
    }

    /// Fully parameterised TRW.
    pub fn with_params(theta0: f64, theta1: f64, alpha: f64, beta: f64) -> Trw {
        assert!(
            theta1 < theta0,
            "scanners fail more often than benign hosts"
        );
        Trw {
            theta0,
            theta1,
            log_lambda: 0.0,
            log_upper: (beta / alpha).ln(),
            log_lower: ((1.0 - beta) / (1.0 - alpha)).ln(),
            decided: None,
            observations: 0,
        }
    }

    /// Feed one connection-attempt outcome; returns the current verdict.
    pub fn observe(&mut self, success: bool) -> TrwVerdict {
        if let Some(s) = self.decided {
            return if s {
                TrwVerdict::Scanner
            } else {
                TrwVerdict::Benign
            };
        }
        self.observations += 1;
        self.log_lambda += if success {
            (self.theta1 / self.theta0).ln()
        } else {
            ((1.0 - self.theta1) / (1.0 - self.theta0)).ln()
        };
        if self.log_lambda >= self.log_upper {
            self.decided = Some(true);
            TrwVerdict::Scanner
        } else if self.log_lambda <= self.log_lower {
            self.decided = Some(false);
            TrwVerdict::Benign
        } else {
            TrwVerdict::Pending
        }
    }

    /// Current verdict without new evidence.
    pub fn verdict(&self) -> TrwVerdict {
        match self.decided {
            Some(true) => TrwVerdict::Scanner,
            Some(false) => TrwVerdict::Benign,
            None => TrwVerdict::Pending,
        }
    }

    /// Outcomes consumed.
    pub fn observations(&self) -> u32 {
        self.observations
    }
}

impl Default for Trw {
    fn default() -> Self {
        Trw::new()
    }
}

/// Multinomial Naive-Bayes over fixed-width histogram features.
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    /// log P(class).
    priors: Vec<f64>,
    /// log P(bin | class), Laplace-smoothed.
    log_likelihood: Vec<Vec<f64>>,
    n_bins: usize,
}

impl NaiveBayes {
    /// Train from `(class, histogram)` examples. Classes must be
    /// 0..n_classes; every histogram must have `n_bins` bins.
    pub fn train(n_classes: usize, n_bins: usize, examples: &[(usize, Vec<u64>)]) -> NaiveBayes {
        assert!(n_classes > 0 && n_bins > 0 && !examples.is_empty());
        let mut class_counts = vec![0u64; n_classes];
        let mut bin_counts = vec![vec![1u64; n_bins]; n_classes]; // Laplace
        for (c, h) in examples {
            assert!(*c < n_classes && h.len() == n_bins);
            class_counts[*c] += 1;
            for (b, v) in h.iter().enumerate() {
                bin_counts[*c][b] += v;
            }
        }
        let total_examples: u64 = class_counts.iter().sum();
        let priors = class_counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / total_examples as f64).ln())
            .collect();
        let log_likelihood = bin_counts
            .iter()
            .map(|bins| {
                let total: u64 = bins.iter().sum();
                bins.iter()
                    .map(|&b| (b as f64 / total as f64).ln())
                    .collect()
            })
            .collect();
        NaiveBayes {
            priors,
            log_likelihood,
            n_bins,
        }
    }

    /// Most likely class for a histogram.
    pub fn classify(&self, hist: &[u64]) -> usize {
        assert_eq!(hist.len(), self.n_bins);
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.priors.len() {
            let mut score = self.priors[c];
            for (b, &v) in hist.iter().enumerate() {
                if v > 0 {
                    score += v as f64 * self.log_likelihood[c][b];
                }
            }
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.priors.len()
    }
}

/// Exponentially weighted moving average.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// EWMA with weight `alpha` on the newest sample.
    pub fn new(alpha: f64) -> Ewma {
        assert!((0.0..=1.0).contains(&alpha));
        Ewma { alpha, value: None }
    }

    /// Fold a sample in, returning the new average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(prev) => self.alpha * sample + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current average (None before any sample).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_same_distribution_accepts() {
        let a: Vec<f64> = (0..500).map(|i| f64::from(i % 100)).collect();
        let b: Vec<f64> = (0..500).map(|i| f64::from((i * 7) % 100)).collect();
        let (d, crit) = ks_test(&a, &b, 0.05);
        assert!(d <= crit, "d={d} crit={crit}");
    }

    #[test]
    fn ks_different_distribution_rejects() {
        let a: Vec<f64> = (0..500).map(|i| f64::from(i % 100)).collect();
        let b: Vec<f64> = (0..500).map(|i| f64::from(i % 100) + 50.0).collect();
        let (d, crit) = ks_test(&a, &b, 0.05);
        assert!(d > crit, "d={d} crit={crit}");
    }

    #[test]
    fn ks_histogram_bimodal_vs_unimodal() {
        // Unimodal reference around bin 45; bimodal observation at 30/80.
        let mut reference = vec![0u64; 100];
        for slot in &mut reference[40..50] {
            *slot = 100;
        }
        let mut bimodal = vec![0u64; 100];
        bimodal[30] = 500;
        bimodal[80] = 500;
        let d_diff = ks_from_histograms(&reference, &bimodal);
        let d_same = ks_from_histograms(&reference, &reference.clone());
        assert!(d_diff > 0.4, "bimodal should diverge: {d_diff}");
        assert!(d_same < 1e-12);
    }

    #[test]
    fn trw_flags_failing_host_quickly() {
        let mut t = Trw::new();
        let mut verdict = TrwVerdict::Pending;
        let mut needed = 0;
        for i in 1..=20 {
            verdict = t.observe(false);
            if verdict != TrwVerdict::Pending {
                needed = i;
                break;
            }
        }
        assert_eq!(verdict, TrwVerdict::Scanner);
        assert!(
            needed <= 5,
            "classic TRW flags after ~4 failures, took {needed}"
        );
    }

    #[test]
    fn trw_clears_succeeding_host() {
        let mut t = Trw::new();
        let mut verdict = TrwVerdict::Pending;
        for _ in 0..20 {
            verdict = t.observe(true);
            if verdict != TrwVerdict::Pending {
                break;
            }
        }
        assert_eq!(verdict, TrwVerdict::Benign);
    }

    #[test]
    fn trw_decision_is_sticky() {
        let mut t = Trw::new();
        for _ in 0..10 {
            t.observe(false);
        }
        assert_eq!(t.verdict(), TrwVerdict::Scanner);
        // Later successes cannot un-flag.
        for _ in 0..100 {
            assert_eq!(t.observe(true), TrwVerdict::Scanner);
        }
    }

    #[test]
    fn trw_mixed_outcomes_need_more_evidence() {
        let mut t = Trw::new();
        let mut n = 0;
        // Alternate failure/success: drifts slowly toward scanner
        // (failure moves +ln4, success −ln4 exactly cancels; use 2:1).
        loop {
            n += 1;
            let success = n % 3 == 0;
            if t.observe(success) != TrwVerdict::Pending {
                break;
            }
            assert!(n < 200, "must decide eventually");
        }
        assert!(t.observations() > 5, "mixed evidence should take longer");
    }

    #[test]
    fn naive_bayes_separates_clear_classes() {
        // Class 0 concentrates mass in bins 0–4; class 1 in bins 5–9.
        let mut examples = Vec::new();
        for i in 0..20u64 {
            let mut h0 = vec![0u64; 10];
            h0[(i % 5) as usize] = 50;
            examples.push((0usize, h0));
            let mut h1 = vec![0u64; 10];
            h1[5 + (i % 5) as usize] = 50;
            examples.push((1usize, h1));
        }
        let nb = NaiveBayes::train(2, 10, &examples);
        let mut probe0 = vec![0u64; 10];
        probe0[2] = 30;
        assert_eq!(nb.classify(&probe0), 0);
        let mut probe1 = vec![0u64; 10];
        probe1[7] = 30;
        assert_eq!(nb.classify(&probe1), 1);
        assert_eq!(nb.n_classes(), 2);
    }

    #[test]
    fn ewma_converges_and_tracks() {
        let mut e = Ewma::new(0.75);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        for _ in 0..20 {
            e.update(20.0);
        }
        assert!((e.value().unwrap() - 20.0).abs() < 0.01);
    }
}
