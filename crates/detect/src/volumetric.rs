//! Volumetric analysis harness (paper §5.3.1, Fig. 10).
//!
//! SmartWatch's pitch for volumetric tasks is *lossless flow logging*: the
//! FlowCache + host aggregation reconstructs exact per-flow counts, so
//! heavy-hitter / heavy-change / flow-size-distribution queries have zero
//! error by construction, while sketches degrade as intervals grow. This
//! module provides the shared evaluation machinery: ground-truth
//! computation, estimator adapters, and the mean-relative-error metric
//! the paper plots.

use smartwatch_net::{FlowKey, Packet};
use smartwatch_sketch::FlowCounter;
use std::collections::HashMap;

/// Exact per-flow packet counts of an interval (the ground truth).
pub fn ground_truth(packets: &[Packet]) -> HashMap<FlowKey, u64> {
    let mut m = HashMap::new();
    for p in packets {
        *m.entry(p.key.canonical().0).or_insert(0) += 1;
    }
    m
}

/// Mean relative error of `estimate` against `truth` over the flows in
/// `flows` (the paper computes MRE over the true heavy hitters).
pub fn mean_relative_error(
    truth: &HashMap<FlowKey, u64>,
    flows: &[FlowKey],
    estimate: impl Fn(&FlowKey) -> u64,
) -> f64 {
    if flows.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for f in flows {
        let t = truth.get(f).copied().unwrap_or(0).max(1) as f64;
        let e = estimate(f) as f64;
        total += (e - t).abs() / t;
    }
    total / flows.len() as f64
}

/// True heavy hitters: flows with at least `threshold` packets.
pub fn true_heavy_hitters(truth: &HashMap<FlowKey, u64>, threshold: u64) -> Vec<FlowKey> {
    let mut v: Vec<FlowKey> = truth
        .iter()
        .filter(|(_, c)| **c >= threshold)
        .map(|(k, _)| *k)
        .collect();
    v.sort();
    v
}

/// True heavy changers between two intervals.
pub fn true_heavy_changes(
    a: &HashMap<FlowKey, u64>,
    b: &HashMap<FlowKey, u64>,
    threshold: u64,
) -> Vec<FlowKey> {
    let mut keys: Vec<FlowKey> = a.keys().chain(b.keys()).copied().collect();
    keys.sort();
    keys.dedup();
    keys.retain(|k| {
        a.get(k)
            .copied()
            .unwrap_or(0)
            .abs_diff(b.get(k).copied().unwrap_or(0))
            >= threshold
    });
    keys
}

/// Flow-size-distribution mean relative error across decade buckets:
/// compare per-bucket flow counts.
pub fn fsd_mre(
    truth: &HashMap<FlowKey, u64>,
    estimate: impl Fn(&FlowKey) -> u64,
    decades: usize,
) -> Vec<f64> {
    let mut true_hist = vec![0u64; decades];
    let mut est_hist = vec![0u64; decades];
    for (k, &c) in truth {
        let td = decade(c, decades);
        true_hist[td] += 1;
        let e = estimate(k);
        if e > 0 {
            est_hist[decade(e, decades)] += 1;
        }
    }
    true_hist
        .iter()
        .zip(&est_hist)
        .map(|(&t, &e)| {
            if t == 0 {
                if e == 0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (e as f64 - t as f64).abs() / t as f64
            }
        })
        .collect()
}

fn decade(count: u64, decades: usize) -> usize {
    ((count.max(1) as f64).log10().floor() as usize).min(decades - 1)
}

/// Run one sketch over an interval's packets and report (HH MRE, #missed
/// heavy hitters): the Fig. 10a primitive.
pub fn evaluate_heavy_hitters<C: FlowCounter>(
    sketch: &mut C,
    packets: &[Packet],
    hh_fraction: f64,
) -> (f64, usize) {
    let truth = ground_truth(packets);
    for p in packets {
        sketch.update(&p.key, 1);
    }
    let threshold = ((packets.len() as f64) * hh_fraction).max(1.0) as u64;
    let hh = true_heavy_hitters(&truth, threshold);
    let mre = mean_relative_error(&truth, &hh, |k| sketch.estimate(k));
    let missed = hh.iter().filter(|k| sketch.estimate(k) < threshold).count();
    (mre, missed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{PacketBuilder, Ts};
    use smartwatch_sketch::{CountMin, ElasticSketch};
    use std::net::Ipv4Addr;

    fn packets(flows: &[(u32, u64)]) -> Vec<Packet> {
        let mut v = Vec::new();
        let mut t = 0u64;
        for (id, count) in flows {
            let key = FlowKey::tcp(
                Ipv4Addr::from(0x0A000000 + id),
                1,
                Ipv4Addr::from(0xAC100001u32),
                80,
            );
            for _ in 0..*count {
                t += 1;
                v.push(PacketBuilder::new(key, Ts::from_micros(t)).build());
            }
        }
        v
    }

    #[test]
    fn ground_truth_counts() {
        let pkts = packets(&[(1, 5), (2, 3)]);
        let t = ground_truth(&pkts);
        assert_eq!(t.len(), 2);
        assert_eq!(t.values().sum::<u64>(), 8);
    }

    #[test]
    fn exact_estimator_has_zero_mre() {
        let pkts = packets(&[(1, 100), (2, 50), (3, 5)]);
        let truth = ground_truth(&pkts);
        let hh = true_heavy_hitters(&truth, 50);
        assert_eq!(hh.len(), 2);
        let mre = mean_relative_error(&truth, &hh, |k| truth[k]);
        assert_eq!(mre, 0.0);
    }

    #[test]
    fn tight_sketch_has_positive_mre() {
        let pkts = packets(&(0..300u32).map(|i| (i, 20u64)).collect::<Vec<_>>());
        let mut cm = CountMin::new(2, 32, 1); // absurdly tight
        let (mre, _) = evaluate_heavy_hitters(&mut cm, &pkts, 0.001);
        assert!(mre > 0.0, "tight CountMin must overcount");
    }

    #[test]
    fn elastic_beats_tight_countmin_on_heavy_hitters() {
        let mut flows: Vec<(u32, u64)> = (0..200u32).map(|i| (i, 3u64)).collect();
        flows.push((999, 2_000));
        let pkts = packets(&flows);
        let mut cm = CountMin::new(2, 64, 1);
        let mut es = ElasticSketch::new(256, 1024, 1);
        let (cm_mre, _) = evaluate_heavy_hitters(&mut cm, &pkts, 0.01);
        let (es_mre, _) = evaluate_heavy_hitters(&mut es, &pkts, 0.01);
        assert!(es_mre <= cm_mre, "elastic {es_mre} vs countmin {cm_mre}");
    }

    #[test]
    fn heavy_changes_ground_truth() {
        let a = ground_truth(&packets(&[(1, 100), (2, 10)]));
        let b = ground_truth(&packets(&[(1, 100), (2, 500), (3, 60)]));
        let hc = true_heavy_changes(&a, &b, 50);
        assert_eq!(hc.len(), 2); // flow 2 (+490) and flow 3 (+60)
    }

    #[test]
    fn fsd_zero_error_for_exact() {
        let pkts = packets(&[(1, 5), (2, 50), (3, 500), (4, 7)]);
        let truth = ground_truth(&pkts);
        let errs = fsd_mre(&truth, |k| truth[k], 6);
        assert!(errs.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn fsd_detects_small_flow_distortion() {
        let pkts = packets(&(0..100u32).map(|i| (i, 2u64)).collect::<Vec<_>>());
        let truth = ground_truth(&pkts);
        // An estimator that inflates everything to 100 puts all flows in
        // the wrong decade.
        let errs = fsd_mre(&truth, |_| 100, 6);
        assert!(errs[0] > 0.9, "decade-0 error {}", errs[0]);
    }
}

/// Cardinality estimation over a flow stream (Table 2's "Cardinality"
/// row): a HyperLogLog fed with canonical flow identities, compared
/// against the flow log's exact count.
pub fn estimate_cardinality<'a, I: IntoIterator<Item = &'a FlowKey>>(
    flows: I,
    precision: u32,
) -> smartwatch_sketch::HyperLogLog {
    let hasher = smartwatch_net::FlowHasher::new(0xCA2D);
    let mut hll = smartwatch_sketch::HyperLogLog::new(precision, 0xCA2D);
    for k in flows {
        hll.insert(hasher.hash_symmetric(k).0);
    }
    hll
}

#[cfg(test)]
mod cardinality_tests {
    use super::*;
    use smartwatch_net::{PacketBuilder, Ts};
    use std::net::Ipv4Addr;

    #[test]
    fn hll_matches_exact_cardinality_within_error() {
        let mut pkts = Vec::new();
        for i in 0..5_000u32 {
            let key = FlowKey::tcp(
                Ipv4Addr::from(0x0A00_0000 + i),
                1,
                Ipv4Addr::from(0xAC10_0001u32),
                80,
            );
            // Several packets per flow: cardinality counts flows, not pkts.
            for t in 0..3 {
                pkts.push(PacketBuilder::new(key, Ts::from_micros(u64::from(i) * 10 + t)).build());
            }
        }
        let truth = ground_truth(&pkts);
        let hll = estimate_cardinality(truth.keys(), 12);
        let est = hll.estimate();
        let err = (est - truth.len() as f64).abs() / truth.len() as f64;
        assert!(err < 0.05, "cardinality err {err}");
    }

    #[test]
    fn direction_does_not_double_count() {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            5,
            Ipv4Addr::new(172, 16, 0, 1),
            80,
        );
        let flows = [key, key.reversed()];
        let hll = estimate_cardinality(flows.iter(), 10);
        assert!(hll.estimate() < 1.5, "both directions are one flow");
    }
}
