//! Website fingerprinting (paper §5.2.2).
//!
//! A multinomial Naive-Bayes classifier over packet-length distributions
//! (PLD) of proxied page loads, using inbound and outbound histograms as
//! features (the paper: "leverages the PLD of the incoming and outgoing
//! data of a connection"). The sNIC collects the per-load PLDs at full
//! resolution for the flows the switch's range pre-check steers over;
//! the CME runs the classifier.

use crate::stats::NaiveBayes;
use smartwatch_net::{FlowKey, Packet};
use std::collections::HashMap;

/// Bins per direction (50-byte bins over 0–1500).
pub const WFP_BINS: usize = 30;

/// Per-load PLD collector keyed by connection.
#[derive(Clone, Debug, Default)]
pub struct PldCollector {
    flows: HashMap<FlowKey, Vec<u64>>,
    proxy_port: u16,
}

impl PldCollector {
    /// Collector for loads tunnelled via `proxy_port` (paper: OpenSSH, 22).
    pub fn new(proxy_port: u16) -> PldCollector {
        PldCollector {
            flows: HashMap::new(),
            proxy_port,
        }
    }

    /// Fold one packet into its connection's feature vector: the first
    /// `WFP_BINS` slots are the outbound histogram, the next the inbound.
    pub fn on_packet(&mut self, p: &Packet) {
        if p.payload_len == 0 {
            return;
        }
        let inbound = p.key.src_port == self.proxy_port;
        let key = p.key.canonical().0;
        let hist = self
            .flows
            .entry(key)
            .or_insert_with(|| vec![0; WFP_BINS * 2]);
        let bin = usize::from(p.payload_len / 50).min(WFP_BINS - 1);
        hist[if inbound { WFP_BINS + bin } else { bin }] += 1;
    }

    /// Feature vector of one connection.
    pub fn features(&self, key: &FlowKey) -> Option<&Vec<u64>> {
        self.flows.get(&key.canonical().0)
    }

    /// Drain all (connection, features).
    pub fn readout(&mut self) -> Vec<(FlowKey, Vec<u64>)> {
        self.flows.drain().collect()
    }

    /// Number of tracked loads.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

/// The trained fingerprinting classifier.
#[derive(Clone, Debug)]
pub struct WfpClassifier {
    nb: NaiveBayes,
}

impl WfpClassifier {
    /// Train from `(site_id, feature_vector)` examples over a closed
    /// world of `n_sites` sites.
    pub fn train(n_sites: usize, examples: &[(usize, Vec<u64>)]) -> WfpClassifier {
        WfpClassifier {
            nb: NaiveBayes::train(n_sites, WFP_BINS * 2, examples),
        }
    }

    /// Predicted site for a load's features.
    pub fn classify(&self, features: &[u64]) -> usize {
        self.nb.classify(features)
    }

    /// Accuracy over labelled test loads.
    pub fn accuracy(&self, tests: &[(usize, Vec<u64>)]) -> f64 {
        if tests.is_empty() {
            return 0.0;
        }
        let correct = tests
            .iter()
            .filter(|(site, f)| self.classify(f) == *site)
            .count();
        correct as f64 / tests.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{AttackKind, Label};
    use smartwatch_trace::attacks::wfp::{page_loads, WfpConfig};

    /// Build labelled feature vectors from a generated workload: one
    /// feature vector per (site, connection).
    fn labelled_features(cfg: &WfpConfig) -> Vec<(usize, Vec<u64>)> {
        let trace = page_loads(cfg);
        let mut collector = PldCollector::new(cfg.proxy_port);
        let mut site_of: HashMap<FlowKey, usize> = HashMap::new();
        for p in trace.iter() {
            if let Label::Attack {
                kind: AttackKind::WebsiteFingerprint,
                instance,
            } = p.label
            {
                site_of.insert(p.key.canonical().0, instance as usize);
                collector.on_packet(p);
            }
        }
        collector
            .readout()
            .into_iter()
            .filter_map(|(k, f)| site_of.get(&k).map(|s| (*s, f)))
            .collect()
    }

    #[test]
    fn classifier_beats_chance_decisively() {
        let sites = 8;
        let train = labelled_features(&WfpConfig::new(sites, 12, 101));
        let test = labelled_features(&WfpConfig::new(sites, 4, 202));
        let clf = WfpClassifier::train(sites as usize, &train);
        let acc = clf.accuracy(&test);
        assert!(
            acc > 0.7,
            "closed-world accuracy should be high with full-resolution PLDs: {acc}"
        );
    }

    #[test]
    fn collector_separates_directions() {
        let mut c = PldCollector::new(22);
        let key = smartwatch_net::FlowKey::tcp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            40000,
            std::net::Ipv4Addr::new(203, 0, 113, 7),
            22,
        );
        let out = smartwatch_net::PacketBuilder::new(key, smartwatch_net::Ts::ZERO)
            .payload(120)
            .build();
        let inb = smartwatch_net::PacketBuilder::new(key.reversed(), smartwatch_net::Ts::ZERO)
            .payload(1200)
            .build();
        c.on_packet(&out);
        c.on_packet(&inb);
        let f = c.features(&key).unwrap();
        assert_eq!(f[120 / 50], 1, "outbound bin");
        assert_eq!(f[WFP_BINS + 1200 / 50], 1, "inbound bin");
    }

    #[test]
    fn empty_payloads_ignored() {
        let mut c = PldCollector::new(22);
        let key = smartwatch_net::FlowKey::tcp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            40000,
            std::net::Ipv4Addr::new(203, 0, 113, 7),
            22,
        );
        c.on_packet(&smartwatch_net::PacketBuilder::new(key, smartwatch_net::Ts::ZERO).build());
        assert!(c.is_empty());
    }
}
