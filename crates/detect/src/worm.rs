//! EarlyBird worm detection (Singh et al.), Table 2's worm row.
//!
//! A worm's payload is invariant while its addressing disperses: the
//! detector keys on *content prevalence* (the same payload digest seen
//! many times) joined with *address dispersion* (many distinct sources
//! and destinations for that digest). SmartWatch's flow records carry a
//! payload digest, so the sNIC can feed the sighting table directly; the
//! microburst log's lookup structure (hash of payload ‖ dstIP) is reused
//! for the signature check.

use crate::{Alert, Subject};
use smartwatch_net::{AttackKind, Packet};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Per-digest sighting state.
#[derive(Clone, Debug, Default)]
struct Sighting {
    count: u64,
    sources: HashSet<Ipv4Addr>,
    destinations: HashSet<Ipv4Addr>,
}

/// EarlyBird-style worm detector.
#[derive(Clone, Debug)]
pub struct EarlyBirdDetector {
    /// Content-prevalence threshold (sightings of one digest).
    pub prevalence: u64,
    /// Distinct sources required.
    pub src_dispersion: usize,
    /// Distinct destinations required.
    pub dst_dispersion: usize,
    sightings: HashMap<u64, Sighting>,
    alerted: HashSet<u64>,
}

impl EarlyBirdDetector {
    /// EarlyBird's canonical thresholds: prevalence 3+, dispersion 30
    /// sources / 30 destinations (scaled-down defaults here).
    pub fn new(prevalence: u64, src_dispersion: usize, dst_dispersion: usize) -> EarlyBirdDetector {
        EarlyBirdDetector {
            prevalence,
            src_dispersion,
            dst_dispersion,
            sightings: HashMap::new(),
            alerted: HashSet::new(),
        }
    }

    /// Defaults suited to the generated outbreaks.
    pub fn paper_default() -> EarlyBirdDetector {
        EarlyBirdDetector::new(50, 10, 30)
    }

    /// Feed one packet; alerts once per worm signature.
    pub fn on_packet(&mut self, p: &Packet) -> Option<Alert> {
        if p.payload_digest == 0 || p.payload_len == 0 {
            return None;
        }
        let s = self.sightings.entry(p.payload_digest).or_default();
        s.count += 1;
        s.sources.insert(p.key.src_ip);
        s.destinations.insert(p.key.dst_ip);
        if s.count >= self.prevalence
            && s.sources.len() >= self.src_dispersion
            && s.destinations.len() >= self.dst_dispersion
            && self.alerted.insert(p.payload_digest)
        {
            Some(Alert::new(
                AttackKind::Worm,
                Subject::Digest(p.payload_digest),
                p.ts,
                format!(
                    "signature seen {}x from {} sources to {} destinations",
                    s.count,
                    s.sources.len(),
                    s.destinations.len()
                ),
            ))
        } else {
            None
        }
    }

    /// Flagged signatures.
    pub fn signatures(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.alerted.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::Ts;
    use smartwatch_net::{FlowKey, PacketBuilder};

    fn probe(src: u32, dst: u32, digest: u64, ts_ms: u64) -> Packet {
        let key = FlowKey::tcp(
            Ipv4Addr::from(0xC6120000 + src),
            30000,
            Ipv4Addr::from(0xC6130000 + dst),
            445,
        );
        PacketBuilder::new(key, Ts::from_millis(ts_ms))
            .payload(376)
            .payload_digest(digest)
            .build()
    }

    #[test]
    fn spreading_signature_detected_once() {
        let mut d = EarlyBirdDetector::new(20, 5, 10);
        let mut alerts = 0;
        for i in 0..100u32 {
            if d.on_packet(&probe(i % 8, i, 0xBAD, u64::from(i))).is_some() {
                alerts += 1;
            }
        }
        assert_eq!(alerts, 1);
        assert_eq!(d.signatures(), vec![0xBAD]);
    }

    #[test]
    fn popular_content_without_dispersion_is_fine() {
        // A popular download: one server, many clients pulling the same
        // content — high prevalence, many *destinations* but one source…
        let mut d = EarlyBirdDetector::new(20, 5, 10);
        for i in 0..200u32 {
            // single source (a CDN node) to many clients
            assert!(d.on_packet(&probe(1, i, 0xCD01, u64::from(i))).is_none());
        }
    }

    #[test]
    fn chatty_pair_without_fanout_is_fine() {
        let mut d = EarlyBirdDetector::new(20, 5, 10);
        for i in 0..200u32 {
            assert!(d.on_packet(&probe(1, 2, 0xAAA, u64::from(i))).is_none());
        }
    }

    #[test]
    fn empty_digests_ignored() {
        let mut d = EarlyBirdDetector::new(1, 1, 1);
        assert!(d.on_packet(&probe(1, 2, 0, 0)).is_none());
    }

    #[test]
    fn detects_generated_outbreak() {
        use smartwatch_trace::attacks::worm::{worm_outbreak, WormConfig};
        let cfg = WormConfig {
            signature: 0x5EED,
            ..WormConfig::new(77)
        };
        let trace = worm_outbreak(&cfg);
        let mut d = EarlyBirdDetector::paper_default();
        let mut detected_at = None;
        for p in trace.iter() {
            if let Some(a) = d.on_packet(p) {
                detected_at = Some(a.ts);
                break;
            }
        }
        let t = detected_at.expect("outbreak detected");
        // Detection must come well before the outbreak ends.
        assert!(t < Ts::from_secs(8), "detected at {t}");
    }
}
