//! Host-side flow aggregation (paper §3.4).
//!
//! The sNIC exports a flow's record several times — ring-buffer evictions,
//! periodic snapshots, ageing — and "the host is responsible to correctly
//! aggregate each flow's information". The aggregator is a large host hash
//! table (the paper sizes it 2³⁰ × 1; here the capacity is configurable)
//! that merges every export into one record per flow, then flushes to the
//! flow-log store each measurement interval.

use smartwatch_net::FlowKey;
use smartwatch_snic::FlowRecord;
use smartwatch_telemetry::{Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;

/// Registry handles for the aggregator (present only after
/// [`SnapshotAggregator::attach_telemetry`]).
#[derive(Debug)]
struct AggregatorTelemetry {
    exports_in: Counter,
    flushes: Counter,
    flows: Gauge,
    flush_size: Histogram,
}

/// Merges repeated sNIC exports into per-flow totals.
#[derive(Debug, Default)]
pub struct SnapshotAggregator {
    flows: HashMap<FlowKey, FlowRecord>,
    /// Exports consumed.
    pub exports_in: u64,
    telemetry: Option<AggregatorTelemetry>,
}

impl Clone for SnapshotAggregator {
    /// Clones keep the aggregated flows and counts but detach from any
    /// registry.
    fn clone(&self) -> SnapshotAggregator {
        SnapshotAggregator {
            flows: self.flows.clone(),
            exports_in: self.exports_in,
            telemetry: None,
        }
    }
}

impl SnapshotAggregator {
    /// Empty aggregator.
    pub fn new() -> SnapshotAggregator {
        SnapshotAggregator::default()
    }

    /// Publish the aggregator's activity into `registry` as
    /// `host.aggregate.{exports_in,flushes,flows,flush_records}{agg=name}`,
    /// carrying the current export count over. `name` distinguishes
    /// co-existing aggregators (e.g. per-interval vs long-term).
    pub fn attach_telemetry(&mut self, registry: &Registry, name: &str) {
        let labels: &[(&str, &str)] = &[("agg", name)];
        let t = AggregatorTelemetry {
            exports_in: registry.counter("host.aggregate.exports_in", labels),
            flushes: registry.counter("host.aggregate.flushes", labels),
            flows: registry.gauge("host.aggregate.flows", labels),
            flush_size: registry.histogram("host.aggregate.flush_records", labels),
        };
        t.exports_in.add(self.exports_in);
        t.flows.set(self.flows.len() as f64);
        self.telemetry = Some(t);
    }

    /// Ingest one exported record.
    pub fn ingest(&mut self, rec: FlowRecord) {
        self.exports_in += 1;
        self.flows
            .entry(rec.key)
            .and_modify(|e| e.merge(&rec))
            .or_insert(rec);
        if let Some(t) = &self.telemetry {
            t.exports_in.inc();
            t.flows.set(self.flows.len() as f64);
        }
    }

    /// Ingest a batch (one ring drain or snapshot).
    pub fn ingest_batch<I: IntoIterator<Item = FlowRecord>>(&mut self, batch: I) {
        for r in batch {
            self.ingest(r);
        }
    }

    /// Distinct flows aggregated so far.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if nothing was ingested.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Aggregated record for a flow.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        self.flows.get(&key.canonical().0)
    }

    /// Iterate over aggregated flows.
    pub fn iter(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.values()
    }

    /// Total packets across all aggregated flows.
    pub fn total_packets(&self) -> u64 {
        self.flows.values().map(|r| r.packets).sum()
    }

    /// Flows with at least `threshold` packets, heaviest first (the
    /// offline heavy-hitter query of Table 2, and the top-k heavy *benign*
    /// flow selection the control loop whitelists).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<FlowRecord> {
        let mut out: Vec<FlowRecord> = self
            .flows
            .values()
            .filter(|r| r.packets >= threshold)
            .copied()
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.packets));
        out
    }

    /// The `k` heaviest flows.
    pub fn top_k(&self, k: usize) -> Vec<FlowRecord> {
        let mut out: Vec<FlowRecord> = self.flows.values().copied().collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.packets));
        out.truncate(k);
        out
    }

    /// Flush everything (the per-measurement-interval move into the
    /// flow-log datastore), leaving the aggregator empty.
    pub fn flush(&mut self) -> Vec<FlowRecord> {
        let mut out: Vec<FlowRecord> = self.flows.drain().map(|(_, r)| r).collect();
        out.sort_by_key(|r| r.key);
        if let Some(t) = &self.telemetry {
            t.flushes.inc();
            t.flush_size.record(out.len() as u64);
            t.flows.set(0.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::Ts;
    use std::net::Ipv4Addr;

    fn rec(i: u32, packets: u64, t0: u64, t1: u64) -> FlowRecord {
        let key = FlowKey::tcp(
            Ipv4Addr::from(0x0A000000 + i),
            1,
            Ipv4Addr::from(0xAC100001),
            80,
        );
        let mut r = FlowRecord::new(key.canonical().0, Ts::from_secs(t0), 64);
        r.packets = packets;
        r.bytes = packets * 64;
        r.last_ts = Ts::from_secs(t1);
        r
    }

    #[test]
    fn repeated_exports_merge() {
        let mut agg = SnapshotAggregator::new();
        agg.ingest(rec(1, 10, 0, 5));
        agg.ingest(rec(1, 7, 6, 9));
        agg.ingest(rec(2, 3, 1, 2));
        assert_eq!(agg.len(), 2);
        let r = agg.get(&rec(1, 0, 0, 0).key).unwrap();
        assert_eq!(r.packets, 17);
        assert_eq!(r.first_ts, Ts::ZERO);
        assert_eq!(r.last_ts, Ts::from_secs(9));
        assert_eq!(agg.total_packets(), 20);
    }

    #[test]
    fn order_insensitive() {
        let a = {
            let mut agg = SnapshotAggregator::new();
            agg.ingest(rec(1, 10, 0, 5));
            agg.ingest(rec(1, 7, 6, 9));
            *agg.get(&rec(1, 0, 0, 0).key).unwrap()
        };
        let b = {
            let mut agg = SnapshotAggregator::new();
            agg.ingest(rec(1, 7, 6, 9));
            agg.ingest(rec(1, 10, 0, 5));
            *agg.get(&rec(1, 0, 0, 0).key).unwrap()
        };
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.first_ts, b.first_ts);
        assert_eq!(a.last_ts, b.last_ts);
    }

    #[test]
    fn heavy_hitters_sorted_and_filtered() {
        let mut agg = SnapshotAggregator::new();
        for i in 0..10 {
            agg.ingest(rec(i, u64::from(i) * 10, 0, 1));
        }
        let hh = agg.heavy_hitters(50);
        assert_eq!(hh.len(), 5);
        assert!(hh.windows(2).all(|w| w[0].packets >= w[1].packets));
        assert_eq!(agg.top_k(3).len(), 3);
        assert_eq!(agg.top_k(3)[0].packets, 90);
    }

    #[test]
    fn flush_empties() {
        let mut agg = SnapshotAggregator::new();
        agg.ingest(rec(1, 1, 0, 0));
        agg.ingest(rec(2, 2, 0, 0));
        let flushed = agg.flush();
        assert_eq!(flushed.len(), 2);
        assert!(agg.is_empty());
        assert_eq!(agg.exports_in, 2);
    }
}
