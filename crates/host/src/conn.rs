//! Zeek-style TCP connection state tracking.
//!
//! The host's protocol analyzers (and the sNIC's connection-outcome
//! tracking for port-scan detection) need per-session state machines that
//! classify how each connection attempt ends. States and semantics follow
//! Zeek's `conn_state` vocabulary, which the paper's detectors are written
//! against.

use smartwatch_net::{Dur, FlowKey, Packet, Ts};
use std::collections::HashMap;

/// Connection states, after Zeek's `conn_state`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ConnState {
    /// SYN seen, no reply yet.
    S0,
    /// Established (SYN → SYN/ACK → ACK), still open.
    S1,
    /// Established and finished with FIN exchange.
    SF,
    /// Connection attempt rejected (SYN answered by RST).
    Rej,
    /// Established, originator aborted with RST.
    Rsto,
    /// Established, responder aborted with RST.
    Rstr,
    /// Traffic seen without a handshake (midstream pickup).
    Oth,
}

impl ConnState {
    /// True for states that represent a *failed* connection attempt —
    /// the signal the TRW port-scan detector consumes.
    pub fn is_failed_attempt(self) -> bool {
        matches!(self, ConnState::S0 | ConnState::Rej)
    }
}

/// An event emitted when a connection's classification changes in a way
/// detectors care about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnEvent {
    /// Three-way handshake completed.
    Established,
    /// SYN answered by RST from the responder.
    Rejected,
    /// Orderly termination completed.
    Finished,
    /// Reset after establishment (bool = reset by originator).
    Reset(bool),
    /// S0 connection timed out with no reply (failed attempt confirmed).
    AttemptTimeout,
}

/// Per-connection bookkeeping.
#[derive(Clone, Copy, Debug)]
pub struct ConnRecord {
    /// Canonical flow key.
    pub key: FlowKey,
    /// Current state.
    pub state: ConnState,
    /// Originator (first-SYN sender) is the canonical-forward endpoint?
    pub orig_is_forward: bool,
    /// Packets from originator / responder.
    pub orig_pkts: u64,
    /// Packets from responder.
    pub resp_pkts: u64,
    /// Payload bytes from originator.
    pub orig_bytes: u64,
    /// Payload bytes from responder.
    pub resp_bytes: u64,
    /// First packet time.
    pub start: Ts,
    /// Last packet time.
    pub last: Ts,
    /// FIN seen from the originator.
    pub fin_orig: bool,
    /// FIN seen from the responder.
    pub fin_resp: bool,
}

impl ConnRecord {
    /// Total payload bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.orig_bytes + self.resp_bytes
    }

    /// Connection duration so far.
    pub fn duration(&self) -> Dur {
        self.last - self.start
    }
}

/// The connection table: feeds packets, emits classification events.
#[derive(Clone, Debug, Default)]
pub struct ConnTable {
    conns: HashMap<FlowKey, ConnRecord>,
}

impl ConnTable {
    /// Empty table.
    pub fn new() -> ConnTable {
        ConnTable::default()
    }

    /// Active connection count.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Look up a connection.
    pub fn get(&self, key: &FlowKey) -> Option<&ConnRecord> {
        self.conns.get(&key.canonical().0)
    }

    /// Iterate over tracked connections.
    pub fn iter(&self) -> impl Iterator<Item = &ConnRecord> {
        self.conns.values()
    }

    /// Remove a connection (after its analyzer is done with it).
    pub fn remove(&mut self, key: &FlowKey) -> Option<ConnRecord> {
        self.conns.remove(&key.canonical().0)
    }

    /// Process one TCP packet; returns an event if the connection's
    /// classification changed.
    pub fn process(&mut self, pkt: &Packet) -> Option<ConnEvent> {
        if !pkt.is_tcp() {
            return None;
        }
        let (canon, dir) = pkt.key.canonical();
        let from_forward = dir == smartwatch_net::key::Direction::Forward;

        let rec = self.conns.entry(canon).or_insert_with(|| ConnRecord {
            key: canon,
            state: if pkt.flags.is_syn_only() {
                ConnState::S0
            } else {
                ConnState::Oth
            },
            orig_is_forward: from_forward,
            orig_pkts: 0,
            resp_pkts: 0,
            orig_bytes: 0,
            resp_bytes: 0,
            start: pkt.ts,
            last: pkt.ts,
            fin_orig: false,
            fin_resp: false,
        });

        let from_orig = from_forward == rec.orig_is_forward;
        if from_orig {
            rec.orig_pkts += 1;
            rec.orig_bytes += u64::from(pkt.payload_len);
        } else {
            rec.resp_pkts += 1;
            rec.resp_bytes += u64::from(pkt.payload_len);
        }
        rec.last = pkt.ts;

        // State transitions.
        let old = rec.state;
        let mut event = None;
        match old {
            ConnState::S0 => {
                if !from_orig && pkt.flags.is_syn_ack() {
                    rec.state = ConnState::S1;
                    event = Some(ConnEvent::Established);
                } else if !from_orig && pkt.flags.rst() {
                    rec.state = ConnState::Rej;
                    event = Some(ConnEvent::Rejected);
                }
            }
            ConnState::S1 => {
                if pkt.flags.rst() {
                    rec.state = if from_orig {
                        ConnState::Rsto
                    } else {
                        ConnState::Rstr
                    };
                    event = Some(ConnEvent::Reset(from_orig));
                } else if pkt.flags.fin() {
                    if from_orig {
                        rec.fin_orig = true;
                    } else {
                        rec.fin_resp = true;
                    }
                    if rec.fin_orig && rec.fin_resp {
                        rec.state = ConnState::SF;
                        event = Some(ConnEvent::Finished);
                    }
                }
            }
            _ => {}
        }
        event
    }

    /// Time out S0 connections idle longer than `timeout` at `now`:
    /// no-response connection attempts (the third port-scan outcome).
    /// Returns the timed-out records and removes them.
    pub fn sweep_attempt_timeouts(&mut self, now: Ts, timeout: Dur) -> Vec<ConnRecord> {
        let expired: Vec<FlowKey> = self
            .conns
            .values()
            .filter(|r| r.state == ConnState::S0 && now.since(r.last) >= timeout)
            .map(|r| r.key)
            .collect();
        expired
            .iter()
            .filter_map(|k| self.conns.remove(k))
            .collect()
    }

    /// Sweep connections (any state) that carried **no payload** in either
    /// direction and have been idle at least `timeout` — the "TCP
    /// incomplete flows" population: opened (or half-opened) but never
    /// used. Returns and removes them.
    pub fn sweep_dataless(&mut self, now: Ts, timeout: Dur) -> Vec<ConnRecord> {
        let expired: Vec<FlowKey> = self
            .conns
            .values()
            .filter(|r| r.total_bytes() == 0 && now.since(r.last) >= timeout)
            .map(|r| r.key)
            .collect();
        expired
            .iter()
            .filter_map(|k| self.conns.remove(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{PacketBuilder, TcpFlags};
    use std::net::Ipv4Addr;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    fn p(k: FlowKey, ts_us: u64, flags: TcpFlags, payload: u16) -> Packet {
        PacketBuilder::new(k, Ts::from_micros(ts_us))
            .flags(flags)
            .payload(payload)
            .build()
    }

    #[test]
    fn handshake_reaches_s1() {
        let mut t = ConnTable::new();
        assert_eq!(t.process(&p(key(), 1, TcpFlags::SYN, 0)), None);
        assert_eq!(t.get(&key()).unwrap().state, ConnState::S0);
        let ev = t.process(&p(key().reversed(), 2, TcpFlags::SYN_ACK, 0));
        assert_eq!(ev, Some(ConnEvent::Established));
        t.process(&p(key(), 3, TcpFlags::ACK, 0));
        assert_eq!(t.get(&key()).unwrap().state, ConnState::S1);
    }

    #[test]
    fn refusal_reaches_rej() {
        let mut t = ConnTable::new();
        t.process(&p(key(), 1, TcpFlags::SYN, 0));
        let ev = t.process(&p(key().reversed(), 2, TcpFlags::RST_ACK, 0));
        assert_eq!(ev, Some(ConnEvent::Rejected));
        assert!(t.get(&key()).unwrap().state.is_failed_attempt());
    }

    #[test]
    fn fin_exchange_reaches_sf() {
        let mut t = ConnTable::new();
        t.process(&p(key(), 1, TcpFlags::SYN, 0));
        t.process(&p(key().reversed(), 2, TcpFlags::SYN_ACK, 0));
        t.process(&p(key(), 3, TcpFlags::ACK, 0));
        t.process(&p(key(), 4, TcpFlags::FIN_ACK, 0));
        let ev = t.process(&p(key().reversed(), 5, TcpFlags::FIN_ACK, 0));
        assert_eq!(ev, Some(ConnEvent::Finished));
        assert_eq!(t.get(&key()).unwrap().state, ConnState::SF);
    }

    #[test]
    fn reset_after_establish_classified_by_side() {
        let mut t = ConnTable::new();
        t.process(&p(key(), 1, TcpFlags::SYN, 0));
        t.process(&p(key().reversed(), 2, TcpFlags::SYN_ACK, 0));
        let ev = t.process(&p(key().reversed(), 3, TcpFlags::RST, 0));
        assert_eq!(ev, Some(ConnEvent::Reset(false)));
        assert_eq!(t.get(&key()).unwrap().state, ConnState::Rstr);
    }

    #[test]
    fn byte_and_packet_accounting_by_direction() {
        let mut t = ConnTable::new();
        t.process(&p(key(), 1, TcpFlags::SYN, 0));
        t.process(&p(key().reversed(), 2, TcpFlags::SYN_ACK, 0));
        t.process(&p(key(), 3, TcpFlags::ACK, 0));
        t.process(&p(key(), 4, TcpFlags::PSH | TcpFlags::ACK, 100));
        t.process(&p(key().reversed(), 5, TcpFlags::PSH | TcpFlags::ACK, 500));
        let r = t.get(&key()).unwrap();
        assert_eq!(r.orig_pkts, 3);
        assert_eq!(r.resp_pkts, 2);
        assert_eq!(r.orig_bytes, 100);
        assert_eq!(r.resp_bytes, 500);
    }

    #[test]
    fn midstream_traffic_is_oth() {
        let mut t = ConnTable::new();
        t.process(&p(key(), 1, TcpFlags::PSH | TcpFlags::ACK, 50));
        assert_eq!(t.get(&key()).unwrap().state, ConnState::Oth);
    }

    #[test]
    fn s0_timeout_sweep() {
        let mut t = ConnTable::new();
        t.process(&p(key(), 1, TcpFlags::SYN, 0));
        // Another, younger attempt.
        let k2 = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 9),
            1,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        t.process(&p(k2, 3_000_000, TcpFlags::SYN, 0));
        let timed_out = t.sweep_attempt_timeouts(Ts::from_secs(4), Dur::from_secs(2));
        assert_eq!(timed_out.len(), 1);
        assert_eq!(timed_out[0].key, key().canonical().0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn responder_syn_ack_does_not_create_backwards_conn() {
        // If the first packet we see is the SYN from a scanner, the
        // originator must be the scanner regardless of canonical order.
        let back = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 200),
            55,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let mut t = ConnTable::new();
        t.process(&p(back, 1, TcpFlags::SYN, 0));
        t.process(&p(back.reversed(), 2, TcpFlags::SYN_ACK, 0));
        let r = t.get(&back).unwrap();
        assert_eq!(r.state, ConnState::S1);
        assert_eq!(r.orig_pkts, 1);
        assert_eq!(r.resp_pkts, 1);
    }
}
