//! Host-path cost model: PCIe transactions, copies, and NF processing.
//!
//! The paper's headline latency claim — SmartWatch reduces packet
//! processing latency by 72.32% versus host-based processing — comes from
//! avoiding the PCIe transfer + copy + host-NF path for the vast majority
//! of packets. This module prices that path so deployment-mode
//! comparisons (Fig. 3, Fig. 8a, Table 2's "Host Processed" column) have
//! a consistent cost basis.
//!
//! Constants follow the measurements in the PCIe-performance literature
//! the paper cites (Neugebauer et al.): ~900 ns one-way PCIe latency for
//! small packets, plus DPDK RX/TX and NF compute.

use smartwatch_net::Dur;

/// Cost parameters of the host processing path.
#[derive(Clone, Copy, Debug)]
pub struct HostCostModel {
    /// One-way PCIe transaction latency for a small packet.
    pub pcie_oneway: Dur,
    /// Per-byte DMA/copy cost.
    pub copy_ns_per_byte: f64,
    /// DPDK poll-mode RX + TX overhead.
    pub dpdk_rxtx: Dur,
    /// Mean NF compute per packet (Zeek-style analysis).
    pub nf_compute: Dur,
    /// Per-core host packet processing capacity, packets/sec (bounds the
    /// #CPU-cores-required curves of Fig. 3a).
    pub core_capacity_pps: f64,
}

impl Default for HostCostModel {
    fn default() -> HostCostModel {
        HostCostModel {
            pcie_oneway: Dur::from_nanos(900),
            copy_ns_per_byte: 0.18,
            dpdk_rxtx: Dur::from_nanos(650),
            nf_compute: Dur::from_micros(8),
            core_capacity_pps: 10.0e6,
        }
    }
}

impl HostCostModel {
    /// Latency added to a packet that traverses the host NF path
    /// (sNIC → PCIe → host NF → PCIe → wire).
    pub fn host_path_latency(&self, wire_len: u16) -> Dur {
        let copies = (f64::from(wire_len) * self.copy_ns_per_byte * 2.0) as u64;
        Dur::from_nanos(
            2 * self.pcie_oneway.as_nanos()
                + self.dpdk_rxtx.as_nanos()
                + self.nf_compute.as_nanos()
                + copies,
        )
    }

    /// CPU cores needed to process `pps` packets/sec on the host.
    pub fn cores_required(&self, pps: f64) -> u32 {
        (pps / self.core_capacity_pps).ceil() as u32
    }

    /// CPU time the host snapshot thread spends consuming `records`
    /// exported flow records (Fig. 7b's metric), at ~120 ns per record
    /// (hash + merge + cache-missy write).
    pub fn snapshot_cpu(&self, records: u64) -> Dur {
        Dur::from_nanos(records * 120)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_path_dwarfs_snic_path() {
        let m = HostCostModel::default();
        let host = m.host_path_latency(64);
        // The sNIC path is ~2 µs (see snic::hw); host path should be
        // several times that, consistent with the paper's 72.32% saving.
        assert!(host > Dur::from_micros(9), "host path {host}");
        assert!(host < Dur::from_micros(50));
    }

    #[test]
    fn bigger_packets_cost_more() {
        let m = HostCostModel::default();
        assert!(m.host_path_latency(1500) > m.host_path_latency(64));
    }

    #[test]
    fn core_scaling_is_ceil() {
        let m = HostCostModel::default();
        assert_eq!(m.cores_required(1.0e6), 1);
        assert_eq!(m.cores_required(10.0e6), 1);
        assert_eq!(m.cores_required(10.1e6), 2);
        assert_eq!(m.cores_required(95.0e6), 10);
    }

    #[test]
    fn snapshot_cpu_scales_linearly() {
        let m = HostCostModel::default();
        let a = m.snapshot_cpu(1_000);
        let b = m.snapshot_cpu(2_000);
        assert_eq!(b.as_nanos(), 2 * a.as_nanos());
    }
}
