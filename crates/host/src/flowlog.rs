//! Flow-log datastore (paper §3.4): the Redis stand-in.
//!
//! Per measurement interval, the host cache flushes aggregated flow
//! records into a keyed store for offline analysis ("comprehensive
//! inspection of all flows offline"). The store is interval-indexed; the
//! offline detectors (heavy hitter, heavy change, cardinality, flow size
//! distribution, Slowloris) all read from here.

use smartwatch_net::FlowKey;
use smartwatch_snic::FlowRecord;
use smartwatch_telemetry::{Counter, Gauge, Registry};
use std::collections::BTreeMap;

/// Registry handles for the store (present only after
/// [`FlowLogStore::attach_telemetry`]).
#[derive(Debug)]
struct FlowLogTelemetry {
    flushes: Counter,
    records_in: Counter,
    records: Gauge,
    intervals: Gauge,
}

/// Interval-keyed flow-log store.
#[derive(Debug, Default)]
pub struct FlowLogStore {
    intervals: BTreeMap<u64, Vec<FlowRecord>>,
    telemetry: Option<FlowLogTelemetry>,
}

impl Clone for FlowLogStore {
    /// Clones keep the stored records but detach from any registry.
    fn clone(&self) -> FlowLogStore {
        FlowLogStore {
            intervals: self.intervals.clone(),
            telemetry: None,
        }
    }
}

impl FlowLogStore {
    /// Empty store.
    pub fn new() -> FlowLogStore {
        FlowLogStore::default()
    }

    /// Publish the store's growth into `registry` as
    /// `host.flowlog.{flushes,records_in,records,intervals}`, seeding
    /// with current contents.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let t = FlowLogTelemetry {
            flushes: registry.counter("host.flowlog.flushes", &[]),
            records_in: registry.counter("host.flowlog.records_in", &[]),
            records: registry.gauge("host.flowlog.records", &[]),
            intervals: registry.gauge("host.flowlog.intervals", &[]),
        };
        t.records_in.add(self.len() as u64);
        t.records.set(self.len() as f64);
        t.intervals.set(self.intervals.len() as f64);
        self.telemetry = Some(t);
    }

    /// Append a flushed batch under measurement-interval `interval`.
    /// Repeated flushes into the same interval accumulate.
    pub fn store(&mut self, interval: u64, records: Vec<FlowRecord>) {
        let n = records.len() as u64;
        self.intervals.entry(interval).or_default().extend(records);
        if let Some(t) = &self.telemetry {
            t.flushes.inc();
            t.records_in.add(n);
            t.records.set(self.len() as f64);
            t.intervals.set(self.intervals.len() as f64);
        }
    }

    /// Number of intervals recorded.
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Records of one interval.
    pub fn interval(&self, interval: u64) -> &[FlowRecord] {
        self.intervals
            .get(&interval)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate `(interval, records)` in interval order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[FlowRecord])> {
        self.intervals.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Total records stored.
    pub fn len(&self) -> usize {
        self.intervals.values().map(Vec::len).sum()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-flow packet totals within one interval (merging any duplicate
    /// records from multiple flushes).
    pub fn flow_counts(&self, interval: u64) -> std::collections::HashMap<FlowKey, u64> {
        let mut out = std::collections::HashMap::new();
        for r in self.interval(interval) {
            *out.entry(r.key).or_insert(0) += r.packets;
        }
        out
    }

    /// Exact heavy hitters of one interval: flows with ≥ `threshold`
    /// packets, heaviest first.
    pub fn heavy_hitters(&self, interval: u64, threshold: u64) -> Vec<(FlowKey, u64)> {
        let mut v: Vec<(FlowKey, u64)> = self
            .flow_counts(interval)
            .into_iter()
            .filter(|(_, c)| *c >= threshold)
            .collect();
        v.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        v
    }

    /// Exact heavy changes between two intervals: flows whose packet count
    /// changed by at least `threshold`.
    pub fn heavy_changes(&self, a: u64, b: u64, threshold: u64) -> Vec<(FlowKey, u64)> {
        let ca = self.flow_counts(a);
        let cb = self.flow_counts(b);
        let mut keys: Vec<FlowKey> = ca.keys().chain(cb.keys()).copied().collect();
        keys.sort();
        keys.dedup();
        let mut out: Vec<(FlowKey, u64)> = keys
            .into_iter()
            .filter_map(|k| {
                let d = ca
                    .get(&k)
                    .copied()
                    .unwrap_or(0)
                    .abs_diff(cb.get(&k).copied().unwrap_or(0));
                (d >= threshold).then_some((k, d))
            })
            .collect();
        out.sort_by_key(|(_, d)| std::cmp::Reverse(*d));
        out
    }

    /// Exact flow-size distribution of one interval: counts of flows per
    /// decade bucket [10^i, 10^(i+1)).
    pub fn flow_size_distribution(&self, interval: u64, decades: usize) -> Vec<u64> {
        let mut hist = vec![0u64; decades];
        for (_, c) in self.flow_counts(interval) {
            let d = (c.max(1) as f64).log10().floor() as usize;
            hist[d.min(decades - 1)] += 1;
        }
        hist
    }

    /// Exact distinct-flow cardinality of one interval.
    pub fn cardinality(&self, interval: u64) -> usize {
        self.flow_counts(interval).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::Ts;
    use std::net::Ipv4Addr;

    fn rec(i: u32, packets: u64) -> FlowRecord {
        let key = FlowKey::tcp(
            Ipv4Addr::from(0x0A000000 + i),
            1,
            Ipv4Addr::from(0xAC100001),
            80,
        );
        let mut r = FlowRecord::new(key.canonical().0, Ts::ZERO, 64);
        r.packets = packets;
        r
    }

    #[test]
    fn store_and_query_intervals() {
        let mut s = FlowLogStore::new();
        s.store(0, vec![rec(1, 5), rec(2, 50)]);
        s.store(0, vec![rec(1, 5)]); // second flush, same interval
        s.store(1, vec![rec(2, 10)]);
        assert_eq!(s.n_intervals(), 2);
        assert_eq!(s.len(), 4);
        let counts = s.flow_counts(0);
        assert_eq!(counts[&rec(1, 0).key], 10);
        assert_eq!(counts[&rec(2, 0).key], 50);
    }

    #[test]
    fn heavy_hitters_exact() {
        let mut s = FlowLogStore::new();
        s.store(0, (0..20).map(|i| rec(i, u64::from(i))).collect());
        let hh = s.heavy_hitters(0, 15);
        assert_eq!(hh.len(), 5);
        assert_eq!(hh[0].1, 19);
    }

    #[test]
    fn heavy_changes_between_intervals() {
        let mut s = FlowLogStore::new();
        s.store(0, vec![rec(1, 100), rec(2, 10)]);
        s.store(1, vec![rec(1, 105), rec(2, 500), rec(3, 40)]);
        let hc = s.heavy_changes(0, 1, 50);
        // Flow 2 changed by 490, flow 3 appeared with 40 (below), flow 1 by 5.
        assert_eq!(hc.len(), 1);
        assert_eq!(hc[0].1, 490);
    }

    #[test]
    fn fsd_and_cardinality() {
        let mut s = FlowLogStore::new();
        s.store(0, vec![rec(1, 1), rec(2, 5), rec(3, 50), rec(4, 5_000)]);
        let fsd = s.flow_size_distribution(0, 6);
        assert_eq!(fsd[0], 2); // 1 and 5
        assert_eq!(fsd[1], 1); // 50
        assert_eq!(fsd[3], 1); // 5000
        assert_eq!(s.cardinality(0), 4);
        assert_eq!(s.cardinality(9), 0);
    }
}

/// Persistence: the Redis stand-in's dump/restore cycle for offline
/// forensics ("comprehensive inspection of all flows offline", §1).
impl FlowLogStore {
    /// Serialise the whole store as JSON.
    pub fn to_json(&self) -> String {
        let dump: Vec<(u64, &Vec<FlowRecord>)> =
            self.intervals.iter().map(|(k, v)| (*k, v)).collect();
        serde_json::to_string(&dump).expect("flow records serialise")
    }

    /// Restore a store from [`FlowLogStore::to_json`] output.
    pub fn from_json(json: &str) -> Result<FlowLogStore, serde_json::Error> {
        let dump: Vec<(u64, Vec<FlowRecord>)> = serde_json::from_str(json)?;
        Ok(FlowLogStore {
            intervals: dump.into_iter().collect(),
            telemetry: None,
        })
    }

    /// Write the store to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a store from a file written by [`FlowLogStore::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<FlowLogStore> {
        let json = std::fs::read_to_string(path)?;
        FlowLogStore::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use smartwatch_net::{FlowKey, Ts};
    use std::net::Ipv4Addr;

    fn store() -> FlowLogStore {
        let mut s = FlowLogStore::new();
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            5,
            Ipv4Addr::new(172, 16, 0, 1),
            80,
        )
        .canonical()
        .0;
        let mut r = FlowRecord::new(key, Ts::from_secs(3), 64);
        r.packets = 41;
        r.state_a = 7;
        s.store(0, vec![r]);
        s.store(2, vec![r, r]);
        s
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let s = store();
        let restored = FlowLogStore::from_json(&s.to_json()).unwrap();
        assert_eq!(restored.n_intervals(), s.n_intervals());
        assert_eq!(restored.len(), s.len());
        assert_eq!(restored.interval(0), s.interval(0));
        assert_eq!(restored.interval(2), s.interval(2));
        assert_eq!(restored.flow_counts(2), s.flow_counts(2));
    }

    #[test]
    fn file_round_trip() {
        let s = store();
        let dir = std::env::temp_dir().join("smartwatch-flowlog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        s.save(&path).unwrap();
        let restored = FlowLogStore::load(&path).unwrap();
        assert_eq!(restored.len(), s.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(FlowLogStore::from_json("not json").is_err());
    }
}
