//! # smartwatch-host
//!
//! The host half of SmartWatch (paper §3.4): the big-memory backstop for
//! the sNIC and the home of the NFs too complex to offload.
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Host flow cache + aggregation of repeated sNIC exports | [`aggregate`] |
//! | Redis-backed flow logging per measurement interval | [`flowlog`] |
//! | Hashed timing wheel for RST buffering (Varghese–Lauck) | [`wheel`] |
//! | Zeek-style TCP connection state machine | [`conn`] |
//! | Zeek session heuristics + certificate/ticket registry | [`zeek`] |
//! | SR-IOV NF framework (dispatch, threaded workers) | [`nf`] |
//! | PCIe / copy / NF cost model | [`cost`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod conn;
pub mod cost;
pub mod flowlog;
pub mod nf;
pub mod wheel;
pub mod zeek;

pub use aggregate::SnapshotAggregator;
pub use conn::{ConnEvent, ConnRecord, ConnState, ConnTable};
pub use cost::HostCostModel;
pub use flowlog::FlowLogStore;
pub use nf::{HostNf, HostRuntime, NfWorker, Verdict};
pub use wheel::TimingWheel;
pub use zeek::{ArtefactRegistry, AuthHeuristic, AuthOutcome};
