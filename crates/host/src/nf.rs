//! Host network-function framework (paper §3.4).
//!
//! The host exposes distinct SR-IOV ports, one per supported function
//! (Zeek-style IDS scripts, the timing wheel, big-memory NFs); the sNIC
//! steers escalated packets to the right port. This module provides the
//! dispatch fabric: a [`HostNf`] trait, a synchronous [`HostRuntime`]
//! used by the deterministic experiments, and a threaded runtime built on
//! bounded std channels for the concurrency-facing tests.

use smartwatch_net::Packet;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// A verdict an NF can hand back to the platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Flow is benign: whitelist it on the switch, unpin on the sNIC.
    Whitelist(smartwatch_net::FlowKey),
    /// Flow (or source) is malicious: blacklist it on the switch.
    Blacklist(smartwatch_net::FlowKey),
    /// Raise an operator alert with a reason string.
    Alert(String),
    /// Drop the packet (e.g. a confirmed-forged RST never reaches the
    /// destination).
    Drop,
}

/// A host network function attached to one SR-IOV port.
pub trait HostNf: Send {
    /// Process one escalated packet, returning any verdicts.
    fn on_packet(&mut self, pkt: &Packet) -> Vec<Verdict>;

    /// Periodic housekeeping at virtual time `now` (timeout sweeps etc.).
    fn on_tick(&mut self, _now: smartwatch_net::Ts) -> Vec<Verdict> {
        Vec::new()
    }

    /// Function name (diagnostics).
    fn name(&self) -> &str;
}

/// Synchronous dispatch runtime: deterministic, used by experiments.
#[derive(Default)]
pub struct HostRuntime {
    ports: HashMap<u16, Box<dyn HostNf>>,
    /// Packets dispatched per port.
    pub dispatched: HashMap<u16, u64>,
    /// Packets that arrived for an unbound port.
    pub unrouted: u64,
}

impl HostRuntime {
    /// Empty runtime.
    pub fn new() -> HostRuntime {
        HostRuntime::default()
    }

    /// Bind an NF to an SR-IOV port id.
    pub fn bind(&mut self, port: u16, nf: Box<dyn HostNf>) {
        self.ports.insert(port, nf);
    }

    /// Dispatch one packet to a port's NF.
    pub fn dispatch(&mut self, port: u16, pkt: &Packet) -> Vec<Verdict> {
        match self.ports.get_mut(&port) {
            Some(nf) => {
                *self.dispatched.entry(port).or_default() += 1;
                nf.on_packet(pkt)
            }
            None => {
                self.unrouted += 1;
                Vec::new()
            }
        }
    }

    /// Tick every NF.
    pub fn tick(&mut self, now: smartwatch_net::Ts) -> Vec<Verdict> {
        let mut out = Vec::new();
        for nf in self.ports.values_mut() {
            out.extend(nf.on_tick(now));
        }
        out
    }

    /// Bound port ids.
    pub fn ports(&self) -> Vec<u16> {
        let mut p: Vec<u16> = self.ports.keys().copied().collect();
        p.sort_unstable();
        p
    }
}

/// A threaded NF worker: packets in via a bounded channel, verdicts out.
/// Models the DPDK poll-mode worker pinned to a host core.
pub struct NfWorker {
    tx: Option<SyncSender<Packet>>,
    verdicts: Receiver<Verdict>,
    handle: Option<JoinHandle<()>>,
}

impl NfWorker {
    /// Spawn a worker around an NF. `queue` bounds the in-flight packets
    /// (models the SR-IOV RX ring).
    pub fn spawn(mut nf: Box<dyn HostNf>, queue: usize) -> NfWorker {
        let (tx, rx) = sync_channel::<Packet>(queue);
        let (vtx, vrx) = sync_channel::<Verdict>(queue.max(64));
        let handle = std::thread::spawn(move || {
            while let Ok(pkt) = rx.recv() {
                for v in nf.on_packet(&pkt) {
                    // Verdict backpressure: block rather than drop.
                    if vtx.send(v).is_err() {
                        return;
                    }
                }
            }
        });
        NfWorker {
            tx: Some(tx),
            verdicts: vrx,
            handle: Some(handle),
        }
    }

    /// Enqueue a packet; returns false if the ring is full (packet drop).
    pub fn try_send(&self, pkt: Packet) -> bool {
        self.tx.as_ref().is_some_and(|tx| tx.try_send(pkt).is_ok())
    }

    /// Drain available verdicts without blocking.
    pub fn poll_verdicts(&self) -> Vec<Verdict> {
        self.verdicts.try_iter().collect()
    }

    /// Stop the worker and collect every remaining verdict.
    ///
    /// Closing the packet channel lets the thread exit, but the thread
    /// may be parked on a *full* verdict channel — a bare `join` would
    /// deadlock (worker waiting for us to drain, us waiting for the
    /// worker to exit). So we keep draining verdicts until the thread
    /// actually finishes, then sweep whatever is left.
    pub fn shutdown(mut self) -> Vec<Verdict> {
        self.tx.take(); // closes the channel, letting the thread exit
        let mut out = Vec::new();
        if let Some(h) = self.handle.take() {
            while !h.is_finished() {
                out.extend(self.verdicts.try_iter());
                std::thread::yield_now();
            }
            let _ = h.join();
        }
        out.extend(self.verdicts.try_iter());
        out
    }
}

impl Drop for NfWorker {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            // Same drain-while-joining dance as `shutdown`: the worker
            // may be blocked on a full verdict channel.
            while !h.is_finished() {
                self.verdicts.try_iter().for_each(drop);
                std::thread::yield_now();
            }
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{FlowKey, PacketBuilder, Ts};
    use std::net::Ipv4Addr;

    struct CountingNf {
        name: String,
        seen: u64,
        alert_every: u64,
    }

    impl HostNf for CountingNf {
        fn on_packet(&mut self, _pkt: &Packet) -> Vec<Verdict> {
            self.seen += 1;
            if self.seen.is_multiple_of(self.alert_every) {
                vec![Verdict::Alert(format!("{}:{}", self.name, self.seen))]
            } else {
                Vec::new()
            }
        }

        fn name(&self) -> &str {
            &self.name
        }
    }

    fn pkt() -> Packet {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4,
            Ipv4Addr::new(10, 0, 0, 2),
            22,
        );
        PacketBuilder::new(key, Ts::ZERO).build()
    }

    #[test]
    fn dispatch_routes_by_port() {
        let mut rt = HostRuntime::new();
        rt.bind(
            1,
            Box::new(CountingNf {
                name: "zeek".into(),
                seen: 0,
                alert_every: 2,
            }),
        );
        rt.bind(
            2,
            Box::new(CountingNf {
                name: "wheel".into(),
                seen: 0,
                alert_every: 1,
            }),
        );
        assert!(rt.dispatch(1, &pkt()).is_empty());
        let v = rt.dispatch(1, &pkt());
        assert_eq!(v, vec![Verdict::Alert("zeek:2".into())]);
        let v = rt.dispatch(2, &pkt());
        assert_eq!(v, vec![Verdict::Alert("wheel:1".into())]);
        assert_eq!(rt.dispatched[&1], 2);
        assert_eq!(rt.ports(), vec![1, 2]);
    }

    #[test]
    fn unbound_port_counts_unrouted() {
        let mut rt = HostRuntime::new();
        assert!(rt.dispatch(9, &pkt()).is_empty());
        assert_eq!(rt.unrouted, 1);
    }

    #[test]
    fn threaded_worker_processes_all() {
        let worker = NfWorker::spawn(
            Box::new(CountingNf {
                name: "w".into(),
                seen: 0,
                alert_every: 1,
            }),
            1024,
        );
        for _ in 0..500 {
            assert!(worker.try_send(pkt()));
        }
        let verdicts = worker.shutdown();
        assert_eq!(verdicts.len(), 500);
    }

    // An NF that overflows the bounded verdict channel (capacity 64 here)
    // on its *first* packet, parking the worker thread in `vtx.send`.
    struct Chatty;
    impl HostNf for Chatty {
        fn on_packet(&mut self, _pkt: &Packet) -> Vec<Verdict> {
            (0..100).map(|i| Verdict::Alert(format!("v{i}"))).collect()
        }
        fn name(&self) -> &str {
            "chatty"
        }
    }

    #[test]
    fn shutdown_survives_full_verdict_channel() {
        // Regression: with the worker parked on a full verdict channel,
        // shutdown used to bare-join the thread and deadlock (the worker
        // waiting for a drain, shutdown waiting for the worker). It must
        // drain while joining and return *every* verdict.
        let worker = NfWorker::spawn(Box::new(Chatty), 2);
        for _ in 0..3 {
            while !worker.try_send(pkt()) {
                std::thread::yield_now();
            }
        }
        let verdicts = worker.shutdown();
        assert_eq!(verdicts.len(), 300, "no verdict lost");
    }

    #[test]
    fn drop_survives_full_verdict_channel() {
        let worker = NfWorker::spawn(Box::new(Chatty), 2);
        for _ in 0..3 {
            while !worker.try_send(pkt()) {
                std::thread::yield_now();
            }
        }
        drop(worker); // must not deadlock
    }

    #[test]
    fn full_ring_rejects() {
        // An NF that never finishes its first packet: ring fills up.
        struct Slow;
        impl HostNf for Slow {
            fn on_packet(&mut self, _pkt: &Packet) -> Vec<Verdict> {
                std::thread::sleep(std::time::Duration::from_millis(200));
                Vec::new()
            }
            fn name(&self) -> &str {
                "slow"
            }
        }
        let worker = NfWorker::spawn(Box::new(Slow), 2);
        let mut rejected = false;
        for _ in 0..64 {
            if !worker.try_send(pkt()) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "bounded ring should reject when full");
    }
}
