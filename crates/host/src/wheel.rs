//! Hashed timing wheel (Varghese & Lauck), paper §3.4 / §5.1.2.
//!
//! The forged-RST detector buffers suspect RST packets for T = 2 s; a
//! timing wheel gives O(1) schedule/expire. This is the classic hashed
//! wheel: `n_slots` buckets of width `tick`; an item due at time `t` lands
//! in slot `(t / tick) % n_slots` carrying its absolute deadline, and
//! `advance(now)` sweeps slots whose time has come, returning expired
//! items in deadline order.

use smartwatch_net::{Dur, Ts};
use smartwatch_telemetry::{Counter, Gauge, Registry};
use std::collections::VecDeque;

/// One scheduled entry.
#[derive(Clone, Debug)]
struct Entry<T> {
    deadline: Ts,
    item: T,
}

/// Registry handles for one wheel (present only after
/// [`TimingWheel::attach_telemetry`]).
#[derive(Debug)]
struct WheelTelemetry {
    scheduled: Counter,
    expired: Counter,
    occupancy: Gauge,
    occupancy_peak: Gauge,
}

impl WheelTelemetry {
    fn note(&self, len: usize) {
        self.occupancy.set(len as f64);
        self.occupancy_peak.set_max(len as f64);
    }
}

/// A hashed timing wheel holding items of type `T`.
#[derive(Debug)]
pub struct TimingWheel<T> {
    slots: Vec<VecDeque<Entry<T>>>,
    tick: Dur,
    /// The wheel's current position in time (everything strictly before
    /// `now` has been expired).
    now: Ts,
    len: usize,
    telemetry: Option<WheelTelemetry>,
}

impl<T: Clone> Clone for TimingWheel<T> {
    /// Clones keep the scheduled items but detach from any registry.
    fn clone(&self) -> TimingWheel<T> {
        TimingWheel {
            slots: self.slots.clone(),
            tick: self.tick,
            now: self.now,
            len: self.len,
            telemetry: None,
        }
    }
}

impl<T> TimingWheel<T> {
    /// Wheel with `n_slots` slots of `tick` width. The horizon
    /// (`n_slots × tick`) bounds how far ahead items can be scheduled.
    pub fn new(n_slots: usize, tick: Dur) -> TimingWheel<T> {
        assert!(n_slots > 1 && tick > Dur::ZERO);
        TimingWheel {
            slots: (0..n_slots).map(|_| VecDeque::new()).collect(),
            tick,
            now: Ts::ZERO,
            len: 0,
            telemetry: None,
        }
    }

    /// Publish this wheel's activity into `registry` as
    /// `host.wheel.{scheduled,expired,occupancy,occupancy_peak}{wheel=name}`.
    pub fn attach_telemetry(&mut self, registry: &Registry, name: &str) {
        let labels: &[(&str, &str)] = &[("wheel", name)];
        let t = WheelTelemetry {
            scheduled: registry.counter("host.wheel.scheduled", labels),
            expired: registry.counter("host.wheel.expired", labels),
            occupancy: registry.gauge("host.wheel.occupancy", labels),
            occupancy_peak: registry.gauge("host.wheel.occupancy_peak", labels),
        };
        t.note(self.len);
        self.telemetry = Some(t);
    }

    /// Scheduling horizon.
    pub fn horizon(&self) -> Dur {
        Dur::from_nanos(self.tick.as_nanos() * self.slots.len() as u64)
    }

    /// Items currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current wheel time.
    pub fn now(&self) -> Ts {
        self.now
    }

    fn slot_of(&self, deadline: Ts) -> usize {
        ((deadline.as_nanos() / self.tick.as_nanos()) % self.slots.len() as u64) as usize
    }

    /// Schedule `item` to expire at `deadline`.
    ///
    /// # Panics
    /// Panics if the deadline is further than one horizon ahead of the
    /// wheel's current time (a hashed wheel would mis-order it).
    pub fn schedule(&mut self, deadline: Ts, item: T) {
        assert!(
            deadline.since(self.now) < self.horizon(),
            "deadline beyond wheel horizon"
        );
        let deadline = deadline.max(self.now);
        let slot = self.slot_of(deadline);
        self.slots[slot].push_back(Entry { deadline, item });
        self.len += 1;
        if let Some(t) = &self.telemetry {
            t.scheduled.inc();
            t.note(self.len);
        }
    }

    /// Advance to `now`, returning every item whose deadline has passed,
    /// in deadline order.
    pub fn advance(&mut self, now: Ts) -> Vec<(Ts, T)> {
        if now < self.now {
            return Vec::new();
        }
        let mut expired: Vec<(Ts, T)> = Vec::new();
        let start_tick = self.now.as_nanos() / self.tick.as_nanos();
        let end_tick = now.as_nanos() / self.tick.as_nanos();
        // Sweep at most one full revolution.
        let revolutions = (end_tick - start_tick).min(self.slots.len() as u64);
        for t in start_tick..=start_tick + revolutions {
            let slot = (t % self.slots.len() as u64) as usize;
            let mut keep = VecDeque::new();
            while let Some(e) = self.slots[slot].pop_front() {
                if e.deadline <= now {
                    expired.push((e.deadline, e.item));
                    self.len -= 1;
                } else {
                    keep.push_back(e);
                }
            }
            self.slots[slot] = keep;
        }
        self.now = now;
        expired.sort_by_key(|(d, _)| *d);
        if let Some(t) = &self.telemetry {
            t.expired.add(expired.len() as u64);
            t.note(self.len);
        }
        expired
    }

    /// Scan all buffered items (the paper's slow path: checking for a
    /// previous unexpired RST of the same flow). Returns matches of
    /// `pred`. Cost is O(buffered), which is exactly why the Bloom-filter
    /// fast path exists.
    pub fn scan<F: Fn(&T) -> bool>(&self, pred: F) -> Vec<&T> {
        self.slots
            .iter()
            .flat_map(|s| s.iter())
            .filter(|e| pred(&e.item))
            .map(|e| &e.item)
            .collect()
    }

    /// Remove the first buffered item matching `pred` (e.g. discard a
    /// forged RST once the race is detected). Returns it if found.
    pub fn remove_first<F: Fn(&T) -> bool>(&mut self, pred: F) -> Option<T> {
        for slot in &mut self.slots {
            if let Some(pos) = slot.iter().position(|e| pred(&e.item)) {
                self.len -= 1;
                return slot.remove(pos).map(|e| e.item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimingWheel<u32> {
        TimingWheel::new(256, Dur::from_millis(50)) // 12.8 s horizon
    }

    #[test]
    fn expires_in_deadline_order() {
        let mut w = wheel();
        w.schedule(Ts::from_millis(300), 3);
        w.schedule(Ts::from_millis(100), 1);
        w.schedule(Ts::from_millis(200), 2);
        let out = w.advance(Ts::from_millis(400));
        let items: Vec<u32> = out.iter().map(|(_, i)| *i).collect();
        assert_eq!(items, vec![1, 2, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn partial_advance_expires_partially() {
        let mut w = wheel();
        w.schedule(Ts::from_millis(100), 1);
        w.schedule(Ts::from_secs(5), 2);
        let out = w.advance(Ts::from_secs(1));
        assert_eq!(out.len(), 1);
        assert_eq!(w.len(), 1);
        let out = w.advance(Ts::from_secs(6));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn same_slot_different_revolutions() {
        // Two items one horizon apart hash to the same slot; only the due
        // one may expire.
        let mut w: TimingWheel<u32> = TimingWheel::new(4, Dur::from_millis(10));
        w.schedule(Ts::from_millis(5), 1);
        // Advance a little, then schedule something 35 ms out (same slot
        // ring position as a long-expired tick).
        let _ = w.advance(Ts::from_millis(6));
        w.schedule(Ts::from_millis(39), 2);
        let out = w.advance(Ts::from_millis(20));
        assert!(out.is_empty(), "late item must not fire early: {out:?}");
        let out = w.advance(Ts::from_millis(40));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn scan_and_remove() {
        let mut w = wheel();
        w.schedule(Ts::from_millis(500), 10);
        w.schedule(Ts::from_millis(600), 20);
        assert_eq!(w.scan(|&x| x > 5).len(), 2);
        assert_eq!(w.remove_first(|&x| x == 10), Some(10));
        assert_eq!(w.len(), 1);
        assert_eq!(w.remove_first(|&x| x == 10), None);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn beyond_horizon_rejected() {
        let mut w = wheel();
        w.schedule(Ts::from_secs(60), 1);
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut w = wheel();
        let _ = w.advance(Ts::from_secs(1));
        w.schedule(Ts::from_millis(500), 7); // already past
        let out = w.advance(Ts::from_millis(1_001));
        assert_eq!(out.len(), 1);
    }
}
