//! Zeek-flavoured application-session heuristics (paper §5.1.1).
//!
//! SSH (and FTP) traffic is encrypted/opaque, so Zeek "heuristically
//! guesses the login attempt outcome by tracking connection state
//! transitions and the amount of data communicated". This module is that
//! heuristic: given a finished [`ConnRecord`], classify the authentication
//! outcome from the session's shape. It also resolves the TLS-certificate
//! and Kerberos-ticket artefacts that the trace generators stamp as
//! payload digests (standing in for Zeek's X.509/KRB parsers).

use crate::conn::ConnRecord;
use smartwatch_net::{Dur, Ts};
use std::collections::HashMap;

/// Authentication outcome guessed from session shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthOutcome {
    /// Short, low-volume session: the login was refused.
    Failure,
    /// Long / data-heavy session: authentication succeeded.
    Success,
    /// Too little information (e.g. handshake only).
    Unknown,
}

/// Tunable thresholds of the SSH/FTP outcome heuristic. The defaults
/// follow the Zeek `detect-bruteforcing` intuition: a failed
/// password attempt exchanges only the banner + a few auth packets.
#[derive(Clone, Copy, Debug)]
pub struct AuthHeuristic {
    /// Sessions moving at least this much server→client payload are
    /// successes (a shell/file listing follows a successful login).
    pub success_resp_bytes: u64,
    /// Sessions alive at least this long are successes.
    pub success_duration: Dur,
    /// Sessions with fewer total payload packets than this and below the
    /// success thresholds are failures.
    pub failure_max_pkts: u64,
}

impl Default for AuthHeuristic {
    fn default() -> AuthHeuristic {
        AuthHeuristic {
            success_resp_bytes: 8_000,
            success_duration: Dur::from_secs(5),
            failure_max_pkts: 20,
        }
    }
}

impl AuthHeuristic {
    /// Classify a (finished or aged-out) session.
    pub fn classify(&self, conn: &ConnRecord) -> AuthOutcome {
        if conn.resp_bytes >= self.success_resp_bytes || conn.duration() >= self.success_duration {
            return AuthOutcome::Success;
        }
        let pkts = conn.orig_pkts + conn.resp_pkts;
        if pkts == 0 || conn.total_bytes() == 0 {
            return AuthOutcome::Unknown;
        }
        if pkts <= self.failure_max_pkts {
            return AuthOutcome::Failure;
        }
        AuthOutcome::Unknown
    }
}

/// Host-side artefact registry: digest → expiry, loaded from the same
/// out-of-band source the trace generator produced (stands in for
/// certificate stores / KDC metadata that Zeek parses from payloads).
#[derive(Clone, Debug, Default)]
pub struct ArtefactRegistry {
    expiry: HashMap<u64, Ts>,
}

impl ArtefactRegistry {
    /// Build from (digest, expires_at) pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u64, Ts)>>(pairs: I) -> ArtefactRegistry {
        ArtefactRegistry {
            expiry: pairs.into_iter().collect(),
        }
    }

    /// Number of registered artefacts.
    pub fn len(&self) -> usize {
        self.expiry.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.expiry.is_empty()
    }

    /// Expiry of a digest, if registered.
    pub fn expires_at(&self, digest: u64) -> Option<Ts> {
        self.expiry.get(&digest).copied()
    }

    /// Zeek `expiring-certs` check: does the certificate behind `digest`
    /// expire within `horizon` of `now`?
    pub fn expires_within(&self, digest: u64, now: Ts, horizon: Dur) -> Option<bool> {
        self.expires_at(digest).map(|e| e <= now + horizon)
    }

    /// Kerberos long-lifetime check: was the ticket behind `digest` issued
    /// with a remaining lifetime beyond `max_lifetime` (golden-ticket
    /// indicator)?
    pub fn lifetime_exceeds(&self, digest: u64, issued: Ts, max_lifetime: Dur) -> Option<bool> {
        self.expires_at(digest)
            .map(|e| e.since(issued) > max_lifetime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::FlowKey;
    use std::net::Ipv4Addr;

    fn conn(resp_bytes: u64, pkts: u64, dur_s: u64) -> ConnRecord {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4,
            Ipv4Addr::new(10, 0, 0, 2),
            22,
        );
        ConnRecord {
            key: key.canonical().0,
            state: crate::conn::ConnState::SF,
            orig_is_forward: true,
            orig_pkts: pkts / 2,
            resp_pkts: pkts - pkts / 2,
            orig_bytes: 300,
            resp_bytes,
            start: Ts::ZERO,
            last: Ts::from_secs(dur_s),
            fin_orig: true,
            fin_resp: true,
        }
    }

    #[test]
    fn short_small_session_is_failure() {
        let h = AuthHeuristic::default();
        assert_eq!(h.classify(&conn(400, 8, 1)), AuthOutcome::Failure);
    }

    #[test]
    fn long_session_is_success() {
        let h = AuthHeuristic::default();
        assert_eq!(h.classify(&conn(500, 10, 60)), AuthOutcome::Success);
    }

    #[test]
    fn data_heavy_session_is_success() {
        let h = AuthHeuristic::default();
        assert_eq!(h.classify(&conn(50_000, 100, 2)), AuthOutcome::Success);
    }

    #[test]
    fn empty_session_is_unknown() {
        let h = AuthHeuristic::default();
        let mut c = conn(0, 2, 0);
        c.orig_bytes = 0;
        assert_eq!(h.classify(&c), AuthOutcome::Unknown);
    }

    #[test]
    fn registry_expiry_checks() {
        let reg =
            ArtefactRegistry::from_pairs([(1, Ts::from_secs(100)), (2, Ts::from_secs(10_000_000))]);
        let now = Ts::from_secs(50);
        let horizon = Dur::from_secs(1_000);
        assert_eq!(reg.expires_within(1, now, horizon), Some(true));
        assert_eq!(reg.expires_within(2, now, horizon), Some(false));
        assert_eq!(reg.expires_within(3, now, horizon), None);
    }

    #[test]
    fn registry_lifetime_checks() {
        let reg = ArtefactRegistry::from_pairs([(7, Ts::from_secs(1_000_000))]);
        assert_eq!(
            reg.lifetime_exceeds(7, Ts::ZERO, Dur::from_secs(36_000)),
            Some(true)
        );
        assert_eq!(
            reg.lifetime_exceeds(7, Ts::from_secs(999_999), Dur::from_secs(36_000)),
            Some(false)
        );
    }

    // Silence the never-read warning for fin fields constructed in tests.
    #[test]
    fn conn_record_duration() {
        assert_eq!(conn(1, 2, 5).duration(), Dur::from_secs(5));
    }
}
