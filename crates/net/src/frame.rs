//! Packed wire-frame storage: the replay-side half of the zero-copy
//! data plane.
//!
//! A [`FrameStore`] holds many Ethernet frames back-to-back in one arena
//! buffer plus a small per-frame [`FrameMeta`] sideband. It is built
//! *once* — from synthetic packets ([`FrameStore::from_packets`], used by
//! the trace compiler) or from a capture file
//! ([`FrameStore::from_pcap`]) — and replayed many times: the ingest hot
//! path borrows `&[u8]` frames out of the arena and parses headers in
//! place with [`wire::FrameView`], never materialising a
//! [`Packet`] per replayed packet.
//!
//! The sideband exists because an Ethernet frame cannot carry everything
//! the simulation model knows about a packet: exact nanosecond
//! timestamps (pcap is µs), the original wire length of truncated
//! frames, the payload digest (payloads are synthesised as zeros — the
//! paper assumes encrypted traffic) and the ground-truth label. With the
//! sideband, [`FrameStore::packet`] reproduces the originating [`Packet`]
//! *exactly*, which is what makes a compiled-trace replay
//! byte-deterministic against the synthetic run of the same seed.
//! Stores built from pcap leave the metadata-only fields defaulted,
//! exactly like [`pcap::read`] — a capture is what the monitor would
//! actually see.

use crate::label::Label;
use crate::packet::Packet;
use crate::pcap::{self, PcapError};
use crate::time::Ts;
use crate::wire::{self, FrameView};

/// Per-frame sideband record: where the frame lives in the arena plus
/// the model-level fields the wire bytes cannot carry.
#[derive(Clone, Copy, Debug)]
pub struct FrameMeta {
    offset: u32,
    len: u32,
    /// Arrival timestamp (exact nanoseconds for compiled stores, µs
    /// resolution for pcap-built stores).
    pub ts: Ts,
    /// Original on-the-wire length (may exceed the stored frame for
    /// 64-byte-truncated stress traces).
    pub wire_len: u16,
    /// Transport payload length of the *original* packet. Matches the
    /// parsed value for TCP/UDP; preserves it for protocols whose
    /// encoding drops the transport header.
    pub payload_len: u16,
    /// Payload digest of the original packet (0 for pcap-built stores).
    pub payload_digest: u64,
    /// Ground-truth label (default for pcap-built stores).
    pub label: Label,
}

impl FrameMeta {
    /// Compose the full [`Packet`] from an in-place parse of the frame
    /// this sideband record describes: header fields from the wire
    /// bytes, model-only fields from the sideband. This is the replay
    /// hot path's reconstruction — [`FrameStore::packet`] is exactly
    /// `meta.packet(&view)`.
    #[inline]
    pub fn packet(&self, view: &FrameView<'_>) -> Packet {
        Packet {
            key: view.flow_key(),
            ts: self.ts,
            wire_len: self.wire_len,
            payload_len: self.payload_len,
            flags: view.flags(),
            seq: view.seq(),
            ack: view.ack(),
            payload_digest: self.payload_digest,
            label: self.label,
        }
    }
}

/// A packed, validated arena of wire frames plus per-frame metadata.
///
/// Every frame is checksum-validated at construction time, so the replay
/// hot path can parse with [`FrameStore::view`] infallibly.
#[derive(Clone, Debug, Default)]
pub struct FrameStore {
    bytes: Vec<u8>,
    meta: Vec<FrameMeta>,
    max_frame: usize,
}

impl FrameStore {
    /// Compile packets into a packed frame buffer via [`wire::encode`].
    ///
    /// The sideband carries each packet's exact timestamp, wire length,
    /// payload length, payload digest and label, so
    /// [`FrameStore::packet`] round-trips the input losslessly.
    pub fn from_packets(packets: &[Packet]) -> FrameStore {
        Self::from_packets_with(packets, wire::encode)
    }

    /// [`FrameStore::from_packets`] with IPv6 framing
    /// ([`wire::encode_v6`], v4-compatible addresses): the replay walks
    /// the v6 parse path while [`FrameStore::packet`] reconstructs the
    /// same flow keys and header fields (the address fold is the identity
    /// on the embedded v4 range). As with the v4 store, the sideband
    /// `wire_len` is clamped up to the encoded frame length — v6 frames
    /// are 20 bytes longer, so byte counters can differ from the v4
    /// framing for sub-74-byte packets.
    pub fn from_packets_v6(packets: &[Packet]) -> FrameStore {
        Self::from_packets_with(packets, wire::encode_v6)
    }

    fn from_packets_with(
        packets: &[Packet],
        encode: impl Fn(&Packet) -> bytes::Bytes,
    ) -> FrameStore {
        let mut store = FrameStore {
            bytes: Vec::with_capacity(packets.len() * 96),
            meta: Vec::with_capacity(packets.len()),
            max_frame: 0,
        };
        for p in packets {
            let frame = encode(p);
            let offset = store.bytes.len() as u32;
            store.bytes.extend_from_slice(&frame);
            store.max_frame = store.max_frame.max(frame.len());
            store.meta.push(FrameMeta {
                offset,
                len: frame.len() as u32,
                ts: p.ts,
                wire_len: p
                    .wire_len
                    .max(frame.len().min(usize::from(u16::MAX)) as u16),
                payload_len: p.payload_len,
                payload_digest: p.payload_digest,
                label: p.label,
            });
        }
        store
    }

    /// Build a store from a classic pcap byte stream, validating every
    /// frame (checksums included) up front.
    ///
    /// Sideband fields the capture cannot carry (payload digest, label)
    /// come back defaulted and timestamps keep pcap's µs resolution —
    /// the same contract as [`pcap::read`], which
    /// [`FrameStore::packet`] matches record-for-record.
    pub fn from_pcap(data: &[u8]) -> Result<FrameStore, PcapError> {
        let mut store = FrameStore {
            bytes: Vec::with_capacity(data.len().saturating_sub(24)),
            meta: Vec::new(),
            max_frame: 0,
        };
        for rec in pcap::records(data)? {
            let rec = rec?;
            let view = FrameView::parse(rec.frame).map_err(PcapError::BadFrame)?;
            let offset = store.bytes.len() as u32;
            store.bytes.extend_from_slice(rec.frame);
            store.max_frame = store.max_frame.max(rec.frame.len());
            store.meta.push(FrameMeta {
                offset,
                len: rec.frame.len() as u32,
                ts: rec.ts,
                wire_len: rec.orig_len.min(u32::from(u16::MAX)) as u16,
                payload_len: view.payload_len(),
                payload_digest: 0,
                label: Label::default(),
            });
        }
        Ok(store)
    }

    /// A store replaying this one's frames cycled up to exactly `total`
    /// packets — "serialise once, replay many". The arena is shared
    /// bytes; only the small sideband grows. Mirrors the synthetic
    /// bench workload cycling, so a compiled replay of `total` packets
    /// sees the same sequence a cycled `Vec<Packet>` would.
    pub fn cycled_to(&self, total: usize) -> FrameStore {
        assert!(!self.meta.is_empty(), "cannot cycle an empty store");
        let meta = (0..total).map(|i| self.meta[i % self.meta.len()]).collect();
        FrameStore {
            bytes: self.bytes.clone(),
            meta,
            max_frame: self.max_frame,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when the store holds no frames.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Total arena size in bytes (shared across cycled replays).
    pub fn bytes_len(&self) -> usize {
        self.bytes.len()
    }

    /// Length of the largest frame — the capacity a frame pool slot
    /// needs to hold any frame from this store.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame
    }

    /// Borrow frame `i`'s raw bytes from the arena.
    #[inline]
    pub fn frame(&self, i: usize) -> &[u8] {
        let m = &self.meta[i];
        &self.bytes[m.offset as usize..(m.offset + m.len) as usize]
    }

    /// Frame `i`'s sideband metadata.
    #[inline]
    pub fn meta(&self, i: usize) -> &FrameMeta {
        &self.meta[i]
    }

    /// Parse frame `i` in place. Infallible: every frame was validated
    /// at construction.
    #[inline]
    pub fn view(&self, i: usize) -> FrameView<'_> {
        FrameView::parse(self.frame(i)).expect("frame validated at construction")
    }

    /// Reconstruct the full [`Packet`] for frame `i`: header fields from
    /// the wire bytes, model-only fields from the sideband. For stores
    /// built with [`FrameStore::from_packets`] this equals the original
    /// packet exactly.
    pub fn packet(&self, i: usize) -> Packet {
        self.meta[i].packet(&self.view(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{FlowKey, Proto};
    use crate::label::{AttackKind, Label};
    use crate::packet::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn mixed_packets() -> Vec<Packet> {
        (0..50u32)
            .map(|i| {
                let proto = match i % 3 {
                    0 => Proto::Tcp,
                    1 => Proto::Udp,
                    _ => Proto::Icmp,
                };
                let key = FlowKey::new(
                    Ipv4Addr::from(0x0A00_0001 + i),
                    Ipv4Addr::new(172, 16, 0, 1),
                    if proto == Proto::Icmp {
                        0
                    } else {
                        40_000 + i as u16
                    },
                    if proto == Proto::Icmp { 0 } else { 443 },
                    proto,
                );
                let mut b = PacketBuilder::new(key, Ts::from_nanos(u64::from(i) * 1_337))
                    .payload((i % 200) as u16)
                    .payload_digest(u64::from(i) * 7)
                    .seq(i)
                    .ack(i ^ 5);
                if proto == Proto::Tcp {
                    b = b.flags(TcpFlags::PSH | TcpFlags::ACK);
                }
                if i % 7 == 0 {
                    b = b.label(Label::attack(AttackKind::StealthyPortScan, 1));
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn from_packets_round_trips_exactly() {
        let pkts = mixed_packets();
        let store = FrameStore::from_packets(&pkts);
        assert_eq!(store.len(), pkts.len());
        for (i, p) in pkts.iter().enumerate() {
            // Non-TCP seq/ack/flags are zero in the model; the store
            // reproduces the packet including sideband-only fields
            // (exact ns timestamp, digest, label, payload_len).
            let expect = if p.is_tcp() {
                *p
            } else {
                Packet {
                    seq: 0,
                    ack: 0,
                    flags: TcpFlags::NONE,
                    ..*p
                }
            };
            assert_eq!(store.packet(i), expect, "packet {i}");
        }
    }

    #[test]
    fn truncated_stress_packets_keep_wire_len() {
        // 64 B stress rewrites: the encoded frame is tiny (54 B of
        // headers) but the sideband keeps the declared 64 B wire length.
        let pkts: Vec<Packet> = mixed_packets()
            .iter()
            .filter(|p| p.is_tcp())
            .map(|p| p.truncated())
            .collect();
        let store = FrameStore::from_packets(&pkts);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(store.packet(i), *p, "packet {i}");
            assert_eq!(store.meta(i).wire_len, 64);
        }
    }

    #[test]
    fn cycled_store_repeats_frames_without_copying_the_arena() {
        let pkts = mixed_packets();
        let store = FrameStore::from_packets(&pkts);
        let cycled = store.cycled_to(pkts.len() * 3 + 7);
        assert_eq!(cycled.len(), pkts.len() * 3 + 7);
        assert_eq!(
            cycled.bytes_len(),
            store.bytes_len(),
            "arena is shared, not repeated"
        );
        for i in 0..cycled.len() {
            assert_eq!(cycled.frame(i), store.frame(i % pkts.len()));
            assert_eq!(cycled.packet(i), store.packet(i % pkts.len()));
        }
    }

    #[test]
    fn from_pcap_matches_pcap_read() {
        let pkts: Vec<Packet> = mixed_packets()
            .into_iter()
            .filter(|p| p.is_tcp() || p.is_udp())
            .map(|mut p| {
                // pcap is µs resolution; align so ts compares equal.
                p.ts = Ts::from_micros(p.ts.as_nanos() / 1_000);
                p
            })
            .collect();
        let bytes = pcap::write(&pkts);
        let store = FrameStore::from_pcap(&bytes).unwrap();
        let parsed = pcap::read(&bytes).unwrap();
        assert_eq!(store.len(), parsed.len());
        for (i, p) in parsed.iter().enumerate() {
            assert_eq!(store.packet(i), *p, "record {i}");
        }
        assert!(store.max_frame_len() >= 64 - 10);
    }

    #[test]
    fn from_pcap_rejects_corrupt_frames() {
        let pkts = mixed_packets();
        let mut bytes = pcap::write(&pkts[..2.min(pkts.len())]);
        let n = bytes.len();
        bytes[n - 1] ^= 0x01; // corrupt the last payload byte
        assert!(matches!(
            FrameStore::from_pcap(&bytes),
            Err(PcapError::BadFrame(_))
        ));
    }

    #[test]
    fn view_exposes_raw_tuples_for_the_digest_path() {
        let pkts = mixed_packets();
        let store = FrameStore::from_packets(&pkts);
        for i in 0..store.len() {
            let v = store.view(i);
            assert_eq!(v.flow_key(), store.packet(i).key);
            assert_eq!(v.raw_tuple().key(), v.flow_key());
        }
    }
}
