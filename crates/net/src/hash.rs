//! The hash family used across SmartWatch.
//!
//! Three requirements drive this module:
//!
//! 1. **Symmetry** — the FlowCache must map both directions of a session to
//!    the same row (paper §4 "Symmetric Hash Function"). We achieve this by
//!    hashing the *canonical* orientation of the 5-tuple.
//! 2. **Digest splitting** — Algorithm 1 of the paper consumes one hash
//!    digest two ways: the low `x` bits select the hash-table row and the
//!    bits above `x` select the Lite-mode bucket offset. [`HashDigest`]
//!    packages that contract.
//! 3. **Independent hash functions** — sketches (CountMin, Elastic, MV)
//!    need `d` pairwise-independent functions; [`FlowHasher`] is seedable so
//!    each sketch row gets its own function.
//!
//! The mixer is a xxhash/murmur-style 64-bit finalizer over the packed
//! 13-byte 5-tuple. It is not cryptographic — neither is the hardware CRC
//! the Netronome uses — but it passes avalanche sanity tests (see below).

use crate::key::{FlowKey, RawTuple};
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// A 64-bit flow hash digest with the splitting accessors used by the
/// FlowCache (Algorithm 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct HashDigest(pub u64);

impl HashDigest {
    /// Row index: the low `row_bits` bits of the digest
    /// (`hash_digest & (rows - 1)` in Algorithm 1 line 4).
    pub fn row(self, row_bits: u32) -> usize {
        debug_assert!(row_bits <= 63);
        (self.0 & ((1u64 << row_bits) - 1)) as usize
    }

    /// The bits above the row index, used by Lite mode to pick a bucket
    /// group within the row (`hash_digest >> x` in Algorithm 1 line 8).
    pub fn high(self, row_bits: u32) -> u64 {
        self.0 >> row_bits
    }

    /// Reduce the digest onto `m` counters (for sketches). Uses the
    /// multiply-shift trick to avoid modulo bias for non-power-of-two `m`.
    pub fn bucket(self, m: usize) -> usize {
        (((self.0 >> 32) * m as u64) >> 32) as usize
    }

    /// Compact probe tag for the FlowCache's per-row tag arrays: the top
    /// byte of the digest, mapped away from zero because 0 is the
    /// "empty bucket" sentinel. The top byte is untouched by
    /// [`HashDigest::row`] for every legal `row_bits` (≤ 30), so the tag
    /// adds discrimination *within* a row: a mismatch skips the full
    /// 13-byte key compare, a match is wrong only ~1/255 of the time.
    #[inline]
    pub fn tag(self) -> u8 {
        let t = (self.0 >> 56) as u8;
        if t == 0 {
            1
        } else {
            t
        }
    }
}

/// Seedable 64-bit hasher over flow keys and raw bytes.
///
/// Distinct seeds give (empirically) independent functions, which is what
/// the sketch baselines require.
#[derive(Clone, Copy, Debug)]
pub struct FlowHasher {
    seed: u64,
}

const K0: u64 = 0x9e37_79b9_7f4a_7c15;
const K1: u64 = 0xbf58_476d_1ce4_e5b9;
const K2: u64 = 0x94d0_49bb_1331_11eb;

#[inline]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(K1);
    h ^= h >> 27;
    h = h.wrapping_mul(K2);
    h ^= h >> 31;
    h
}

impl Default for FlowHasher {
    fn default() -> Self {
        FlowHasher::new(0)
    }
}

impl FlowHasher {
    /// Create a hasher with the given seed. Each distinct seed yields an
    /// (empirically) independent hash function.
    pub fn new(seed: u64) -> FlowHasher {
        FlowHasher {
            seed: seed.wrapping_mul(K0).wrapping_add(K1),
        }
    }

    /// Hash a directed flow key exactly as given (no canonicalisation).
    pub fn hash_directed(&self, key: &FlowKey) -> HashDigest {
        let a = (u64::from(u32::from(key.src_ip)) << 16) | u64::from(key.src_port);
        let b = (u64::from(u32::from(key.dst_ip)) << 16) | u64::from(key.dst_port);
        let p = u64::from(key.proto.number());
        let mut h = self.seed;
        h = mix(h ^ a.wrapping_mul(K0));
        h = mix(h ^ b.wrapping_mul(K1));
        h = mix(h ^ p.wrapping_mul(K2));
        HashDigest(h)
    }

    /// Hash the *session* identity of a flow key: both directions of the
    /// connection produce the same digest. This is the paper's symmetric
    /// hash (§4), implemented via canonical orientation.
    pub fn hash_symmetric(&self, key: &FlowKey) -> HashDigest {
        self.digest_symmetric(key).1
    }

    /// Canonicalise `key` and hash it, returning both. This is the
    /// pre-digesting entry point of the hot path: the engine's dispatcher
    /// calls it exactly once per packet and every downstream consumer
    /// (RSS sharding, black/whitelist membership, the FlowCache row
    /// lookup) reuses the pair instead of re-deriving it.
    #[inline]
    pub fn digest_symmetric(&self, key: &FlowKey) -> (FlowKey, HashDigest) {
        let (canon, _) = key.canonical();
        (canon, self.hash_directed(&canon))
    }

    /// Digest a [`RawTuple`] extracted straight from frame bytes, without
    /// materialising the directed [`FlowKey`] first.
    ///
    /// Bit-identical to [`FlowHasher::digest_symmetric`] over the
    /// equivalent key: the tuple is canonicalised by the same
    /// `(ip, port)` lexicographic comparison [`FlowKey::canonical`] uses,
    /// then hashed with the same three-round mixer. The wire ingest path
    /// ([`crate::wire::FrameView`]) relies on this equivalence for
    /// Ordered-merge determinism between synthetic and compiled replays.
    #[inline]
    pub fn digest_raw(&self, t: RawTuple) -> (FlowKey, HashDigest) {
        let (aip, ap, bip, bp) = canon_raw(&t);
        let a = (u64::from(aip) << 16) | u64::from(ap);
        let b = (u64::from(bip) << 16) | u64::from(bp);
        let p = u64::from(t.proto);
        let mut h = self.seed;
        h = mix(h ^ a.wrapping_mul(K0));
        h = mix(h ^ b.wrapping_mul(K1));
        h = mix(h ^ p.wrapping_mul(K2));
        let canon = RawTuple {
            src_ip: u128::from(aip),
            dst_ip: u128::from(bip),
            src_port: ap,
            dst_port: bp,
            proto: t.proto,
        };
        (canon.key(), HashDigest(h))
    }

    /// Digest eight raw tuples at once.
    ///
    /// Structurally the same math as [`FlowHasher::digest_raw`] but laid
    /// out as eight independent lanes per mixing round, so the compiler
    /// can keep all eight hashes in flight (auto-vectorised or at least
    /// ILP-scheduled) instead of serialising the three data-dependent
    /// mix rounds per packet. `benches/digest.rs` prices this against the
    /// scalar baseline.
    #[inline]
    pub fn digest_batch8(&self, tuples: &[RawTuple; 8]) -> [(FlowKey, HashDigest); 8] {
        let mut a = [0u64; 8];
        let mut b = [0u64; 8];
        let mut p = [0u64; 8];
        let mut canon = [RawTuple::default(); 8];
        for i in 0..8 {
            let (aip, ap, bip, bp) = canon_raw(&tuples[i]);
            a[i] = (u64::from(aip) << 16) | u64::from(ap);
            b[i] = (u64::from(bip) << 16) | u64::from(bp);
            p[i] = u64::from(tuples[i].proto);
            canon[i] = RawTuple {
                src_ip: u128::from(aip),
                dst_ip: u128::from(bip),
                src_port: ap,
                dst_port: bp,
                proto: tuples[i].proto,
            };
        }
        let mut h = [self.seed; 8];
        for i in 0..8 {
            h[i] = mix(h[i] ^ a[i].wrapping_mul(K0));
        }
        for i in 0..8 {
            h[i] = mix(h[i] ^ b[i].wrapping_mul(K1));
        }
        for i in 0..8 {
            h[i] = mix(h[i] ^ p[i].wrapping_mul(K2));
        }
        std::array::from_fn(|i| (canon[i].key(), HashDigest(h[i])))
    }

    /// Digest an arbitrary run of raw tuples into `out` (cleared first):
    /// full 8-wide blocks go through [`FlowHasher::digest_batch8`], the
    /// tail through [`FlowHasher::digest_raw`]. Output order matches
    /// input order.
    pub fn digest_batch(&self, tuples: &[RawTuple], out: &mut Vec<(FlowKey, HashDigest)>) {
        out.clear();
        out.reserve(tuples.len());
        let mut chunks = tuples.chunks_exact(8);
        for c in &mut chunks {
            let block: &[RawTuple; 8] = c.try_into().expect("8-tuple chunk");
            out.extend_from_slice(&self.digest_batch8(block));
        }
        for t in chunks.remainder() {
            out.push(self.digest_raw(*t));
        }
    }

    /// Hash an arbitrary byte string (used for worm payload digests and
    /// sketch keys that are not 5-tuples).
    pub fn hash_bytes(&self, bytes: &[u8]) -> HashDigest {
        let mut h = self.seed ^ (bytes.len() as u64).wrapping_mul(K0);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h = mix(h ^ v.wrapping_mul(K1));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            h = mix(h ^ u64::from_le_bytes(buf).wrapping_mul(K2));
        }
        HashDigest(mix(h))
    }

    /// Hash a u64 key (used for prefix-aggregated switch queries).
    pub fn hash_u64(&self, v: u64) -> HashDigest {
        HashDigest(mix(self.seed ^ v.wrapping_mul(K0)))
    }
}

/// Canonical orientation of a raw tuple: the same lexicographic
/// `(ip, port)` endpoint ordering as [`FlowKey::canonical`], over wire
/// integers.
///
/// Addresses fold through [`crate::key::fold_ip`] *before* comparison, so
/// the orientation — and therefore the digest — is a pure function of the
/// folded 32-bit flow-model addresses. For IPv4 tuples the fold is the
/// identity, keeping [`FlowHasher::digest_raw`] bit-identical to
/// [`FlowHasher::digest_symmetric`]; for IPv6 tuples it makes the raw
/// digest agree with `digest_symmetric` of the folded [`FlowKey`] that
/// every downstream consumer (verdict tables, FlowCache rows) sees.
#[inline]
fn canon_raw(t: &RawTuple) -> (u32, u16, u32, u16) {
    let src = crate::key::fold_ip(t.src_ip);
    let dst = crate::key::fold_ip(t.dst_ip);
    if (src, t.src_port) <= (dst, t.dst_port) {
        (src, t.src_port, dst, t.dst_port)
    } else {
        (dst, t.dst_port, src, t.src_port)
    }
}

/// Map a flow to one of `n_shards` RSS shards, symmetrically.
///
/// This is the software analogue of symmetric RSS (a Toeplitz hash with a
/// symmetric key, as NICs configure for connection-affine steering): both
/// directions of a session map to the *same* shard, so per-shard flow
/// state never needs cross-shard synchronisation. Internally it reduces
/// the seed-0 [`FlowHasher::hash_symmetric`] digest with the same
/// multiply-shift trick as [`HashDigest::bucket`], which is unbiased for
/// non-power-of-two shard counts.
///
/// `n_shards` must be ≥ 1; with one shard every flow maps to shard 0.
pub fn shard_for(key: &FlowKey, n_shards: usize) -> usize {
    debug_assert!(n_shards >= 1, "need at least one shard");
    shard_for_digest(FlowHasher::default().hash_symmetric(key), n_shards)
}

/// Map an already-computed *symmetric* digest to one of `n_shards` RSS
/// shards. The digest must come from [`FlowHasher::hash_symmetric`] /
/// [`FlowHasher::digest_symmetric`] (i.e. be direction-free), otherwise
/// the two directions of a flow may land on different shards.
///
/// This is the amortized form of [`shard_for`]: the dispatcher digests a
/// packet once and reuses the digest for sharding, membership tests and
/// the FlowCache row lookup.
#[inline]
pub fn shard_for_digest(digest: HashDigest, n_shards: usize) -> usize {
    debug_assert!(n_shards >= 1, "need at least one shard");
    digest.bucket(n_shards)
}

/// SplitMix64 output step: a stateless 64-bit mixer with full-period
/// avalanche, used wherever the workspace needs a cheap *independent*
/// derivation from an existing 64-bit value — per-queue RSS salts,
/// deterministic simulation seeds — without touching the flow-hash
/// family above.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map an already-computed *symmetric* digest to one of `n_queues` NIC RX
/// queues — the software model of multi-queue RSS delivery.
///
/// The remix through [`splitmix64`] (salted, so different engines can
/// draw different queue layouts from the same digests) makes the queue
/// choice statistically independent of [`shard_for_digest`], which reads
/// the digest's raw high bits: without the remix, queue and shard
/// assignments would be correlated and an R×N mesh would leave lanes
/// systematically idle. Both directions of a flow land on the same queue
/// (the digest is symmetric), so per-queue sub-streams keep intra-flow
/// packet order.
#[inline]
pub fn queue_for_digest(digest: HashDigest, salt: u64, n_queues: usize) -> usize {
    debug_assert!(n_queues >= 1, "need at least one RX queue");
    HashDigest(splitmix64(digest.0 ^ salt)).bucket(n_queues)
}

/// A no-op `Hasher` for keys that already *are* 64-bit hash digests.
///
/// `HashSet<FlowKey>` membership pays a full SipHash of the 13-byte
/// 5-tuple per probe; with pre-digested packets the digest is sitting in
/// the batch, so black/whitelists key on it directly and the "hash" is
/// the identity function. Digests are xxhash-style mixed, so every bit
/// region (including the high bits hashbrown uses for control bytes) is
/// already uniform.
#[derive(Clone, Copy, Debug, Default)]
pub struct DigestHasher(u64);

impl Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reachable if a non-u64 key sneaks in; fold bytes so the
        // hasher stays correct (if degraded) rather than silently zero.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// `BuildHasher` for [`DigestHasher`]-keyed collections.
pub type BuildDigestHasher = BuildHasherDefault<DigestHasher>;

/// A `HashSet` of 64-bit digests with identity hashing — the membership
/// structure used by the runtime shards' black/whitelists.
pub type DigestSet = HashSet<u64, BuildDigestHasher>;

/// A TTL'd, capacity-bounded digest set for long-lived black/whitelists.
///
/// The plain [`DigestSet`] accumulates forever — fine for a one-shot
/// replay, fatal for a long-running engine where every verdict ever
/// issued would stay resident. This variant stamps each digest with the
/// epoch it was last inserted/touched:
///
/// * [`AgingDigestSet::sweep`] expires entries untouched for more than
///   `ttl` epochs (counted in `expired`);
/// * inserts past `capacity` evict the stalest entry (counted in
///   `evicted`) — the set never exceeds its bound, even if the caller
///   forgets to sweep.
///
/// "Epoch" is whatever monotone counter the caller advances — the
/// control plane uses controller epochs, the runtime shards use batch
/// counts — so aging stays deterministic for deterministic inputs.
#[derive(Clone, Debug)]
pub struct AgingDigestSet {
    map: std::collections::HashMap<u64, u64, BuildDigestHasher>,
    capacity: usize,
    ttl: u64,
    expired: u64,
    evicted: u64,
}

impl AgingDigestSet {
    /// Set bounded to `capacity` entries whose members expire after
    /// going `ttl` epochs untouched. `capacity` ≥ 1.
    pub fn new(capacity: usize, ttl: u64) -> AgingDigestSet {
        assert!(capacity >= 1, "aging set needs capacity >= 1");
        AgingDigestSet {
            map: std::collections::HashMap::default(),
            capacity,
            ttl,
            expired: 0,
            evicted: 0,
        }
    }

    /// Insert (or refresh) `digest` at epoch `now`. Returns `true` if the
    /// digest was not already present. At capacity, the stalest entry is
    /// evicted first (accounted in [`AgingDigestSet::evicted`]).
    pub fn insert(&mut self, digest: u64, now: u64) -> bool {
        if let Some(stamp) = self.map.get_mut(&digest) {
            *stamp = now;
            return false;
        }
        if self.map.len() >= self.capacity {
            // Rare path (only at the bound): O(n) scan for the stalest.
            if let Some(oldest) = self.map.iter().min_by_key(|(_, s)| **s).map(|(d, _)| *d) {
                self.map.remove(&oldest);
                self.evicted += 1;
            }
        }
        self.map.insert(digest, now);
        true
    }

    /// Membership probe (identity-hashed, no stamp refresh).
    pub fn contains(&self, digest: &u64) -> bool {
        self.map.contains_key(digest)
    }

    /// Refresh the stamp of a resident digest — an actively matching
    /// entry should not age out while it is still doing work. Returns
    /// `true` if the digest was resident.
    pub fn touch(&mut self, digest: &u64, now: u64) -> bool {
        if let Some(stamp) = self.map.get_mut(digest) {
            *stamp = now;
            true
        } else {
            false
        }
    }

    /// Remove a digest outright (e.g. a whitelist entry superseded by a
    /// blacklist verdict). Returns `true` if it was resident.
    pub fn remove(&mut self, digest: &u64) -> bool {
        self.map.remove(digest).is_some()
    }

    /// Expire every entry untouched for more than the TTL as of epoch
    /// `now`; returns how many were removed (also accumulated in
    /// [`AgingDigestSet::expired`]).
    pub fn sweep(&mut self, now: u64) -> u64 {
        let ttl = self.ttl;
        let before = self.map.len();
        self.map
            .retain(|_, stamp| now.saturating_sub(*stamp) <= ttl);
        let removed = (before - self.map.len()) as u64;
        self.expired += removed;
        removed
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no digests are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries removed by TTL sweeps so far.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterate over resident digests (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &u64> {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Proto;
    use std::collections::HashSet;
    use std::net::Ipv4Addr;

    fn key(a: u32, ap: u16, b: u32, bp: u16) -> FlowKey {
        FlowKey::new(Ipv4Addr::from(a), Ipv4Addr::from(b), ap, bp, Proto::Tcp)
    }

    #[test]
    fn symmetric_hash_matches_reverse() {
        let h = FlowHasher::new(7);
        for i in 0..1000u32 {
            let k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
            assert_eq!(h.hash_symmetric(&k), h.hash_symmetric(&k.reversed()));
        }
    }

    #[test]
    fn directed_hash_differs_by_direction() {
        let h = FlowHasher::new(7);
        let k = key(0x0a00_0001, 1000, 0x0a00_0002, 22);
        assert_ne!(h.hash_directed(&k), h.hash_directed(&k.reversed()));
    }

    #[test]
    fn seeds_give_different_functions() {
        let k = key(1, 2, 3, 4);
        let d: HashSet<u64> = (0..64)
            .map(|s| FlowHasher::new(s).hash_directed(&k).0)
            .collect();
        assert_eq!(d.len(), 64, "64 seeds should give 64 distinct digests");
    }

    #[test]
    fn row_and_high_split_digest() {
        let d = HashDigest(0xABCD_EF01_2345_6789);
        assert_eq!(d.row(21), (0x2345_6789 & ((1 << 21) - 1)) as usize);
        assert_eq!(d.high(21), 0xABCD_EF01_2345_6789u64 >> 21);
    }

    #[test]
    fn tag_is_nonzero_top_byte_and_spreads() {
        assert_eq!(HashDigest(0).tag(), 1, "zero maps to the sentinel-free 1");
        assert_eq!(HashDigest(0xAB00_0000_0000_0000).tag(), 0xAB);
        assert_eq!(
            HashDigest(0x00FF_FFFF_FFFF_FFFF).tag(),
            1,
            "only the top byte participates"
        );
        let h = FlowHasher::new(0x51CC);
        let mut hits = [0u32; 256];
        for i in 0..100_000u64 {
            let t = h.hash_u64(i).tag();
            assert_ne!(t, 0, "tags are never the empty sentinel");
            hits[t as usize] += 1;
        }
        assert_eq!(hits[0], 0);
        // 255 live values, ~392 each; hits[1] absorbs the 0-remap (~2x).
        assert!(
            hits[1..].iter().all(|&c| c > 100 && c < 1200),
            "poor tag spread: max={:?}",
            hits.iter().copied().max()
        );
    }

    #[test]
    fn bucket_reduction_in_range_and_spread() {
        let h = FlowHasher::new(3);
        let m = 1000;
        let mut hits = vec![0u32; m];
        for i in 0..100_000u32 {
            let b = h.hash_u64(i as u64).bucket(m);
            assert!(b < m);
            hits[b] += 1;
        }
        // Expect ~100 per bucket; fail if any bucket is wildly off.
        assert!(
            hits.iter().all(|&c| c > 40 && c < 200),
            "poor spread: {:?}",
            hits.iter().copied().max()
        );
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let h = FlowHasher::new(0);
        let base = h.hash_u64(0x1234_5678).0;
        for bit in 0..64 {
            let flipped = h.hash_u64(0x1234_5678 ^ (1u64 << bit)).0;
            let dist = (base ^ flipped).count_ones();
            assert!(dist >= 16, "bit {bit} avalanche too weak: {dist}");
        }
    }

    #[test]
    fn shard_for_is_symmetric() {
        for n in [1usize, 2, 3, 4, 7, 16] {
            for i in 0..1000u32 {
                let k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
                let s = shard_for(&k, n);
                assert!(s < n, "shard index in range");
                assert_eq!(
                    s,
                    shard_for(&k.reversed(), n),
                    "both directions of a flow must land on the same shard"
                );
            }
        }
    }

    #[test]
    fn shard_for_single_shard_is_zero() {
        let k = key(0x0a00_0001, 1000, 0x0a00_0002, 22);
        assert_eq!(shard_for(&k, 1), 0);
    }

    #[test]
    fn shard_for_spreads_flows() {
        let n = 4;
        let mut hits = vec![0u32; n];
        for i in 0..10_000u32 {
            let k = key(0x0a00_0001 + i, 1000 + (i as u16 % 5000), 0x0a00_0002, 443);
            hits[shard_for(&k, n)] += 1;
        }
        // Expect ~2500 per shard; fail on gross imbalance.
        assert!(
            hits.iter().all(|&c| c > 1800 && c < 3200),
            "poor shard spread: {hits:?}"
        );
    }

    #[test]
    fn digest_symmetric_matches_two_step_derivation() {
        let h = FlowHasher::new(0x51CC);
        for i in 0..500u32 {
            let k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
            let (canon, digest) = h.digest_symmetric(&k);
            assert_eq!(canon, k.canonical().0);
            assert_eq!(digest, h.hash_symmetric(&k));
            assert_eq!(h.digest_symmetric(&k.reversed()), (canon, digest));
        }
    }

    #[test]
    fn digest_raw_is_bit_identical_to_digest_symmetric() {
        let h = FlowHasher::new(0x51CC);
        for proto in [Proto::Tcp, Proto::Udp, Proto::Icmp, Proto::Other(89)] {
            for i in 0..500u32 {
                let mut k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
                k.proto = proto;
                for dir in [k, k.reversed()] {
                    assert_eq!(
                        h.digest_raw(RawTuple::from_key(&dir)),
                        h.digest_symmetric(&dir),
                        "raw digest must match the FlowKey path for {dir:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn v6_raw_digest_agrees_with_the_folded_flow_key_path() {
        // IPv6 tuples enter the 32-bit flow model through fold_ip; the raw
        // digest must agree with digest_symmetric of the folded FlowKey in
        // both directions, so verdict tables keyed by the folded key still
        // match the wire-ingested digests.
        let h = FlowHasher::new(0xD1CE);
        for i in 0..500u128 {
            let src = (0x2001_0db8u128 << 96) | (i << 40) | 0x1234;
            let dst = (0xfd00u128 << 112) | (i << 17) | 7;
            let t = RawTuple {
                src_ip: src,
                dst_ip: dst,
                src_port: 40_000 + (i as u16),
                dst_port: 443,
                proto: 6,
            };
            let rev = RawTuple {
                src_ip: t.dst_ip,
                dst_ip: t.src_ip,
                src_port: t.dst_port,
                dst_port: t.src_port,
                proto: 6,
            };
            let folded = t.key();
            assert_eq!(h.digest_raw(t), h.digest_symmetric(&folded));
            assert_eq!(h.digest_raw(rev), h.digest_raw(t), "symmetric over v6");
        }
    }

    #[test]
    fn digest_batch_matches_scalar_for_all_lengths() {
        let h = FlowHasher::new(0xFEED);
        let tuples: Vec<RawTuple> = (0..37u32)
            .map(|i| {
                let k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
                let k = if i % 2 == 0 { k } else { k.reversed() };
                RawTuple::from_key(&k)
            })
            .collect();
        let mut out = Vec::new();
        // 0 (empty), a sub-block tail, one exact block, blocks + tail.
        for len in [0usize, 5, 8, 16, 37] {
            h.digest_batch(&tuples[..len], &mut out);
            let scalar: Vec<_> = tuples[..len].iter().map(|t| h.digest_raw(*t)).collect();
            assert_eq!(out, scalar, "batch/scalar divergence at len={len}");
        }
    }

    #[test]
    fn shard_for_digest_is_symmetric_and_in_range() {
        let h = FlowHasher::new(0x51CC);
        for n in [1usize, 2, 3, 4, 7, 16] {
            for i in 0..500u32 {
                let k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
                let s = shard_for_digest(h.hash_symmetric(&k), n);
                assert!(s < n);
                assert_eq!(s, shard_for_digest(h.hash_symmetric(&k.reversed()), n));
            }
        }
    }

    #[test]
    fn splitmix64_is_deterministic_and_avalanches() {
        assert_eq!(splitmix64(0), splitmix64(0), "stateless and pure");
        let base = splitmix64(0x5EED);
        for bit in 0..64 {
            let flipped = splitmix64(0x5EED ^ (1u64 << bit));
            let dist = (base ^ flipped).count_ones();
            assert!(dist >= 16, "bit {bit} avalanche too weak: {dist}");
        }
    }

    #[test]
    fn queue_for_digest_symmetric_in_range_and_spread() {
        let h = FlowHasher::new(0x51CC);
        let salt = splitmix64(0x51CC);
        for r in [1usize, 2, 3, 4, 8] {
            let mut hits = vec![0u32; r];
            for i in 0..8_000u32 {
                let k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
                let q = queue_for_digest(h.hash_symmetric(&k), salt, r);
                assert!(q < r, "queue index in range");
                assert_eq!(
                    q,
                    queue_for_digest(h.hash_symmetric(&k.reversed()), salt, r),
                    "both directions of a flow must land on the same queue"
                );
                hits[q] += 1;
            }
            let expect = 8_000 / r as u32;
            assert!(
                hits.iter().all(|&c| c > expect / 2 && c < expect * 2),
                "poor queue spread for r={r}: {hits:?}"
            );
        }
    }

    #[test]
    fn queue_and_shard_assignments_are_independent() {
        // Joint (queue, shard) distribution over a 4×4 mesh: if the
        // remix failed to decorrelate the two bucket reductions, whole
        // cells would be empty and lanes would sit idle.
        let h = FlowHasher::new(0x51CC);
        let salt = splitmix64(0x51CC);
        let (r, n) = (4usize, 4usize);
        let mut cells = vec![0u32; r * n];
        for i in 0..16_000u32 {
            let k = key(0x0a00_0001 + i, 1000 + (i as u16), 0x0a00_ffff - i, 22);
            let d = h.hash_symmetric(&k);
            cells[queue_for_digest(d, salt, r) * n + shard_for_digest(d, n)] += 1;
        }
        // Expect ~1000 per cell; gross imbalance means correlation.
        assert!(
            cells.iter().all(|&c| c > 500 && c < 2000),
            "queue/shard correlation: {cells:?}"
        );
    }

    #[test]
    fn digest_set_behaves_like_a_set() {
        let h = FlowHasher::new(9);
        let mut set = DigestSet::default();
        for i in 0..1000u64 {
            assert!(set.insert(h.hash_u64(i).0));
        }
        for i in 0..1000u64 {
            assert!(set.contains(&h.hash_u64(i).0), "digest {i} lost");
            assert!(!set.insert(h.hash_u64(i).0), "duplicate accepted");
        }
        assert!(!set.contains(&h.hash_u64(5000).0));
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn aging_set_expires_untouched_entries() {
        let mut set = AgingDigestSet::new(1024, 10);
        for d in 0..100u64 {
            assert!(set.insert(d, 0));
        }
        // Keep half alive by touching them at epoch 8.
        for d in 0..50u64 {
            assert!(set.touch(&d, 8));
        }
        assert_eq!(set.sweep(11), 50, "untouched half expires past TTL");
        assert_eq!(set.len(), 50);
        assert_eq!(set.expired(), 50);
        for d in 0..50u64 {
            assert!(set.contains(&d), "touched digest {d} must survive");
        }
        for d in 50..100u64 {
            assert!(!set.contains(&d), "stale digest {d} must expire");
        }
        // Survivors expire too once their refreshed stamp goes stale.
        assert_eq!(set.sweep(19), 50);
        assert!(set.is_empty());
    }

    #[test]
    fn aging_set_capacity_evicts_stalest() {
        let mut set = AgingDigestSet::new(4, u64::MAX);
        for (epoch, d) in (100..104u64).enumerate() {
            set.insert(d, epoch as u64);
        }
        assert_eq!(set.len(), 4);
        // Refresh the oldest so the *second*-oldest becomes the victim.
        set.touch(&100, 10);
        set.insert(999, 11);
        assert_eq!(set.len(), 4, "capacity bound holds");
        assert_eq!(set.evicted(), 1);
        assert!(set.contains(&100), "refreshed entry survives");
        assert!(!set.contains(&101), "stalest entry evicted");
        assert!(set.contains(&999));
    }

    #[test]
    fn aging_set_reinsert_refreshes_instead_of_duplicating() {
        let mut set = AgingDigestSet::new(8, 5);
        assert!(set.insert(42, 0));
        assert!(!set.insert(42, 7), "re-insert refreshes, not duplicates");
        assert_eq!(set.len(), 1);
        assert_eq!(set.sweep(9), 0, "refreshed entry is inside TTL");
        assert!(set.contains(&42));
    }

    #[test]
    fn byte_hash_handles_all_lengths() {
        let h = FlowHasher::new(1);
        let data: Vec<u8> = (0..=40u8).collect();
        let mut seen = HashSet::new();
        for l in 0..=40 {
            assert!(seen.insert(h.hash_bytes(&data[..l]).0));
        }
    }
}
