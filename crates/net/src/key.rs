//! Flow identity: the 5-tuple and its symmetric canonical form.
//!
//! SmartWatch's detectors are *session*-oriented (SSH bruteforce, forged RST,
//! port scan outcomes), so packets travelling in opposite directions of the
//! same connection must land in the same FlowCache bucket. The paper solves
//! this with a symmetric hash function (§4, citing Woo & Park's symmetric
//! receive-side scaling). We go one step further and define a *canonical*
//! orientation of the 5-tuple, so symmetric hashing falls out for free and
//! flow state can also record which direction a given packet travelled.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Proto {
    /// Transmission Control Protocol (IP proto 6).
    Tcp = 6,
    /// User Datagram Protocol (IP proto 17).
    Udp = 17,
    /// Internet Control Message Protocol (IP proto 1).
    Icmp = 1,
    /// Anything else, carrying the raw IP protocol number.
    Other(u8),
}

impl Proto {
    /// The raw IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Icmp => 1,
            Proto::Other(n) => n,
        }
    }

    /// Build from a raw IP protocol number.
    pub fn from_number(n: u8) -> Proto {
        match n {
            6 => Proto::Tcp,
            17 => Proto::Udp,
            1 => Proto::Icmp,
            other => Proto::Other(other),
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Tcp => write!(f, "tcp"),
            Proto::Udp => write!(f, "udp"),
            Proto::Icmp => write!(f, "icmp"),
            Proto::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// The direction a packet travels relative to the canonical orientation of
/// its flow (see [`FlowKey::canonical`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Packet's (src, dst) matches the canonical (a, b) orientation.
    Forward,
    /// Packet travels from canonical b to canonical a.
    Reverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// A directed 5-tuple: (src ip, dst ip, src port, dst port, protocol).
///
/// `FlowKey` is directed as constructed; call [`FlowKey::canonical`] to get
/// the session-level identity shared by both directions, plus the
/// [`Direction`] this particular key had.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination transport port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowKey {
    /// Construct a directed flow key.
    pub fn new(
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        proto: Proto,
    ) -> FlowKey {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        }
    }

    /// Convenience constructor for TCP flows.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FlowKey {
        FlowKey::new(src_ip, dst_ip, src_port, dst_port, Proto::Tcp)
    }

    /// Convenience constructor for UDP flows.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FlowKey {
        FlowKey::new(src_ip, dst_ip, src_port, dst_port, Proto::Udp)
    }

    /// The same flow viewed from the other direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Canonical (direction-free) form of this key plus the direction this
    /// key represented.
    ///
    /// The canonical orientation puts the lexicographically smaller
    /// (ip, port) endpoint first, so `k.canonical().0 ==
    /// k.reversed().canonical().0` always holds.
    pub fn canonical(&self) -> (FlowKey, Direction) {
        let a = (u32::from(self.src_ip), self.src_port);
        let b = (u32::from(self.dst_ip), self.dst_port);
        if a <= b {
            (*self, Direction::Forward)
        } else {
            (self.reversed(), Direction::Reverse)
        }
    }

    /// True if this key is already in canonical orientation.
    pub fn is_canonical(&self) -> bool {
        self.canonical().1 == Direction::Forward
    }

    /// The destination IP truncated to a prefix of `bits` bits, as used by
    /// the switch's iterative refinement (dIP/8 → dIP/16 → dIP/32).
    pub fn dst_prefix(&self, bits: u8) -> u32 {
        prefix_of(self.dst_ip, bits)
    }

    /// The source IP truncated to a prefix of `bits` bits.
    pub fn src_prefix(&self, bits: u8) -> u32 {
        prefix_of(self.src_ip, bits)
    }
}

/// The raw directed 5-tuple as it appears on the wire: host-order integers,
/// no [`Ipv4Addr`]/[`Proto`] wrappers.
///
/// This is the form the zero-copy ingest path extracts straight from frame
/// bytes ([`crate::wire::FrameView::raw_tuple`]) and feeds to
/// [`crate::FlowHasher::digest_raw`] / `digest_batch` without materialising
/// a [`FlowKey`] first.
///
/// Addresses are 128-bit so the same tuple covers IPv4 and IPv6 frames:
/// an IPv4 address occupies the low 32 bits (the v4-compatible `::a.b.c.d`
/// form), and every digest/key consumer reduces addresses through
/// [`fold_ip`], which is the identity on that range. Conversions to and
/// from `FlowKey` are lossless for IPv4; IPv6 addresses fold onto the
/// 32-bit flow-model address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RawTuple {
    /// Source IP address in host byte order (IPv4 in the low 32 bits).
    pub src_ip: u128,
    /// Destination IP address in host byte order (IPv4 in the low 32 bits).
    pub dst_ip: u128,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Raw IP protocol number.
    pub proto: u8,
}

impl RawTuple {
    /// Extract the raw tuple from a [`FlowKey`].
    pub fn from_key(key: &FlowKey) -> RawTuple {
        RawTuple {
            src_ip: u128::from(u32::from(key.src_ip)),
            dst_ip: u128::from(u32::from(key.dst_ip)),
            src_port: key.src_port,
            dst_port: key.dst_port,
            proto: key.proto.number(),
        }
    }

    /// Materialise the equivalent [`FlowKey`], folding each address via
    /// [`fold_ip`] (the identity for tuples extracted from IPv4 frames).
    pub fn key(&self) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::from(fold_ip(self.src_ip)),
            Ipv4Addr::from(fold_ip(self.dst_ip)),
            self.src_port,
            self.dst_port,
            Proto::from_number(self.proto),
        )
    }
}

/// Fold a 128-bit wire address onto the 32-bit flow-model address space.
///
/// The flow model (FlowKey, FlowCache rows, prefix steering) is 32-bit;
/// IPv6 frames enter it through this fold. The big-endian 32-bit words are
/// combined with distinct rotations so prefix-structured v6 addresses do
/// not collapse, and the fold is the **identity for IPv4** (v4-compatible
/// `::a.b.c.d` encodings and every tuple built from a `FlowKey`), which
/// keeps [`crate::FlowHasher::digest_raw`] bit-identical to
/// `digest_symmetric` on v4 traffic.
#[inline]
pub fn fold_ip(ip: u128) -> u32 {
    let w0 = (ip >> 96) as u32;
    let w1 = (ip >> 64) as u32;
    let w2 = (ip >> 32) as u32;
    let w3 = ip as u32;
    w3 ^ w2.rotate_left(7) ^ w1.rotate_left(14) ^ w0.rotate_left(21)
}

/// Truncate an IPv4 address to its top `bits` bits (returned left-aligned,
/// i.e. as the network address of the prefix).
pub fn prefix_of(ip: Ipv4Addr, bits: u8) -> u32 {
    let raw = u32::from(ip);
    if bits == 0 {
        0
    } else if bits >= 32 {
        raw
    } else {
        raw & (u32::MAX << (32 - bits))
    }
}

impl fmt::Debug for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}/{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.proto
        )
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn reversal_is_involutive() {
        let k = FlowKey::tcp(ip("10.0.0.1"), 1234, ip("10.0.0.2"), 22);
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn canonical_is_direction_free() {
        let k = FlowKey::tcp(ip("10.0.0.9"), 40000, ip("10.0.0.2"), 22);
        let (c1, d1) = k.canonical();
        let (c2, d2) = k.reversed().canonical();
        assert_eq!(c1, c2);
        assert_ne!(d1, d2);
        assert!(c1.is_canonical());
    }

    #[test]
    fn canonical_ties_on_ip_break_on_port() {
        let k = FlowKey::tcp(ip("10.0.0.1"), 80, ip("10.0.0.1"), 22);
        let (c, _) = k.canonical();
        assert_eq!(c.src_port, 22);
    }

    #[test]
    fn prefix_truncation() {
        let k = FlowKey::tcp(ip("1.2.3.4"), 1, ip("192.168.37.41"), 2);
        assert_eq!(k.dst_prefix(16), u32::from(ip("192.168.0.0")));
        assert_eq!(k.dst_prefix(8), u32::from(ip("192.0.0.0")));
        assert_eq!(k.dst_prefix(32), u32::from(ip("192.168.37.41")));
        assert_eq!(k.dst_prefix(0), 0);
        assert_eq!(k.src_prefix(24), u32::from(ip("1.2.3.0")));
    }

    #[test]
    fn proto_numbers_round_trip() {
        for n in 0u8..=255 {
            assert_eq!(Proto::from_number(n).number(), n);
        }
    }

    #[test]
    fn raw_tuple_round_trips_through_flow_key() {
        for proto in [Proto::Tcp, Proto::Udp, Proto::Icmp, Proto::Other(89)] {
            let k = FlowKey::new(ip("10.0.0.9"), ip("172.16.1.2"), 40000, 22, proto);
            let t = RawTuple::from_key(&k);
            assert_eq!(t.key(), k);
            assert_eq!(t.proto, proto.number());
        }
    }

    #[test]
    fn fold_ip_is_identity_on_v4_and_mixes_v6_words() {
        for v4 in [
            0u32,
            1,
            0x0A00_0001,
            0xFFFF_FFFF,
            u32::from(ip("192.168.37.41")),
        ] {
            assert_eq!(fold_ip(u128::from(v4)), v4, "fold must be identity on v4");
        }
        // Prefix-structured v6 addresses (same /64, varying interface id)
        // must not collapse onto one folded value.
        let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let folded: std::collections::HashSet<u32> =
            (0..64u128).map(|i| fold_ip(base | i)).collect();
        assert_eq!(folded.len(), 64);
        // Word position matters: the same 32-bit value in different words
        // folds differently.
        assert_ne!(fold_ip(1u128 << 64), fold_ip(1u128 << 32));
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Reverse);
        assert_eq!(Direction::Reverse.flip().flip(), Direction::Reverse);
    }
}
