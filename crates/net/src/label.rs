//! Ground-truth labels for generated traffic.
//!
//! Every attack generator in `smartwatch-trace` stamps its packets with the
//! attack they belong to, so detection-rate experiments (Fig. 8c, Table 4)
//! can compare detector verdicts against ground truth. Labels travel with
//! packets but are **never** visible to the data plane: the switch, the
//! FlowCache and the detectors only ever see headers. Only the evaluation
//! harness reads labels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which attack (if any) a packet belongs to. Mirrors the rows of the
/// paper's Tables 2 and 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AttackKind {
    /// Slowloris: many long-lived, low-volume HTTP connections.
    Slowloris,
    /// SSH password guessing from one or more remote nodes.
    SshBruteforce,
    /// TLS sessions presenting certificates about to expire.
    ExpiringSslCert,
    /// FTP password guessing.
    FtpBruteforce,
    /// Suspicious Kerberos ticket activity.
    KerberosTicket,
    /// In-sequence forged TCP RST injection.
    ForgedTcpRst,
    /// TCP connections opened with SYN but never carrying data.
    TcpIncompleteFlows,
    /// Low-and-slow port scanning.
    StealthyPortScan,
    /// DNS amplification reflection.
    DnsAmplification,
    /// Queue-building microburst event.
    Microburst,
    /// Self-propagating worm payload.
    Worm,
    /// Covert timing channel (IPD modulation).
    CovertTimingChannel,
    /// Website fingerprinting target traffic (monitored page set).
    WebsiteFingerprint,
    /// Volumetric heavy-hitter / DDoS style flooding.
    HeavyHitter,
}

impl AttackKind {
    /// All attack kinds, in Table 2 / Table 4 order.
    pub const ALL: [AttackKind; 14] = [
        AttackKind::Slowloris,
        AttackKind::SshBruteforce,
        AttackKind::ExpiringSslCert,
        AttackKind::FtpBruteforce,
        AttackKind::KerberosTicket,
        AttackKind::ForgedTcpRst,
        AttackKind::TcpIncompleteFlows,
        AttackKind::StealthyPortScan,
        AttackKind::DnsAmplification,
        AttackKind::Microburst,
        AttackKind::Worm,
        AttackKind::CovertTimingChannel,
        AttackKind::WebsiteFingerprint,
        AttackKind::HeavyHitter,
    ];

    /// Human-readable name matching the paper's table rows.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Slowloris => "Slowloris",
            AttackKind::SshBruteforce => "SSH Bruteforcing",
            AttackKind::ExpiringSslCert => "Expiring SSL certificate",
            AttackKind::FtpBruteforce => "FTP Bruteforcing",
            AttackKind::KerberosTicket => "Kerberos Ticket Monitoring",
            AttackKind::ForgedTcpRst => "In-Sequence Forged TCP RST",
            AttackKind::TcpIncompleteFlows => "TCP Incomplete Flows",
            AttackKind::StealthyPortScan => "Stealthy Port Scan",
            AttackKind::DnsAmplification => "DNS Amplification",
            AttackKind::Microburst => "Micro-bursts",
            AttackKind::Worm => "EarlyBird Detection Worms",
            AttackKind::CovertTimingChannel => "Covert Timing Channel",
            AttackKind::WebsiteFingerprint => "Website Fingerprinting",
            AttackKind::HeavyHitter => "Heavy Hitter",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ground-truth label attached to a generated packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum Label {
    /// Ordinary background traffic.
    #[default]
    Benign,
    /// Part of the given attack, with an attack-instance id so multiple
    /// simultaneous instances (e.g. several scanners) stay distinguishable.
    Attack {
        /// The attack class.
        kind: AttackKind,
        /// Generator-assigned instance id.
        instance: u32,
    },
}

impl Label {
    /// Construct an attack label.
    pub fn attack(kind: AttackKind, instance: u32) -> Label {
        Label::Attack { kind, instance }
    }

    /// True for benign packets.
    pub fn is_benign(self) -> bool {
        matches!(self, Label::Benign)
    }

    /// The attack kind, if any.
    pub fn kind(self) -> Option<AttackKind> {
        match self {
            Label::Benign => None,
            Label::Attack { kind, .. } => Some(kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_accessors() {
        assert!(Label::Benign.is_benign());
        assert_eq!(Label::Benign.kind(), None);
        let l = Label::attack(AttackKind::StealthyPortScan, 3);
        assert!(!l.is_benign());
        assert_eq!(l.kind(), Some(AttackKind::StealthyPortScan));
    }

    #[test]
    fn all_kinds_have_unique_names() {
        let mut names: Vec<_> = AttackKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), AttackKind::ALL.len());
    }
}
