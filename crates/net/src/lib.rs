//! # smartwatch-net
//!
//! Packet and flow model substrate for the SmartWatch monitoring platform.
//!
//! This crate is the lowest layer of the workspace: every other crate
//! (trace generation, P4 switch simulation, SmartNIC FlowCache, host
//! subsystem, detectors) speaks in terms of the types defined here.
//!
//! The main abstractions are:
//!
//! - [`Ts`] / [`Dur`] — a virtual, nanosecond-resolution clock. All
//!   simulation in the workspace runs against virtual time; nothing ever
//!   reads the wall clock, which keeps every experiment deterministic and
//!   replayable.
//! - [`FlowKey`] — the classic 5-tuple, with *symmetric* canonicalisation so
//!   that both directions of a TCP/UDP session map to the same key (the
//!   paper's "symmetric hash function", §4).
//! - [`Packet`] — the per-packet metadata record that moves through the
//!   monitoring pipeline. SmartWatch is a flow-state tracker, not a DPI
//!   engine, so packets carry headers plus a payload *digest* rather than a
//!   full payload (the paper assumes DC traffic is encrypted, §6).
//! - [`wire`] — Ethernet/IPv4/TCP/UDP encode/decode for interoperability
//!   tests and pcap ingestion, including the borrow-based
//!   [`wire::FrameView`] that parses headers in place from `&[u8]`.
//! - [`frame`] — packed wire-frame arenas ([`FrameStore`]): compile a
//!   trace to raw frames once, replay it many times through the
//!   zero-copy ingest path.
//! - [`pcap`] — classic libpcap read/write, so traces interoperate with
//!   tcpdump/wireshark/editcap, matching the paper's methodology.
//! - [`hash`] — the hash family used by the FlowCache and sketches,
//!   including the digest-splitting helpers that Algorithm 1 of the paper
//!   relies on (low bits select the row, high bits the Lite-mode offset).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod hash;
pub mod key;
pub mod label;
pub mod packet;
pub mod pcap;
pub mod tcp;
pub mod time;
pub mod wire;

pub use frame::{FrameMeta, FrameStore};
pub use hash::{
    shard_for, shard_for_digest, AgingDigestSet, BuildDigestHasher, DigestSet, FlowHasher,
    HashDigest,
};
pub use key::{fold_ip, FlowKey, Proto, RawTuple};
pub use label::{AttackKind, Label};
pub use packet::{Packet, PacketBuilder};
pub use tcp::TcpFlags;
pub use time::{Dur, Ts};
pub use wire::FrameView;
