//! The per-packet record that flows through the monitoring pipeline.
//!
//! SmartWatch operates on packet *metadata*: headers, sizes, timestamps and
//! (for worm detection) a payload digest. Payload bytes themselves are never
//! retained — the paper assumes encrypted DC traffic (§6), and the detectors
//! are all traffic-analysis based. Keeping [`Packet`] a small `Copy` value
//! lets trace replays of tens of millions of packets stay allocation-free.

use crate::key::{FlowKey, Proto};
use crate::label::Label;
use crate::tcp::TcpFlags;
use crate::time::Ts;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Metadata for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Directed 5-tuple.
    pub key: FlowKey,
    /// Arrival timestamp at the monitoring point.
    pub ts: Ts,
    /// Total length on the wire, in bytes (Ethernet frame length).
    pub wire_len: u16,
    /// Transport payload length, in bytes.
    pub payload_len: u16,
    /// TCP control flags (empty for non-TCP packets).
    pub flags: TcpFlags,
    /// TCP sequence number (0 for non-TCP).
    pub seq: u32,
    /// TCP acknowledgment number (0 for non-TCP).
    pub ack: u32,
    /// 64-bit digest of the payload (content-based worm detection keys on
    /// `hash(payload ‖ dst_ip)`). Zero when no payload.
    pub payload_digest: u64,
    /// Ground-truth label (evaluation only; invisible to the data plane).
    pub label: Label,
}

impl Packet {
    /// Minimum Ethernet frame size, used by the 64-byte stress rewrites.
    pub const MIN_WIRE_LEN: u16 = 64;

    /// Start building a packet for the given flow at the given time.
    pub fn builder(key: FlowKey, ts: Ts) -> PacketBuilder {
        PacketBuilder::new(key, ts)
    }

    /// True if this is a TCP packet.
    pub fn is_tcp(&self) -> bool {
        self.key.proto == Proto::Tcp
    }

    /// True if this is a UDP packet.
    pub fn is_udp(&self) -> bool {
        self.key.proto == Proto::Udp
    }

    /// The sequence number one past the data carried by this segment
    /// (SYN and FIN each consume one sequence number).
    pub fn seq_end(&self) -> u32 {
        let mut consumed = u32::from(self.payload_len);
        if self.flags.syn() {
            consumed = consumed.wrapping_add(1);
        }
        if self.flags.fin() {
            consumed = consumed.wrapping_add(1);
        }
        self.seq.wrapping_add(consumed)
    }

    /// Copy of this packet truncated to a 64-byte frame, as done by
    /// `tcprewrite` for the paper's stress traces. Headers (key, flags,
    /// seq/ack) are untouched; only lengths shrink.
    pub fn truncated(&self) -> Packet {
        Packet {
            wire_len: Packet::MIN_WIRE_LEN,
            payload_len: 0,
            ..*self
        }
    }

    /// Copy of this packet with the timestamp shifted by `delta_ns`
    /// (signed), as done by `editcap` when aligning attack traces with
    /// background traces.
    pub fn time_shifted(&self, delta_ns: i64) -> Packet {
        let ns = self.ts.as_nanos() as i64 + delta_ns;
        Packet {
            ts: Ts::from_nanos(ns.max(0) as u64),
            ..*self
        }
    }
}

/// Builder for [`Packet`], defaulting every field that a given experiment
/// does not care about.
#[derive(Clone, Copy, Debug)]
pub struct PacketBuilder {
    p: Packet,
}

impl PacketBuilder {
    /// Start a builder for the given flow and timestamp. Defaults: 64-byte
    /// frame, no payload, no flags, benign label.
    pub fn new(key: FlowKey, ts: Ts) -> PacketBuilder {
        PacketBuilder {
            p: Packet {
                key,
                ts,
                wire_len: Packet::MIN_WIRE_LEN,
                payload_len: 0,
                flags: TcpFlags::NONE,
                seq: 0,
                ack: 0,
                payload_digest: 0,
                label: Label::Benign,
            },
        }
    }

    /// Set the wire length (clamped up to at least the payload + 54-byte
    /// Ethernet/IP/TCP header overhead).
    pub fn wire_len(mut self, len: u16) -> Self {
        self.p.wire_len = len;
        self
    }

    /// Set the payload length and grow wire length to fit if needed.
    pub fn payload(mut self, len: u16) -> Self {
        self.p.payload_len = len;
        let needed = len.saturating_add(54).max(Packet::MIN_WIRE_LEN);
        if self.p.wire_len < needed {
            self.p.wire_len = needed;
        }
        self
    }

    /// Set TCP flags.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.p.flags = flags;
        self
    }

    /// Set TCP sequence number.
    pub fn seq(mut self, seq: u32) -> Self {
        self.p.seq = seq;
        self
    }

    /// Set TCP acknowledgment number.
    pub fn ack(mut self, ack: u32) -> Self {
        self.p.ack = ack;
        self
    }

    /// Set payload digest.
    pub fn payload_digest(mut self, d: u64) -> Self {
        self.p.payload_digest = d;
        self
    }

    /// Set ground-truth label.
    pub fn label(mut self, label: Label) -> Self {
        self.p.label = label;
        self
    }

    /// Finish building.
    pub fn build(self) -> Packet {
        self.p
    }
}

/// Convenience: a TCP SYN packet opening `key`.
pub fn syn(key: FlowKey, ts: Ts, seq: u32) -> Packet {
    Packet::builder(key, ts)
        .flags(TcpFlags::SYN)
        .seq(seq)
        .build()
}

/// Convenience: the SYN/ACK answering `syn_pkt`.
pub fn syn_ack(syn_pkt: &Packet, ts: Ts, seq: u32) -> Packet {
    Packet::builder(syn_pkt.key.reversed(), ts)
        .flags(TcpFlags::SYN_ACK)
        .seq(seq)
        .ack(syn_pkt.seq.wrapping_add(1))
        .build()
}

/// Convenience: a UDP datagram.
pub fn udp(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, ts: Ts, payload: u16) -> Packet {
    Packet::builder(FlowKey::udp(src, sport, dst, dport), ts)
        .payload(payload)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn builder_defaults() {
        let p = Packet::builder(key(), Ts::from_secs(1)).build();
        assert_eq!(p.wire_len, 64);
        assert_eq!(p.payload_len, 0);
        assert!(p.label.is_benign());
    }

    #[test]
    fn payload_grows_wire_len() {
        let p = Packet::builder(key(), Ts::ZERO).payload(1400).build();
        assert_eq!(p.payload_len, 1400);
        assert_eq!(p.wire_len, 1454);
        // Small payloads stay at the 64-byte minimum frame.
        let q = Packet::builder(key(), Ts::ZERO).payload(4).build();
        assert_eq!(q.wire_len, 64);
    }

    #[test]
    fn seq_end_counts_syn_fin_and_data() {
        let p = Packet::builder(key(), Ts::ZERO)
            .flags(TcpFlags::SYN)
            .seq(100)
            .build();
        assert_eq!(p.seq_end(), 101);
        let q = Packet::builder(key(), Ts::ZERO)
            .seq(100)
            .payload(50)
            .build();
        assert_eq!(q.seq_end(), 150);
        let r = Packet::builder(key(), Ts::ZERO)
            .flags(TcpFlags::FIN_ACK)
            .seq(100)
            .build();
        assert_eq!(r.seq_end(), 101);
    }

    #[test]
    fn seq_end_wraps() {
        let p = Packet::builder(key(), Ts::ZERO)
            .seq(u32::MAX)
            .payload(2)
            .build();
        assert_eq!(p.seq_end(), 1);
    }

    #[test]
    fn truncation_preserves_headers() {
        let p = Packet::builder(key(), Ts::from_secs(2))
            .payload(1000)
            .flags(TcpFlags::PSH | TcpFlags::ACK)
            .seq(42)
            .build();
        let t = p.truncated();
        assert_eq!(t.wire_len, 64);
        assert_eq!(t.payload_len, 0);
        assert_eq!(t.key, p.key);
        assert_eq!(t.flags, p.flags);
        assert_eq!(t.seq, 42);
        assert_eq!(t.ts, p.ts);
    }

    #[test]
    fn time_shift_both_directions() {
        let p = Packet::builder(key(), Ts::from_secs(10)).build();
        assert_eq!(p.time_shifted(1_000_000_000).ts, Ts::from_secs(11));
        assert_eq!(p.time_shifted(-1_000_000_000).ts, Ts::from_secs(9));
        // Shifting before the origin clamps at zero.
        assert_eq!(p.time_shifted(-20_000_000_000).ts, Ts::ZERO);
    }

    #[test]
    fn handshake_helpers() {
        let s = syn(key(), Ts::ZERO, 1000);
        assert!(s.flags.is_syn_only());
        let sa = syn_ack(&s, Ts::from_micros(50), 5000);
        assert!(sa.flags.is_syn_ack());
        assert_eq!(sa.ack, 1001);
        assert_eq!(sa.key, key().reversed());
    }
}
