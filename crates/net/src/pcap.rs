//! Classic libpcap file format support.
//!
//! The paper's methodology is pcap-centric (MoonGen replays pcaps built
//! with editcap/mergecap/tcprewrite), so the workspace can speak the same
//! format: [`write()`](fn@write) serialises packets (via [`wire::encode`]) into a
//! classic `.pcap` byte stream, [`read`] parses one back. Microsecond
//! timestamp resolution, LINKTYPE_ETHERNET, little-endian — the variant
//! every tool accepts.

use crate::packet::Packet;
use crate::time::Ts;
use crate::wire;
use bytes::{Buf, BufMut, BytesMut};

/// Classic pcap magic (little-endian, microsecond timestamps).
pub const MAGIC_USEC_LE: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Errors from pcap parsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PcapError {
    /// Missing or unknown magic number.
    BadMagic,
    /// File shorter than its own headers claim.
    Truncated,
    /// A contained frame failed to decode.
    BadFrame(wire::WireError),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadMagic => write!(f, "not a classic little-endian pcap"),
            PcapError::Truncated => write!(f, "pcap truncated"),
            PcapError::BadFrame(e) => write!(f, "bad frame in pcap: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Serialise packets into a classic pcap byte stream.
///
/// Each packet is wire-encoded ([`wire::encode`]); `orig_len` records the
/// original wire length so 64-byte-truncated stress traces round-trip
/// their intended size. Labels and payload digests are generation-side
/// metadata and are *not* representable in pcap (by design: a pcap is
/// what the monitor would actually capture).
pub fn write(packets: &[Packet]) -> Vec<u8> {
    write_with(packets, wire::encode)
}

/// [`write`] with IPv6 framing: every packet is encoded via
/// [`wire::encode_v6`] (v4-compatible addresses), so the capture replays
/// through the v6 parse path while reconstructing the same flow keys.
pub fn write_v6(packets: &[Packet]) -> Vec<u8> {
    write_with(packets, wire::encode_v6)
}

fn write_with(packets: &[Packet], encode: impl Fn(&Packet) -> bytes::Bytes) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(24 + packets.len() * 96);
    // Global header.
    buf.put_u32_le(MAGIC_USEC_LE);
    buf.put_u16_le(2); // version major
    buf.put_u16_le(4); // version minor
    buf.put_i32_le(0); // thiszone
    buf.put_u32_le(0); // sigfigs
    buf.put_u32_le(65_535); // snaplen
    buf.put_u32_le(LINKTYPE_ETHERNET);

    for p in packets {
        let frame = encode(p);
        let ts = p.ts.as_nanos();
        buf.put_u32_le((ts / 1_000_000_000) as u32);
        buf.put_u32_le(((ts % 1_000_000_000) / 1_000) as u32);
        buf.put_u32_le(frame.len() as u32); // incl_len (captured)
        buf.put_u32_le(u32::from(p.wire_len).max(frame.len() as u32)); // orig_len
        buf.put_slice(&frame);
    }
    buf.to_vec()
}

/// One record of a classic pcap stream, with the frame bytes still
/// borrowed from the file buffer.
///
/// This is the zero-copy access path: [`records`] yields these without
/// decoding, so a replay source (e.g. `FrameStore::from_pcap`) can pack
/// the raw frames into an arena and parse headers in place via
/// [`wire::FrameView`] instead of materialising owned [`Packet`]s.
#[derive(Clone, Copy, Debug)]
pub struct PcapRecord<'a> {
    /// Capture timestamp (µs resolution widened to the workspace nanos).
    pub ts: Ts,
    /// Original on-the-wire length from the record header (`orig_len`),
    /// which may exceed the captured frame for snapped/truncated traces.
    pub orig_len: u32,
    /// The captured frame bytes (`incl_len` of them).
    pub frame: &'a [u8],
}

/// Iterate over the records of a classic pcap byte stream without
/// decoding the frames.
///
/// Validates the global header eagerly; per-record truncation surfaces as
/// an `Err` item when the iterator reaches it. [`read`] is this iterator
/// plus [`wire::decode`] per record.
pub fn records(data: &[u8]) -> Result<PcapRecords<'_>, PcapError> {
    if data.len() < 24 {
        return Err(PcapError::Truncated);
    }
    let mut buf = data;
    if buf.get_u32_le() != MAGIC_USEC_LE {
        return Err(PcapError::BadMagic);
    }
    buf.advance(20); // rest of the global header
    Ok(PcapRecords { buf })
}

/// Iterator over [`PcapRecord`]s, returned by [`records`].
#[derive(Clone, Debug)]
pub struct PcapRecords<'a> {
    buf: &'a [u8],
}

impl<'a> Iterator for PcapRecords<'a> {
    type Item = Result<PcapRecord<'a>, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buf.is_empty() {
            return None;
        }
        if self.buf.len() < 16 {
            self.buf = &[];
            return Some(Err(PcapError::Truncated));
        }
        let secs = u64::from(self.buf.get_u32_le());
        let usecs = u64::from(self.buf.get_u32_le());
        let incl = self.buf.get_u32_le() as usize;
        let orig = self.buf.get_u32_le();
        if self.buf.len() < incl {
            self.buf = &[];
            return Some(Err(PcapError::Truncated));
        }
        let frame = &self.buf[..incl];
        self.buf.advance(incl);
        Some(Ok(PcapRecord {
            ts: Ts::from_nanos(secs * 1_000_000_000 + usecs * 1_000),
            orig_len: orig,
            frame,
        }))
    }
}

/// Parse a classic pcap byte stream back into packets.
///
/// Timestamps come from the per-record header; metadata-only fields
/// (label, payload digest) come back defaulted, exactly as if the trace
/// had been captured off the wire.
pub fn read(data: &[u8]) -> Result<Vec<Packet>, PcapError> {
    let mut out = Vec::new();
    for rec in records(data)? {
        let rec = rec?;
        let mut pkt = wire::decode(rec.frame, rec.ts).map_err(PcapError::BadFrame)?;
        pkt.wire_len = rec.orig_len.min(u32::from(u16::MAX)) as u16;
        out.push(pkt);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FlowKey;
    use crate::packet::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn packets() -> Vec<Packet> {
        (0..20u32)
            .map(|i| {
                let key = FlowKey::tcp(
                    Ipv4Addr::from(0x0A00_0000 + i),
                    40_000 + i as u16,
                    Ipv4Addr::new(172, 16, 0, 1),
                    443,
                );
                PacketBuilder::new(key, Ts::from_micros(u64::from(i) * 17))
                    .flags(TcpFlags::PSH | TcpFlags::ACK)
                    .seq(i)
                    .payload((i % 700) as u16)
                    .build()
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_headers_and_timestamps() {
        let original = packets();
        let bytes = write(&original);
        let parsed = read(&bytes).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(&parsed) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.flags, b.flags);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.payload_len, b.payload_len);
            // Microsecond resolution: equal because we generate on µs.
            assert_eq!(a.ts, b.ts);
        }
    }

    #[test]
    fn global_header_is_standard() {
        let bytes = write(&packets());
        assert_eq!(&bytes[0..4], &MAGIC_USEC_LE.to_le_bytes());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write(&packets());
        bytes[0] ^= 0xFF;
        assert_eq!(read(&bytes), Err(PcapError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = write(&packets());
        assert_eq!(read(&bytes[..bytes.len() - 3]), Err(PcapError::Truncated));
        assert_eq!(read(&bytes[..10]), Err(PcapError::Truncated));
    }

    #[test]
    fn empty_capture_round_trips() {
        let bytes = write(&[]);
        assert_eq!(bytes.len(), 24);
        assert!(read(&bytes).unwrap().is_empty());
    }

    #[test]
    fn orig_len_survives_truncated_capture() {
        // A 64 B stress rewrite keeps the original wire length in
        // orig_len even though the encoded frame is tiny.
        let p = packets()[5].truncated();
        let parsed = read(&write(&[p])).unwrap();
        assert_eq!(parsed[0].wire_len, 64);
    }

    #[test]
    fn records_iterates_without_decoding() {
        let original = packets();
        let bytes = write(&original);
        let recs: Vec<_> = records(&bytes).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), original.len());
        for (p, r) in original.iter().zip(&recs) {
            assert_eq!(r.ts, p.ts);
            assert_eq!(r.frame, &wire::encode(p)[..]);
            assert_eq!(r.orig_len, u32::from(p.wire_len).max(r.frame.len() as u32));
            // The borrowed frame parses in place to the same packet.
            let v = wire::FrameView::parse(r.frame).unwrap();
            assert_eq!(v.flow_key(), p.key);
        }
        // Truncation mid-record surfaces as an Err item, not a panic.
        let cut = &bytes[..bytes.len() - 3];
        assert!(records(cut).unwrap().any(|r| r.is_err()));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_packet() -> impl Strategy<Value = Packet> {
            (
                (
                    0u32..1 << 16,
                    0u32..1 << 16,
                    1u16..u16::MAX,
                    1u16..u16::MAX,
                    any::<bool>(),
                ),
                (
                    0u64..4_000_000,
                    any::<u32>(),
                    any::<u32>(),
                    0u8..64,
                    0u16..400,
                ),
            )
                .prop_map(|((a, b, ap, bp, udp), (us, seq, ack, fl, pay))| {
                    let key = if udp {
                        FlowKey::udp(
                            Ipv4Addr::from(0x0A00_0000 + a),
                            ap,
                            Ipv4Addr::from(0xAC10_0000 + b),
                            bp,
                        )
                    } else {
                        FlowKey::tcp(
                            Ipv4Addr::from(0x0A00_0000 + a),
                            ap,
                            Ipv4Addr::from(0xAC10_0000 + b),
                            bp,
                        )
                    };
                    PacketBuilder::new(key, Ts::from_micros(us))
                        .flags(TcpFlags(fl))
                        .seq(seq)
                        .ack(ack)
                        .payload(pay)
                        .build()
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// `write` → `read` → `write` is byte-identical: the capture
            /// format is a fixed point after one round trip, so compiled
            /// pcap artifacts can be re-read and re-shipped losslessly.
            #[test]
            fn write_read_reencode_is_byte_identical(
                pkts in prop::collection::vec(arb_packet(), 0..40)
            ) {
                let bytes = write(&pkts);
                let parsed = read(&bytes).unwrap();
                prop_assert_eq!(parsed.len(), pkts.len());
                let reencoded = write(&parsed);
                prop_assert_eq!(reencoded, bytes);
            }

            /// The IPv6 framing is the same byte-level fixed point:
            /// `write_v6` → `read` (through the v6 parse path, folding
            /// the v4-compatible addresses back) → `write_v6` reproduces
            /// the capture exactly, and the parsed packets match the v4
            /// read of the same workload field-for-field.
            #[test]
            fn v6_write_read_reencode_is_byte_identical(
                pkts in prop::collection::vec(arb_packet(), 0..40)
            ) {
                let bytes6 = write_v6(&pkts);
                let parsed6 = read(&bytes6).unwrap();
                prop_assert_eq!(parsed6.len(), pkts.len());
                let reencoded = write_v6(&parsed6);
                prop_assert_eq!(reencoded, bytes6);
                // Field-level agreement with the v4 framing (wire_len
                // differs by the 20-byte larger v6 header when derived
                // from the frame, so compare the header-borne fields).
                let parsed4 = read(&write(&pkts)).unwrap();
                for (a, b) in parsed6.iter().zip(&parsed4) {
                    prop_assert_eq!(a.key, b.key);
                    prop_assert_eq!(a.flags, b.flags);
                    prop_assert_eq!(a.seq, b.seq);
                    prop_assert_eq!(a.ack, b.ack);
                    prop_assert_eq!(a.payload_len, b.payload_len);
                    prop_assert_eq!(a.ts, b.ts);
                }
            }
        }
    }
}
