//! Classic libpcap file format support.
//!
//! The paper's methodology is pcap-centric (MoonGen replays pcaps built
//! with editcap/mergecap/tcprewrite), so the workspace can speak the same
//! format: [`write()`](fn@write) serialises packets (via [`wire::encode`]) into a
//! classic `.pcap` byte stream, [`read`] parses one back. Microsecond
//! timestamp resolution, LINKTYPE_ETHERNET, little-endian — the variant
//! every tool accepts.

use crate::packet::Packet;
use crate::time::Ts;
use crate::wire;
use bytes::{Buf, BufMut, BytesMut};

/// Classic pcap magic (little-endian, microsecond timestamps).
pub const MAGIC_USEC_LE: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Errors from pcap parsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PcapError {
    /// Missing or unknown magic number.
    BadMagic,
    /// File shorter than its own headers claim.
    Truncated,
    /// A contained frame failed to decode.
    BadFrame(wire::WireError),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadMagic => write!(f, "not a classic little-endian pcap"),
            PcapError::Truncated => write!(f, "pcap truncated"),
            PcapError::BadFrame(e) => write!(f, "bad frame in pcap: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Serialise packets into a classic pcap byte stream.
///
/// Each packet is wire-encoded ([`wire::encode`]); `orig_len` records the
/// original wire length so 64-byte-truncated stress traces round-trip
/// their intended size. Labels and payload digests are generation-side
/// metadata and are *not* representable in pcap (by design: a pcap is
/// what the monitor would actually capture).
pub fn write(packets: &[Packet]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(24 + packets.len() * 96);
    // Global header.
    buf.put_u32_le(MAGIC_USEC_LE);
    buf.put_u16_le(2); // version major
    buf.put_u16_le(4); // version minor
    buf.put_i32_le(0); // thiszone
    buf.put_u32_le(0); // sigfigs
    buf.put_u32_le(65_535); // snaplen
    buf.put_u32_le(LINKTYPE_ETHERNET);

    for p in packets {
        let frame = wire::encode(p);
        let ts = p.ts.as_nanos();
        buf.put_u32_le((ts / 1_000_000_000) as u32);
        buf.put_u32_le(((ts % 1_000_000_000) / 1_000) as u32);
        buf.put_u32_le(frame.len() as u32); // incl_len (captured)
        buf.put_u32_le(u32::from(p.wire_len).max(frame.len() as u32)); // orig_len
        buf.put_slice(&frame);
    }
    buf.to_vec()
}

/// Parse a classic pcap byte stream back into packets.
///
/// Timestamps come from the per-record header; metadata-only fields
/// (label, payload digest) come back defaulted, exactly as if the trace
/// had been captured off the wire.
pub fn read(data: &[u8]) -> Result<Vec<Packet>, PcapError> {
    let mut buf = data;
    if buf.len() < 24 {
        return Err(PcapError::Truncated);
    }
    if buf.get_u32_le() != MAGIC_USEC_LE {
        return Err(PcapError::BadMagic);
    }
    buf.advance(20); // rest of the global header

    let mut out = Vec::new();
    while !buf.is_empty() {
        if buf.len() < 16 {
            return Err(PcapError::Truncated);
        }
        let secs = u64::from(buf.get_u32_le());
        let usecs = u64::from(buf.get_u32_le());
        let incl = buf.get_u32_le() as usize;
        let orig = buf.get_u32_le();
        if buf.len() < incl {
            return Err(PcapError::Truncated);
        }
        let frame = &buf[..incl];
        let ts = Ts::from_nanos(secs * 1_000_000_000 + usecs * 1_000);
        let mut pkt = wire::decode(frame, ts).map_err(PcapError::BadFrame)?;
        pkt.wire_len = orig.min(u32::from(u16::MAX)) as u16;
        out.push(pkt);
        buf.advance(incl);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FlowKey;
    use crate::packet::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn packets() -> Vec<Packet> {
        (0..20u32)
            .map(|i| {
                let key = FlowKey::tcp(
                    Ipv4Addr::from(0x0A00_0000 + i),
                    40_000 + i as u16,
                    Ipv4Addr::new(172, 16, 0, 1),
                    443,
                );
                PacketBuilder::new(key, Ts::from_micros(u64::from(i) * 17))
                    .flags(TcpFlags::PSH | TcpFlags::ACK)
                    .seq(i)
                    .payload((i % 700) as u16)
                    .build()
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_headers_and_timestamps() {
        let original = packets();
        let bytes = write(&original);
        let parsed = read(&bytes).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(&parsed) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.flags, b.flags);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.payload_len, b.payload_len);
            // Microsecond resolution: equal because we generate on µs.
            assert_eq!(a.ts, b.ts);
        }
    }

    #[test]
    fn global_header_is_standard() {
        let bytes = write(&packets());
        assert_eq!(&bytes[0..4], &MAGIC_USEC_LE.to_le_bytes());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write(&packets());
        bytes[0] ^= 0xFF;
        assert_eq!(read(&bytes), Err(PcapError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = write(&packets());
        assert_eq!(read(&bytes[..bytes.len() - 3]), Err(PcapError::Truncated));
        assert_eq!(read(&bytes[..10]), Err(PcapError::Truncated));
    }

    #[test]
    fn empty_capture_round_trips() {
        let bytes = write(&[]);
        assert_eq!(bytes.len(), 24);
        assert!(read(&bytes).unwrap().is_empty());
    }

    #[test]
    fn orig_len_survives_truncated_capture() {
        // A 64 B stress rewrite keeps the original wire length in
        // orig_len even though the encoded frame is tiny.
        let p = packets()[5].truncated();
        let parsed = read(&write(&[p])).unwrap();
        assert_eq!(parsed[0].wire_len, 64);
    }
}
