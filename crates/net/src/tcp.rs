//! TCP control-flag handling.
//!
//! Flow-state tracking in SmartWatch is driven almost entirely by TCP flag
//! sequences (SYN → SYN/ACK → ACK handshakes, RST injection, FIN teardown),
//! so flags get a small dedicated type rather than a raw `u8`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A set of TCP control flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No flags set.
    pub const NONE: TcpFlags = TcpFlags(0);
    /// FIN: sender has finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronise sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// SYN|ACK: the second step of the three-way handshake.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// FIN|ACK: common teardown segment.
    pub const FIN_ACK: TcpFlags = TcpFlags(0x11);
    /// RST|ACK: typical refusal segment.
    pub const RST_ACK: TcpFlags = TcpFlags(0x14);

    /// True if all flags in `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any flag in `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// True if the SYN flag is set (with or without ACK).
    pub fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }

    /// True if this is a pure SYN (no ACK): a connection-open attempt.
    pub fn is_syn_only(self) -> bool {
        self.contains(TcpFlags::SYN) && !self.contains(TcpFlags::ACK)
    }

    /// True if this is a SYN/ACK: the passive side accepting.
    pub fn is_syn_ack(self) -> bool {
        self.contains(TcpFlags::SYN_ACK)
    }

    /// True if the RST flag is set.
    pub fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }

    /// True if the FIN flag is set.
    pub fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }

    /// True if the ACK flag is set.
    pub fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::FIN, "F"),
            (TcpFlags::SYN, "S"),
            (TcpFlags::RST, "R"),
            (TcpFlags::PSH, "P"),
            (TcpFlags::ACK, "A"),
            (TcpFlags::URG, "U"),
        ];
        let mut any = false;
        for (flag, n) in names {
            if self.contains(flag) {
                write!(f, "{n}")?;
                any = true;
            }
        }
        if !any {
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(TcpFlags::SYN.is_syn_only());
        assert!(!TcpFlags::SYN_ACK.is_syn_only());
        assert!(TcpFlags::SYN_ACK.is_syn_ack());
        assert!(TcpFlags::SYN_ACK.syn());
        assert!(TcpFlags::RST_ACK.rst());
        assert!(TcpFlags::FIN_ACK.fin());
        assert!(TcpFlags::FIN_ACK.ack());
        assert!(!TcpFlags::NONE.syn());
    }

    #[test]
    fn set_operations() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert_eq!(f, TcpFlags::SYN_ACK);
        assert!(f.intersects(TcpFlags::SYN));
        assert!(!f.intersects(TcpFlags::RST));
        assert_eq!(f & TcpFlags::SYN, TcpFlags::SYN);
        let mut g = TcpFlags::NONE;
        g |= TcpFlags::RST;
        assert!(g.rst());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", TcpFlags::SYN_ACK), "SA");
        assert_eq!(format!("{:?}", TcpFlags::NONE), ".");
        assert_eq!(format!("{:?}", TcpFlags::FIN | TcpFlags::PSH), "FP");
    }
}
