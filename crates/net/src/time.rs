//! Virtual time for deterministic simulation.
//!
//! SmartWatch experiments must be exactly replayable: the FlowCache eviction
//! order, the EWMA mode switch-over, the timing-wheel expiry of buffered RST
//! packets — all of it depends on packet timestamps. Using the wall clock
//! would make every run different, so the whole workspace runs on a virtual
//! clock with nanosecond resolution.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Ts(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dur(pub u64);

impl Ts {
    /// The origin of virtual time.
    pub const ZERO: Ts = Ts(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Ts {
        Ts(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Ts {
        Ts(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Ts {
        Ts(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Ts {
        Ts(ns)
    }

    /// Nanoseconds since the trace origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the trace origin (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since the trace origin (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the trace origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: Ts) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Checked time advance.
    pub fn checked_add(self, d: Dur) -> Option<Ts> {
        self.0.checked_add(d.0).map(Ts)
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Dur {
        Dur((s * 1e9).round().max(0.0) as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }

    /// Divide by an integer factor.
    pub const fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Add<Dur> for Ts {
    type Output = Ts;
    fn add(self, rhs: Dur) -> Ts {
        Ts(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Ts {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Ts {
    type Output = Ts;
    fn sub(self, rhs: Dur) -> Ts {
        Ts(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Ts> for Ts {
    type Output = Dur;
    fn sub(self, rhs: Ts) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Debug for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:09}s",
            self.0 / 1_000_000_000,
            self.0 % 1_000_000_000
        )
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Ts::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Ts::from_millis(5).as_micros(), 5_000);
        assert_eq!(Ts::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Dur::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = Ts::from_secs(1) + Dur::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - Ts::from_secs(1)).as_millis(), 500);
        // Saturating: earlier - later yields zero rather than wrapping.
        assert_eq!((Ts::from_secs(1) - Ts::from_secs(2)).as_nanos(), 0);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Ts::from_secs(1).since(Ts::from_secs(5)), Dur::ZERO);
        assert_eq!(Ts::from_secs(5).since(Ts::from_secs(1)), Dur::from_secs(4));
    }

    #[test]
    fn float_conversion() {
        let d = Dur::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", Ts::from_secs(1)), "1.000000000s");
    }

    #[test]
    fn ordering() {
        assert!(Ts::from_secs(1) < Ts::from_secs(2));
        assert!(Dur::from_micros(1) < Dur::from_millis(1));
    }
}
