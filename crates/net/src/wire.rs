//! Wire-format encode/decode: Ethernet II / IPv4 / IPv6 / TCP / UDP.
//!
//! The simulators mostly exchange [`crate::Packet`] metadata records
//! directly, but the platform also has to interoperate with byte-level
//! sources (pcap-style ingestion, the MoonGen-equivalent replay driver, and
//! wire-level tests that confirm the metadata model is faithful). This
//! module provides smoltcp-flavoured encoding and parsing: explicit,
//! checksum-correct, no clever tricks.
//!
//! Only the subset of each protocol that SmartWatch observes is supported:
//! Ethernet II frames, IPv4 without options or fragmentation, the IPv6
//! fixed header without extension chains, TCP without options beyond
//! padding, and UDP. Anything else parses as [`WireError::Unsupported`].

use crate::key::{FlowKey, Proto, RawTuple};
use crate::packet::Packet;
use crate::tcp::TcpFlags;
use crate::time::Ts;
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// Ethernet II header length.
pub const ETH_HDR_LEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_HDR_LEN: usize = 20;
/// IPv6 fixed header length (no extension headers).
pub const IPV6_HDR_LEN: usize = 40;
/// TCP header length (no options).
pub const TCP_HDR_LEN: usize = 20;
/// UDP header length.
pub const UDP_HDR_LEN: usize = 8;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86DD;

/// Errors from wire parsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Frame shorter than the headers it claims to carry.
    Truncated,
    /// Not an IPv4 frame / unsupported header variant.
    Unsupported,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// TCP/UDP checksum mismatch.
    BadTransportChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Unsupported => write!(f, "unsupported header"),
            WireError::BadIpChecksum => write!(f, "bad IPv4 checksum"),
            WireError::BadTransportChecksum => write!(f, "bad transport checksum"),
        }
    }
}

impl std::error::Error for WireError {}

/// RFC 1071 internet checksum over `data`, starting from `initial`
/// (used to fold in the pseudo-header).
pub fn checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) -> u32 {
    pseudo_header_sum_raw(u32::from(src), u32::from(dst), proto, len)
}

fn pseudo_header_sum_raw(src: u32, dst: u32, proto: u8, len: u16) -> u32 {
    (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF) + u32::from(proto) + u32::from(len)
}

/// 16-bit-word sum of one 128-bit address (the per-address share of the
/// RFC 8200 IPv6 pseudo-header).
fn addr_words_sum_v6(a: u128) -> u32 {
    let b = a.to_be_bytes();
    b.chunks_exact(2)
        .map(|c| u32::from(u16::from_be_bytes([c[0], c[1]])))
        .sum()
}

fn pseudo_header_sum_v6(src: u128, dst: u128, proto: u8, len: u16) -> u32 {
    addr_words_sum_v6(src) + addr_words_sum_v6(dst) + u32::from(proto) + u32::from(len)
}

/// IPv6 extension-header next-header values the parser refuses to walk
/// (hop-by-hop, routing, fragment, ESP, AH, destination options): chains
/// are out of scope, so frames carrying them are [`WireError::Unsupported`]
/// rather than silently misparsed as transport payload.
const V6_EXTENSION_HEADERS: [u8; 6] = [0, 43, 44, 50, 51, 60];

/// Encode a [`Packet`] as an Ethernet II / IPv4 / {TCP,UDP} frame.
///
/// The payload is synthesised as `payload_len` zero bytes (SmartWatch never
/// inspects payload contents; the digest field exists for that). MAC
/// addresses are fixed documentation values. Checksums are valid.
pub fn encode(p: &Packet) -> Bytes {
    let transport_hdr = match p.key.proto {
        Proto::Tcp => TCP_HDR_LEN,
        Proto::Udp => UDP_HDR_LEN,
        _ => 0,
    };
    let ip_total = IPV4_HDR_LEN + transport_hdr + usize::from(p.payload_len);
    let mut buf = BytesMut::with_capacity(ETH_HDR_LEN + ip_total);

    // Ethernet II.
    buf.put_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x01]); // dst MAC
    buf.put_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x02]); // src MAC
    buf.put_u16(ETHERTYPE_IPV4);

    // IPv4.
    let ip_start = buf.len();
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(0); // DSCP/ECN
    buf.put_u16(ip_total as u16);
    buf.put_u16(0); // identification
    buf.put_u16(0x4000); // don't fragment
    buf.put_u8(64); // TTL
    buf.put_u8(p.key.proto.number());
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&p.key.src_ip.octets());
    buf.put_slice(&p.key.dst_ip.octets());
    let ip_csum = checksum(&buf[ip_start..ip_start + IPV4_HDR_LEN], 0);
    buf[ip_start + 10..ip_start + 12].copy_from_slice(&ip_csum.to_be_bytes());

    // Transport.
    let t_start = buf.len();
    match p.key.proto {
        Proto::Tcp => {
            buf.put_u16(p.key.src_port);
            buf.put_u16(p.key.dst_port);
            buf.put_u32(p.seq);
            buf.put_u32(p.ack);
            buf.put_u8(0x50); // data offset 5
            buf.put_u8(p.flags.0);
            buf.put_u16(0xFFFF); // window
            buf.put_u16(0); // checksum placeholder
            buf.put_u16(0); // urgent pointer
        }
        Proto::Udp => {
            buf.put_u16(p.key.src_port);
            buf.put_u16(p.key.dst_port);
            buf.put_u16((UDP_HDR_LEN + usize::from(p.payload_len)) as u16);
            buf.put_u16(0); // checksum placeholder
        }
        _ => {}
    }
    buf.put_bytes(0, usize::from(p.payload_len));

    // Transport checksum over pseudo-header + segment.
    let seg_len = (buf.len() - t_start) as u16;
    match p.key.proto {
        Proto::Tcp => {
            let ph = pseudo_header_sum(p.key.src_ip, p.key.dst_ip, 6, seg_len);
            let csum = checksum(&buf[t_start..], ph);
            buf[t_start + 16..t_start + 18].copy_from_slice(&csum.to_be_bytes());
        }
        Proto::Udp => {
            let ph = pseudo_header_sum(p.key.src_ip, p.key.dst_ip, 17, seg_len);
            let csum = checksum(&buf[t_start..], ph);
            // UDP transmits 0xFFFF when the computed checksum is zero.
            let csum = if csum == 0 { 0xFFFF } else { csum };
            buf[t_start + 6..t_start + 8].copy_from_slice(&csum.to_be_bytes());
        }
        _ => {}
    }

    buf.freeze()
}

/// Encode a [`Packet`] as an Ethernet II / IPv6 / {TCP,UDP} frame.
///
/// The flow model is 32-bit, so addresses are embedded in the
/// v4-compatible form `::a.b.c.d` — the range on which
/// [`crate::key::fold_ip`] is the identity. Parsing such a frame
/// therefore reconstructs exactly the same [`FlowKey`] (and digests) as
/// the [`encode`] encoding of the same packet, which is what makes a
/// v6-compiled replay decision-identical to the v4/synthetic runs.
/// Checksums are valid; a computed-zero UDP checksum transmits as 0xFFFF
/// (mandatory checksum over IPv6).
pub fn encode_v6(p: &Packet) -> Bytes {
    let transport_hdr = match p.key.proto {
        Proto::Tcp => TCP_HDR_LEN,
        Proto::Udp => UDP_HDR_LEN,
        _ => 0,
    };
    let ip_payload = transport_hdr + usize::from(p.payload_len);
    let src = u128::from(u32::from(p.key.src_ip));
    let dst = u128::from(u32::from(p.key.dst_ip));
    let mut buf = BytesMut::with_capacity(ETH_HDR_LEN + IPV6_HDR_LEN + ip_payload);

    // Ethernet II.
    buf.put_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x01]); // dst MAC
    buf.put_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x02]); // src MAC
    buf.put_u16(ETHERTYPE_IPV6);

    // IPv6 fixed header (no extension chain).
    buf.put_u32(0x6000_0000); // version 6, TC 0, flow label 0
    buf.put_u16(ip_payload as u16);
    buf.put_u8(p.key.proto.number()); // next header
    buf.put_u8(64); // hop limit
    buf.put_slice(&src.to_be_bytes());
    buf.put_slice(&dst.to_be_bytes());

    // Transport.
    let t_start = buf.len();
    match p.key.proto {
        Proto::Tcp => {
            buf.put_u16(p.key.src_port);
            buf.put_u16(p.key.dst_port);
            buf.put_u32(p.seq);
            buf.put_u32(p.ack);
            buf.put_u8(0x50); // data offset 5
            buf.put_u8(p.flags.0);
            buf.put_u16(0xFFFF); // window
            buf.put_u16(0); // checksum placeholder
            buf.put_u16(0); // urgent pointer
        }
        Proto::Udp => {
            buf.put_u16(p.key.src_port);
            buf.put_u16(p.key.dst_port);
            buf.put_u16((UDP_HDR_LEN + usize::from(p.payload_len)) as u16);
            buf.put_u16(0); // checksum placeholder
        }
        _ => {}
    }
    buf.put_bytes(0, usize::from(p.payload_len));

    // Transport checksum over the v6 pseudo-header + segment.
    let seg_len = (buf.len() - t_start) as u16;
    match p.key.proto {
        Proto::Tcp => {
            let ph = pseudo_header_sum_v6(src, dst, 6, seg_len);
            let csum = checksum(&buf[t_start..], ph);
            buf[t_start + 16..t_start + 18].copy_from_slice(&csum.to_be_bytes());
        }
        Proto::Udp => {
            let ph = pseudo_header_sum_v6(src, dst, 17, seg_len);
            let csum = checksum(&buf[t_start..], ph);
            let csum = if csum == 0 { 0xFFFF } else { csum };
            buf[t_start + 6..t_start + 8].copy_from_slice(&csum.to_be_bytes());
        }
        _ => {}
    }

    buf.freeze()
}

/// A validated, borrowed view of an Ethernet II / {IPv4,IPv6} / {TCP,UDP}
/// frame.
///
/// This is the zero-copy half of the wire data plane: [`FrameView::parse`]
/// walks the headers in place over `&[u8]` — no allocation, no copy into a
/// [`Packet`] — and exposes exactly the fields the ingest hot path needs
/// (the [`RawTuple`] for [`crate::FlowHasher::digest_raw`], TCP
/// flags/seq/ack for the detectors, payload length for byte accounting).
/// [`decode`] is now a thin wrapper — `parse` followed by
/// [`FrameView::to_packet`] — so the owned and borrowed parse paths share
/// one set of validation semantics:
///
/// * IPv4 header checksum verified; IP options ([`WireError::Unsupported`])
///   and fragments are out of scope.
/// * TCP options are *skipped*, not rejected: any data offset ≥ 5 words
///   that fits the segment parses, and the payload length excludes the
///   options (real pcaps carry SACK/timestamps on most segments).
/// * UDP checksum 0 means "no checksum" (RFC 768) and is accepted without
///   verification; non-zero checksums are verified.
/// * Trailing bytes beyond the IP total length (Ethernet padding) are
///   ignored.
#[derive(Clone, Copy, Debug)]
pub struct FrameView<'a> {
    frame: &'a [u8],
    tuple: RawTuple,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    payload_len: u16,
}

impl<'a> FrameView<'a> {
    /// Parse and validate `frame` in place. Dispatches on the EtherType:
    /// IPv4 (options/fragments unsupported) or the IPv6 fixed header
    /// (extension chains unsupported; UDP checksums are mandatory over
    /// IPv6 per RFC 8200, so an all-zero one is rejected rather than
    /// accepted unverified as on IPv4).
    pub fn parse(frame: &'a [u8]) -> Result<FrameView<'a>, WireError> {
        if frame.len() < ETH_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
        let ip = &frame[ETH_HDR_LEN..];
        let (src_ip, dst_ip, proto, seg, ph_addr, udp_zero_is_none) = match ethertype {
            ETHERTYPE_IPV4 => {
                if ip.len() < IPV4_HDR_LEN {
                    return Err(WireError::Truncated);
                }
                let vihl = ip[0];
                if vihl >> 4 != 4 {
                    return Err(WireError::Unsupported);
                }
                let ihl = usize::from(vihl & 0x0F) * 4;
                if ihl != IPV4_HDR_LEN {
                    return Err(WireError::Unsupported); // IP options not modelled
                }
                if checksum(&ip[..IPV4_HDR_LEN], 0) != 0 {
                    return Err(WireError::BadIpChecksum);
                }
                let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
                if ip.len() < total_len || total_len < IPV4_HDR_LEN {
                    return Err(WireError::Truncated);
                }
                let src = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
                let dst = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
                let ph_addr = (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF);
                (
                    u128::from(src),
                    u128::from(dst),
                    ip[9],
                    &ip[IPV4_HDR_LEN..total_len],
                    ph_addr,
                    true,
                )
            }
            ETHERTYPE_IPV6 => {
                if ip.len() < IPV6_HDR_LEN {
                    return Err(WireError::Truncated);
                }
                if ip[0] >> 4 != 6 {
                    return Err(WireError::Unsupported);
                }
                let next = ip[6];
                if V6_EXTENSION_HEADERS.contains(&next) {
                    return Err(WireError::Unsupported); // no extension chains
                }
                let payload_len = usize::from(u16::from_be_bytes([ip[4], ip[5]]));
                if ip.len() < IPV6_HDR_LEN + payload_len {
                    return Err(WireError::Truncated);
                }
                let src = u128::from_be_bytes(ip[8..24].try_into().expect("16-byte slice"));
                let dst = u128::from_be_bytes(ip[24..40].try_into().expect("16-byte slice"));
                let ph_addr = addr_words_sum_v6(src) + addr_words_sum_v6(dst);
                (
                    src,
                    dst,
                    next,
                    &ip[IPV6_HDR_LEN..IPV6_HDR_LEN + payload_len],
                    ph_addr,
                    false,
                )
            }
            _ => return Err(WireError::Unsupported),
        };

        let (src_port, dst_port, seq, ack, flags, payload_len) = match proto {
            6 => {
                if seg.len() < TCP_HDR_LEN {
                    return Err(WireError::Truncated);
                }
                let data_off = usize::from(seg[12] >> 4) * 4;
                if data_off < TCP_HDR_LEN || seg.len() < data_off {
                    return Err(WireError::Truncated);
                }
                let ph = ph_addr + 6 + seg.len() as u32;
                if checksum(seg, ph) != 0 {
                    return Err(WireError::BadTransportChecksum);
                }
                (
                    u16::from_be_bytes([seg[0], seg[1]]),
                    u16::from_be_bytes([seg[2], seg[3]]),
                    u32::from_be_bytes([seg[4], seg[5], seg[6], seg[7]]),
                    u32::from_be_bytes([seg[8], seg[9], seg[10], seg[11]]),
                    TcpFlags(seg[13]),
                    (seg.len() - data_off) as u16,
                )
            }
            17 => {
                if seg.len() < UDP_HDR_LEN {
                    return Err(WireError::Truncated);
                }
                // RFC 768: an all-zero IPv4 checksum means "none
                // generated" and is accepted unverified. Over IPv6 the
                // checksum is mandatory (RFC 8200 §8.1).
                let udp_csum = u16::from_be_bytes([seg[6], seg[7]]);
                if udp_csum == 0 {
                    if !udp_zero_is_none {
                        return Err(WireError::BadTransportChecksum);
                    }
                } else {
                    let ph = ph_addr + 17 + seg.len() as u32;
                    if checksum(seg, ph) != 0 {
                        return Err(WireError::BadTransportChecksum);
                    }
                }
                (
                    u16::from_be_bytes([seg[0], seg[1]]),
                    u16::from_be_bytes([seg[2], seg[3]]),
                    0,
                    0,
                    TcpFlags::NONE,
                    (seg.len() - UDP_HDR_LEN) as u16,
                )
            }
            _ => (0, 0, 0, 0, TcpFlags::NONE, 0),
        };

        Ok(FrameView {
            frame,
            tuple: RawTuple {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                proto,
            },
            seq,
            ack,
            flags,
            payload_len,
        })
    }

    /// The raw frame bytes this view borrows.
    pub fn frame(&self) -> &'a [u8] {
        self.frame
    }

    /// The directed 5-tuple as wire integers — the input to
    /// [`crate::FlowHasher::digest_raw`] / `digest_batch`.
    #[inline]
    pub fn raw_tuple(&self) -> RawTuple {
        self.tuple
    }

    /// The directed [`FlowKey`] (materialised on demand; the hot path
    /// uses [`FrameView::raw_tuple`] instead).
    pub fn flow_key(&self) -> FlowKey {
        self.tuple.key()
    }

    /// Raw IP protocol number.
    #[inline]
    pub fn proto_number(&self) -> u8 {
        self.tuple.proto
    }

    /// Transport protocol.
    pub fn proto(&self) -> Proto {
        Proto::from_number(self.tuple.proto)
    }

    /// TCP flags ([`TcpFlags::NONE`] for non-TCP).
    #[inline]
    pub fn flags(&self) -> TcpFlags {
        self.flags
    }

    /// TCP sequence number (0 for non-TCP).
    #[inline]
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// TCP acknowledgement number (0 for non-TCP).
    #[inline]
    pub fn ack(&self) -> u32 {
        self.ack
    }

    /// Transport payload length in bytes (options excluded for TCP).
    #[inline]
    pub fn payload_len(&self) -> u16 {
        self.payload_len
    }

    /// Materialise an owned [`Packet`] metadata record. `ts` is supplied
    /// by the capture layer (frames do not carry timestamps).
    pub fn to_packet(&self, ts: Ts) -> Packet {
        Packet {
            key: self.flow_key(),
            ts,
            wire_len: self.frame.len().max(usize::from(Packet::MIN_WIRE_LEN)) as u16,
            payload_len: self.payload_len,
            flags: self.flags,
            seq: self.seq,
            ack: self.ack,
            payload_digest: 0,
            label: Default::default(),
        }
    }
}

/// Parse an Ethernet II / IPv4 / {TCP,UDP} frame back into a [`Packet`]
/// metadata record, validating checksums. `ts` is supplied by the capture
/// layer (frames do not carry timestamps).
///
/// Equivalent to [`FrameView::parse`] + [`FrameView::to_packet`]; the
/// zero-copy ingest path uses the [`FrameView`] half directly.
pub fn decode(frame: &[u8], ts: Ts) -> Result<Packet, WireError> {
    Ok(FrameView::parse(frame)?.to_packet(ts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn tcp_packet() -> Packet {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 1, 2, 3),
            43210,
            Ipv4Addr::new(172, 16, 9, 8),
            443,
        );
        PacketBuilder::new(key, Ts::from_micros(777))
            .flags(TcpFlags::PSH | TcpFlags::ACK)
            .seq(0xDEADBEEF)
            .ack(0x01020304)
            .payload(37)
            .build()
    }

    #[test]
    fn tcp_round_trip() {
        let p = tcp_packet();
        let frame = encode(&p);
        let q = decode(&frame, p.ts).unwrap();
        assert_eq!(q.key, p.key);
        assert_eq!(q.flags, p.flags);
        assert_eq!(q.seq, p.seq);
        assert_eq!(q.ack, p.ack);
        assert_eq!(q.payload_len, p.payload_len);
    }

    #[test]
    fn udp_round_trip() {
        let key = FlowKey::udp(
            Ipv4Addr::new(192, 168, 1, 1),
            53,
            Ipv4Addr::new(192, 168, 1, 99),
            34567,
        );
        let p = PacketBuilder::new(key, Ts::ZERO).payload(120).build();
        let frame = encode(&p);
        let q = decode(&frame, Ts::ZERO).unwrap();
        assert_eq!(q.key, key);
        assert_eq!(q.payload_len, 120);
        assert!(!q.is_tcp());
    }

    #[test]
    fn corrupted_ip_checksum_rejected() {
        let frame = encode(&tcp_packet());
        let mut bad = frame.to_vec();
        bad[ETH_HDR_LEN + 12] ^= 0xFF; // flip a src-ip byte
        assert_eq!(decode(&bad, Ts::ZERO), Err(WireError::BadIpChecksum));
    }

    #[test]
    fn corrupted_tcp_payload_rejected() {
        let frame = encode(&tcp_packet());
        let mut bad = frame.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x01; // flip a payload bit
        assert_eq!(decode(&bad, Ts::ZERO), Err(WireError::BadTransportChecksum));
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = encode(&tcp_packet());
        assert_eq!(decode(&frame[..20], Ts::ZERO), Err(WireError::Truncated));
        assert_eq!(decode(&[], Ts::ZERO), Err(WireError::Truncated));
    }

    #[test]
    fn mislabelled_ethertype_rejected() {
        // A v4 header behind the v6 EtherType fails the version check …
        let mut frame = encode(&tcp_packet()).to_vec();
        frame[12] = 0x86;
        frame[13] = 0xDD;
        assert_eq!(decode(&frame, Ts::ZERO), Err(WireError::Unsupported));
        // … and an unknown EtherType is unsupported outright.
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        assert_eq!(decode(&frame, Ts::ZERO), Err(WireError::Unsupported));
    }

    #[test]
    fn v6_round_trip_matches_the_v4_encoding_of_the_same_packet() {
        // encode_v6 embeds v4-compatible addresses, so parsing either
        // framing of the same packet must land on identical Packet fields
        // (v6 frames are 20 B longer, so wire_len differs when derived
        // from the frame — compare the parse-derived fields instead).
        let key_of = |proto| {
            FlowKey::new(
                Ipv4Addr::new(10, 1, 2, 3),
                Ipv4Addr::new(172, 16, 9, 8),
                43210,
                443,
                proto,
            )
        };
        for proto in [Proto::Tcp, Proto::Udp, Proto::Icmp, Proto::Other(89)] {
            let p = PacketBuilder::new(key_of(proto), Ts::from_micros(9))
                .flags(TcpFlags::SYN | TcpFlags::ACK)
                .seq(77)
                .ack(12)
                .payload(33)
                .build();
            let f4 = encode(&p);
            let f6 = encode_v6(&p);
            let v4 = FrameView::parse(&f4).unwrap();
            let v6 = FrameView::parse(&f6).unwrap();
            assert_eq!(v6.flow_key(), v4.flow_key(), "{proto}");
            assert_eq!(v6.raw_tuple().key(), v4.raw_tuple().key());
            assert_eq!(v6.flags(), v4.flags());
            assert_eq!(v6.seq(), v4.seq());
            assert_eq!(v6.ack(), v4.ack());
            assert_eq!(v6.payload_len(), v4.payload_len());
            assert_eq!(v6.proto(), v4.proto());
        }
    }

    /// Hand-build an IPv6/TCP frame with arbitrary 128-bit addresses and
    /// valid checksums.
    fn v6_tcp_frame(src: u128, dst: u128, payload: &[u8]) -> Vec<u8> {
        let seg_len = TCP_HDR_LEN + payload.len();
        let mut f = Vec::new();
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02]);
        f.extend_from_slice(&ETHERTYPE_IPV6.to_be_bytes());
        f.extend_from_slice(&0x6000_0000u32.to_be_bytes());
        f.extend_from_slice(&(seg_len as u16).to_be_bytes());
        f.push(6); // next header: TCP
        f.push(64); // hop limit
        f.extend_from_slice(&src.to_be_bytes());
        f.extend_from_slice(&dst.to_be_bytes());
        let t_start = f.len();
        f.extend_from_slice(&40000u16.to_be_bytes());
        f.extend_from_slice(&443u16.to_be_bytes());
        f.extend_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        f.extend_from_slice(&0x0102_0304u32.to_be_bytes());
        f.push(0x50);
        f.push(TcpFlags::ACK.0);
        f.extend_from_slice(&0xFFFFu16.to_be_bytes());
        f.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent placeholder
        f.extend_from_slice(payload);
        let ph = pseudo_header_sum_v6(src, dst, 6, seg_len as u16);
        let csum = checksum(&f[t_start..], ph);
        f[t_start + 16..t_start + 18].copy_from_slice(&csum.to_be_bytes());
        f
    }

    #[test]
    fn v6_native_addresses_digest_like_their_folded_keys() {
        use crate::key::fold_ip;
        use crate::FlowHasher;
        let src: u128 = 0x2001_0db8_0000_0000_0000_0000_dead_beef;
        let dst: u128 = 0xfd00_0000_0000_0000_0000_0000_0000_0007;
        let frame = v6_tcp_frame(src, dst, &[0xAB; 21]);
        let v = FrameView::parse(&frame).expect("native v6 frame parses");
        let t = v.raw_tuple();
        assert_eq!(t.src_ip, src);
        assert_eq!(t.dst_ip, dst);
        assert_eq!(u32::from(v.flow_key().src_ip), fold_ip(src));
        assert_eq!(u32::from(v.flow_key().dst_ip), fold_ip(dst));
        // The raw digest path agrees with the FlowKey path over the fold,
        // so wire-ingested v6 flows match verdict tables keyed by the
        // folded key.
        let h = FlowHasher::new(0x51CC);
        assert_eq!(h.digest_raw(t), h.digest_symmetric(&v.flow_key()));
        assert_eq!(v.payload_len(), 21);
        assert_eq!(v.flags(), TcpFlags::ACK);
    }

    #[test]
    fn v6_extension_chains_and_corruption_rejected() {
        let src: u128 = 1 << 96;
        let dst: u128 = 2;
        let good = v6_tcp_frame(src, dst, &[1, 2, 3]);
        assert!(FrameView::parse(&good).is_ok());
        // Extension-header next-header values are out of scope.
        for next in [0u8, 43, 44, 50, 51, 60] {
            let mut f = good.clone();
            f[ETH_HDR_LEN + 6] = next;
            assert_eq!(
                FrameView::parse(&f).unwrap_err(),
                WireError::Unsupported,
                "next-header {next} must be rejected, not misparsed"
            );
        }
        // Corrupt payload breaks the mandatory transport checksum.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(
            FrameView::parse(&bad).unwrap_err(),
            WireError::BadTransportChecksum
        );
        // Truncation below the fixed header and below the payload length.
        assert_eq!(
            FrameView::parse(&good[..ETH_HDR_LEN + 30]).unwrap_err(),
            WireError::Truncated
        );
        let mut short = good.clone();
        short.truncate(good.len() - 2);
        assert_eq!(FrameView::parse(&short).unwrap_err(), WireError::Truncated);
        // A wrong version nibble behind the v6 EtherType is unsupported.
        let mut vbad = good;
        vbad[ETH_HDR_LEN] = 0x45;
        assert_eq!(FrameView::parse(&vbad).unwrap_err(), WireError::Unsupported);
    }

    #[test]
    fn v6_udp_zero_checksum_is_rejected_not_skipped() {
        // RFC 8200 §8.1: the UDP checksum is mandatory over IPv6 — the
        // v4 "zero means none" escape hatch must not apply.
        let key = FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            5353,
            Ipv4Addr::new(10, 0, 0, 2),
            5353,
        );
        let p = PacketBuilder::new(key, Ts::ZERO).payload(64).build();
        let mut frame = encode_v6(&p).to_vec();
        let q = decode(&frame, Ts::ZERO).expect("valid v6 UDP parses");
        assert_eq!(q.key, key);
        let csum_at = ETH_HDR_LEN + IPV6_HDR_LEN + 6;
        frame[csum_at] = 0;
        frame[csum_at + 1] = 0;
        assert_eq!(
            decode(&frame, Ts::ZERO),
            Err(WireError::BadTransportChecksum)
        );
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example: the checksum of this sequence is well defined.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let c = checksum(&data, 0);
        // Verify by summing back: data + checksum must fold to 0xFFFF.
        let mut sum: u32 = data
            .chunks(2)
            .map(|c| u32::from(u16::from_be_bytes([c[0], c[1]])))
            .sum();
        sum += u32::from(c);
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(sum, 0xFFFF);
    }

    #[test]
    fn frame_view_matches_decode_for_every_proto() {
        let key_of = |proto| {
            FlowKey::new(
                Ipv4Addr::new(10, 1, 2, 3),
                Ipv4Addr::new(172, 16, 9, 8),
                43210,
                443,
                proto,
            )
        };
        for proto in [Proto::Tcp, Proto::Udp, Proto::Icmp, Proto::Other(89)] {
            let p = PacketBuilder::new(key_of(proto), Ts::from_micros(9))
                .flags(TcpFlags::SYN)
                .seq(7)
                .payload(33)
                .build();
            let frame = encode(&p);
            let v = FrameView::parse(&frame).unwrap();
            let q = decode(&frame, p.ts).unwrap();
            assert_eq!(v.to_packet(p.ts), q, "view/decode divergence for {proto}");
            assert_eq!(v.flow_key(), q.key);
            assert_eq!(v.raw_tuple().key(), q.key);
            assert_eq!(v.payload_len(), q.payload_len);
            assert_eq!(v.flags(), q.flags);
            assert_eq!(v.seq(), q.seq);
            assert_eq!(v.ack(), q.ack);
            assert_eq!(v.proto(), q.key.proto);
            assert_eq!(v.frame(), &frame[..]);
        }
    }

    #[test]
    fn udp_zero_checksum_means_no_checksum() {
        // RFC 768: a transmitted checksum of zero means the sender did not
        // compute one; the receiver must accept the datagram unverified.
        let key = FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            5353,
            Ipv4Addr::new(10, 0, 0, 2),
            5353,
        );
        let p = PacketBuilder::new(key, Ts::ZERO).payload(64).build();
        let mut frame = encode(&p).to_vec();
        let csum_at = ETH_HDR_LEN + IPV4_HDR_LEN + 6;
        frame[csum_at] = 0;
        frame[csum_at + 1] = 0;
        let q = decode(&frame, Ts::ZERO).expect("zero checksum must be accepted");
        assert_eq!(q.key, key);
        assert_eq!(q.payload_len, 64);
        let v = FrameView::parse(&frame).expect("FrameView path too");
        assert_eq!(v.flow_key(), key);
        // A *wrong* non-zero checksum is still rejected.
        frame[csum_at + 1] = 0x01;
        assert_eq!(
            decode(&frame, Ts::ZERO),
            Err(WireError::BadTransportChecksum)
        );
        assert_eq!(
            FrameView::parse(&frame).unwrap_err(),
            WireError::BadTransportChecksum
        );
    }

    /// Hand-build a TCP frame carrying `opts` option bytes (data offset
    /// > 5 words), with valid IP and TCP checksums.
    fn tcp_frame_with_options(opts: &[u8], payload: &[u8]) -> Vec<u8> {
        assert_eq!(opts.len() % 4, 0, "options must pad to 32-bit words");
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let seg_len = TCP_HDR_LEN + opts.len() + payload.len();
        let ip_total = IPV4_HDR_LEN + seg_len;
        let mut f = Vec::new();
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01, 0x02, 0, 0, 0, 0, 0x02]);
        f.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
        let ip_start = f.len();
        f.push(0x45);
        f.push(0);
        f.extend_from_slice(&(ip_total as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0, 0x40, 0, 64, 6, 0, 0]);
        f.extend_from_slice(&src.octets());
        f.extend_from_slice(&dst.octets());
        let ip_csum = checksum(&f[ip_start..ip_start + IPV4_HDR_LEN], 0);
        f[ip_start + 10..ip_start + 12].copy_from_slice(&ip_csum.to_be_bytes());
        let t_start = f.len();
        f.extend_from_slice(&40000u16.to_be_bytes());
        f.extend_from_slice(&443u16.to_be_bytes());
        f.extend_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        f.extend_from_slice(&0x0102_0304u32.to_be_bytes());
        let words = (TCP_HDR_LEN + opts.len()) / 4;
        f.push((words as u8) << 4);
        f.push(TcpFlags::ACK.0);
        f.extend_from_slice(&0xFFFFu16.to_be_bytes());
        f.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent placeholder
        f.extend_from_slice(opts);
        f.extend_from_slice(payload);
        let ph = pseudo_header_sum(src, dst, 6, seg_len as u16);
        let csum = checksum(&f[t_start..], ph);
        f[t_start + 16..t_start + 18].copy_from_slice(&csum.to_be_bytes());
        f
    }

    #[test]
    fn tcp_options_are_skipped_not_rejected() {
        // NOP, NOP, then a 10-byte timestamp option padded to 12 bytes —
        // the shape most real captures carry on every segment.
        let opts = [
            0x01, 0x01, 0x08, 0x0A, 0x00, 0x00, 0x12, 0x34, 0x00, 0x00, 0x56, 0x78,
        ];
        let payload = [0xAB; 21];
        let frame = tcp_frame_with_options(&opts, &payload);
        for parsed in [
            decode(&frame, Ts::ZERO).expect("options-bearing frame must parse"),
            FrameView::parse(&frame)
                .expect("FrameView path too")
                .to_packet(Ts::ZERO),
        ] {
            assert_eq!(parsed.key.proto, Proto::Tcp);
            assert_eq!(parsed.key.src_port, 40000);
            assert_eq!(parsed.key.dst_port, 443);
            assert_eq!(parsed.seq, 0xDEAD_BEEF);
            assert_eq!(parsed.ack, 0x0102_0304);
            assert_eq!(parsed.flags, TcpFlags::ACK);
            assert_eq!(
                parsed.payload_len,
                payload.len() as u16,
                "payload length must exclude the options"
            );
        }
        // An options-free control build of the same segment agrees.
        let plain = tcp_frame_with_options(&[], &payload);
        assert_eq!(
            decode(&plain, Ts::ZERO).unwrap().payload_len,
            payload.len() as u16
        );
        // A data offset pointing past the segment is still truncation.
        let mut bad = tcp_frame_with_options(&opts, &[]);
        let off_at = ETH_HDR_LEN + IPV4_HDR_LEN + 12;
        bad[off_at] = 0xF0; // data offset 15 words = 60 bytes > segment
        assert_eq!(decode(&bad, Ts::ZERO), Err(WireError::Truncated));
    }

    #[test]
    fn odd_length_payload_checksums() {
        let key = FlowKey::udp(Ipv4Addr::new(1, 2, 3, 4), 1, Ipv4Addr::new(5, 6, 7, 8), 2);
        for len in [0u16, 1, 2, 3, 255] {
            let p = PacketBuilder::new(key, Ts::ZERO).payload(len).build();
            let frame = encode(&p);
            assert!(decode(&frame, Ts::ZERO).is_ok(), "len={len}");
        }
    }
}
