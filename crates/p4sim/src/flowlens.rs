//! FlowLens baseline (Barradas et al., NDSS '21), re-built on the switch
//! model for the paper's §5.2 comparison.
//!
//! FlowLens keeps a *flow marker* per flow: a quantized histogram of a
//! per-packet feature — packet lengths (PLD) for fingerprinting, or
//! inter-packet delays (IPD) for covert-channel detection. The
//! quantization level QL coarsens bins by `2^QL`, trading accuracy for
//! switch SRAM: at QL=0 a PLD marker is 1500 bins × 2 B = 3000 B per
//! flow; at QL=3 it is 188 bins × 2 B = 376 B (the paper's high/low
//! memory configurations).

use smartwatch_net::{FlowKey, Packet, Ts};
use std::collections::HashMap;

/// Which per-packet feature the marker collects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Feature {
    /// Payload length distribution, bytes (range 0–1500).
    Pld,
    /// Inter-packet delay distribution, microseconds, clipped at the
    /// given maximum (covert channels modulate 1–100 µs).
    IpdMicros(u32),
}

impl Feature {
    fn range(&self) -> u32 {
        match self {
            Feature::Pld => 1500,
            Feature::IpdMicros(max) => *max,
        }
    }
}

/// One flow's marker.
#[derive(Clone, Debug)]
pub struct FlowMarker {
    /// Quantized feature histogram.
    pub bins: Vec<u16>,
    /// Packets folded in.
    pub packets: u64,
    last_ts: Option<Ts>,
}

/// The FlowLens switch structure.
#[derive(Clone, Debug)]
pub struct FlowLens {
    /// Quantization level (bin width = 2^QL feature units).
    pub ql: u8,
    /// Collected feature.
    pub feature: Feature,
    /// Maximum flows the flow table admits (SRAM budget / marker size).
    pub max_flows: usize,
    flows: HashMap<FlowKey, FlowMarker>,
    /// Packets belonging to flows rejected because the table was full.
    pub overflow: u64,
}

impl FlowLens {
    /// FlowLens with an explicit flow-table bound.
    pub fn new(feature: Feature, ql: u8, max_flows: usize) -> FlowLens {
        FlowLens {
            ql,
            feature,
            max_flows,
            flows: HashMap::new(),
            overflow: 0,
        }
    }

    /// FlowLens sized to an SRAM budget in bytes.
    pub fn with_memory(feature: Feature, ql: u8, sram_bytes: usize) -> FlowLens {
        let per_flow = Self::marker_bytes_for(feature, ql) + 16; // + flowid entry
        FlowLens::new(feature, ql, (sram_bytes / per_flow).max(1))
    }

    /// Bins per marker at this quantization.
    pub fn n_bins(&self) -> usize {
        Self::n_bins_for(self.feature, self.ql)
    }

    fn n_bins_for(feature: Feature, ql: u8) -> usize {
        (feature.range() as usize >> ql).max(1)
    }

    /// Marker size in bytes at a given (feature, QL).
    pub fn marker_bytes_for(feature: Feature, ql: u8) -> usize {
        Self::n_bins_for(feature, ql) * 2
    }

    /// Fold one packet into its flow's marker. Returns false if the flow
    /// table is full and the flow is untracked.
    pub fn on_packet(&mut self, p: &Packet) -> bool {
        let key = p.key.canonical().0;
        let n_bins = self.n_bins();
        if !self.flows.contains_key(&key) && self.flows.len() >= self.max_flows {
            self.overflow += 1;
            return false;
        }
        let marker = self.flows.entry(key).or_insert_with(|| FlowMarker {
            bins: vec![0; n_bins],
            packets: 0,
            last_ts: None,
        });
        let value = match self.feature {
            Feature::Pld => Some(u32::from(p.payload_len)),
            Feature::IpdMicros(max) => {
                let v = marker
                    .last_ts
                    .map(|last| ((p.ts - last).as_micros() as u32).min(max - 1));
                marker.last_ts = Some(p.ts);
                v
            }
        };
        if let Some(v) = value {
            let bin = ((v >> self.ql) as usize).min(n_bins - 1);
            marker.bins[bin] = marker.bins[bin].saturating_add(1);
            marker.packets += 1;
        }
        true
    }

    /// Marker of a flow.
    pub fn marker(&self, key: &FlowKey) -> Option<&FlowMarker> {
        self.flows.get(&key.canonical().0)
    }

    /// Control-plane readout: drain all markers (the timer-driven batch
    /// read of the paper).
    pub fn readout(&mut self) -> Vec<(FlowKey, FlowMarker)> {
        self.flows.drain().collect()
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// SRAM occupied: markers plus the flow lookup table.
    pub fn sram_bytes(&self) -> usize {
        self.flows.len() * (Self::marker_bytes_for(self.feature, self.ql) + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{Dur, PacketBuilder};
    use std::net::Ipv4Addr;

    fn pld_pkt(flow: u32, len: u16, ts_us: u64) -> Packet {
        let key = FlowKey::tcp(
            Ipv4Addr::from(0x0A000000 + flow),
            9,
            Ipv4Addr::from(0xAC100001u32),
            443,
        );
        PacketBuilder::new(key, Ts::from_micros(ts_us))
            .payload(len)
            .build()
    }

    #[test]
    fn paper_marker_sizes() {
        assert_eq!(FlowLens::marker_bytes_for(Feature::Pld, 0), 3000);
        assert_eq!(FlowLens::marker_bytes_for(Feature::Pld, 3), 374); // ⌊1500/8⌋×2
    }

    #[test]
    fn pld_bins_accumulate() {
        let mut fl = FlowLens::new(Feature::Pld, 0, 100);
        fl.on_packet(&pld_pkt(1, 100, 0));
        fl.on_packet(&pld_pkt(1, 100, 10));
        fl.on_packet(&pld_pkt(1, 700, 20));
        let m = fl.marker(&pld_pkt(1, 0, 0).key).unwrap();
        assert_eq!(m.bins[100], 2);
        assert_eq!(m.bins[700], 1);
        assert_eq!(m.packets, 3);
    }

    #[test]
    fn quantization_coarsens_bins() {
        let mut fl = FlowLens::new(Feature::Pld, 3, 100);
        fl.on_packet(&pld_pkt(1, 100, 0));
        fl.on_packet(&pld_pkt(1, 103, 10)); // same 8-byte bin
        let m = fl.marker(&pld_pkt(1, 0, 0).key).unwrap();
        assert_eq!(m.bins[100 >> 3], 2);
    }

    #[test]
    fn ipd_feature_measures_gaps() {
        let mut fl = FlowLens::new(Feature::IpdMicros(128), 0, 100);
        fl.on_packet(&pld_pkt(1, 64, 1_000));
        fl.on_packet(&pld_pkt(1, 64, 1_030)); // 30 µs gap
        fl.on_packet(&pld_pkt(1, 64, 1_110)); // 80 µs gap
        let m = fl.marker(&pld_pkt(1, 0, 0).key).unwrap();
        assert_eq!(m.bins[30], 1);
        assert_eq!(m.bins[80], 1);
        // First packet has no IPD.
        assert_eq!(m.packets, 2);
        let _ = Dur::ZERO;
    }

    #[test]
    fn table_capacity_enforced() {
        let mut fl = FlowLens::new(Feature::Pld, 0, 2);
        assert!(fl.on_packet(&pld_pkt(1, 64, 0)));
        assert!(fl.on_packet(&pld_pkt(2, 64, 1)));
        assert!(!fl.on_packet(&pld_pkt(3, 64, 2)));
        assert_eq!(fl.overflow, 1);
        // Existing flows still update.
        assert!(fl.on_packet(&pld_pkt(1, 64, 3)));
    }

    #[test]
    fn memory_sizing_and_accounting() {
        let fl = FlowLens::with_memory(Feature::Pld, 0, 3_016_000);
        assert_eq!(fl.max_flows, 1_000);
        let mut fl = FlowLens::new(Feature::Pld, 3, 10);
        fl.on_packet(&pld_pkt(1, 64, 0));
        assert_eq!(fl.sram_bytes(), 374 + 16);
    }

    #[test]
    fn readout_drains() {
        let mut fl = FlowLens::new(Feature::Pld, 0, 10);
        fl.on_packet(&pld_pkt(1, 64, 0));
        fl.on_packet(&pld_pkt(2, 64, 1));
        let batch = fl.readout();
        assert_eq!(batch.len(), 2);
        assert!(fl.is_empty());
    }
}
