//! # smartwatch-p4sim
//!
//! The P4Switch half of SmartWatch's cooperative monitoring: a simulator
//! of the Tofino-class programmable switch the paper pairs with the sNIC.
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Sonata-style aggregate queries (filter/map/distinct/reduce) | [`query`] |
//! | Pipeline, steering, whitelist/blacklist, SRAM accounting (§3.1) | [`switch`] |
//! | Iterative refinement: Sonata zoom vs SmartWatch steer (§3.1) | [`refine`] |
//! | FlowLens baseline (quantized flow markers) (§5.2) | [`flowlens`] |
//! | NetWarden baseline (per-bin sketches + pre-checks) (§5.2) | [`netwarden`] |
//!
//! The switch model is logical, not timing-accurate: Tofino forwards at
//! line rate regardless of programs; what constrains monitoring is SRAM
//! and the shapes of state a match-action pipeline can hold, which is
//! exactly what this crate accounts for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flowlens;
pub mod netwarden;
pub mod query;
pub mod refine;
pub mod switch;
pub mod table;

pub use flowlens::{Feature, FlowLens, FlowMarker};
pub use netwarden::NetWarden;
pub use query::{decode_prefix_key, DistinctExpr, Filter, KeyExpr, QueryState, SwitchQuery};
pub use refine::{RefineMode, RefineOutcome, Refiner};
pub use switch::{Decision, P4Switch, SramBudget, SteerRule, SwitchStats};
pub use table::{ExactTable, LpmTable, RegisterArray, TernaryEntry, TernaryTable};
