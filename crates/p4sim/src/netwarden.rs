//! NetWarden baseline (Xing, Kang & Chen, USENIX Security '20), re-built
//! for the paper's §5.2 comparison.
//!
//! NetWarden collects per-connection timing distributions with `k`
//! CountMin sketches — one per histogram bin — instead of FlowLens's
//! per-flow markers, and runs cheap *pre-checks* (range queries over the
//! distribution) entirely in the data plane. SmartWatch's extension
//! (`SmartWatch_NetWarden`) uses the pre-check as the steering trigger:
//! flows failing the range check are forwarded to the sNIC for the full
//! statistical test.

use smartwatch_net::{FlowHasher, FlowKey, Packet, Ts};
use std::collections::HashMap;

/// A u64-keyed CountMin row bank (NetWarden keys sketches by flow id).
#[derive(Clone, Debug)]
struct MiniCms {
    rows: Vec<Vec<u32>>,
    hashers: Vec<FlowHasher>,
    width: usize,
}

impl MiniCms {
    fn new(depth: usize, width: usize, seed: u64) -> MiniCms {
        MiniCms {
            rows: vec![vec![0; width]; depth],
            hashers: (0..depth)
                .map(|i| FlowHasher::new(seed.wrapping_mul(269).wrapping_add(i as u64)))
                .collect(),
            width,
        }
    }

    fn update(&mut self, key: u64) {
        for (row, h) in self.rows.iter_mut().zip(&self.hashers) {
            let i = h.hash_u64(key).bucket(self.width);
            row[i] = row[i].saturating_add(1);
        }
    }

    fn estimate(&self, key: u64) -> u64 {
        self.rows
            .iter()
            .zip(&self.hashers)
            .map(|(row, h)| u64::from(row[h.hash_u64(key).bucket(self.width)]))
            .min()
            .unwrap_or(0)
    }

    fn bytes(&self) -> usize {
        self.rows.len() * self.width * 4
    }

    fn clear(&mut self) {
        for r in &mut self.rows {
            r.fill(0);
        }
    }
}

/// NetWarden's switch structure for IPD collection.
#[derive(Clone, Debug)]
pub struct NetWarden {
    /// Histogram bins (each backed by a CountMin over flow ids).
    bins: Vec<MiniCms>,
    /// Bin width in microseconds.
    pub bin_width_us: u32,
    /// Pre-check range (inclusive bin indices) considered suspicious —
    /// covert modulation lives in a known delay band.
    pub precheck_range: (usize, usize),
    /// Fraction of a flow's IPDs inside the range that trips the
    /// pre-check.
    pub precheck_ratio: f64,
    /// Per-flow last-timestamp register (for IPD computation) plus
    /// total/in-range counters for the pre-check.
    flow_regs: HashMap<FlowKey, (Ts, u32, u32)>,
    hasher: FlowHasher,
}

impl NetWarden {
    /// `n_bins` bins of `bin_width_us`, each a `depth × width` CountMin.
    pub fn new(n_bins: usize, bin_width_us: u32, depth: usize, width: usize) -> NetWarden {
        assert!(n_bins > 0 && bin_width_us > 0);
        NetWarden {
            bins: (0..n_bins)
                .map(|i| MiniCms::new(depth, width, 0xBEEF + i as u64))
                .collect(),
            bin_width_us,
            precheck_range: (0, n_bins - 1),
            precheck_ratio: 0.9,
            flow_regs: HashMap::new(),
            hasher: FlowHasher::new(0x9977),
        }
    }

    /// The paper's high-memory configuration (4 MB of sketches) or
    /// low-memory (0.5 MB) by shrinking sketch width 8×.
    pub fn with_memory(bytes: usize, n_bins: usize, bin_width_us: u32) -> NetWarden {
        let depth = 2;
        let width = (bytes / (n_bins * depth * 4)).max(4);
        NetWarden::new(n_bins, bin_width_us, depth, width)
    }

    /// Configure the suspicious-delay pre-check band, in microseconds.
    pub fn set_precheck_band(&mut self, lo_us: u32, hi_us: u32, ratio: f64) {
        let lo = (lo_us / self.bin_width_us) as usize;
        let hi = ((hi_us / self.bin_width_us) as usize).min(self.bins.len() - 1);
        self.precheck_range = (lo, hi);
        self.precheck_ratio = ratio;
    }

    fn flow_id(&self, key: &FlowKey) -> u64 {
        self.hasher.hash_symmetric(key).0
    }

    /// Fold one packet in; returns `true` if the flow currently trips the
    /// pre-check (the SmartWatch extension steers it to the sNIC).
    pub fn on_packet(&mut self, p: &Packet) -> bool {
        let key = p.key.canonical().0;
        let fid = self.flow_id(&key);
        let n_bins = self.bins.len();
        let entry = self.flow_regs.entry(key).or_insert((p.ts, 0, 0));
        let prev = entry.0;
        entry.0 = p.ts;
        if prev == p.ts && entry.1 == 0 {
            return false; // first packet: no IPD yet
        }
        let ipd_us = (p.ts - prev).as_micros() as u32;
        let bin = ((ipd_us / self.bin_width_us) as usize).min(n_bins - 1);
        self.bins[bin].update(fid);
        entry.1 += 1; // total IPDs
        if bin >= self.precheck_range.0 && bin <= self.precheck_range.1 {
            entry.2 += 1; // in-range IPDs
        }
        let (_, total, in_range) = *entry;
        total >= 16 && f64::from(in_range) / f64::from(total) >= self.precheck_ratio
    }

    /// Estimated IPD histogram of a flow (sketch queries, one per bin).
    pub fn histogram(&self, key: &FlowKey) -> Vec<u64> {
        let fid = self.flow_id(&key.canonical().0);
        self.bins.iter().map(|b| b.estimate(fid)).collect()
    }

    /// Sketch memory in bytes (the Fig. 9 x-axis driver).
    pub fn sram_bytes(&self) -> usize {
        self.bins.iter().map(MiniCms::bytes).sum::<usize>() + self.flow_regs.len() * 16
    }

    /// Reset per-interval state.
    pub fn clear(&mut self) {
        for b in &mut self.bins {
            b.clear();
        }
        self.flow_regs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{PacketBuilder, TcpFlags};
    use std::net::Ipv4Addr;

    fn pkt(flow: u32, ts_us: u64) -> Packet {
        let key = FlowKey::tcp(
            Ipv4Addr::from(0x0A000000 + flow),
            9,
            Ipv4Addr::from(0xAC100001u32),
            443,
        );
        PacketBuilder::new(key, Ts::from_micros(ts_us))
            .flags(TcpFlags::ACK)
            .payload(64)
            .build()
    }

    #[test]
    fn histogram_reflects_ipds() {
        let mut nw = NetWarden::new(128, 1, 2, 4096);
        // Gaps of 30 µs ×3 and 80 µs ×2.
        let times = [0u64, 30, 60, 90, 170, 250];
        for t in times {
            nw.on_packet(&pkt(1, t));
        }
        let h = nw.histogram(&pkt(1, 0).key);
        assert_eq!(h[30], 3);
        assert_eq!(h[80], 2);
    }

    #[test]
    fn precheck_trips_on_modulated_flow() {
        let mut nw = NetWarden::new(128, 1, 2, 4096);
        nw.set_precheck_band(20, 100, 0.9);
        // Modulated flow: IPDs alternating 30/80 µs (inside the band).
        let mut tripped = false;
        let mut t = 0u64;
        for i in 0..40 {
            t += if i % 2 == 0 { 30 } else { 80 };
            tripped |= nw.on_packet(&pkt(1, t));
        }
        assert!(tripped, "modulated flow should trip the pre-check");
        // Benign flow with 500 µs gaps (outside the band) never trips.
        let mut t = 0u64;
        let mut benign_tripped = false;
        for _ in 0..40 {
            t += 500;
            benign_tripped |= nw.on_packet(&pkt(2, t));
        }
        assert!(!benign_tripped);
    }

    #[test]
    fn low_memory_config_is_smaller_but_noisier() {
        let hi = NetWarden::with_memory(4 << 20, 128, 1);
        let lo = NetWarden::with_memory(512 << 10, 128, 1);
        assert!(lo.sram_bytes() < hi.sram_bytes() / 4);
    }

    #[test]
    fn clear_resets() {
        let mut nw = NetWarden::new(16, 8, 2, 64);
        nw.on_packet(&pkt(1, 0));
        nw.on_packet(&pkt(1, 40));
        nw.clear();
        assert!(nw.histogram(&pkt(1, 0).key).iter().all(|&c| c == 0));
    }
}
