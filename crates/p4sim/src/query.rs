//! Sonata-style switch telemetry queries.
//!
//! The P4Switch's first-stage detection runs aggregate-traffic queries of
//! the dataflow form Sonata compiles to switches: `filter → map(key) →
//! [distinct] → reduce(count) → threshold`. Keys are usually destination
//! prefixes at a configurable granularity — the lever iterative
//! refinement turns (dIP/8 → /16 → /32).
//!
//! Query state lives in switch SRAM; [`QueryState::sram_bytes`] charges
//! it the way the paper's SRAM-occupancy arguments do (count registers
//! plus the distinct-filter state).

use serde::{Deserialize, Serialize};
use smartwatch_net::{key::prefix_of, Packet, Proto, TcpFlags};
use std::collections::{HashMap, HashSet};

/// Packet predicate (the `filter` operator).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// All packets.
    Any,
    /// Packets to the given destination (service) port.
    DstPort(u16),
    /// TCP packets with all the given flags set.
    TcpFlags(u8),
    /// Pure SYN packets (connection attempts).
    SynOnly,
    /// RST packets.
    Rst,
    /// UDP packets from the given source port (e.g. DNS responses).
    UdpSrcPort(u16),
    /// Protocol match.
    Proto(u8),
    /// Destination address inside any of the given (prefix, width) pairs
    /// (iterative refinement's focus window).
    DstInPrefixes(Vec<(u32, u8)>),
    /// Source address inside any of the given (prefix, width) pairs.
    SrcInPrefixes(Vec<(u32, u8)>),
    /// Conjunction.
    And(Box<Filter>, Box<Filter>),
}

impl Filter {
    /// Evaluate against a packet.
    pub fn matches(&self, p: &Packet) -> bool {
        match self {
            Filter::Any => true,
            Filter::DstPort(port) => p.key.dst_port == *port,
            Filter::TcpFlags(bits) => {
                p.key.proto == Proto::Tcp && p.flags.contains(TcpFlags(*bits))
            }
            Filter::SynOnly => p.key.proto == Proto::Tcp && p.flags.is_syn_only(),
            Filter::Rst => p.key.proto == Proto::Tcp && p.flags.rst(),
            Filter::UdpSrcPort(port) => p.key.proto == Proto::Udp && p.key.src_port == *port,
            Filter::Proto(n) => p.key.proto.number() == *n,
            Filter::DstInPrefixes(set) => set
                .iter()
                .any(|(pre, w)| prefix_of(p.key.dst_ip, *w) == *pre),
            Filter::SrcInPrefixes(set) => set
                .iter()
                .any(|(pre, w)| prefix_of(p.key.src_ip, *w) == *pre),
            Filter::And(a, b) => a.matches(p) && b.matches(p),
        }
    }
}

/// Key extraction (the `map` operator): what the query aggregates by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyExpr {
    /// Destination prefix of the given width (refinement granularity).
    DstPrefix(u8),
    /// Source prefix of the given width.
    SrcPrefix(u8),
    /// (src /width) — used for per-remote-node queries.
    SrcAddr,
    /// Destination (address, port) pair.
    DstAddrPort,
}

/// Decode a prefix-shaped key produced by [`KeyExpr::eval`] back into
/// `(prefix, width)`.
pub fn decode_prefix_key(key: u64) -> (u32, u8) {
    ((key & 0xFFFF_FFFF) as u32, (key >> 56) as u8)
}

impl KeyExpr {
    /// Extract the aggregation key from a packet.
    pub fn eval(&self, p: &Packet) -> u64 {
        match self {
            KeyExpr::DstPrefix(w) => u64::from(prefix_of(p.key.dst_ip, *w)) | (u64::from(*w) << 56),
            KeyExpr::SrcPrefix(w) => u64::from(prefix_of(p.key.src_ip, *w)) | (u64::from(*w) << 56),
            KeyExpr::SrcAddr => u64::from(u32::from(p.key.src_ip)),
            KeyExpr::DstAddrPort => {
                (u64::from(u32::from(p.key.dst_ip)) << 16) | u64::from(p.key.dst_port)
            }
        }
    }

    /// The prefix width, if this key is a prefix aggregation.
    pub fn prefix_width(&self) -> Option<u8> {
        match self {
            KeyExpr::DstPrefix(w) | KeyExpr::SrcPrefix(w) => Some(*w),
            _ => None,
        }
    }

    /// Same key shape at a finer granularity (the refinement step).
    pub fn refined(&self, new_width: u8) -> KeyExpr {
        match self {
            KeyExpr::DstPrefix(_) => KeyExpr::DstPrefix(new_width),
            KeyExpr::SrcPrefix(_) => KeyExpr::SrcPrefix(new_width),
            other => *other,
        }
    }
}

/// Optional `distinct` sub-key: count each (key, subkey) pair once per
/// interval (e.g. "number of *distinct sources* contacting each prefix").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistinctExpr {
    /// Distinct source addresses.
    SrcAddr,
    /// Distinct (source address, destination port) pairs.
    SrcAddrDstPort,
    /// Distinct 5-tuples.
    FiveTuple,
}

impl DistinctExpr {
    fn eval(&self, p: &Packet) -> u64 {
        let h = smartwatch_net::FlowHasher::new(0x0D15);
        match self {
            DistinctExpr::SrcAddr => u64::from(u32::from(p.key.src_ip)),
            DistinctExpr::SrcAddrDstPort => {
                (u64::from(u32::from(p.key.src_ip)) << 16) | u64::from(p.key.dst_port)
            }
            DistinctExpr::FiveTuple => h.hash_symmetric(&p.key).0,
        }
    }
}

/// A compiled switch query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwitchQuery {
    /// Query name (e.g. "ssh-bruteforce-coarse").
    pub name: String,
    /// Packet predicate.
    pub filter: Filter,
    /// Aggregation key.
    pub key: KeyExpr,
    /// Optional distinct sub-key.
    pub distinct: Option<DistinctExpr>,
    /// Report keys whose count reaches this threshold at interval end.
    pub threshold: u64,
}

impl SwitchQuery {
    /// "Number of SSH connection attempts per dIP/width ≥ threshold".
    pub fn ssh_attempts(width: u8, threshold: u64) -> SwitchQuery {
        SwitchQuery {
            name: format!("ssh-attempts-d{width}"),
            filter: Filter::And(Box::new(Filter::DstPort(22)), Box::new(Filter::SynOnly)),
            key: KeyExpr::DstPrefix(width),
            distinct: None,
            threshold,
        }
    }

    /// "Number of distinct (src, dst-port) probes per dst prefix" — the
    /// coarse port-scan indicator.
    pub fn scan_probes(width: u8, threshold: u64) -> SwitchQuery {
        SwitchQuery {
            name: format!("portscan-d{width}"),
            filter: Filter::SynOnly,
            key: KeyExpr::SrcPrefix(width),
            distinct: Some(DistinctExpr::SrcAddrDstPort),
            threshold,
        }
    }

    /// "Number of RST packets per destination prefix".
    pub fn rst_count(width: u8, threshold: u64) -> SwitchQuery {
        SwitchQuery {
            name: format!("rst-d{width}"),
            filter: Filter::Rst,
            key: KeyExpr::DstPrefix(width),
            distinct: None,
            threshold,
        }
    }

    /// "DNS responses per destination prefix" — amplification indicator.
    pub fn dns_responses(width: u8, threshold: u64) -> SwitchQuery {
        SwitchQuery {
            name: format!("dnsamp-d{width}"),
            filter: Filter::UdpSrcPort(53),
            key: KeyExpr::DstPrefix(width),
            distinct: None,
            threshold,
        }
    }

    /// "Connections per destination with low volume" proxy: count of
    /// distinct 5-tuples per destination prefix (Slowloris coarse
    /// indicator).
    pub fn conn_fanout(width: u8, threshold: u64) -> SwitchQuery {
        SwitchQuery {
            name: format!("connfanout-d{width}"),
            filter: Filter::SynOnly,
            key: KeyExpr::DstPrefix(width),
            distinct: Some(DistinctExpr::FiveTuple),
            threshold,
        }
    }
}

/// Per-interval runtime state of one query.
#[derive(Clone, Debug, Default)]
pub struct QueryState {
    counts: HashMap<u64, u64>,
    distinct_seen: HashSet<(u64, u64)>,
}

impl QueryState {
    /// Fold one packet in (must already pass the filter).
    pub fn update(&mut self, q: &SwitchQuery, p: &Packet) {
        let key = q.key.eval(p);
        if let Some(d) = &q.distinct {
            let sub = d.eval(p);
            if !self.distinct_seen.insert((key, sub)) {
                return; // already counted this (key, subkey) pair
            }
        }
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Keys meeting the threshold, highest count first.
    pub fn over_threshold(&self, q: &SwitchQuery) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter(|(_, c)| **c >= q.threshold)
            .map(|(k, c)| (*k, *c))
            .collect();
        out.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        out
    }

    /// Count for a specific key.
    pub fn count(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// SRAM the state occupies: 16 B per count register entry (key +
    /// counter) plus 8 B per distinct-filter entry.
    pub fn sram_bytes(&self) -> usize {
        self.counts.len() * 16 + self.distinct_seen.len() * 8
    }

    /// Reset for a new interval.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.distinct_seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{FlowKey, PacketBuilder, Ts};
    use std::net::Ipv4Addr;

    fn syn(src: [u8; 4], dst: [u8; 4], dport: u16) -> Packet {
        let key = FlowKey::tcp(Ipv4Addr::from(src), 40000, Ipv4Addr::from(dst), dport);
        PacketBuilder::new(key, Ts::ZERO)
            .flags(TcpFlags::SYN)
            .build()
    }

    #[test]
    fn filter_semantics() {
        let p = syn([10, 0, 0, 1], [172, 16, 0, 1], 22);
        assert!(Filter::Any.matches(&p));
        assert!(Filter::DstPort(22).matches(&p));
        assert!(!Filter::DstPort(80).matches(&p));
        assert!(Filter::SynOnly.matches(&p));
        assert!(!Filter::Rst.matches(&p));
        assert!(Filter::And(Box::new(Filter::DstPort(22)), Box::new(Filter::SynOnly)).matches(&p));
    }

    #[test]
    fn prefix_keys_aggregate() {
        let q = SwitchQuery::ssh_attempts(16, 3);
        let mut st = QueryState::default();
        // Four SYNs to the same /16, different hosts.
        for i in 0..4 {
            st.update(&q, &syn([10, 0, 0, 1 + i], [172, 16, 9, i], 22));
        }
        let over = st.over_threshold(&q);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].1, 4);
    }

    #[test]
    fn distinct_dedupes_within_interval() {
        let q = SwitchQuery::scan_probes(32, 2);
        let mut st = QueryState::default();
        // Same (src, dport) probe repeated: counts once.
        for _ in 0..5 {
            st.update(&q, &syn([198, 18, 0, 1], [172, 16, 0, 1], 80));
        }
        assert!(st.over_threshold(&q).is_empty());
        // Distinct ports: counts each.
        st.update(&q, &syn([198, 18, 0, 1], [172, 16, 0, 2], 81));
        st.update(&q, &syn([198, 18, 0, 1], [172, 16, 0, 3], 82));
        let over = st.over_threshold(&q);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].1, 3);
    }

    #[test]
    fn coarser_keys_need_less_sram() {
        let mut coarse = QueryState::default();
        let mut fine = QueryState::default();
        let qc = SwitchQuery::ssh_attempts(8, 1000);
        let qf = SwitchQuery::ssh_attempts(32, 1000);
        for i in 0..100u8 {
            let p = syn([10, 0, 0, 1], [172, 16, i, i], 22);
            coarse.update(&qc, &p);
            fine.update(&qf, &p);
        }
        assert!(coarse.sram_bytes() < fine.sram_bytes());
    }

    #[test]
    fn refinement_changes_width_only() {
        let k = KeyExpr::DstPrefix(8);
        assert_eq!(k.refined(16), KeyExpr::DstPrefix(16));
        assert_eq!(k.prefix_width(), Some(8));
        assert_eq!(KeyExpr::SrcAddr.refined(16), KeyExpr::SrcAddr);
    }

    #[test]
    fn clear_resets_interval_state() {
        let q = SwitchQuery::rst_count(16, 1);
        let mut st = QueryState::default();
        let p = PacketBuilder::new(
            FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            Ts::ZERO,
        )
        .flags(TcpFlags::RST)
        .build();
        st.update(&q, &p);
        assert_eq!(st.over_threshold(&q).len(), 1);
        st.clear();
        assert!(st.over_threshold(&q).is_empty());
        assert_eq!(st.sram_bytes(), 0);
    }
}
