//! Iterative query refinement (paper §3.1 "Switch Query Refinement").
//!
//! Both Sonata and SmartWatch start from the same coarse aggregate query
//! (e.g. SSH connection attempts per dIP/8). They diverge on what happens
//! when a key crosses the threshold:
//!
//! - **Sonata** reuses switch memory to re-run the query at the next finer
//!   granularity *restricted to the matched prefixes* ("the rest of the
//!   traffic is not examined"). It takes one interval per refinement
//!   level to reach /32, and anything that starts outside — or expires
//!   before the zoom-in finishes — is missed. This is the mechanism
//!   behind Sonata's lower detection rates in Table 4.
//!
//! - **SmartWatch** keeps the switch at the coarse granularity and
//!   instead *steers* the matched subsets to the sNIC, which performs
//!   flow-level analysis immediately from the next interval on.

use crate::query::{decode_prefix_key, Filter, KeyExpr, SwitchQuery};
use crate::switch::SteerRule;
use smartwatch_telemetry::{Counter, Registry};

/// Which refinement strategy to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefineMode {
    /// Zoom in on-switch, Sonata style.
    Sonata,
    /// Steer matched subsets to the sNIC, SmartWatch style.
    SmartWatch,
}

/// What the controller should do after an interval's query results.
#[derive(Clone, Debug, PartialEq)]
pub enum RefineOutcome {
    /// Install this query for the next interval (Sonata zoom-in).
    NextQuery(SwitchQuery),
    /// Install these steering rules (SmartWatch hand-off to the sNIC).
    SteerSubsets(Vec<SteerRule>),
    /// Finest level reached: these prefixes are the on-switch detections
    /// (Sonata's terminal output).
    Detected(Vec<(u32, u8)>),
    /// Nothing crossed the threshold: restart at the coarsest level.
    Restart(SwitchQuery),
}

/// A destination-port constraint appearing anywhere in a filter
/// conjunction (propagated onto steering rules so only the matching
/// service's traffic is diverted).
fn port_constraint(f: &Filter) -> Option<u16> {
    match f {
        Filter::DstPort(p) => Some(*p),
        Filter::And(a, b) => port_constraint(a).or_else(|| port_constraint(b)),
        _ => None,
    }
}

/// Per-decision counters (detached until
/// [`Refiner::attach_telemetry`]).
#[derive(Debug)]
struct RefineCounters {
    steps: Counter,
    steers: Counter,
    detections: Counter,
    restarts: Counter,
}

impl RefineCounters {
    fn detached() -> RefineCounters {
        RefineCounters {
            steps: Counter::detached(),
            steers: Counter::detached(),
            detections: Counter::detached(),
            restarts: Counter::detached(),
        }
    }
}

impl Clone for RefineCounters {
    /// Clones carry values but detach from any registry.
    fn clone(&self) -> RefineCounters {
        let c = RefineCounters::detached();
        c.steps.add(self.steps.get());
        c.steers.add(self.steers.get());
        c.detections.add(self.detections.get());
        c.restarts.add(self.restarts.get());
        c
    }
}

/// The refinement controller for one base query.
#[derive(Clone, Debug)]
pub struct Refiner {
    /// Strategy.
    pub mode: RefineMode,
    /// Granularity ladder, coarsest first (paper: /8 → /16 → /32).
    pub levels: Vec<u8>,
    base: SwitchQuery,
    level_idx: usize,
    focus: Vec<(u32, u8)>,
    counters: RefineCounters,
}

impl Refiner {
    /// Controller over `base` (whose key must be a prefix aggregation; its
    /// width is replaced by the ladder's levels).
    pub fn new(mode: RefineMode, base: SwitchQuery, levels: Vec<u8>) -> Refiner {
        assert!(!levels.is_empty());
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be increasing"
        );
        assert!(
            base.key.prefix_width().is_some(),
            "refinement requires a prefix-shaped key"
        );
        Refiner {
            mode,
            levels,
            base,
            level_idx: 0,
            focus: Vec::new(),
            counters: RefineCounters::detached(),
        }
    }

    /// Publish this controller's decision counters as
    /// `p4.refine.{steps,steers,detections,restarts}{mode=...,query=...}`,
    /// carrying current values over.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let mode = match self.mode {
            RefineMode::Sonata => "sonata",
            RefineMode::SmartWatch => "smartwatch",
        };
        let labels: &[(&str, &str)] = &[("mode", mode), ("query", &self.base.name)];
        let fresh = RefineCounters {
            steps: registry.counter("p4.refine.steps", labels),
            steers: registry.counter("p4.refine.steers", labels),
            detections: registry.counter("p4.refine.detections", labels),
            restarts: registry.counter("p4.refine.restarts", labels),
        };
        fresh.steps.add(self.counters.steps.get());
        fresh.steers.add(self.counters.steers.get());
        fresh.detections.add(self.counters.detections.get());
        fresh.restarts.add(self.counters.restarts.get());
        self.counters = fresh;
    }

    /// The paper's ladder: /8 → /16 → /32.
    pub fn paper_levels() -> Vec<u8> {
        vec![8, 16, 32]
    }

    /// Current refinement level (prefix width).
    pub fn level(&self) -> u8 {
        self.levels[self.level_idx]
    }

    /// Query to install for the first interval.
    pub fn initial_query(&self) -> SwitchQuery {
        self.query_at(0, &[])
    }

    fn query_at(&self, level_idx: usize, focus: &[(u32, u8)]) -> SwitchQuery {
        let width = self.levels[level_idx];
        let mut q = self.base.clone();
        q.key = q.key.refined(width);
        q.name = format!("{}@{}", self.base.name, width);
        if !focus.is_empty() {
            let window = match q.key {
                KeyExpr::SrcPrefix(_) => Filter::SrcInPrefixes(focus.to_vec()),
                _ => Filter::DstInPrefixes(focus.to_vec()),
            };
            q.filter = Filter::And(Box::new(q.filter), Box::new(window));
        }
        q
    }

    /// Consume one interval's over-threshold keys for the current query
    /// and decide the next step.
    pub fn on_results(&mut self, over: &[(u64, u64)]) -> RefineOutcome {
        if over.is_empty() {
            // Nothing suspicious: return to the widest view.
            self.level_idx = 0;
            self.focus.clear();
            self.counters.restarts.inc();
            return RefineOutcome::Restart(self.initial_query());
        }
        let matched: Vec<(u32, u8)> = over.iter().map(|(k, _)| decode_prefix_key(*k)).collect();

        match self.mode {
            RefineMode::SmartWatch => {
                // Stay coarse; hand the subsets to the sNIC.
                let on_src = matches!(self.base.key, KeyExpr::SrcPrefix(_));
                let rules = matched
                    .iter()
                    .map(|(prefix, width)| {
                        let mut r = if on_src {
                            SteerRule::src(*prefix, *width)
                        } else {
                            SteerRule::dst(*prefix, *width)
                        };
                        if let Some(p) = port_constraint(&self.base.filter) {
                            r = r.with_port(p);
                        }
                        r
                    })
                    .collect();
                self.counters.steers.inc();
                RefineOutcome::SteerSubsets(rules)
            }
            RefineMode::Sonata => {
                if self.level_idx + 1 >= self.levels.len() {
                    // Finest granularity reached: report and restart.
                    self.level_idx = 0;
                    self.focus.clear();
                    self.counters.detections.inc();
                    RefineOutcome::Detected(matched)
                } else {
                    self.level_idx += 1;
                    self.focus = matched;
                    self.counters.steps.inc();
                    RefineOutcome::NextQuery(self.query_at(self.level_idx, &self.focus))
                }
            }
        }
    }

    /// Intervals Sonata needs to reach its finest level from a cold start
    /// (the detection-delay disadvantage).
    pub fn sonata_zoom_latency(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryState;
    use smartwatch_net::{FlowKey, Packet, PacketBuilder, TcpFlags, Ts};
    use std::net::Ipv4Addr;

    fn syn(src: [u8; 4], dst: [u8; 4]) -> Packet {
        let key = FlowKey::tcp(Ipv4Addr::from(src), 40000, Ipv4Addr::from(dst), 22);
        PacketBuilder::new(key, Ts::ZERO)
            .flags(TcpFlags::SYN)
            .build()
    }

    fn run_query(q: &SwitchQuery, pkts: &[Packet]) -> Vec<(u64, u64)> {
        let mut st = QueryState::default();
        for p in pkts {
            if q.filter.matches(p) {
                st.update(q, p);
            }
        }
        st.over_threshold(q)
    }

    fn attack_packets() -> Vec<Packet> {
        // 20 SSH SYNs into 172.16.9.0/24 (the suspicious subset) plus
        // scattered background SYNs elsewhere.
        let mut v = Vec::new();
        for i in 0..20u8 {
            v.push(syn([198, 18, 0, i], [172, 16, 9, 7]));
        }
        for i in 0..5u8 {
            v.push(syn([10, 0, 0, i], [172, 200, i, 1]));
        }
        v
    }

    #[test]
    fn smartwatch_steers_after_one_interval() {
        let base = SwitchQuery::ssh_attempts(8, 10);
        let mut r = Refiner::new(RefineMode::SmartWatch, base, Refiner::paper_levels());
        let over = run_query(&r.initial_query(), &attack_packets());
        match r.on_results(&over) {
            RefineOutcome::SteerSubsets(rules) => {
                assert_eq!(rules.len(), 1);
                let rule = rules[0];
                assert_eq!(rule.width, 8);
                assert_eq!(rule.prefix, u32::from(Ipv4Addr::new(172, 0, 0, 0)));
                assert_eq!(rule.dst_port, Some(22));
                // The rule matches the attack traffic.
                assert!(attack_packets().iter().take(20).all(|p| rule.matches(p)));
            }
            other => panic!("expected steering, got {other:?}"),
        }
        // Level never advances in SmartWatch mode.
        assert_eq!(r.level(), 8);
    }

    #[test]
    fn sonata_zooms_level_by_level() {
        let base = SwitchQuery::ssh_attempts(8, 10);
        let mut r = Refiner::new(RefineMode::Sonata, base, Refiner::paper_levels());
        let pkts = attack_packets();

        // Interval 1 at /8.
        let over = run_query(&r.initial_query(), &pkts);
        let q16 = match r.on_results(&over) {
            RefineOutcome::NextQuery(q) => q,
            other => panic!("expected zoom, got {other:?}"),
        };
        assert_eq!(r.level(), 16);

        // Interval 2 at /16: focus window excludes the background /8s.
        let over = run_query(&q16, &pkts);
        assert_eq!(over.len(), 1);
        let q32 = match r.on_results(&over) {
            RefineOutcome::NextQuery(q) => q,
            other => panic!("expected second zoom, got {other:?}"),
        };

        // Interval 3 at /32: terminal detection.
        let over = run_query(&q32, &pkts);
        match r.on_results(&over) {
            RefineOutcome::Detected(prefixes) => {
                assert_eq!(prefixes.len(), 1);
                assert_eq!(prefixes[0].0, u32::from(Ipv4Addr::new(172, 16, 9, 7)));
                assert_eq!(prefixes[0].1, 32);
            }
            other => panic!("expected detection, got {other:?}"),
        }
        assert_eq!(r.level(), 8, "restarts after terminal detection");
    }

    #[test]
    fn sonata_focus_window_blinds_outside_traffic() {
        // Traffic that becomes suspicious in a *different* /8 during the
        // zoom is invisible to the refined query — the blind-spot Sonata
        // trades for memory.
        let base = SwitchQuery::ssh_attempts(8, 10);
        let mut r = Refiner::new(RefineMode::Sonata, base, Refiner::paper_levels());
        let over = run_query(&r.initial_query(), &attack_packets());
        let q16 = match r.on_results(&over) {
            RefineOutcome::NextQuery(q) => q,
            other => panic!("{other:?}"),
        };
        // A fresh burst in 10.0.0.0/8 while focused on 172/8:
        let outside: Vec<Packet> = (0..30u8)
            .map(|i| syn([198, 18, 1, i], [10, 9, 9, 9]))
            .collect();
        let over = run_query(&q16, &outside);
        assert!(
            over.is_empty(),
            "focused query must not see outside traffic"
        );
    }

    #[test]
    fn quiet_interval_restarts_coarse() {
        let base = SwitchQuery::ssh_attempts(8, 10);
        let mut r = Refiner::new(RefineMode::Sonata, base, Refiner::paper_levels());
        let over = run_query(&r.initial_query(), &attack_packets());
        let _ = r.on_results(&over);
        assert_eq!(r.level(), 16);
        match r.on_results(&[]) {
            RefineOutcome::Restart(q) => assert!(q.name.ends_with("@8")),
            other => panic!("{other:?}"),
        }
        assert_eq!(r.level(), 8);
    }

    #[test]
    fn zoom_latency_counts_levels() {
        let base = SwitchQuery::ssh_attempts(8, 10);
        let r = Refiner::new(RefineMode::Sonata, base, Refiner::paper_levels());
        assert_eq!(r.sonata_zoom_latency(), 3);
    }
}
