//! The P4Switch pipeline simulator.
//!
//! Models what SmartWatch needs from a Tofino-class switch: line-rate
//! forwarding with a match-action pipeline that (a) runs coarse telemetry
//! queries, (b) steers suspicious traffic subsets to the sNIC, (c) holds
//! whitelist/blacklist tables installed by the control loop, and (d)
//! accounts for the SRAM all of this occupies against a Tofino-like
//! budget (the lever behind Figs. 2 and 9).
//!
//! Per-packet behaviour (§3.1 "Selective bump-in-the-wire processing"):
//! blacklisted sources drop; whitelisted flows forward untouched (benign
//! heavy flows skip the sNIC detour); flows matching an installed steer
//! rule go to the sNIC; everything else forwards directly.

use crate::query::{QueryState, SwitchQuery};
use crate::table::{ExactTable, TERNARY_ENTRY_BYTES};
use smartwatch_net::{key::prefix_of, FlowKey, Packet};
use smartwatch_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Forwarding decision for one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Forward straight to the destination.
    Forward,
    /// Divert through the sNIC-host subsystem ("bump in the wire").
    Steer,
    /// Drop (blacklisted source).
    Drop,
}

/// A traffic-subset steering rule: packets whose destination (or source)
/// prefix matches are diverted to the sNIC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SteerRule {
    /// Prefix value (network-aligned).
    pub prefix: u32,
    /// Prefix width in bits.
    pub width: u8,
    /// Match on source (true) or destination (false) address.
    pub on_src: bool,
    /// Optional service-port constraint.
    pub dst_port: Option<u16>,
}

impl SteerRule {
    /// Destination-prefix rule.
    pub fn dst(prefix: u32, width: u8) -> SteerRule {
        SteerRule {
            prefix,
            width,
            on_src: false,
            dst_port: None,
        }
    }

    /// Source-prefix rule.
    pub fn src(prefix: u32, width: u8) -> SteerRule {
        SteerRule {
            prefix,
            width,
            on_src: true,
            dst_port: None,
        }
    }

    /// Add a destination-port constraint.
    pub fn with_port(mut self, port: u16) -> SteerRule {
        self.dst_port = Some(port);
        self
    }

    /// Does a packet match?
    ///
    /// Matching is *session-symmetric*: a rule keyed on the suspicious
    /// subset's source (destination) also diverts the reverse-direction
    /// packets of those sessions, because the sNIC's flow-state tracking
    /// needs to see responses (handshake outcomes, racing data). The
    /// switch implements this with the same symmetric hashing the
    /// FlowCache uses (§4).
    pub fn matches(&self, p: &Packet) -> bool {
        if let Some(port) = self.dst_port {
            if p.key.dst_port != port && p.key.src_port != port {
                return false;
            }
        }
        let (fwd, rev) = if self.on_src {
            (p.key.src_ip, p.key.dst_ip)
        } else {
            (p.key.dst_ip, p.key.src_ip)
        };
        prefix_of(fwd, self.width) == self.prefix || prefix_of(rev, self.width) == self.prefix
    }
}

/// Tofino-like SRAM budget.
#[derive(Clone, Copy, Debug)]
pub struct SramBudget {
    /// Match-action stages.
    pub stages: u32,
    /// SRAM per stage, bytes (the paper quotes 32 Mb = 4 MB per stage).
    pub bytes_per_stage: usize,
    /// Stages available to monitoring queries (the rest serve forwarding,
    /// ACLs, encapsulation — the paper's "common data center operations").
    pub monitoring_stages: u32,
}

impl Default for SramBudget {
    fn default() -> SramBudget {
        SramBudget {
            stages: 12,
            bytes_per_stage: 4 * 1024 * 1024,
            monitoring_stages: 10,
        }
    }
}

impl SramBudget {
    /// Total SRAM bytes.
    pub fn total(&self) -> usize {
        self.stages as usize * self.bytes_per_stage
    }
}

/// Pipeline stages one query occupies: one for its filter/reduce pair,
/// one more if it carries a distinct-filter (two sequential memory
/// operations cannot share a stage — the constraint §2.2.1 describes).
pub fn query_stages(q: &SwitchQuery) -> u32 {
    if q.distinct.is_some() {
        2
    } else {
        1
    }
}

/// Per-run switch statistics — a point-in-time *view* over the switch's
/// live telemetry counters (see [`SwitchCounters`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchStats {
    /// Packets forwarded directly.
    pub forwarded: u64,
    /// Packets steered to the sNIC.
    pub steered: u64,
    /// Packets dropped by the blacklist.
    pub dropped: u64,
    /// Bytes steered to the sNIC (Fig. 2's x-axis).
    pub steered_bytes: u64,
    /// Packets that bypassed steering due to the whitelist.
    pub whitelist_hits: u64,
}

/// The switch's live counters; handles may be shared with a [`Registry`]
/// (see [`P4Switch::attach_telemetry`]), otherwise they are private
/// cells. [`SwitchStats`] is the frozen view.
#[derive(Debug)]
struct SwitchCounters {
    forwarded: Counter,
    steered: Counter,
    dropped: Counter,
    steered_bytes: Counter,
    whitelist_hits: Counter,
}

impl SwitchCounters {
    fn detached() -> SwitchCounters {
        SwitchCounters {
            forwarded: Counter::detached(),
            steered: Counter::detached(),
            dropped: Counter::detached(),
            steered_bytes: Counter::detached(),
            whitelist_hits: Counter::detached(),
        }
    }

    fn registered(reg: &Registry, current: SwitchStats) -> SwitchCounters {
        let c = SwitchCounters {
            forwarded: reg.counter("p4.switch.forwarded", &[]),
            steered: reg.counter("p4.switch.steered", &[]),
            dropped: reg.counter("p4.switch.dropped", &[]),
            steered_bytes: reg.counter("p4.switch.steered_bytes", &[]),
            whitelist_hits: reg.counter("p4.switch.whitelist_hits", &[]),
        };
        c.forwarded.add(current.forwarded);
        c.steered.add(current.steered);
        c.dropped.add(current.dropped);
        c.steered_bytes.add(current.steered_bytes);
        c.whitelist_hits.add(current.whitelist_hits);
        c
    }

    fn snapshot(&self) -> SwitchStats {
        SwitchStats {
            forwarded: self.forwarded.get(),
            steered: self.steered.get(),
            dropped: self.dropped.get(),
            steered_bytes: self.steered_bytes.get(),
            whitelist_hits: self.whitelist_hits.get(),
        }
    }
}

impl Clone for SwitchCounters {
    /// Clones carry the values but never the registry cells: a cloned
    /// switch must not feed the original's metrics.
    fn clone(&self) -> SwitchCounters {
        let c = SwitchCounters::detached();
        c.forwarded.add(self.forwarded.get());
        c.steered.add(self.steered.get());
        c.dropped.add(self.dropped.get());
        c.steered_bytes.add(self.steered_bytes.get());
        c.whitelist_hits.add(self.whitelist_hits.get());
        c
    }
}

/// State-occupancy gauges, refreshed whenever installed state changes and
/// at every interval end (not per packet — `sram_bytes` walks the
/// tables).
#[derive(Clone, Debug)]
struct SwitchGauges {
    sram_bytes: Gauge,
    sram_occupancy: Gauge,
    stages_used: Gauge,
    whitelist_entries: Gauge,
    blacklist_entries: Gauge,
    steer_rules: Gauge,
}

/// The P4 switch.
#[derive(Debug)]
pub struct P4Switch {
    queries: Vec<(SwitchQuery, QueryState)>,
    /// Steering rules live in TCAM (ternary prefix + optional port).
    steer_rules: Vec<SteerRule>,
    /// Exact-match whitelist of benign flows.
    whitelist: ExactTable<FlowKey, ()>,
    /// Exact-match source blacklist.
    blacklist_src: ExactTable<Ipv4Addr, ()>,
    budget: SramBudget,
    stats: SwitchCounters,
    gauges: Option<SwitchGauges>,
}

impl Clone for P4Switch {
    /// Clones keep all installed state and counts but detach from any
    /// registry (see [`SwitchCounters::clone`]).
    fn clone(&self) -> P4Switch {
        P4Switch {
            queries: self.queries.clone(),
            steer_rules: self.steer_rules.clone(),
            whitelist: self.whitelist.clone(),
            blacklist_src: self.blacklist_src.clone(),
            budget: self.budget,
            stats: self.stats.clone(),
            gauges: None,
        }
    }
}

impl P4Switch {
    /// Switch with the default Tofino-like budget.
    pub fn new() -> P4Switch {
        P4Switch::with_budget(SramBudget::default())
    }

    /// Switch with an explicit SRAM budget.
    pub fn with_budget(budget: SramBudget) -> P4Switch {
        P4Switch {
            queries: Vec::new(),
            steer_rules: Vec::new(),
            whitelist: ExactTable::new(),
            blacklist_src: ExactTable::new(),
            budget,
            stats: SwitchCounters::detached(),
            gauges: None,
        }
    }

    /// Re-home the switch's counters into `registry` (`p4.switch.*`),
    /// carrying current values over, and start publishing occupancy
    /// gauges (SRAM bytes/fraction, stages used, table sizes). Gauges
    /// refresh whenever installed state changes and at interval ends.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.stats = SwitchCounters::registered(registry, self.stats.snapshot());
        self.gauges = Some(SwitchGauges {
            sram_bytes: registry.gauge("p4.switch.sram_bytes", &[]),
            sram_occupancy: registry.gauge("p4.switch.sram_occupancy", &[]),
            stages_used: registry.gauge("p4.switch.stages_used", &[]),
            whitelist_entries: registry.gauge("p4.switch.whitelist_entries", &[]),
            blacklist_entries: registry.gauge("p4.switch.blacklist_entries", &[]),
            steer_rules: registry.gauge("p4.switch.steer_rules", &[]),
        });
        self.refresh_gauges();
    }

    fn refresh_gauges(&mut self) {
        if let Some(g) = &self.gauges {
            g.sram_bytes.set(self.sram_bytes() as f64);
            g.sram_occupancy.set(self.sram_occupancy());
            g.stages_used.set(f64::from(self.stages_used()));
            g.whitelist_entries.set(self.whitelist.len() as f64);
            g.blacklist_entries.set(self.blacklist_src.len() as f64);
            g.steer_rules.set(self.steer_rules.len() as f64);
        }
    }

    /// Install a telemetry query (Sonata-interface equivalent). Returns
    /// `false` — installing nothing — if the monitoring stage budget is
    /// exhausted (the hardware constraint that motivates cooperative
    /// monitoring in the first place).
    pub fn install_query(&mut self, q: SwitchQuery) -> bool {
        if self.stages_used() + query_stages(&q) > self.budget.monitoring_stages {
            return false;
        }
        self.queries.push((q, QueryState::default()));
        self.refresh_gauges();
        true
    }

    /// Pipeline stages consumed by installed queries.
    pub fn stages_used(&self) -> u32 {
        self.queries.iter().map(|(q, _)| query_stages(q)).sum()
    }

    /// Remove a query by name; returns true if it existed.
    pub fn remove_query(&mut self, name: &str) -> bool {
        let before = self.queries.len();
        self.queries.retain(|(q, _)| q.name != name);
        self.refresh_gauges();
        self.queries.len() != before
    }

    /// Installed query names.
    pub fn query_names(&self) -> Vec<&str> {
        self.queries.iter().map(|(q, _)| q.name.as_str()).collect()
    }

    /// Install a steering rule (idempotent).
    pub fn install_steer(&mut self, rule: SteerRule) {
        if !self.steer_rules.contains(&rule) {
            self.steer_rules.push(rule);
            self.refresh_gauges();
        }
    }

    /// Remove every steering rule.
    pub fn clear_steer(&mut self) {
        self.steer_rules.clear();
        self.refresh_gauges();
    }

    /// Currently installed steer rules.
    pub fn steer_rules(&self) -> &[SteerRule] {
        &self.steer_rules
    }

    /// Whitelist a benign flow (exact-match table entry).
    pub fn whitelist(&mut self, key: FlowKey) {
        self.whitelist.insert(key.canonical().0, ());
        self.refresh_gauges();
    }

    /// Number of whitelist entries (Fig. 2's switch-state driver).
    pub fn whitelist_len(&self) -> usize {
        self.whitelist.len()
    }

    /// Blacklist a source address.
    pub fn blacklist(&mut self, src: Ipv4Addr) {
        self.blacklist_src.insert(src, ());
        self.refresh_gauges();
    }

    /// True if a source is blacklisted.
    pub fn is_blacklisted(&self, src: Ipv4Addr) -> bool {
        self.blacklist_src.lookup(&src).is_some()
    }

    /// Process one packet through the pipeline.
    pub fn process(&mut self, p: &Packet) -> Decision {
        if self.blacklist_src.lookup(&p.key.src_ip).is_some() {
            self.stats.dropped.inc();
            return Decision::Drop;
        }
        // Passive telemetry: queries observe every non-dropped packet.
        for (q, st) in &mut self.queries {
            if q.filter.matches(p) {
                st.update(q, p);
            }
        }
        if self.whitelist.lookup(&p.key.canonical().0).is_some() {
            self.stats.whitelist_hits.inc();
            self.stats.forwarded.inc();
            return Decision::Forward;
        }
        if self.steer_rules.iter().any(|r| r.matches(p)) {
            self.stats.steered.inc();
            self.stats.steered_bytes.add(u64::from(p.wire_len));
            return Decision::Steer;
        }
        self.stats.forwarded.inc();
        Decision::Forward
    }

    /// End the monitoring interval: return, per query, the keys that
    /// crossed their thresholds, and reset query state.
    pub fn end_interval(&mut self) -> HashMap<String, Vec<(u64, u64)>> {
        let mut out = HashMap::new();
        for (q, st) in &mut self.queries {
            let over = st.over_threshold(q);
            if !over.is_empty() {
                out.insert(q.name.clone(), over);
            }
            st.clear();
        }
        self.refresh_gauges();
        out
    }

    /// Current SRAM occupancy in bytes: query state + exact-match
    /// whitelist/blacklist entries + steering TCAM (charged at the TCAM
    /// premium).
    pub fn sram_bytes(&self) -> usize {
        let queries: usize = self.queries.iter().map(|(_, st)| st.sram_bytes()).sum();
        queries
            + self.whitelist.sram_bytes()
            + self.blacklist_src.sram_bytes()
            + self.steer_rules.len() * TERNARY_ENTRY_BYTES
    }

    /// Occupancy as a fraction of the budget.
    pub fn sram_occupancy(&self) -> f64 {
        self.sram_bytes() as f64 / self.budget.total() as f64
    }

    /// Statistics so far (a frozen view of the live counters).
    pub fn stats(&self) -> SwitchStats {
        self.stats.snapshot()
    }
}

impl Default for P4Switch {
    fn default() -> Self {
        P4Switch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{PacketBuilder, TcpFlags, Ts};

    fn pkt(src: [u8; 4], dst: [u8; 4], dport: u16, flags: TcpFlags) -> Packet {
        let key = FlowKey::tcp(Ipv4Addr::from(src), 40000, Ipv4Addr::from(dst), dport);
        PacketBuilder::new(key, Ts::ZERO).flags(flags).build()
    }

    #[test]
    fn default_is_forward() {
        let mut sw = P4Switch::new();
        assert_eq!(
            sw.process(&pkt([10, 0, 0, 1], [172, 16, 0, 1], 80, TcpFlags::SYN)),
            Decision::Forward
        );
        assert_eq!(sw.stats().forwarded, 1);
    }

    #[test]
    fn steer_rule_matches_prefix_and_port() {
        let mut sw = P4Switch::new();
        let prefix = u32::from(Ipv4Addr::new(172, 16, 0, 0));
        sw.install_steer(SteerRule::dst(prefix, 16).with_port(22));
        assert_eq!(
            sw.process(&pkt([10, 0, 0, 1], [172, 16, 3, 4], 22, TcpFlags::SYN)),
            Decision::Steer
        );
        // Wrong port: forwarded.
        assert_eq!(
            sw.process(&pkt([10, 0, 0, 1], [172, 16, 3, 4], 80, TcpFlags::SYN)),
            Decision::Forward
        );
        // Wrong prefix: forwarded.
        assert_eq!(
            sw.process(&pkt([10, 0, 0, 1], [172, 17, 3, 4], 22, TcpFlags::SYN)),
            Decision::Forward
        );
        assert_eq!(sw.stats().steered, 1);
        assert!(sw.stats().steered_bytes >= 64);
    }

    #[test]
    fn whitelist_overrides_steer() {
        let mut sw = P4Switch::new();
        let prefix = u32::from(Ipv4Addr::new(172, 16, 0, 0));
        sw.install_steer(SteerRule::dst(prefix, 16));
        let p = pkt([10, 0, 0, 1], [172, 16, 3, 4], 22, TcpFlags::SYN);
        assert_eq!(sw.process(&p), Decision::Steer);
        sw.whitelist(p.key);
        assert_eq!(sw.process(&p), Decision::Forward);
        // Reverse direction is also whitelisted (canonical key).
        let rev = PacketBuilder::new(p.key.reversed(), Ts::ZERO).build();
        assert_eq!(sw.process(&rev), Decision::Forward);
        assert_eq!(sw.stats().whitelist_hits, 2);
    }

    #[test]
    fn blacklist_drops_before_anything() {
        let mut sw = P4Switch::new();
        sw.blacklist(Ipv4Addr::new(198, 18, 0, 1));
        let p = pkt([198, 18, 0, 1], [172, 16, 0, 1], 22, TcpFlags::SYN);
        assert_eq!(sw.process(&p), Decision::Drop);
        assert!(sw.is_blacklisted(Ipv4Addr::new(198, 18, 0, 1)));
    }

    #[test]
    fn stage_budget_limits_queries() {
        let mut sw = P4Switch::with_budget(SramBudget {
            monitoring_stages: 3,
            ..SramBudget::default()
        });
        assert!(sw.install_query(SwitchQuery::ssh_attempts(8, 1))); // 1 stage
        assert!(sw.install_query(SwitchQuery::scan_probes(8, 1))); // 2 stages
        assert_eq!(sw.stages_used(), 3);
        assert!(
            !sw.install_query(SwitchQuery::rst_count(8, 1)),
            "budget full"
        );
        assert!(sw.remove_query("ssh-attempts-d8"));
        assert!(
            sw.install_query(SwitchQuery::rst_count(8, 1)),
            "freed a stage"
        );
    }

    #[test]
    fn queries_observe_and_report_at_interval_end() {
        let mut sw = P4Switch::new();
        sw.install_query(SwitchQuery::ssh_attempts(16, 3));
        for i in 0..5u8 {
            sw.process(&pkt([10, 0, 0, i], [172, 16, 0, 9], 22, TcpFlags::SYN));
        }
        let results = sw.end_interval();
        assert_eq!(results.len(), 1);
        let over = &results["ssh-attempts-d16"];
        assert_eq!(over[0].1, 5);
        // State reset after interval.
        assert!(sw.end_interval().is_empty());
    }

    #[test]
    fn sram_accounting_grows_with_state() {
        let mut sw = P4Switch::new();
        let empty = sw.sram_bytes();
        sw.install_query(SwitchQuery::ssh_attempts(16, 3));
        for i in 0..50u8 {
            sw.process(&pkt([10, 0, i, 1], [172, 16, i, 9], 22, TcpFlags::SYN));
        }
        let with_queries = sw.sram_bytes();
        assert!(with_queries > empty);
        for i in 0..100u32 {
            sw.whitelist(FlowKey::tcp(
                Ipv4Addr::from(0x0A000000 + i),
                1,
                Ipv4Addr::from(0xAC100001u32),
                80,
            ));
        }
        assert_eq!(sw.sram_bytes(), with_queries + 100 * 32);
        assert!(sw.sram_occupancy() > 0.0 && sw.sram_occupancy() < 1.0);
    }

    #[test]
    fn remove_query_and_steer_management() {
        let mut sw = P4Switch::new();
        sw.install_query(SwitchQuery::rst_count(16, 5));
        assert!(sw.remove_query("rst-d16"));
        assert!(!sw.remove_query("rst-d16"));
        sw.install_steer(SteerRule::dst(0, 8));
        sw.install_steer(SteerRule::dst(0, 8)); // idempotent
        assert_eq!(sw.steer_rules().len(), 1);
        sw.clear_steer();
        assert!(sw.steer_rules().is_empty());
    }
}
