//! Match-action table primitives.
//!
//! A Tofino-class pipeline stores its state in three table shapes, each
//! with a different SRAM/TCAM cost profile:
//!
//! - [`ExactTable`] — hash-based exact match (SRAM); whitelists and
//!   blacklists live here.
//! - [`LpmTable`] — longest-prefix match (SRAM trie / algorithmic LPM);
//!   routing-style lookups and prefix aggregations.
//! - [`TernaryTable`] — priority-ordered value/mask match (TCAM, charged
//!   at a premium); steering rules with port wildcards live here.
//!
//! The tables are generic over the action type `A`. Memory accounting
//! mirrors how the paper argues about SRAM pressure: every entry has a
//! fixed byte cost, and [`P4Switch`](crate::P4Switch) sums its tables
//! against the stage budget.

use std::collections::HashMap;
use std::hash::Hash;

/// Bytes charged per exact-match entry (key + action + overhead).
pub const EXACT_ENTRY_BYTES: usize = 32;
/// Bytes charged per LPM entry.
pub const LPM_ENTRY_BYTES: usize = 16;
/// Bytes charged per ternary entry (TCAM is ~4× SRAM cost per bit).
pub const TERNARY_ENTRY_BYTES: usize = 64;

/// Hash-based exact-match table.
#[derive(Clone, Debug)]
pub struct ExactTable<K: Eq + Hash, A> {
    entries: HashMap<K, A>,
    /// Maximum entries (hardware table size); `usize::MAX` = unbounded.
    pub capacity: usize,
}

impl<K: Eq + Hash, A> Default for ExactTable<K, A> {
    fn default() -> Self {
        ExactTable {
            entries: HashMap::new(),
            capacity: usize::MAX,
        }
    }
}

impl<K: Eq + Hash, A> ExactTable<K, A> {
    /// Unbounded table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Table bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        ExactTable {
            entries: HashMap::new(),
            capacity,
        }
    }

    /// Insert an entry; returns false (and does nothing) if full.
    pub fn insert(&mut self, key: K, action: A) -> bool {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            return false;
        }
        self.entries.insert(key, action);
        true
    }

    /// Look up a key.
    pub fn lookup(&self, key: &K) -> Option<&A> {
        self.entries.get(key)
    }

    /// Remove an entry.
    pub fn remove(&mut self, key: &K) -> Option<A> {
        self.entries.remove(key)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// SRAM bytes occupied.
    pub fn sram_bytes(&self) -> usize {
        self.entries.len() * EXACT_ENTRY_BYTES
    }
}

/// Longest-prefix-match table over IPv4 prefixes.
#[derive(Clone, Debug, Default)]
pub struct LpmTable<A> {
    /// Per-width maps, probed from /32 down (first hit wins).
    by_width: Vec<(u8, HashMap<u32, A>)>,
}

impl<A> LpmTable<A> {
    /// Empty table.
    pub fn new() -> Self {
        LpmTable {
            by_width: Vec::new(),
        }
    }

    /// Insert `prefix/width → action` (prefix must be network-aligned).
    pub fn insert(&mut self, prefix: u32, width: u8, action: A) {
        assert!(width <= 32);
        debug_assert_eq!(prefix & mask(width), prefix, "prefix not aligned");
        match self.by_width.iter_mut().find(|(w, _)| *w == width) {
            Some((_, m)) => {
                m.insert(prefix, action);
            }
            None => {
                let mut m = HashMap::new();
                m.insert(prefix, action);
                self.by_width.push((width, m));
                self.by_width.sort_by_key(|(w, _)| std::cmp::Reverse(*w));
            }
        }
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: u32) -> Option<(&A, u8)> {
        for (w, m) in &self.by_width {
            if let Some(a) = m.get(&(addr & mask(*w))) {
                return Some((a, *w));
            }
        }
        None
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.by_width.iter().map(|(_, m)| m.len()).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// SRAM bytes occupied.
    pub fn sram_bytes(&self) -> usize {
        self.len() * LPM_ENTRY_BYTES
    }
}

fn mask(width: u8) -> u32 {
    if width == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(width))
    }
}

/// One ternary entry: `(value & mask) == (key & mask)` matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TernaryEntry {
    /// Match value.
    pub value: u64,
    /// Care mask (1 bits are compared).
    pub mask: u64,
    /// Priority; higher wins.
    pub priority: i32,
}

impl TernaryEntry {
    /// Does a key match?
    pub fn matches(&self, key: u64) -> bool {
        key & self.mask == self.value & self.mask
    }
}

/// Priority-ordered ternary (TCAM) table.
#[derive(Clone, Debug, Default)]
pub struct TernaryTable<A> {
    entries: Vec<(TernaryEntry, A)>,
}

impl<A> TernaryTable<A> {
    /// Empty table.
    pub fn new() -> Self {
        TernaryTable {
            entries: Vec::new(),
        }
    }

    /// Insert an entry (kept sorted by descending priority; stable for
    /// equal priorities — first inserted wins).
    pub fn insert(&mut self, entry: TernaryEntry, action: A) {
        let pos = self
            .entries
            .partition_point(|(e, _)| e.priority >= entry.priority);
        self.entries.insert(pos, (entry, action));
    }

    /// Highest-priority matching action.
    pub fn lookup(&self, key: u64) -> Option<&A> {
        self.entries
            .iter()
            .find(|(e, _)| e.matches(key))
            .map(|(_, a)| a)
    }

    /// Iterate entries in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &(TernaryEntry, A)> {
        self.entries.iter()
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// TCAM bytes occupied (charged against the SRAM budget at the
    /// premium rate).
    pub fn sram_bytes(&self) -> usize {
        self.entries.len() * TERNARY_ENTRY_BYTES
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A register array: per-index stateful cells with the P4 constraint of
/// one read-modify-write per packet per register (enforced in debug via
/// an access epoch).
#[derive(Clone, Debug)]
pub struct RegisterArray {
    cells: Vec<u64>,
    epoch: u64,
    last_access_epoch: Vec<u64>,
}

impl RegisterArray {
    /// `n` zero-initialised 64-bit registers.
    pub fn new(n: usize) -> RegisterArray {
        RegisterArray {
            cells: vec![0; n],
            epoch: 1,
            last_access_epoch: vec![0; n],
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Begin a new packet (advances the access epoch).
    pub fn next_packet(&mut self) {
        self.epoch += 1;
    }

    /// Read-modify-write one register. Panics in debug builds if the same
    /// register is touched twice within one packet — the hardware
    /// constraint the paper cites ("registers in one stage cannot be
    /// accessed at a different stage… only a small constant number of
    /// memory accesses per packet").
    pub fn rmw(&mut self, index: usize, f: impl FnOnce(u64) -> u64) -> u64 {
        debug_assert_ne!(
            self.last_access_epoch[index], self.epoch,
            "register {index} accessed twice in one packet"
        );
        self.last_access_epoch[index] = self.epoch;
        let v = f(self.cells[index]);
        self.cells[index] = v;
        v
    }

    /// Read a register without the per-packet constraint (control plane).
    pub fn read(&self, index: usize) -> u64 {
        self.cells[index]
    }

    /// Control-plane reset.
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }

    /// SRAM bytes occupied.
    pub fn sram_bytes(&self) -> usize {
        self.cells.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_table_capacity_enforced() {
        let mut t: ExactTable<u32, &str> = ExactTable::with_capacity(2);
        assert!(t.insert(1, "a"));
        assert!(t.insert(2, "b"));
        assert!(!t.insert(3, "c"), "full table must refuse");
        assert!(t.insert(1, "a2"), "updates to existing keys allowed");
        assert_eq!(t.lookup(&1), Some(&"a2"));
        assert_eq!(t.sram_bytes(), 2 * EXACT_ENTRY_BYTES);
        t.remove(&1);
        assert!(t.insert(3, "c"));
    }

    #[test]
    fn lpm_prefers_longest_prefix() {
        let mut t: LpmTable<&str> = LpmTable::new();
        t.insert(u32::from(std::net::Ipv4Addr::new(10, 0, 0, 0)), 8, "coarse");
        t.insert(u32::from(std::net::Ipv4Addr::new(10, 1, 0, 0)), 16, "fine");
        let addr = u32::from(std::net::Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(t.lookup(addr), Some((&"fine", 16)));
        let other = u32::from(std::net::Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(t.lookup(other), Some((&"coarse", 8)));
        let miss = u32::from(std::net::Ipv4Addr::new(11, 0, 0, 1));
        assert_eq!(t.lookup(miss), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lpm_default_route() {
        let mut t: LpmTable<&str> = LpmTable::new();
        t.insert(0, 0, "default");
        assert_eq!(t.lookup(0xFFFF_FFFF), Some((&"default", 0)));
    }

    #[test]
    fn ternary_priority_order() {
        let mut t: TernaryTable<&str> = TernaryTable::new();
        t.insert(
            TernaryEntry {
                value: 0x22,
                mask: 0xFF,
                priority: 10,
            },
            "ssh",
        );
        t.insert(
            TernaryEntry {
                value: 0x00,
                mask: 0x00,
                priority: 1,
            },
            "any",
        );
        assert_eq!(t.lookup(0x22), Some(&"ssh"));
        assert_eq!(t.lookup(0x50), Some(&"any"));
        assert_eq!(t.len(), 2);
        assert!(t.sram_bytes() > EXACT_ENTRY_BYTES * 2, "TCAM costs more");
    }

    #[test]
    fn ternary_mask_semantics() {
        let e = TernaryEntry {
            value: 0xAB00,
            mask: 0xFF00,
            priority: 0,
        };
        assert!(e.matches(0xABCD));
        assert!(!e.matches(0xACCD));
    }

    #[test]
    fn register_rmw_and_reset() {
        let mut r = RegisterArray::new(4);
        r.next_packet();
        assert_eq!(r.rmw(0, |v| v + 5), 5);
        r.next_packet();
        assert_eq!(r.rmw(0, |v| v + 5), 10);
        assert_eq!(r.read(0), 10);
        r.clear();
        assert_eq!(r.read(0), 0);
        assert_eq!(r.sram_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "accessed twice")]
    #[cfg(debug_assertions)]
    fn register_double_access_panics() {
        let mut r = RegisterArray::new(1);
        r.next_packet();
        r.rmw(0, |v| v + 1);
        r.rmw(0, |v| v + 1);
    }
}
