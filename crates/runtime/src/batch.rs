//! Pre-digested, pooled packet batches — the zero-alloc hot-path
//! currency between the dispatcher and the shards.
//!
//! The dispatcher canonicalises and hashes every packet exactly once
//! ([`smartwatch_net::FlowHasher::digest_symmetric`]) and records the
//! result next to the packet as a [`DigestedPacket`]. Everything
//! downstream — RSS sharding, black/whitelist membership, the FlowCache
//! row lookup — reuses that digest instead of re-deriving it.
//!
//! Batches travel in `Vec<DigestedPacket>` buffers owned by a
//! [`BufferPool`]: shards hand drained buffers back to the dispatcher
//! over a bounded recycle channel, so after a short warm-up the steady
//! state allocates nothing per batch. Pool traffic is observable as
//! `runtime.pool.allocated` / `runtime.pool.recycled` counters; the
//! zero-growth property is what the pool tests pin down.
//!
//! On the consuming side, shards walk each delivered batch in
//! [`EngineConfig::cache_burst`](crate::EngineConfig::cache_burst)-sized
//! chunks: the carried digest lets the shard prefetch every FlowCache
//! row a chunk will touch *before* the first probe (stage A), then
//! process the chunk strictly in sequence (stage B). The prefetch stage
//! is architecturally inert, so decisions, counters and the
//! deterministic summary are byte-identical at any burst width.

use smartwatch_net::{HashDigest, Packet};
use smartwatch_telemetry::{Counter, Registry};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::time::{Duration, Instant};

/// A packet plus its dispatch-time digest: the canonical (direction-free)
/// flow key and the symmetric 64-bit hash over it.
#[derive(Clone, Copy, Debug)]
pub struct DigestedPacket {
    /// The packet, as offered.
    pub pkt: Packet,
    /// `pkt.key.canonical().0`, computed once at dispatch.
    pub canon: smartwatch_net::FlowKey,
    /// Symmetric digest of `canon` under the engine's hash seed.
    pub digest: HashDigest,
    /// Global arrival index of the packet in the offered sequence.
    /// Within any one RX queue's sub-stream this is strictly increasing,
    /// which is what lets a shard's ordered merge reconstruct the exact
    /// single-queue processing order from R lanes (see
    /// [`crate::MergePolicy::Ordered`]).
    pub seq: u64,
}

/// One dispatched batch: pre-digested packets plus the enqueue instant
/// (queue-wait timing).
pub(crate) struct Batch {
    /// The packets, already RSS-filtered for one shard.
    pub pkts: Vec<DigestedPacket>,
    /// When the dispatcher enqueued the batch.
    pub sent: Instant,
}

/// Dispatcher-side buffer pool fed by a bounded recycle channel.
///
/// `acquire` prefers a recycled buffer and falls back to a fresh
/// allocation (counted — the pool tests assert the count stops growing
/// after warm-up). Shards return buffers through [`RecycleSender`]; a
/// full channel simply drops the buffer, so the pool's footprint is
/// bounded by the channel capacity plus the buffers in flight.
pub(crate) struct BufferPool {
    rx: Receiver<Vec<DigestedPacket>>,
    tx: SyncSender<Vec<DigestedPacket>>,
    batch_capacity: usize,
    /// Fresh `Vec` allocations (misses).
    pub allocated: Counter,
    /// Buffers reused from the recycle channel (hits).
    pub recycled: Counter,
}

impl BufferPool {
    /// Pool with room for `slots` recycled buffers of `batch_capacity`
    /// packets each, publishing `runtime.pool.*` into `registry`.
    pub fn new(slots: usize, batch_capacity: usize, registry: &Registry) -> BufferPool {
        let (tx, rx) = sync_channel(slots.max(1));
        BufferPool {
            rx,
            tx,
            batch_capacity,
            allocated: registry.counter("runtime.pool.allocated", &[]),
            recycled: registry.counter("runtime.pool.recycled", &[]),
        }
    }

    /// An empty buffer: recycled when one is waiting, freshly allocated
    /// otherwise.
    pub fn acquire(&self) -> Vec<DigestedPacket> {
        match self.rx.try_recv() {
            Ok(mut buf) => {
                buf.clear();
                self.recycled.inc();
                buf
            }
            Err(_) => {
                self.allocated.inc();
                Vec::with_capacity(self.batch_capacity)
            }
        }
    }

    /// A return-path handle for one shard.
    pub fn recycler(&self) -> RecycleSender {
        RecycleSender(self.tx.clone())
    }

    /// Dispatcher-side return path (e.g. a batch dropped at a full shard
    /// queue in paced mode goes straight back to the pool).
    pub fn give_back(&self, mut buf: Vec<DigestedPacket>) {
        buf.clear();
        let _ = self.tx.try_send(buf);
    }
}

/// A shard's handle for returning drained batch buffers to the pool.
pub(crate) struct RecycleSender(SyncSender<Vec<DigestedPacket>>);

impl RecycleSender {
    /// Hand a drained buffer back. A full (or closed) channel drops the
    /// buffer instead — correctness never depends on recycling.
    pub fn give_back(&self, mut buf: Vec<DigestedPacket>) {
        buf.clear();
        let _ = self.0.try_send(buf);
    }
}

/// Poll-loop pacing: spin briefly, then yield, then park with doubling
/// timeouts — bounded exponential backoff.
///
/// The first [`Backoff::SPIN_LIMIT`] idle polls spin (latency-optimal
/// when work is about to arrive), the next stretch yields the CPU (the
/// producer may need this very core), and from then on the thread parks,
/// doubling the timeout from [`Backoff::PARK_MIN`] up to
/// [`Backoff::PARK_MAX`] — so a paced low-rate run stops burning a full
/// core per idle shard while the wake-up latency stays bounded.
pub(crate) struct Backoff {
    polls: u32,
}

impl Backoff {
    /// Idle polls that spin before the first yield.
    const SPIN_LIMIT: u32 = 64;
    /// Idle polls (spins + yields) before the first park.
    const YIELD_LIMIT: u32 = 128;
    /// First park timeout.
    const PARK_MIN: Duration = Duration::from_micros(16);
    /// Park timeout ceiling (bounds both CPU burn and wake-up latency).
    const PARK_MAX: Duration = Duration::from_micros(256);

    /// Fresh (hot) backoff state.
    pub fn new() -> Backoff {
        Backoff { polls: 0 }
    }

    /// Work arrived: return to the spin phase.
    pub fn reset(&mut self) {
        self.polls = 0;
    }

    /// One idle poll. Returns `true` when the thread parked (the caller
    /// counts these as `idle_parks`).
    pub fn idle(&mut self) -> bool {
        self.polls = self.polls.saturating_add(1);
        if self.polls <= Self::SPIN_LIMIT {
            std::hint::spin_loop();
            false
        } else if self.polls <= Self::YIELD_LIMIT {
            std::thread::yield_now();
            false
        } else {
            let doublings = (self.polls - Self::YIELD_LIMIT - 1).min(4);
            let timeout = Self::PARK_MIN
                .saturating_mul(1 << doublings)
                .min(Self::PARK_MAX);
            std::thread::park_timeout(timeout);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{FlowHasher, FlowKey, PacketBuilder, Ts};
    use std::net::Ipv4Addr;

    fn digested(i: u32) -> DigestedPacket {
        let key = FlowKey::tcp(
            Ipv4Addr::from(0x0A00_0000 + i),
            1000,
            Ipv4Addr::new(10, 0, 1, 1),
            80,
        );
        let pkt = PacketBuilder::new(key, Ts::ZERO).build();
        let (canon, digest) = FlowHasher::new(0x51CC).digest_symmetric(&key);
        DigestedPacket {
            pkt,
            canon,
            digest,
            seq: u64::from(i),
        }
    }

    #[test]
    fn pool_recycles_without_growth_after_warmup() {
        let reg = Registry::new();
        let pool = BufferPool::new(8, 64, &reg);
        let shard = pool.recycler();

        // Warm-up: the first acquires of an empty pool must allocate.
        let mut in_flight: Vec<Vec<DigestedPacket>> = (0..4).map(|_| pool.acquire()).collect();
        let warmup_allocs = pool.allocated.get();
        assert_eq!(warmup_allocs, 4);

        // Steady state: acquire/fill/give-back cycles — zero growth.
        for round in 0..1000u32 {
            let mut buf = in_flight.pop().expect("buffer available");
            for i in 0..64 {
                buf.push(digested(round * 64 + i));
            }
            shard.give_back(buf);
            in_flight.push(pool.acquire());
        }
        assert_eq!(
            pool.allocated.get(),
            warmup_allocs,
            "steady state must not allocate"
        );
        assert_eq!(pool.recycled.get(), 1000);
        assert!(
            in_flight.iter().all(|b| b.is_empty()),
            "buffers come back clean"
        );
    }

    #[test]
    fn full_recycle_channel_drops_instead_of_blocking() {
        let reg = Registry::new();
        let pool = BufferPool::new(2, 8, &reg);
        let shard = pool.recycler();
        for _ in 0..10 {
            shard.give_back(Vec::new()); // 8 of these overflow: dropped
        }
        // Only the 2 channel slots are reusable.
        let _a = pool.acquire();
        let _b = pool.acquire();
        let _c = pool.acquire();
        assert_eq!(pool.recycled.get(), 2);
        assert_eq!(pool.allocated.get(), 1);
    }

    #[test]
    fn backoff_escalates_spin_yield_park_and_resets() {
        let mut b = Backoff::new();
        let mut parked = 0u32;
        for _ in 0..Backoff::YIELD_LIMIT {
            assert!(!b.idle(), "no park during spin/yield phases");
        }
        for _ in 0..8 {
            if b.idle() {
                parked += 1;
            }
        }
        assert_eq!(parked, 8, "past the yield limit every poll parks");
        b.reset();
        assert!(!b.idle(), "reset returns to the spin phase");
    }
}
