//! Epoch-stamped verdict fan-out from the host tier back to the shards.
//!
//! Host NFs (and inline triage) publish [`Verdict`]s into one shared
//! log; each entry's index is its *epoch*. Consumers (every shard, plus
//! the control plane when one is attached) register a [`LogReader`] up
//! front and poll the tail at batch boundaries, so a verdict reaches all
//! shards within one batch of being published — the wall-clock analogue
//! of the simulator's per-interval control loop.
//!
//! The log is **bounded**: entries that every registered reader has
//! consumed are compacted away (the buffer retains only the suffix past
//! the minimum reader cursor), so memory stays proportional to the
//! *lag* of the slowest reader, never to the run length. Epoch numbers
//! stay monotone across compaction — the head offset (`base`) keeps
//! counting even as the `VecDeque` shrinks. A reader that exits calls
//! [`ControlLog::release`] so it stops pinning the buffer.
//!
//! Publishing takes a short mutex; readers copy the tail out under the
//! same lock, so the hot per-packet path never touches it.

use smartwatch_host::Verdict;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A released/parked cursor: never pins the buffer.
const RELEASED: u64 = u64::MAX;

#[derive(Debug, Default)]
struct LogInner {
    /// Epoch of `entries[0]` — grows as the applied prefix compacts.
    base: u64,
    entries: VecDeque<Verdict>,
    /// Absolute epoch cursor per registered reader (`RELEASED` once the
    /// reader is gone).
    cursors: Vec<u64>,
}

impl LogInner {
    fn head(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Drop every entry below the minimum live cursor.
    fn compact(&mut self) {
        let min = self.cursors.iter().copied().min().unwrap_or(RELEASED);
        let keep_from = min.min(self.head());
        while self.base < keep_from {
            self.entries.pop_front();
            self.base += 1;
        }
    }
}

/// The shared control-plane log (see module docs).
#[derive(Debug, Default)]
pub struct ControlLog {
    inner: Mutex<LogInner>,
}

/// A registered consumer's handle. Obtain via [`ControlLog::reader`]
/// *before* publishing begins; pass to [`ControlLog::poll`] to consume
/// and to [`ControlLog::release`] when done.
#[derive(Debug)]
pub struct LogReader {
    idx: usize,
}

impl ControlLog {
    /// Empty log.
    pub fn new() -> ControlLog {
        ControlLog::default()
    }

    /// Append one verdict; returns its epoch (position in the log).
    pub fn publish(&self, v: Verdict) -> u64 {
        let mut inner = self.inner.lock().expect("control log poisoned");
        let epoch = inner.head();
        inner.entries.push_back(v);
        // With no registered readers nothing will ever poll: compact
        // immediately so a reader-less log (pure accounting) stays empty.
        if inner.cursors.iter().all(|&c| c == RELEASED) {
            inner.compact();
        }
        epoch
    }

    /// Register a reader. Its cursor starts at the oldest retained entry
    /// (epoch 0 on a fresh log), so register every reader before the run
    /// starts publishing.
    pub fn reader(&self) -> LogReader {
        let mut inner = self.inner.lock().expect("control log poisoned");
        let start = inner.base;
        inner.cursors.push(start);
        LogReader {
            idx: inner.cursors.len() - 1,
        }
    }

    /// Copy out everything `r` has not consumed yet, advance its cursor,
    /// and compact the prefix every reader is past.
    pub fn poll(&self, r: &LogReader) -> Vec<Verdict> {
        let mut inner = self.inner.lock().expect("control log poisoned");
        let cursor = inner.cursors[r.idx];
        debug_assert!(cursor >= inner.base, "cursor fell behind the buffer");
        let from = (cursor - inner.base) as usize;
        let tail: Vec<Verdict> = inner.entries.iter().skip(from).cloned().collect();
        let head = inner.head();
        inner.cursors[r.idx] = head;
        inner.compact();
        tail
    }

    /// Deregister a reader so it no longer pins the buffer. Entries only
    /// it had not consumed become collectable immediately.
    pub fn release(&self, r: LogReader) {
        let mut inner = self.inner.lock().expect("control log poisoned");
        inner.cursors[r.idx] = RELEASED;
        inner.compact();
    }

    /// Number of verdicts ever published (the next epoch). Monotone —
    /// unaffected by compaction.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("control log poisoned").head() as usize
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently resident in memory (the slowest reader's lag).
    /// The boundedness regression test watches exactly this.
    pub fn buffered(&self) -> usize {
        self.inner
            .lock()
            .expect("control log poisoned")
            .entries
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::FlowKey;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, n),
            1000,
            Ipv4Addr::new(10, 0, 1, 1),
            22,
        )
    }

    #[test]
    fn epochs_are_sequential_and_readers_independent() {
        let log = ControlLog::new();
        let ra = log.reader();
        let rb = log.reader();
        assert!(log.is_empty());
        assert_eq!(log.publish(Verdict::Blacklist(key(1))), 0);
        assert_eq!(log.publish(Verdict::Whitelist(key(2))), 1);
        assert_eq!(log.poll(&ra).len(), 2);
        assert!(
            log.poll(&ra).is_empty(),
            "nothing new for a caught-up reader"
        );
        assert_eq!(log.poll(&rb).len(), 2, "each reader sees every entry once");
        assert_eq!(log.publish(Verdict::Drop), 2);
        assert_eq!(log.poll(&rb), vec![Verdict::Drop]);
        assert_eq!(log.len(), 3, "len counts all publications ever");
    }

    #[test]
    fn compaction_bounds_memory_to_slowest_reader_lag() {
        let log = ControlLog::new();
        let fast = log.reader();
        let slow = log.reader();
        for i in 0..100u8 {
            log.publish(Verdict::Blacklist(key(i)));
        }
        assert_eq!(log.buffered(), 100, "nothing consumed yet");
        assert_eq!(log.poll(&fast).len(), 100);
        // The slow reader still pins everything.
        assert_eq!(log.buffered(), 100);
        assert_eq!(log.poll(&slow).len(), 100);
        assert_eq!(log.buffered(), 0, "fully consumed prefix compacts away");
        // Epochs keep counting monotonically past compaction.
        assert_eq!(log.publish(Verdict::Drop), 100);
        assert_eq!(log.buffered(), 1);
        assert_eq!(log.poll(&fast), vec![Verdict::Drop]);
        assert_eq!(log.poll(&slow), vec![Verdict::Drop]);
        assert_eq!(log.buffered(), 0);
        assert_eq!(log.len(), 101);
    }

    #[test]
    fn released_reader_stops_pinning() {
        let log = ControlLog::new();
        let live = log.reader();
        let gone = log.reader();
        for i in 0..10u8 {
            log.publish(Verdict::Blacklist(key(i)));
        }
        log.release(gone);
        assert_eq!(log.poll(&live).len(), 10);
        assert_eq!(log.buffered(), 0, "released reader does not retain");
    }

    #[test]
    fn readerless_log_stays_empty_but_counts() {
        let log = ControlLog::new();
        for i in 0..50u8 {
            log.publish(Verdict::Blacklist(key(i)));
        }
        assert_eq!(log.len(), 50);
        assert_eq!(log.buffered(), 0, "no readers, nothing retained");
    }

    #[test]
    fn memory_stays_bounded_over_a_long_run() {
        // The regression the rewrite exists for: a steadily-polling
        // reader over a long publication stream must keep resident
        // entries bounded by the poll interval, not the run length.
        let log = std::sync::Arc::new(ControlLog::new());
        let reader = log.reader();
        let mut peak = 0usize;
        for round in 0..1000u32 {
            for i in 0..16u8 {
                log.publish(Verdict::Blacklist(key(i)));
            }
            peak = peak.max(log.buffered());
            let tail = log.poll(&reader);
            assert_eq!(tail.len(), 16);
            if round % 97 == 0 {
                assert!(log.buffered() <= 16);
            }
        }
        assert_eq!(log.len(), 16_000);
        assert!(
            peak <= 16,
            "resident entries bounded by poll lag, got {peak}"
        );
    }

    #[test]
    fn concurrent_publishers_never_lose_entries() {
        let log = std::sync::Arc::new(ControlLog::new());
        let reader = log.reader();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        log.publish(Verdict::Blacklist(key(t)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(log.len(), 4000);
        assert_eq!(log.poll(&reader).len(), 4000);
        assert_eq!(log.buffered(), 0);
    }
}
