//! Epoch-stamped verdict fan-out from the host tier back to the shards.
//!
//! Host NFs (and inline triage) publish [`Verdict`]s into one append-only
//! log; each entry's index is its *epoch*. Every shard keeps a private
//! cursor and applies the tail of the log at batch boundaries, so a
//! verdict reaches all shards within one batch of being published — the
//! wall-clock analogue of the simulator's per-interval control loop.
//! Publishing takes a short mutex; shards copy the tail out under the
//! same lock, so the hot per-packet path never touches it.

use smartwatch_host::Verdict;
use std::sync::Mutex;

/// The shared control-plane log.
#[derive(Debug, Default)]
pub struct ControlLog {
    entries: Mutex<Vec<Verdict>>,
}

impl ControlLog {
    /// Empty log.
    pub fn new() -> ControlLog {
        ControlLog::default()
    }

    /// Append one verdict; returns its epoch (position in the log).
    pub fn publish(&self, v: Verdict) -> u64 {
        let mut entries = self.entries.lock().expect("control log poisoned");
        entries.push(v);
        (entries.len() - 1) as u64
    }

    /// Copy out every verdict at epoch ≥ `cursor`. The caller advances
    /// its cursor by the returned length.
    pub fn since(&self, cursor: usize) -> Vec<Verdict> {
        let entries = self.entries.lock().expect("control log poisoned");
        entries.get(cursor..).map(<[_]>::to_vec).unwrap_or_default()
    }

    /// Number of verdicts ever published (the next epoch).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("control log poisoned").len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::FlowKey;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, n),
            1000,
            Ipv4Addr::new(10, 0, 1, 1),
            22,
        )
    }

    #[test]
    fn epochs_are_sequential_and_cursors_independent() {
        let log = ControlLog::new();
        assert!(log.is_empty());
        assert_eq!(log.publish(Verdict::Blacklist(key(1))), 0);
        assert_eq!(log.publish(Verdict::Whitelist(key(2))), 1);
        let tail = log.since(0);
        assert_eq!(tail.len(), 2);
        assert_eq!(log.since(1).len(), 1);
        assert_eq!(log.publish(Verdict::Drop), 2);
        assert_eq!(log.since(2), vec![Verdict::Drop]);
        assert!(log.since(3).is_empty());
        assert!(log.since(99).is_empty(), "cursor past the end is empty");
    }

    #[test]
    fn concurrent_publishers_never_lose_entries() {
        let log = std::sync::Arc::new(ControlLog::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        log.publish(Verdict::Blacklist(key(t)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(log.len(), 4000);
    }
}
