//! The engine: RSS dispatch onto N shard threads, host escalation pool,
//! graceful drain, and a wall-clock throughput/latency report.
//!
//! ```text
//!            ┌───────────── shard 0: FlowCache + DetectorSuite ─┐
//! packets →  │ RSS        ┌─ shard 1: …                         │ → verdicts
//! (replay)   │ dispatch → │  bounded SPSC batch queues          │   (epoch-
//!            │            └─ shard N-1: …                       │    stamped
//!            └───────────────│ suspects (≤16%) ─→ host pool ────┘    log)
//! ```
//!
//! Unlike everything else in the workspace, this engine runs on the
//! *wall clock*: `run()` spawns real OS threads, measures elapsed time
//! with `std::time::Instant`, and reports Mpps. Packet `ts` fields are
//! replay metadata here, not the clock. Counters remain exact — the
//! conservation invariant (offered = processed + dropped, per shard and
//! in total) holds for every shard count and pacing mode.

use crate::batch::{Batch, BufferPool, DigestedPacket};
use crate::control::{ControlLog, LogReader};
use crate::escalate::{HostPool, TriageNf};
use crate::shard::{
    ControlHooks, Escalation, ShardCounters, ShardEndState, ShardMsg, ShardStats, ShardWorker,
    StageHists,
};
use crate::spsc::{spsc, Producer};
use smartwatch_control::{
    ControlConfig, ControlReport, Controller, EpochInput, ModeCell, ShardSample, SnapshotCell,
    SnapshotReader, SteeringSnapshot,
};
use smartwatch_net::hash::shard_for_digest;
use smartwatch_net::{FlowHasher, Packet};
use smartwatch_snic::{FlowCache, FlowCacheConfig};
use smartwatch_telemetry::{Counter, HistSnapshot, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker shards (threads). Each owns a FlowCache partition and a
    /// full detector suite.
    pub shards: usize,
    /// Packets per dispatch batch.
    pub batch: usize,
    /// Per-shard ingest queue capacity, in batches.
    pub queue_batches: usize,
    /// Rows per shard FlowCache partition (`2^row_bits`).
    pub cache_row_bits: u32,
    /// Host escalation workers. `0` runs triage inline on each shard —
    /// fully deterministic, used by the determinism tests.
    pub host_workers: usize,
    /// Host escalation ring capacity, packets (shared by the pool).
    pub host_queue: usize,
    /// Escalated packets per source before triage blacklists its flows.
    pub triage_threshold: u64,
    /// Enforce blacklist verdicts on the shards (prevention). Disable to
    /// measure pure monitoring throughput.
    pub enforce_verdicts: bool,
    /// FlowCache hash seed (per-shard caches share it; partitioning
    /// comes from RSS, not from distinct hash functions).
    pub hash_seed: u64,
    /// Attach the adaptive control plane: an epoch thread that runs
    /// Algorithm 4 mode switching per shard, promotes heavy hitters,
    /// publishes steering snapshots and decides load shedding. `None`
    /// runs the engine open-loop (the pre-control behaviour, and the
    /// deterministic-test configuration).
    pub control: Option<ControlConfig>,
}

impl EngineConfig {
    /// Defaults for `shards` workers: 64-packet batches, 64-batch queues,
    /// 2^12-row partitions, one host worker.
    pub fn new(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            batch: 64,
            queue_batches: 64,
            cache_row_bits: 12,
            host_workers: 1,
            host_queue: 4096,
            triage_threshold: 64,
            enforce_verdicts: true,
            hash_seed: 0x51CC,
            control: None,
        }
    }

    /// Attach a control plane (its hash seed is forced to the engine's
    /// so verdict/steering digests line up with dispatch digests).
    pub fn with_control(mut self, mut ctrl: ControlConfig) -> EngineConfig {
        ctrl.hash_seed = self.hash_seed;
        self.control = Some(ctrl);
        self
    }
}

/// How the replay driver offers packets to the engine.
#[derive(Clone, Copy, Debug)]
pub enum Pace {
    /// As fast as the shards accept: a full queue exerts backpressure on
    /// the dispatcher (no drops). Measures pipeline capacity.
    Flatout,
    /// Open-loop at a target offered rate in Mpps: a full queue at
    /// arrival time is a counted drop, like a NIC RX ring overrun.
    RateMpps(f64),
    /// Open-loop at `base_mpps` with one rectangular overload spike at
    /// `peak_mpps` while the replay position is inside
    /// `[spike_start, spike_end)` (fractions of the packet sequence).
    /// This is the control plane's repro workload: the spike drives
    /// Algorithm 4 into Lite and (if sustained) engages shedding; the
    /// return to base rate must recover General.
    Spike {
        /// Offered rate outside the spike, Mpps.
        base_mpps: f64,
        /// Offered rate inside the spike, Mpps.
        peak_mpps: f64,
        /// Spike start as a fraction of the sequence, `0.0..=1.0`.
        spike_start: f64,
        /// Spike end as a fraction of the sequence, `0.0..=1.0`.
        spike_end: f64,
    },
}

/// The sharded wall-clock engine.
pub struct Engine {
    cfg: EngineConfig,
    registry: Registry,
}

impl Engine {
    /// Engine with a private metric registry.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine::with_registry(cfg, &Registry::new())
    }

    /// Engine publishing into an existing registry (`runtime.*` metrics).
    pub fn with_registry(cfg: EngineConfig, registry: &Registry) -> Engine {
        assert!(cfg.shards >= 1, "engine needs at least one shard");
        assert!(cfg.batch >= 1, "batch size must be at least 1");
        assert!(cfg.queue_batches >= 1, "queue must hold at least 1 batch");
        Engine {
            cfg,
            registry: registry.clone(),
        }
    }

    /// The metric registry the engine publishes into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Replay `packets` through the full pipeline and block until every
    /// queue is drained and every thread joined.
    pub fn run(&self, packets: &[Packet], pace: Pace) -> EngineReport {
        let cfg = &self.cfg;
        let n = cfg.shards;
        let log = Arc::new(ControlLog::new());
        let stage = StageHists::registered(&self.registry);
        let host_processed = self.registry.counter("runtime.host.processed", &[]);

        // Host pool (None = inline triage on each shard).
        let pool = (cfg.host_workers > 0).then(|| {
            let threshold = cfg.triage_threshold;
            HostPool::spawn(
                cfg.host_workers,
                cfg.host_queue,
                Arc::clone(&log),
                host_processed.clone(),
                move |_| Box::new(TriageNf::new(threshold)),
            )
        });

        // The one hasher of the hot path: the dispatcher digests every
        // packet exactly once with it; shards and their FlowCaches (all
        // seeded identically) reuse the digest instead of re-hashing.
        let hasher = FlowHasher::new(cfg.hash_seed);
        // Batch buffers recycle through this pool; capacity covers every
        // buffer that can be alive at once (queued + in-shard + staging),
        // so the steady state allocates nothing.
        let bufpool = BufferPool::new(n * (cfg.queue_batches + 2), cfg.batch, &self.registry);

        // Per-shard counters exist before both the control plane (which
        // samples them) and the shard threads (which write them).
        let counters: Vec<ShardCounters> = (0..n)
            .map(|i| ShardCounters::registered(&self.registry, i))
            .collect();

        // ── Control plane (optional) ────────────────────────────────
        // Mode cells + snapshot cell + heavy-hitter channel wire the
        // controller thread to the dispatcher and every shard.
        let mut shard_hooks: Vec<Option<ControlHooks>> = (0..n).map(|_| None).collect();
        let mut dispatcher_steer: Option<SnapshotReader<SteeringSnapshot>> = None;
        let mut controller = None;
        if let Some(mut ctrl_cfg) = cfg.control.clone() {
            ctrl_cfg.hash_seed = cfg.hash_seed;
            let mode_cells: Vec<Arc<ModeCell>> =
                (0..n).map(|_| Arc::new(ModeCell::default())).collect();
            let snap_cell = Arc::new(SnapshotCell::new(SteeringSnapshot::empty()));
            let (heavy_tx, heavy_rx) = std::sync::mpsc::sync_channel::<(u64, u64)>(8192);
            for (i, slot) in shard_hooks.iter_mut().enumerate() {
                *slot = Some(ControlHooks {
                    mode: Arc::clone(&mode_cells[i]),
                    steer: snap_cell.reader(),
                    heavy_tx: heavy_tx.clone(),
                });
            }
            drop(heavy_tx);
            dispatcher_steer = Some(snap_cell.reader());
            let epoch = Duration::from_millis(ctrl_cfg.epoch_ms.max(1));
            let ctrl = Controller::with_registry(ctrl_cfg, &self.registry);
            let reader = log.reader();
            let stop = Arc::new(AtomicBool::new(false));
            let thread_args = (
                Arc::clone(&log),
                counters.clone(),
                host_processed.clone(),
                Arc::clone(&stop),
            );
            let handle = std::thread::Builder::new()
                .name("sw-control".into())
                .spawn(move || {
                    let (log, counters, host_processed, stop) = thread_args;
                    controller_loop(
                        ctrl,
                        log,
                        reader,
                        heavy_rx,
                        counters,
                        host_processed,
                        mode_cells,
                        snap_cell,
                        stop,
                        epoch,
                    )
                })
                .expect("spawn controller thread");
            controller = Some((handle, stop));
        }

        // Shards: one SPSC queue + one thread each.
        let mut producers: Vec<Producer<ShardMsg>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, hooks) in shard_hooks.iter_mut().enumerate() {
            let (tx, rx) = spsc::<ShardMsg>(cfg.queue_batches);
            let mut cache_cfg = FlowCacheConfig::general(cfg.cache_row_bits);
            cache_cfg.hash_seed = cfg.hash_seed;
            let mut cache = FlowCache::new(cache_cfg);
            cache.attach_telemetry(&self.registry);
            let escalation = match &pool {
                Some(p) => Escalation::Pool(p.sender()),
                None => Escalation::Inline(TriageNf::new(cfg.triage_threshold)),
            };
            let worker = ShardWorker::new(
                cache,
                escalation,
                Arc::clone(&log),
                counters[i].clone(),
                stage.clone(),
                host_processed.clone(),
                cfg.enforce_verdicts,
                hasher,
                bufpool.recycler(),
                hooks.take(),
            );
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sw-shard-{i}"))
                    .spawn(move || worker.run(rx))
                    .expect("spawn shard thread"),
            );
            producers.push(tx);
        }

        // ── Dispatch ────────────────────────────────────────────────
        let start = Instant::now();
        let mut bufs: Vec<Vec<DigestedPacket>> = (0..n).map(|_| bufpool.acquire()).collect();
        let paced = !matches!(pace, Pace::Flatout);
        let (spike_lo, spike_hi) = match pace {
            Pace::RateMpps(r) => {
                assert!(r > 0.0, "offered rate must be positive");
                (0, 0)
            }
            Pace::Spike {
                base_mpps,
                peak_mpps,
                spike_start,
                spike_end,
            } => {
                assert!(base_mpps > 0.0 && peak_mpps > 0.0, "rates must be positive");
                assert!(
                    spike_start <= spike_end,
                    "spike must not end before it starts"
                );
                let total = packets.len() as f64;
                (
                    (spike_start.clamp(0.0, 1.0) * total) as usize,
                    (spike_end.clamp(0.0, 1.0) * total) as usize,
                )
            }
            Pace::Flatout => (0, 0),
        };
        // Open-loop pacing accumulates per-packet inter-arrival gaps so
        // the offered rate can change mid-replay (the spike).
        let mut due_ns: f64 = 0.0;
        for (i, pkt) in packets.iter().enumerate() {
            match pace {
                Pace::Flatout => {}
                Pace::RateMpps(r) => due_ns += 1000.0 / r,
                Pace::Spike {
                    base_mpps,
                    peak_mpps,
                    ..
                } => {
                    let r = if (spike_lo..spike_hi).contains(&i) {
                        peak_mpps
                    } else {
                        base_mpps
                    };
                    due_ns += 1000.0 / r;
                }
            }
            if i % 256 == 0 {
                if paced {
                    Self::pace_until(start, Duration::from_nanos(due_ns as u64));
                }
                // One atomic load; re-clones the snapshot Arc only when
                // the controller published since the last check.
                if let Some(sr) = dispatcher_steer.as_mut() {
                    sr.refresh();
                }
            }
            let (canon, digest) = hasher.digest_symmetric(&pkt.key);
            let s = shard_for_digest(digest, n);
            // Steering enforcement at dispatch: blacklisted flows drop
            // here (prevention at the earliest point), and under load
            // shedding only whitelisted flows pass. Both are accounted
            // per shard — conservation includes them.
            if let Some(sr) = &dispatcher_steer {
                let snap = sr.current();
                if cfg.enforce_verdicts && snap.blacklist.contains(&digest.0) {
                    counters[s].steer_dropped.inc();
                    continue;
                }
                if snap.shed && !snap.whitelist.contains(&digest.0) {
                    counters[s].shed.inc();
                    continue;
                }
            }
            bufs[s].push(DigestedPacket {
                pkt: *pkt,
                canon,
                digest,
            });
            if bufs[s].len() == cfg.batch {
                let batch = std::mem::replace(&mut bufs[s], bufpool.acquire());
                Self::flush(&producers[s], &counters[s], &bufpool, batch, paced);
            }
        }
        for s in 0..n {
            if !bufs[s].is_empty() {
                let batch = std::mem::take(&mut bufs[s]);
                Self::flush(&producers[s], &counters[s], &bufpool, batch, paced);
            }
            // Stop is never dropped: it blocks until a slot frees up.
            producers[s].push_blocking(ShardMsg::Stop);
        }

        // ── Drain & join ────────────────────────────────────────────
        let mut ends: Vec<ShardEndState> = Vec::with_capacity(n);
        for h in handles {
            ends.push(h.join().expect("shard thread panicked"));
        }
        let elapsed = start.elapsed();
        // Shut the host pool down *after* the shards: its channel drains
        // and remaining verdicts land in the log (reported, unapplied).
        if let Some(p) = pool {
            p.shutdown();
        }
        // Stop the controller last: it runs one final epoch (capturing
        // the post-drain counter tails and any late verdicts) and
        // returns its report.
        let control = controller.map(|(handle, stop)| {
            stop.store(true, Ordering::Release);
            handle.thread().unpark();
            handle.join().expect("controller thread panicked")
        });

        let shards: Vec<ShardStats> = counters
            .iter()
            .zip(&ends)
            .map(|(c, e)| c.snapshot(*e))
            .collect();
        EngineReport {
            offered: packets.len() as u64,
            elapsed,
            shards,
            host_processed: host_processed.get(),
            verdicts_published: log.len() as u64,
            control,
            stage: StageSnapshot {
                queue_ns: stage.queue_ns.snapshot(),
                cache_ns: stage.cache_ns.snapshot(),
                detect_ns: stage.detect_ns.snapshot(),
                batch_pkts: stage.batch_pkts.snapshot(),
            },
        }
    }

    /// Open-loop pacing wait: park for the bulk of a long gap (an idle
    /// dispatcher must not burn the core at low offered rates), then
    /// yield-spin the final stretch for timing accuracy.
    fn pace_until(start: Instant, due: Duration) {
        loop {
            let elapsed = start.elapsed();
            if elapsed >= due {
                return;
            }
            let remaining = due - elapsed;
            if remaining > Duration::from_micros(500) {
                std::thread::park_timeout(remaining - Duration::from_micros(200));
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn flush(
        tx: &Producer<ShardMsg>,
        counters: &ShardCounters,
        pool: &BufferPool,
        batch: Vec<DigestedPacket>,
        paced: bool,
    ) {
        let len = batch.len() as u64;
        let msg = ShardMsg::Batch(Batch {
            pkts: batch,
            sent: Instant::now(),
        });
        if paced {
            match tx.try_push(msg) {
                Ok(()) => counters.ingested.add(len),
                // Open loop: a full ring at arrival time is a loss, and
                // it is *accounted* — never silent. The buffer itself
                // goes straight back to the pool.
                Err(ShardMsg::Batch(b)) => {
                    counters.ingest_dropped.add(len);
                    pool.give_back(b.pkts);
                }
                Err(ShardMsg::Stop) => unreachable!("flush only pushes batches"),
            }
        } else {
            tx.push_blocking(msg);
            counters.ingested.add(len);
        }
        let depth = tx.len() as f64;
        counters.queue_depth.set(depth);
        counters.queue_depth_peak.set_max(depth);
    }
}

/// The controller thread body: one epoch per `epoch` period (or on
/// shutdown). Each epoch samples cumulative shard counters, drains the
/// verdict log and the heavy-hitter channel, feeds the pure
/// [`Controller`] state machine, applies its per-shard mode decisions
/// to the [`ModeCell`]s and publishes any new steering snapshot.
/// When `stop` is observed it runs one final epoch (counter tails +
/// late verdicts) and returns the report.
#[allow(clippy::too_many_arguments)]
fn controller_loop(
    mut ctrl: Controller,
    log: Arc<ControlLog>,
    reader: LogReader,
    heavy_rx: Receiver<(u64, u64)>,
    counters: Vec<ShardCounters>,
    host_processed: Counter,
    mode_cells: Vec<Arc<ModeCell>>,
    snap_cell: Arc<SnapshotCell<SteeringSnapshot>>,
    stop: Arc<AtomicBool>,
    epoch: Duration,
) -> ControlReport {
    let mut last = Instant::now();
    loop {
        let done = stop.load(Ordering::Acquire);
        if !done {
            std::thread::park_timeout(epoch);
        }
        let now = Instant::now();
        let elapsed_secs = now.duration_since(last).as_secs_f64();
        last = now;

        // Escalation backlog: packets escalated but neither dropped at
        // the ring nor processed by the host yet. The pool is shared,
        // so every shard's sample carries the aggregate.
        let mut escalated = 0u64;
        let mut esc_dropped = 0u64;
        for c in &counters {
            escalated += c.escalated.get();
            esc_dropped += c.escalation_dropped.get();
        }
        let backlog = escalated
            .saturating_sub(esc_dropped)
            .saturating_sub(host_processed.get());

        let shards: Vec<ShardSample> = counters
            .iter()
            .map(|c| ShardSample {
                offered: c.ingested.get()
                    + c.ingest_dropped.get()
                    + c.shed.get()
                    + c.steer_dropped.get(),
                processed: c.processed.get(),
                shed: c.shed.get(),
                escalation_backlog: backlog,
            })
            .collect();
        let verdicts = log.poll(&reader);
        let mut heavy = Vec::new();
        while let Ok(h) = heavy_rx.try_recv() {
            heavy.push(h);
            if heavy.len() >= 16_384 {
                break;
            }
        }

        let decision = ctrl.epoch(&EpochInput {
            elapsed_secs,
            shards,
            verdicts,
            heavy,
        });
        for (cell, &m) in mode_cells.iter().zip(&decision.modes) {
            cell.set(m);
        }
        if let Some(snap) = decision.snapshot {
            snap_cell.publish(snap);
        }
        if done {
            log.release(reader);
            return ctrl.report();
        }
    }
}

/// Aggregate per-stage wall-clock distributions.
#[derive(Clone, Copy, Debug)]
pub struct StageSnapshot {
    /// Batch wait between dispatcher enqueue and shard dequeue, ns.
    pub queue_ns: HistSnapshot,
    /// FlowCache stage per sampled packet, ns.
    pub cache_ns: HistSnapshot,
    /// Detector-suite stage per sampled packet, ns.
    pub detect_ns: HistSnapshot,
    /// Delivered batch sizes, packets.
    pub batch_pkts: HistSnapshot,
}

/// Everything `Engine::run` measured.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Packets offered to the dispatcher.
    pub offered: u64,
    /// Wall-clock time from first dispatch to last shard joined (the
    /// drain included).
    pub elapsed: Duration,
    /// Per-shard statistics.
    pub shards: Vec<ShardStats>,
    /// Escalated packets processed by the host tier (pool or inline).
    pub host_processed: u64,
    /// Verdicts published to the control log.
    pub verdicts_published: u64,
    /// Control-plane report (present when the engine ran with a
    /// controller attached).
    pub control: Option<ControlReport>,
    /// Per-stage latency/size distributions.
    pub stage: StageSnapshot,
}

impl EngineReport {
    /// Packets fully processed across all shards.
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Packets dropped at ingest across all shards.
    pub fn ingest_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.ingest_dropped).sum()
    }

    /// Packets shed at dispatch under controller load shedding.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Packets dropped at dispatch by the steering blacklist.
    pub fn steer_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.steer_dropped).sum()
    }

    /// Packets escalated to the host tier.
    pub fn escalated(&self) -> u64 {
        self.shards.iter().map(|s| s.escalated).sum()
    }

    /// Escalations dropped at the host ring.
    pub fn escalation_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.escalation_dropped).sum()
    }

    /// Idle-loop parks across all shards (wall-clock dependent; excluded
    /// from [`EngineReport::deterministic_summary`]).
    pub fn idle_parks(&self) -> u64 {
        self.shards.iter().map(|s| s.idle_parks).sum()
    }

    /// Wall-clock throughput in million packets per second, over
    /// *processed* packets (drops excluded).
    pub fn mpps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.processed() as f64 / secs / 1e6
        }
    }

    /// Ingest drop fraction of offered packets.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.ingest_dropped() as f64 / self.offered as f64
        }
    }

    /// The conservation invariant: every offered packet is either
    /// processed by exactly one shard or dropped with accounting
    /// (ingest overrun, load shed, or steering blacklist).
    pub fn conserved(&self) -> bool {
        let ingested: u64 = self.shards.iter().map(|s| s.ingested).sum();
        ingested + self.ingest_dropped() + self.shed() + self.steer_dropped() == self.offered
            && self.shards.iter().all(|s| s.ingested == s.processed)
    }

    /// A byte-stable rendering of every *deterministic* quantity (exact
    /// counters; no wall-clock values). With one shard and inline triage
    /// (`host_workers = 0`), two same-seed runs produce identical strings
    /// — the determinism tests diff exactly this.
    pub fn deterministic_summary(&self) -> String {
        let mut out = format!("offered={}\n", self.offered);
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "shard{i}: ingested={} dropped={} shed={} steer_dropped={} processed={} \
                 verdict_dropped={} fast_path={} escalated={} escalation_dropped={} \
                 ctrl_applied={} alerts={} blacklisted={} whitelisted={} cache_resident={}\n",
                s.ingested,
                s.ingest_dropped,
                s.shed,
                s.steer_dropped,
                s.processed,
                s.verdict_dropped,
                s.fast_path,
                s.escalated,
                s.escalation_dropped,
                s.ctrl_applied,
                s.alerts,
                s.blacklisted,
                s.whitelisted,
                s.cache_resident,
            ));
        }
        out.push_str(&format!(
            "host_processed={} verdicts={}\n",
            self.host_processed, self.verdicts_published
        ));
        out
    }
}
