//! The engine: R RX-queue dispatchers feeding N shard threads over an
//! R×N mesh of bounded SPSC lanes, a host escalation pool, graceful
//! drain, and a wall-clock throughput/latency report.
//!
//! ```text
//!            ┌ rxq 0: digest+steer ┐   ┌─ shard 0: FlowCache + suite ─┐
//! packets →  │ rxq 1: …            │ × │  shard 1: …                  │ → verdicts
//! (RSS       │   R×N SPSC lanes    │   │  shard N-1: …                │   (epoch-
//!  split)    └ rxq R-1: …          ┘   └── suspects ─→ host pool ─────┘    stamped log)
//! ```
//!
//! The offered trace is pre-split into R per-queue sub-streams by
//! flow digest ([`smartwatch_net::hash::queue_for_digest`], a salted
//! splitmix64 remix — the software model of multi-queue NIC RSS), so
//! each dispatcher owns complete flows and intra-flow order survives.
//! Every (queue, shard) pair gets its own single-producer ring; shards
//! merge their R lanes under a [`MergePolicy`].
//!
//! Unlike everything else in the workspace, this engine runs on the
//! *wall clock*: `run()` spawns real OS threads, measures elapsed time
//! with `std::time::Instant`, and reports Mpps. Packet `ts` fields are
//! replay metadata here, not the clock. Counters remain exact — the
//! conservation invariant (offered = processed + ingest_drop + shed +
//! steer_drop, per shard, per queue, and in total) holds for every
//! shard count, queue count, and pacing mode.

use crate::batch::{Backoff, Batch, BufferPool, DigestedPacket};
use crate::control::{ControlLog, LogReader};
use crate::escalate::{HostObs, HostPool, TriageNf};
use crate::frame::{FramePool, FrameSlot};
use crate::obs::{ThreadTrace, TraceSpec};
use crate::service::{AdminCmd, AdminQueue};
use crate::shard::{
    ControlHooks, Escalation, LaneRx, MergePolicy, ShardCounters, ShardEndState, ShardMsg,
    ShardObs, ShardStats, ShardWorker, StageHists, PROBE_HIST_SLOTS,
};
use crate::spsc::{spsc, Producer};
use serde::{Number, Value};
use smartwatch_control::{
    ControlConfig, ControlReport, Controller, DecisionRecord, EpochInput, ModeCell, ShardSample,
    SnapshotCell, SnapshotReader, SteeringSnapshot,
};
use smartwatch_net::hash::{queue_for_digest, shard_for_digest, splitmix64};
use smartwatch_net::{FlowHasher, FrameStore, FrameView, Packet, RawTuple};
use smartwatch_snic::{FlowCache, FlowCacheConfig, Mode};
use smartwatch_telemetry::{
    mem, Counter, FlightKind, FlightRecorder, FlightRing, Gauge, HistSnapshot, Registry, Tracer,
    WallAnchor,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the engine maps the pipeline onto threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatapathMode {
    /// The R×N mesh: R RX-queue dispatcher threads digest and steer,
    /// N shard threads process, bounded SPSC lanes in between. The
    /// default, and the only mode where `rx_queues > 1` is meaningful.
    Pipeline,
    /// Run-to-completion: C = `shards` fused `sw-core-{i}` threads,
    /// each owning one shard partition *and* its ingest. The pre-split
    /// assigns packets by [`shard_for_digest`] directly (no salted
    /// queue remix), so every flow's packets arrive at the core that
    /// owns its FlowCache rows, and the fast path — ingest → digest →
    /// FlowCache → detectors → verdict — runs in place with zero
    /// inter-thread queue crossings. Host escalation and control-plane
    /// sampling keep their existing channels. Decisions, counters and
    /// the deterministic summary are identical to [`Pipeline`] for the
    /// same seed (`DatapathMode::Pipeline` with `rx_queues = 1`);
    /// only the thread topology — and therefore the wall clock —
    /// changes.
    ///
    /// [`Pipeline`]: DatapathMode::Pipeline
    /// [`shard_for_digest`]: smartwatch_net::hash::shard_for_digest
    Rtc,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker shards (threads). Each owns a FlowCache partition and a
    /// full detector suite.
    pub shards: usize,
    /// Thread topology: the R×N dispatcher/shard mesh
    /// ([`DatapathMode::Pipeline`], the default) or fused
    /// run-to-completion cores ([`DatapathMode::Rtc`]). In RTC mode
    /// `rx_queues` is ignored — the ingest unit count *is* the shard
    /// count.
    pub datapath: DatapathMode,
    /// Pin engine worker threads to CPUs (thread index = core index):
    /// RTC cores, and pipeline shard threads, call
    /// `sched_setaffinity` at startup. Opt-in and best-effort — a
    /// rejected mask (cpuset container, non-Linux build) leaves the
    /// thread unpinned and the run proceeds. Decisions and counters
    /// are identical either way; only scheduler placement changes.
    pub pin_cores: bool,
    /// RX-queue dispatcher threads (the multi-queue NIC model). Each
    /// owns a digest-split sub-stream of the offered trace, its own
    /// buffer pool and steering-snapshot reader, and one SPSC lane per
    /// shard (an R×N mesh). `1` reproduces the classic single-dispatcher
    /// hot path.
    pub rx_queues: usize,
    /// How shards interleave their R ingest lanes. [`MergePolicy::Fair`]
    /// (the default) round-robins whole batches for throughput;
    /// [`MergePolicy::Ordered`] k-way-merges by arrival sequence so the
    /// deterministic summary is byte-identical for any `rx_queues`.
    pub merge: MergePolicy,
    /// Packets per dispatch batch.
    pub batch: usize,
    /// Per-shard ingest queue capacity, in batches.
    pub queue_batches: usize,
    /// Rows per shard FlowCache partition (`2^row_bits`).
    pub cache_row_bits: u32,
    /// Host escalation workers. `0` runs triage inline on each shard —
    /// fully deterministic, used by the determinism tests.
    pub host_workers: usize,
    /// Host escalation ring capacity, packets (shared by the pool).
    pub host_queue: usize,
    /// Escalated packets per source before triage blacklists its flows.
    pub triage_threshold: u64,
    /// Enforce blacklist verdicts on the shards (prevention). Disable to
    /// measure pure monitoring throughput.
    pub enforce_verdicts: bool,
    /// FlowCache hash seed (per-shard caches share it; partitioning
    /// comes from RSS, not from distinct hash functions).
    pub hash_seed: u64,
    /// FlowCache lookup burst width: shards prefetch this many rows
    /// ahead before probing (the memory-level-parallel batched path).
    /// `0` or `1` selects the per-packet reference path. Packet
    /// *decisions* are identical at every width — prefetching is
    /// architecturally inert — so this knob trades nothing but cache
    /// warmth and is safe to change under the determinism tests.
    pub cache_burst: usize,
    /// Attach the adaptive control plane: an epoch thread that runs
    /// Algorithm 4 mode switching per shard, promotes heavy hitters,
    /// publishes steering snapshots and decides load shedding. `None`
    /// runs the engine open-loop (the pre-control behaviour, and the
    /// deterministic-test configuration).
    pub control: Option<ControlConfig>,
    /// Wall-clock trace sampling period: emit chrome-trace spans for
    /// 1 in `trace_sample` batches per thread (`0` disables tracing
    /// entirely — the hot path carries no `Instant` reads for it).
    /// Takes effect only when a [`Tracer`] is attached via
    /// [`Engine::attach_tracer`]. The sampling counters start at zero,
    /// so every thread's *first* batch is always traced and every live
    /// thread owns at least one span at any period.
    pub trace_sample: u64,
    /// Serve mode: carry each shard's FlowCache across back-to-back
    /// `run*` calls on the same engine instead of starting every
    /// segment cold. Flow affinity is preserved (the RSS mapping is a
    /// pure function of digest and shard count, both fixed per engine),
    /// so shard `i` always gets shard `i`'s cache back. Batch buffer
    /// pools and frame pools are *always* reused across runs — that is
    /// the zero-steady-state-allocation claim the soak harness pins —
    /// this flag only controls the flow *state*.
    pub carry_flow_state: bool,
}

impl EngineConfig {
    /// Defaults for `shards` workers: one RX queue (fair-merged),
    /// 64-packet batches, 64-batch queues, 2^12-row partitions, one
    /// host worker.
    pub fn new(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            datapath: DatapathMode::Pipeline,
            pin_cores: false,
            rx_queues: 1,
            merge: MergePolicy::Fair,
            batch: 64,
            queue_batches: 64,
            cache_row_bits: 12,
            host_workers: 1,
            host_queue: 4096,
            triage_threshold: 64,
            enforce_verdicts: true,
            hash_seed: 0x51CC,
            cache_burst: smartwatch_snic::BURST,
            control: None,
            trace_sample: 0,
            carry_flow_state: false,
        }
    }

    /// Attach a control plane (its hash seed is forced to the engine's
    /// so verdict/steering digests line up with dispatch digests).
    pub fn with_control(mut self, mut ctrl: ControlConfig) -> EngineConfig {
        ctrl.hash_seed = self.hash_seed;
        self.control = Some(ctrl);
        self
    }

    /// The byte-deterministic replay recipe with `rx_queues` dispatchers:
    /// one shard, inline triage (`host_workers = 0`, no thread-timing
    /// races on the verdict log) and the ordered lane merge (shard
    /// processing order independent of dispatcher scheduling). Two
    /// same-seed runs — at *any* queue count — produce byte-identical
    /// [`EngineReport::deterministic_summary`] output.
    pub fn deterministic(rx_queues: usize) -> EngineConfig {
        let mut cfg = EngineConfig::new(1);
        cfg.rx_queues = rx_queues;
        cfg.merge = MergePolicy::Ordered;
        cfg.host_workers = 0;
        cfg
    }

    /// Ingest units the engine actually runs: the dispatcher count in
    /// pipeline mode, the fused core (= shard) count in RTC mode. This
    /// is how many `runtime.queue.*{queue=Q}` label sets the run
    /// populates and how many entries [`EngineReport::queues`] carries.
    pub fn ingest_units(&self) -> usize {
        match self.datapath {
            DatapathMode::Pipeline => self.rx_queues,
            DatapathMode::Rtc => self.shards,
        }
    }
}

/// How the replay driver offers packets to the engine.
#[derive(Clone, Copy, Debug)]
pub enum Pace {
    /// As fast as the shards accept: a full queue exerts backpressure on
    /// the dispatcher (no drops). Measures pipeline capacity.
    Flatout,
    /// Open-loop at a target offered rate in Mpps: a full queue at
    /// arrival time is a counted drop, like a NIC RX ring overrun.
    RateMpps(f64),
    /// Open-loop at `base_mpps` with one rectangular overload spike at
    /// `peak_mpps` while the replay position is inside
    /// `[spike_start, spike_end)` (fractions of the packet sequence).
    /// This is the control plane's repro workload: the spike drives
    /// Algorithm 4 into Lite and (if sustained) engages shedding; the
    /// return to base rate must recover General.
    Spike {
        /// Offered rate outside the spike, Mpps.
        base_mpps: f64,
        /// Offered rate inside the spike, Mpps.
        peak_mpps: f64,
        /// Spike start as a fraction of the sequence, `0.0..=1.0`.
        spike_start: f64,
        /// Spike end as a fraction of the sequence, `0.0..=1.0`.
        spike_end: f64,
    },
}

/// What the engine replays: a slice of pre-built model packets (the
/// synthetic path) or a packed arena of validated wire frames parsed in
/// place at dispatch (the zero-copy wire path).
#[derive(Clone, Copy)]
pub enum FrameSource<'a> {
    /// Generator output replayed as owned [`Packet`] values.
    Packets(&'a [Packet]),
    /// Compiled or captured wire frames ([`FrameStore`]): dispatchers
    /// load raw bytes into a [`FramePool`], parse headers in place with
    /// [`FrameView`] and digest straight from the header bytes.
    Wire(&'a FrameStore),
}

impl FrameSource<'_> {
    /// Packets this source offers.
    pub fn len(&self) -> usize {
        match self {
            FrameSource::Packets(p) => p.len(),
            FrameSource::Wire(s) => s.len(),
        }
    }

    /// True when the source offers nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Reusable run-scoped resources parked between `run*` calls so a
/// long-running service allocates nothing per segment: per-queue batch
/// buffer pools and (wire mode) frame pools always; per-shard
/// FlowCaches when [`EngineConfig::carry_flow_state`] is set. The mesh
/// shape is fixed per engine, so whatever is parked always fits.
#[derive(Default)]
struct Garage {
    pools: Vec<BufferPool>,
    frames: Vec<FramePool>,
    caches: Vec<FlowCache>,
}

/// The sharded wall-clock engine.
pub struct Engine {
    cfg: EngineConfig,
    registry: Registry,
    /// Chrome-trace sink for sampled wall-clock spans; set by
    /// [`Engine::attach_tracer`], inert without one.
    tracer: Option<Tracer>,
    /// Always-on black box: bounded lock-free per-thread event rings.
    flight: FlightRecorder,
    /// Controller decision audit mirrored out of the control thread so
    /// live readers (`/stats.json`) can see it mid-run.
    decisions: Arc<Mutex<VecDeque<DecisionRecord>>>,
    /// Graceful-drain request: dispatchers observe it at checkpoints,
    /// stop offering and quiesce the mesh (see [`Engine::request_drain`]).
    drain: Arc<AtomicBool>,
    /// Admin command mailbox, drained by the controller each epoch.
    admin: Arc<AdminQueue>,
    /// Admin commands the controller has applied (lifetime of the
    /// engine, across runs).
    admin_applied: Counter,
    /// Live pacing override: `f64::to_bits` of the inter-arrival gap in
    /// ns, `0` = none. Paced dispatchers re-read it at checkpoints.
    pace_override: Arc<AtomicU64>,
    /// Resident-set gauge (`runtime.mem.rss_bytes`), sampled per epoch
    /// by the controller thread and at run boundaries.
    mem_rss: Gauge,
    /// Parked run-scoped resources (see [`Garage`]).
    garage: Mutex<Garage>,
}

impl Engine {
    /// Engine with a private metric registry.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine::with_registry(cfg, &Registry::new())
    }

    /// Engine publishing into an existing registry (`runtime.*` metrics).
    pub fn with_registry(cfg: EngineConfig, registry: &Registry) -> Engine {
        assert!(cfg.shards >= 1, "engine needs at least one shard");
        assert!(cfg.rx_queues >= 1, "engine needs at least one RX queue");
        assert!(cfg.batch >= 1, "batch size must be at least 1");
        assert!(cfg.queue_batches >= 1, "queue must hold at least 1 batch");
        Engine {
            cfg,
            registry: registry.clone(),
            tracer: None,
            flight: FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY),
            decisions: Arc::new(Mutex::new(VecDeque::new())),
            drain: Arc::new(AtomicBool::new(false)),
            admin: Arc::new(AdminQueue::new(1024)),
            admin_applied: registry.counter("runtime.admin.applied", &[]),
            pace_override: Arc::new(AtomicU64::new(0)),
            mem_rss: registry.gauge("runtime.mem.rss_bytes", &[]),
            garage: Mutex::new(Garage::default()),
        }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Ask the current run to drain gracefully: dispatchers observe the
    /// flag at their 256-packet checkpoints, stop offering, flush their
    /// staged batches and send the normal `Stop` markers, so the mesh
    /// quiesces exactly as at end-of-trace and the segment report stays
    /// conserved (`offered` reflects what was actually offered before
    /// the drain). The flag stays raised until [`Engine::clear_drain`] —
    /// a signal landing *between* segments still stops the next one.
    pub fn request_drain(&self) {
        self.drain.store(true, Ordering::Release);
    }

    /// Whether a drain has been requested and not yet cleared.
    pub fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::Acquire)
    }

    /// Re-arm after a drained segment; the serve driver calls this at
    /// the top of each segment it decides to run.
    pub fn clear_drain(&self) {
        self.drain.store(false, Ordering::Release);
    }

    /// Queue an admin command for the controller to apply at the next
    /// epoch boundary (the engine must run with a control plane for
    /// commands to take effect). Returns `false` when the bounded
    /// mailbox is full — the caller should surface back-pressure to the
    /// operator rather than silently dropping the edit.
    pub fn admin(&self, cmd: AdminCmd) -> bool {
        self.admin.push(cmd)
    }

    /// Admin commands waiting in the mailbox (not yet applied).
    pub fn admin_queued(&self) -> usize {
        self.admin.len()
    }

    /// Admin commands the controller has applied so far.
    pub fn admin_applied(&self) -> u64 {
        self.admin_applied.get()
    }

    /// Override the offered rate of *paced* runs live: dispatchers
    /// re-read this at every 256-packet checkpoint and re-anchor their
    /// arrival schedule, so the change takes effect mid-segment without
    /// a restart. `None` returns pacing to the run's [`Pace`] plan.
    /// Flat-out runs (no arrival schedule) ignore the override.
    pub fn set_rate_override(&self, mpps: Option<f64>) {
        let bits = match mpps {
            Some(r) if r > 0.0 && r.is_finite() => (1000.0 / r).to_bits(),
            _ => 0,
        };
        self.pace_override.store(bits, Ordering::Release);
    }

    /// The live rate override, if any, in Mpps.
    pub fn rate_override(&self) -> Option<f64> {
        let bits = self.pace_override.load(Ordering::Acquire);
        (bits != 0).then(|| 1000.0 / f64::from_bits(bits))
    }

    /// The metric registry the engine publishes into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Attach a chrome-trace sink. Spans are emitted only when
    /// [`EngineConfig::trace_sample`] is non-zero; each engine thread
    /// opens its own track (`sw-rxq-{q}`, `sw-shard-{i}`,
    /// `sw-host-{w}`, `sw-control`) named after the OS thread.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// The engine's flight recorder (drop/mode-switch black box).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The controller's per-epoch decision audit so far (bounded to the
    /// control config's `decision_capacity`; empty without a control
    /// plane). Safe to call mid-run — this is what `/stats.json` serves.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.decisions
            .lock()
            .expect("decision audit poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The live `/stats.json` document: [`EngineReport`]-shaped counters
    /// read straight from the registry atomics, so it is safe to call
    /// from any thread at any time. Mid-run, values are at most one
    /// checkpoint (dispatchers) or one batch (shards) stale; after
    /// `run()` returns, the conservation counters match the final
    /// report exactly.
    pub fn stats_json(&self) -> String {
        let cfg = &self.cfg;
        let u = |v: u64| Value::Number(Number::U(v));

        let mut shards = Vec::with_capacity(cfg.shards);
        let (mut ingested, mut processed, mut ingest_dropped, mut shed, mut steer_dropped) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut shards_balanced = true;
        for i in 0..cfg.shards {
            let l = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", &l)];
            let get = |name: &str| self.registry.counter(name, labels).get();
            let s_ing = get("runtime.shard.ingested");
            let s_proc = get("runtime.shard.processed");
            let s_drop = get("runtime.shard.ingest_dropped");
            let s_shed = get("runtime.shard.shed");
            let s_steer = get("runtime.shard.steer_dropped");
            ingested += s_ing;
            processed += s_proc;
            ingest_dropped += s_drop;
            shed += s_shed;
            steer_dropped += s_steer;
            shards_balanced &= s_ing == s_proc;
            shards.push(Value::Object(vec![
                ("shard".into(), u(i as u64)),
                ("ingested".into(), u(s_ing)),
                ("ingest_dropped".into(), u(s_drop)),
                ("shed".into(), u(s_shed)),
                ("steer_dropped".into(), u(s_steer)),
                ("processed".into(), u(s_proc)),
                (
                    "verdict_dropped".into(),
                    u(get("runtime.shard.verdict_dropped")),
                ),
                ("fast_path".into(), u(get("runtime.shard.fast_path"))),
                ("escalated".into(), u(get("runtime.shard.escalated"))),
                (
                    "escalation_dropped".into(),
                    u(get("runtime.shard.escalation_dropped")),
                ),
                ("ctrl_applied".into(), u(get("runtime.shard.ctrl_applied"))),
                ("alerts".into(), u(get("runtime.shard.alerts"))),
            ]));
        }

        // Per-ingest-unit counters: one label set per dispatcher in
        // pipeline mode, one per fused core in RTC mode.
        let units = cfg.ingest_units();
        let mut queues = Vec::with_capacity(units);
        let (mut q_offered, mut q_ingested) = (0u64, 0u64);
        let mut queues_balanced = true;
        for q in 0..units {
            let l = q.to_string();
            let labels: &[(&str, &str)] = &[("queue", &l)];
            let get = |name: &str| self.registry.counter(name, labels).get();
            let off = get("runtime.queue.offered");
            let ing = get("runtime.queue.ingested");
            let drop = get("runtime.queue.ingest_dropped");
            let qshed = get("runtime.queue.shed");
            let qsteer = get("runtime.queue.steer_dropped");
            q_offered += off;
            q_ingested += ing;
            queues_balanced &= off == ing + drop + qshed + qsteer;
            queues.push(Value::Object(vec![
                ("queue".into(), u(q as u64)),
                ("offered".into(), u(off)),
                ("ingested".into(), u(ing)),
                ("ingest_dropped".into(), u(drop)),
                ("shed".into(), u(qshed)),
                ("steer_dropped".into(), u(qsteer)),
            ]));
        }

        // The same two-axis conservation law as EngineReport::conserved,
        // over the live counter values.
        let conserved = ingested + ingest_dropped + shed + steer_dropped == q_offered
            && shards_balanced
            && queues_balanced
            && q_ingested == ingested;

        let hist = |name: &str| hist_value(&self.registry.histogram(name, &[]).snapshot());
        let doc = Value::Object(vec![
            ("offered".into(), u(q_offered)),
            ("processed".into(), u(processed)),
            ("ingest_dropped".into(), u(ingest_dropped)),
            ("shed".into(), u(shed)),
            ("steer_dropped".into(), u(steer_dropped)),
            (
                "host_processed".into(),
                u(self.registry.counter("runtime.host.processed", &[]).get()),
            ),
            ("conserved".into(), Value::Bool(conserved)),
            ("shards".into(), Value::Array(shards)),
            ("queues".into(), Value::Array(queues)),
            (
                "stage".into(),
                Value::Object(vec![
                    ("queue_ns".into(), hist("runtime.stage.queue_ns")),
                    ("cache_ns".into(), hist("runtime.stage.cache_ns")),
                    ("detect_ns".into(), hist("runtime.stage.detect_ns")),
                    ("escalate_ns".into(), hist("runtime.stage.escalate_ns")),
                    ("batch_pkts".into(), hist("runtime.stage.batch_pkts")),
                ]),
            ),
            (
                "decisions".into(),
                Value::Array(self.decisions().iter().map(decision_value).collect()),
            ),
            (
                "flight".into(),
                Value::Object(vec![
                    ("recorded".into(), u(self.flight.total_recorded())),
                    ("dropped".into(), u(self.flight.total_dropped())),
                ]),
            ),
            (
                "mem".into(),
                Value::Object(vec![("rss_bytes".into(), u(self.mem_rss.get() as u64))]),
            ),
            (
                "pool".into(),
                Value::Object(vec![
                    (
                        "allocated".into(),
                        u(self.registry.counter("runtime.pool.allocated", &[]).get()),
                    ),
                    (
                        "recycled".into(),
                        u(self.registry.counter("runtime.pool.recycled", &[]).get()),
                    ),
                    (
                        "frame_allocated".into(),
                        u(self
                            .registry
                            .counter("runtime.frame_pool.allocated", &[])
                            .get()),
                    ),
                    (
                        "frame_recycled".into(),
                        u(self
                            .registry
                            .counter("runtime.frame_pool.recycled", &[])
                            .get()),
                    ),
                ]),
            ),
            (
                "service".into(),
                Value::Object(vec![
                    ("draining".into(), Value::Bool(self.drain_requested())),
                    ("admin_queued".into(), u(self.admin.len() as u64)),
                    ("admin_applied".into(), u(self.admin_applied.get())),
                    (
                        "rate_override_mpps".into(),
                        match self.rate_override() {
                            Some(r) => Value::Number(Number::F(r)),
                            None => Value::Null,
                        },
                    ),
                ]),
            ),
        ]);
        serde::json::write(&doc, false)
    }

    /// Replay `packets` through the full pipeline and block until every
    /// queue is drained and every thread joined.
    pub fn run(&self, packets: &[Packet], pace: Pace) -> EngineReport {
        self.run_source(FrameSource::Packets(packets), pace)
    }

    /// Replay a packed wire-frame store through the full pipeline — the
    /// zero-copy wire path. Each dispatcher owns a [`FramePool`] (the
    /// software RX ring): it loads 8-frame bursts into pooled slots,
    /// parses the Ethernet/IPv4/transport headers in place with
    /// [`FrameView`], digests straight from the header bytes
    /// ([`FlowHasher::digest_batch8`]) and recycles the slots —
    /// allocation-free in steady state. With the ordered merge the
    /// resulting [`EngineReport::deterministic_summary`] is
    /// byte-identical to the synthetic run of the same packets.
    pub fn run_frames(&self, store: &FrameStore, pace: Pace) -> EngineReport {
        self.run_source(FrameSource::Wire(store), pace)
    }

    /// Replay any [`FrameSource`] and block until every queue is
    /// drained and every thread joined. [`Engine::run`] and
    /// [`Engine::run_frames`] are thin wrappers over this.
    pub fn run_source(&self, source: FrameSource<'_>, pace: Pace) -> EngineReport {
        if self.cfg.datapath == DatapathMode::Rtc {
            return self.run_rtc(source, pace);
        }
        let cfg = &self.cfg;
        let n = cfg.shards;
        let r = cfg.rx_queues;
        assert!(
            source.len() <= u32::MAX as usize,
            "sequence indices are u32 at split time"
        );
        let log = Arc::new(ControlLog::new());
        let stage = StageHists::registered(&self.registry);
        let host_processed = self.registry.counter("runtime.host.processed", &[]);

        // One wall-clock origin for the whole run: every thread maps
        // its `Instant`s through this anchor, so all trace tracks share
        // an axis. Tracing is live only with a tracer attached AND a
        // non-zero sampling period — otherwise the spec stays `None`
        // and the hot paths skip even the `Instant` reads.
        let anchor = WallAnchor::new();
        let spec: Option<TraceSpec> =
            self.tracer
                .as_ref()
                .filter(|_| cfg.trace_sample > 0)
                .map(|t| TraceSpec {
                    tracer: t.clone(),
                    anchor,
                    every: cfg.trace_sample,
                });
        self.decisions
            .lock()
            .expect("decision audit poisoned")
            .clear();

        // Host pool (None = inline triage on each shard).
        let pool = (cfg.host_workers > 0).then(|| {
            let threshold = cfg.triage_threshold;
            HostPool::spawn(
                cfg.host_workers,
                cfg.host_queue,
                Arc::clone(&log),
                host_processed.clone(),
                HostObs::new(stage.escalate_ns.clone(), spec.clone()),
                move |_| Box::new(TriageNf::new(threshold)),
            )
        });

        // The one hasher of the hot path: each dispatcher digests every
        // packet of its sub-stream exactly once with it; shards and
        // their FlowCaches (all seeded identically) reuse the digest
        // instead of re-hashing.
        let hasher = FlowHasher::new(cfg.hash_seed);

        // Per-shard counters exist before both the control plane (which
        // samples them) and the shard threads (which write them).
        let counters: Vec<ShardCounters> = (0..n)
            .map(|i| ShardCounters::registered(&self.registry, i))
            .collect();
        // Per-queue dispatcher counters (`runtime.queue.*{queue=q}`).
        let qcounters: Vec<QueueCounters> = (0..r)
            .map(|q| QueueCounters::registered(&self.registry, q))
            .collect();

        // Registry counters are cumulative for the life of the registry
        // (that is what `/metrics` and `/stats.json` serve), but the
        // report this call returns is *per run*: capture the baseline
        // before any thread writes, subtract at report time. A single
        // fresh-engine run subtracts zeros — byte-identical behaviour —
        // while back-to-back serve segments each get their own books.
        let shard_base: Vec<ShardStats> = counters
            .iter()
            .map(|c| c.snapshot(ShardEndState::default()))
            .collect();
        let queue_base: Vec<QueueStats> = qcounters.iter().map(QueueCounters::snapshot).collect();
        let host_base = host_processed.get();
        self.mem_rss.set(mem::rss_bytes() as f64);

        // Un-park whatever the previous run left in the garage: buffer
        // pools and frame pools are always reused (the soak harness pins
        // `runtime.pool.allocated` flat across segments); FlowCaches
        // only under `carry_flow_state`. The mesh shape is fixed per
        // engine, so parked resources always fit.
        let Garage {
            pools: parked_pools,
            frames: parked_frames,
            caches: parked_caches,
        } = std::mem::take(&mut *self.garage.lock().expect("garage poisoned"));
        // FIFO un-parking preserves queue affinity (pop order matches
        // park order, like the caches below): each queue gets its *own*
        // warmed pool back. The salted RSS split is uneven, so a LIFO
        // swap would hand the heaviest queue the lightest pool and pay
        // a one-time re-allocation every time the assignment flips.
        let mut parked_pools: VecDeque<BufferPool> = parked_pools.into();
        let mut parked_frames: VecDeque<FramePool> = parked_frames.into();
        let mut parked_caches: VecDeque<FlowCache> = if cfg.carry_flow_state {
            parked_caches.into()
        } else {
            VecDeque::new()
        };

        // ── Control plane (optional) ────────────────────────────────
        let (mut shard_hooks, mut queue_steer, controller) =
            self.spawn_control(r, &spec, &log, &counters, &host_processed);

        // ── The R×N lane mesh ───────────────────────────────────────
        // One single-producer ring per (queue, shard) pair, so the SPSC
        // discipline survives multi-queue ingest. Buffer pools are
        // per-queue (a pool's receiver is single-consumer); each lane
        // carries a recycler into the pool of the queue that owns it, so
        // drained buffers go home to the dispatcher that allocated them.
        // Pool capacity covers every buffer a queue can have alive at
        // once (N full lanes + in-shard + staging): steady state
        // allocates nothing.
        let mut pools: Vec<BufferPool> = Vec::with_capacity(r);
        let mut producer_rows: Vec<Vec<Producer<ShardMsg>>> =
            (0..r).map(|_| Vec::with_capacity(n)).collect();
        let mut lane_rows: Vec<Vec<LaneRx>> = (0..n).map(|_| Vec::with_capacity(r)).collect();
        for row in producer_rows.iter_mut() {
            // Recycle-channel capacity must cover the worst-case
            // in-flight set — n full lanes plus each shard's batch in
            // hand, the dispatcher's staged buffers and the one just
            // acquired — with headroom, so the *entire* working set
            // survives an end-of-run return and reparks with the pool.
            // A cap at/below the in-flight peak trims buffers at every
            // segment boundary and service mode re-allocates them each
            // restart (the soak harness pins this at zero).
            let pool = parked_pools.pop_front().unwrap_or_else(|| {
                BufferPool::new(n * (cfg.queue_batches + 4), cfg.batch, &self.registry)
            });
            for lanes in lane_rows.iter_mut() {
                let (tx, rx) = spsc::<ShardMsg>(cfg.queue_batches);
                row.push(tx);
                lanes.push(LaneRx {
                    rx,
                    recycle: pool.recycler(),
                });
            }
            pools.push(pool);
        }

        // Shards: one thread each, consuming R lanes. The shared finish
        // line makes the end-of-stream log apply deterministic (see
        // `ShardWorker::finish`).
        let finish_line = Arc::new(std::sync::Barrier::new(n));
        let mut handles = Vec::with_capacity(n);
        for (i, lanes) in lane_rows.into_iter().enumerate() {
            // Shard `i` gets shard `i`'s cache back (pop order matches
            // park order): RSS placement is a pure function of digest
            // and shard count, so carried flow state stays affine.
            let cache = match parked_caches.pop_front() {
                Some(cache) => cache,
                None => {
                    let mut cache_cfg = FlowCacheConfig::general(cfg.cache_row_bits);
                    cache_cfg.hash_seed = cfg.hash_seed;
                    let mut cache = FlowCache::new(cache_cfg);
                    cache.attach_telemetry(&self.registry);
                    cache
                }
            };
            let escalation = match &pool {
                Some(p) => Escalation::Pool(p.sender()),
                None => Escalation::Inline(TriageNf::new(cfg.triage_threshold)),
            };
            let worker = ShardWorker::new(
                cache,
                escalation,
                Arc::clone(&log),
                counters[i].clone(),
                stage.clone(),
                host_processed.clone(),
                cfg.enforce_verdicts,
                hasher,
                cfg.merge,
                cfg.batch,
                cfg.cache_burst,
                shard_hooks[i].take(),
                ShardObs {
                    flight: self.flight.ring(format!("sw-shard-{i}")),
                    trace: spec.as_ref().map(|s| s.thread(format!("sw-shard-{i}"))),
                },
                Arc::clone(&finish_line),
            );
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sw-shard-{i}"))
                    .spawn(move || worker.run(lanes))
                    .expect("spawn shard thread"),
            );
        }

        // ── RSS split ───────────────────────────────────────────────
        // Assign each packet to a queue by salted digest remix — the
        // software stand-in for the NIC distributing flows across RX
        // queues, done outside the timed region (hardware RSS is free).
        // The timed hot path still digests every packet itself, so the
        // per-packet work is identical at every R and the Mpps scaling
        // comparison stays honest.
        let plan = PacePlan::resolve(pace, source.len());
        let streams = split_streams(source, r, cfg.hash_seed, &hasher);

        // ── Dispatch: R threads, each replaying its sub-stream ──────
        let start = Instant::now();
        let dends: Vec<DispatchEnd> = std::thread::scope(|scope| {
            let mut dhandles = Vec::with_capacity(r);
            for ((q, stream), (row, pool)) in streams
                .into_iter()
                .enumerate()
                .zip(producer_rows.into_iter().zip(pools))
            {
                // Wire mode: each dispatcher owns a frame pool (the
                // software RX ring) sized to the largest frame in the
                // store; it warms up on the first burst and then
                // recycles its 8 slots for the rest of the run. Parked
                // pools are reused when their slots still fit the
                // store's largest frame.
                let frames = match source {
                    FrameSource::Wire(store) => Some(
                        parked_frames
                            .pop_front()
                            .filter(|fp| fp.frame_cap() >= store.max_frame_len())
                            .unwrap_or_else(|| {
                                FramePool::new(store.max_frame_len(), &self.registry)
                            }),
                    ),
                    FrameSource::Packets(_) => None,
                };
                let dispatcher = RxDispatcher {
                    batch: cfg.batch,
                    enforce_verdicts: cfg.enforce_verdicts,
                    hasher,
                    pool,
                    frames,
                    producers: row,
                    counters: &counters,
                    queue: &qcounters[q],
                    steer: queue_steer[q].take(),
                    plan,
                    pace_override: self.pace_override.as_ref(),
                    pace: PaceState::default(),
                    drain: self.drain.as_ref(),
                    start,
                    flight: self.flight.ring(format!("sw-rxq-{q}")),
                    trace: spec.as_ref().map(|s| s.thread(format!("sw-rxq-{q}"))),
                };
                dhandles.push(
                    std::thread::Builder::new()
                        .name(format!("sw-rxq-{q}"))
                        .spawn_scoped(scope, move || dispatcher.run(source, stream))
                        .expect("spawn dispatcher thread"),
                );
            }
            dhandles
                .into_iter()
                .map(|h| h.join().expect("dispatcher thread panicked"))
                .collect()
        });

        // ── Drain & join ────────────────────────────────────────────
        let mut ends: Vec<ShardEndState> = Vec::with_capacity(n);
        let mut caches: Vec<FlowCache> = Vec::with_capacity(n);
        for h in handles {
            let (end, cache) = h.join().expect("shard thread panicked");
            ends.push(end);
            caches.push(cache);
        }
        let elapsed = start.elapsed();
        // Verdict-log occupancy at mesh quiesce, before the controller's
        // final epoch drains its tail — the soak harness trends this.
        let log_buffered = log.buffered() as u64;
        // Shut the host pool down *after* the shards: its channel drains
        // and remaining verdicts land in the log (reported, unapplied).
        if let Some(p) = pool {
            p.shutdown();
        }
        // Stop the controller last: it runs one final epoch (capturing
        // the post-drain counter tails and any late verdicts) and
        // returns its report.
        let control = controller.map(|(handle, stop)| {
            stop.store(true, Ordering::Release);
            handle.thread().unpark();
            handle.join().expect("controller thread panicked")
        });

        // Re-park the run-scoped resources for the next segment, and
        // settle the segment's books.
        let interrupted = dends.iter().any(|d| d.interrupted);
        {
            let mut garage = self.garage.lock().expect("garage poisoned");
            for d in dends {
                garage.pools.push(d.pool);
                if let Some(fp) = d.frames {
                    garage.frames.push(fp);
                }
            }
            // Frame pools a packet-mode segment did not need stay parked
            // for the next wire segment.
            garage.frames.extend(parked_frames);
            garage.pools.extend(parked_pools);
            if cfg.carry_flow_state {
                garage.caches = caches;
            }
        }
        self.mem_rss.set(mem::rss_bytes() as f64);

        let flowcache = FlowCacheSummary::aggregate(cfg.cache_burst, &ends);
        let shards: Vec<ShardStats> = counters
            .iter()
            .zip(&ends)
            .zip(&shard_base)
            .map(|((c, e), base)| shard_stats_delta(c.snapshot(*e), base))
            .collect();
        let queues: Vec<QueueStats> = qcounters
            .iter()
            .zip(&queue_base)
            .map(|(q, base)| queue_stats_delta(q.snapshot(), base))
            .collect();
        // A drained segment offered exactly what its dispatchers got to
        // before the flag: the per-queue tallies. An uninterrupted run
        // keeps the stronger form — the whole source, independently
        // cross-checked against the queue axis by `conserved()`.
        let offered = if interrupted {
            queues.iter().map(|q| q.offered).sum()
        } else {
            source.len() as u64
        };
        let report = EngineReport {
            offered,
            elapsed,
            shards,
            queues,
            host_processed: host_processed.get() - host_base,
            verdicts_published: log.len() as u64,
            interrupted,
            log_buffered,
            control,
            stage: StageSnapshot {
                queue_ns: stage.queue_ns.snapshot(),
                cache_ns: stage.cache_ns.snapshot(),
                detect_ns: stage.detect_ns.snapshot(),
                escalate_ns: stage.escalate_ns.snapshot(),
                batch_pkts: stage.batch_pkts.snapshot(),
            },
            flowcache,
        };
        // Close out the black box: a conservation failure records its
        // delta (the smoking gun a post-mortem dump starts from), and
        // every run ends with a RunEnd marker.
        let eng_ring = self.flight.ring("sw-engine");
        if !report.conserved() {
            let accounted = report
                .shards
                .iter()
                .map(|s| s.ingested + s.ingest_dropped + s.shed + s.steer_dropped)
                .sum::<u64>();
            eng_ring.record(
                FlightKind::ConservationDelta,
                report.offered.abs_diff(accounted),
                report.offered,
            );
        }
        eng_ring.record(
            FlightKind::RunEnd,
            u64::from(report.conserved()),
            report.offered,
        );
        report
    }

    /// Wire up the optional control plane for one run: per-shard mode
    /// cells and hooks, one independent RCU steering reader per ingest
    /// unit (dispatcher or fused core — refreshes stay per-unit so a
    /// lagging unit never staleness-couples the others), and the
    /// controller thread. Shared by both datapaths.
    #[allow(clippy::type_complexity)]
    fn spawn_control(
        &self,
        ingest_units: usize,
        spec: &Option<TraceSpec>,
        log: &Arc<ControlLog>,
        counters: &[ShardCounters],
        host_processed: &Counter,
    ) -> (
        Vec<Option<ControlHooks>>,
        Vec<Option<SnapshotReader<SteeringSnapshot>>>,
        Option<(std::thread::JoinHandle<ControlReport>, Arc<AtomicBool>)>,
    ) {
        let n = counters.len();
        let mut shard_hooks: Vec<Option<ControlHooks>> = (0..n).map(|_| None).collect();
        let mut queue_steer: Vec<Option<SnapshotReader<SteeringSnapshot>>> =
            (0..ingest_units).map(|_| None).collect();
        let mut controller = None;
        if let Some(mut ctrl_cfg) = self.cfg.control.clone() {
            ctrl_cfg.hash_seed = self.cfg.hash_seed;
            let mode_cells: Vec<Arc<ModeCell>> =
                (0..n).map(|_| Arc::new(ModeCell::default())).collect();
            let snap_cell = Arc::new(SnapshotCell::new(SteeringSnapshot::empty()));
            let (heavy_tx, heavy_rx) = std::sync::mpsc::sync_channel::<(u64, u64)>(8192);
            for (i, slot) in shard_hooks.iter_mut().enumerate() {
                *slot = Some(ControlHooks {
                    mode: Arc::clone(&mode_cells[i]),
                    steer: snap_cell.reader(),
                    heavy_tx: heavy_tx.clone(),
                });
            }
            drop(heavy_tx);
            for slot in queue_steer.iter_mut() {
                *slot = Some(snap_cell.reader());
            }
            let epoch = Duration::from_millis(ctrl_cfg.epoch_ms.max(1));
            let obs = CtrlObs {
                flight: self.flight.ring("sw-control"),
                trace: spec.as_ref().map(|s| s.thread("sw-control")),
                audit: Arc::clone(&self.decisions),
                audit_cap: ctrl_cfg.decision_capacity.max(1),
                admin: Arc::clone(&self.admin),
                admin_applied: self.admin_applied.clone(),
                mem_rss: self.mem_rss.clone(),
            };
            let ctrl = Controller::with_registry(ctrl_cfg, &self.registry);
            let reader = log.reader();
            let stop = Arc::new(AtomicBool::new(false));
            let thread_args = (
                Arc::clone(log),
                counters.to_vec(),
                host_processed.clone(),
                Arc::clone(&stop),
            );
            let handle = std::thread::Builder::new()
                .name("sw-control".into())
                .spawn(move || {
                    let (log, counters, host_processed, stop) = thread_args;
                    controller_loop(
                        ctrl,
                        log,
                        reader,
                        heavy_rx,
                        counters,
                        host_processed,
                        mode_cells,
                        snap_cell,
                        stop,
                        epoch,
                        obs,
                    )
                })
                .expect("spawn controller thread");
            controller = Some((handle, stop));
        }
        (shard_hooks, queue_steer, controller)
    }

    /// The run-to-completion datapath: C = `shards` fused `sw-core-{i}`
    /// threads, each owning one shard partition *and* its ingest. The
    /// pre-split assigns packets by
    /// [`shard_for_digest`](smartwatch_net::hash::shard_for_digest)
    /// directly — no salted queue remix — so a core's sub-stream is
    /// exactly the stream its FlowCache partition would have received
    /// through the mesh, and the fused loop (ingest → digest →
    /// FlowCache → detectors → verdict) runs it in place with zero
    /// inter-thread queue crossings on the fast path. Host escalation
    /// and control-plane sampling keep their existing channels; drain,
    /// garage and serve semantics carry over unchanged. Each core keeps
    /// per-core ingest books under the same `queue=` labels the
    /// dispatchers use (in RTC the ingest unit *is* the core), so the
    /// two-axis conservation identity holds exactly as in pipeline
    /// mode — and for the same seed the deterministic summary is
    /// byte-identical to a single-queue pipeline run.
    fn run_rtc(&self, source: FrameSource<'_>, pace: Pace) -> EngineReport {
        let cfg = &self.cfg;
        let n = cfg.shards;
        assert!(
            source.len() <= u32::MAX as usize,
            "sequence indices are u32 at split time"
        );
        let log = Arc::new(ControlLog::new());
        let stage = StageHists::registered(&self.registry);
        let host_processed = self.registry.counter("runtime.host.processed", &[]);
        let anchor = WallAnchor::new();
        let spec: Option<TraceSpec> =
            self.tracer
                .as_ref()
                .filter(|_| cfg.trace_sample > 0)
                .map(|t| TraceSpec {
                    tracer: t.clone(),
                    anchor,
                    every: cfg.trace_sample,
                });
        self.decisions
            .lock()
            .expect("decision audit poisoned")
            .clear();

        let pool = (cfg.host_workers > 0).then(|| {
            let threshold = cfg.triage_threshold;
            HostPool::spawn(
                cfg.host_workers,
                cfg.host_queue,
                Arc::clone(&log),
                host_processed.clone(),
                HostObs::new(stage.escalate_ns.clone(), spec.clone()),
                move |_| Box::new(TriageNf::new(threshold)),
            )
        });
        let hasher = FlowHasher::new(cfg.hash_seed);
        let counters: Vec<ShardCounters> = (0..n)
            .map(|i| ShardCounters::registered(&self.registry, i))
            .collect();
        let qcounters: Vec<QueueCounters> = (0..n)
            .map(|q| QueueCounters::registered(&self.registry, q))
            .collect();
        let shard_base: Vec<ShardStats> = counters
            .iter()
            .map(|c| c.snapshot(ShardEndState::default()))
            .collect();
        let queue_base: Vec<QueueStats> = qcounters.iter().map(QueueCounters::snapshot).collect();
        let host_base = host_processed.get();
        self.mem_rss.set(mem::rss_bytes() as f64);
        // Best-effort pin bookkeeping (`--pin-cores`): counts kernel-
        // accepted masks, so an operator can see when a cpuset container
        // silently refused the pinning they asked for.
        let core_pinned = self.registry.counter("runtime.core.pinned", &[]);

        let Garage {
            pools: parked_pools,
            frames: parked_frames,
            caches: parked_caches,
        } = std::mem::take(&mut *self.garage.lock().expect("garage poisoned"));
        let mut parked_pools: VecDeque<BufferPool> = parked_pools.into();
        let mut parked_frames: VecDeque<FramePool> = parked_frames.into();
        let mut parked_caches: VecDeque<FlowCache> = if cfg.carry_flow_state {
            parked_caches.into()
        } else {
            VecDeque::new()
        };

        // Control plane: same wiring as the mesh, with one steering
        // reader per fused core instead of per dispatcher.
        let (mut shard_hooks, mut queue_steer, controller) =
            self.spawn_control(n, &spec, &log, &counters, &host_processed);

        // ── RTC pre-split ───────────────────────────────────────────
        // Straight `shard_for_digest`: the packets a core ingests are
        // exactly the packets whose FlowCache rows it owns. Untimed,
        // like the RSS split — hardware flow steering is free.
        let plan = PacePlan::resolve(pace, source.len());
        let streams = split_rtc(source, n, &hasher);

        // ── Fused cores: spawn, run to completion, join ─────────────
        let start = Instant::now();
        let finish_line = Arc::new(std::sync::Barrier::new(n));
        let rends: Vec<RtcEnd> = std::thread::scope(|scope| {
            // Construct every core — registering every log reader —
            // *before* spawning any thread: a fused core starts
            // publishing triage verdicts the moment it runs, and a
            // reader registered after the log has compacted past the
            // early publications would silently miss that prefix.
            // (The mesh gets this ordering for free: dispatchers spawn
            // after every shard worker is built.)
            let mut cores = Vec::with_capacity(n);
            for (i, stream) in streams.into_iter().enumerate() {
                let cache = match parked_caches.pop_front() {
                    Some(cache) => cache,
                    None => {
                        let mut cache_cfg = FlowCacheConfig::general(cfg.cache_row_bits);
                        cache_cfg.hash_seed = cfg.hash_seed;
                        let mut cache = FlowCache::new(cache_cfg);
                        cache.attach_telemetry(&self.registry);
                        cache
                    }
                };
                let escalation = match &pool {
                    Some(p) => Escalation::Pool(p.sender()),
                    None => Escalation::Inline(TriageNf::new(cfg.triage_threshold)),
                };
                // One staging buffer, processed in place at batch
                // boundaries: the pool stays tiny because nothing is
                // ever in flight on a lane.
                let bufs = parked_pools
                    .pop_front()
                    .unwrap_or_else(|| BufferPool::new(4, cfg.batch, &self.registry));
                let frames = match source {
                    FrameSource::Wire(store) => Some(
                        parked_frames
                            .pop_front()
                            .filter(|fp| fp.frame_cap() >= store.max_frame_len())
                            .unwrap_or_else(|| {
                                FramePool::new(store.max_frame_len(), &self.registry)
                            }),
                    ),
                    FrameSource::Packets(_) => None,
                };
                let worker = ShardWorker::new(
                    cache,
                    escalation,
                    Arc::clone(&log),
                    counters[i].clone(),
                    stage.clone(),
                    host_processed.clone(),
                    cfg.enforce_verdicts,
                    hasher,
                    cfg.merge,
                    cfg.batch,
                    cfg.cache_burst,
                    shard_hooks[i].take(),
                    ShardObs {
                        flight: self.flight.ring(format!("sw-core-{i}")),
                        // The core's sampled block spans cover
                        // processing; the worker emits none of its own.
                        trace: None,
                    },
                    Arc::clone(&finish_line),
                );
                let core = RtcCore {
                    batch: cfg.batch,
                    enforce_verdicts: cfg.enforce_verdicts,
                    hasher,
                    pool: bufs,
                    frames,
                    queue: &qcounters[i],
                    steer: queue_steer[i].take(),
                    plan,
                    pace_override: self.pace_override.as_ref(),
                    pace: PaceState::default(),
                    drain: self.drain.as_ref(),
                    start,
                    flight: self.flight.ring(format!("sw-core-{i}")),
                    trace: spec.as_ref().map(|s| s.thread(format!("sw-core-{i}"))),
                    backoff: Backoff::new(),
                    worker,
                };
                cores.push((core, stream));
            }
            let mut handles = Vec::with_capacity(n);
            for (i, (core, stream)) in cores.into_iter().enumerate() {
                let pin = cfg.pin_cores;
                let pinned = core_pinned.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("sw-core-{i}"))
                        .spawn_scoped(scope, move || {
                            if pin && smartwatch_snic::pin_current_thread(i) {
                                pinned.inc();
                            }
                            core.run(source, stream)
                        })
                        .expect("spawn rtc core thread"),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rtc core thread panicked"))
                .collect()
        });
        let elapsed = start.elapsed();
        let log_buffered = log.buffered() as u64;
        if let Some(p) = pool {
            p.shutdown();
        }
        let control = controller.map(|(handle, stop)| {
            stop.store(true, Ordering::Release);
            handle.thread().unpark();
            handle.join().expect("controller thread panicked")
        });

        // Re-park and settle, exactly as the mesh does.
        let mut ends: Vec<ShardEndState> = Vec::with_capacity(n);
        let mut caches: Vec<FlowCache> = Vec::with_capacity(n);
        let mut interrupted = false;
        {
            let mut garage = self.garage.lock().expect("garage poisoned");
            for e in rends {
                interrupted |= e.interrupted;
                ends.push(e.end);
                caches.push(e.cache);
                garage.pools.push(e.pool);
                if let Some(fp) = e.frames {
                    garage.frames.push(fp);
                }
            }
            garage.frames.extend(parked_frames);
            garage.pools.extend(parked_pools);
            if cfg.carry_flow_state {
                garage.caches = caches;
            }
        }
        self.mem_rss.set(mem::rss_bytes() as f64);

        let flowcache = FlowCacheSummary::aggregate(cfg.cache_burst, &ends);
        let shards: Vec<ShardStats> = counters
            .iter()
            .zip(&ends)
            .zip(&shard_base)
            .map(|((c, e), base)| shard_stats_delta(c.snapshot(*e), base))
            .collect();
        let queues: Vec<QueueStats> = qcounters
            .iter()
            .zip(&queue_base)
            .map(|(q, base)| queue_stats_delta(q.snapshot(), base))
            .collect();
        let offered = if interrupted {
            queues.iter().map(|q| q.offered).sum()
        } else {
            source.len() as u64
        };
        let report = EngineReport {
            offered,
            elapsed,
            shards,
            queues,
            host_processed: host_processed.get() - host_base,
            verdicts_published: log.len() as u64,
            interrupted,
            log_buffered,
            control,
            stage: StageSnapshot {
                queue_ns: stage.queue_ns.snapshot(),
                cache_ns: stage.cache_ns.snapshot(),
                detect_ns: stage.detect_ns.snapshot(),
                escalate_ns: stage.escalate_ns.snapshot(),
                batch_pkts: stage.batch_pkts.snapshot(),
            },
            flowcache,
        };
        let eng_ring = self.flight.ring("sw-engine");
        if !report.conserved() {
            let accounted = report
                .shards
                .iter()
                .map(|s| s.ingested + s.ingest_dropped + s.shed + s.steer_dropped)
                .sum::<u64>();
            eng_ring.record(
                FlightKind::ConservationDelta,
                report.offered.abs_diff(accounted),
                report.offered,
            );
        }
        eng_ring.record(
            FlightKind::RunEnd,
            u64::from(report.conserved()),
            report.offered,
        );
        report
    }
}

/// Open-loop pacing wait: park for the bulk of a long gap (an idle
/// dispatcher must not burn the core at low offered rates), then
/// yield-spin the final stretch for timing accuracy.
fn pace_until(start: Instant, due: Duration) {
    loop {
        let elapsed = start.elapsed();
        if elapsed >= due {
            return;
        }
        let remaining = due - elapsed;
        if remaining > Duration::from_micros(500) {
            std::thread::park_timeout(remaining - Duration::from_micros(200));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Per-run view of the cumulative per-shard registry counters: the
/// counter-backed fields subtract the run's baseline; the end-state
/// fields (steering-table sizes, cache residency) are absolute snapshots
/// and pass through.
fn shard_stats_delta(now: ShardStats, base: &ShardStats) -> ShardStats {
    ShardStats {
        ingested: now.ingested - base.ingested,
        ingest_dropped: now.ingest_dropped - base.ingest_dropped,
        shed: now.shed - base.shed,
        steer_dropped: now.steer_dropped - base.steer_dropped,
        processed: now.processed - base.processed,
        verdict_dropped: now.verdict_dropped - base.verdict_dropped,
        fast_path: now.fast_path - base.fast_path,
        escalated: now.escalated - base.escalated,
        escalation_dropped: now.escalation_dropped - base.escalation_dropped,
        ctrl_applied: now.ctrl_applied - base.ctrl_applied,
        alerts: now.alerts - base.alerts,
        idle_parks: now.idle_parks - base.idle_parks,
        blacklisted: now.blacklisted,
        whitelisted: now.whitelisted,
        cache_resident: now.cache_resident,
    }
}

/// Per-run view of the cumulative per-queue registry counters.
fn queue_stats_delta(now: QueueStats, base: &QueueStats) -> QueueStats {
    QueueStats {
        offered: now.offered - base.offered,
        ingested: now.ingested - base.ingested,
        ingest_dropped: now.ingest_dropped - base.ingest_dropped,
        shed: now.shed - base.shed,
        steer_dropped: now.steer_dropped - base.steer_dropped,
    }
}

/// A [`Pace`] resolved against the trace length into a closed-form
/// arrival schedule over *global* packet indices. Every dispatcher
/// computes its packets' due times from their global sequence numbers,
/// so R queues replay the same wall-clock arrival process the single
/// dispatcher would — the spike hits every queue in the same window.
#[derive(Clone, Copy, Debug)]
enum PacePlan {
    Flatout,
    Rate {
        gap_ns: f64,
    },
    Spike {
        base_gap_ns: f64,
        peak_gap_ns: f64,
        lo: usize,
        hi: usize,
    },
}

impl PacePlan {
    fn resolve(pace: Pace, total: usize) -> PacePlan {
        match pace {
            Pace::Flatout => PacePlan::Flatout,
            Pace::RateMpps(r) => {
                assert!(r > 0.0, "offered rate must be positive");
                PacePlan::Rate { gap_ns: 1000.0 / r }
            }
            Pace::Spike {
                base_mpps,
                peak_mpps,
                spike_start,
                spike_end,
            } => {
                assert!(base_mpps > 0.0 && peak_mpps > 0.0, "rates must be positive");
                assert!(
                    spike_start <= spike_end,
                    "spike must not end before it starts"
                );
                let total = total as f64;
                PacePlan::Spike {
                    base_gap_ns: 1000.0 / base_mpps,
                    peak_gap_ns: 1000.0 / peak_mpps,
                    lo: (spike_start.clamp(0.0, 1.0) * total) as usize,
                    hi: (spike_end.clamp(0.0, 1.0) * total) as usize,
                }
            }
        }
    }

    fn paced(&self) -> bool {
        !matches!(self, PacePlan::Flatout)
    }

    /// Arrival deadline of global packet `i`: the sum of inter-arrival
    /// gaps of packets `0..=i` (gap `peak` inside `[lo, hi)`, `base`
    /// outside), in closed form so per-queue replay needs no shared
    /// accumulator.
    fn due_ns(&self, i: usize) -> f64 {
        match *self {
            PacePlan::Flatout => 0.0,
            PacePlan::Rate { gap_ns } => (i as f64 + 1.0) * gap_ns,
            PacePlan::Spike {
                base_gap_ns,
                peak_gap_ns,
                lo,
                hi,
            } => {
                let arrived = i + 1;
                let in_spike = arrived.clamp(lo, hi) - lo;
                let at_base = arrived - in_spike;
                at_base as f64 * base_gap_ns + in_spike as f64 * peak_gap_ns
            }
        }
    }
}

/// One RX queue's share of the offered trace.
enum QueueStream {
    /// `rx_queues = 1`: the whole slice, no split pre-pass.
    All,
    /// Global indices of this queue's packets, ascending — so each
    /// queue's sub-stream preserves arrival order (and flow affinity
    /// comes from the digest-based assignment).
    Picked(Vec<u32>),
}

/// Split the trace across `r` queues by salted flow-digest remix
/// ([`queue_for_digest`]); the salt derives from the engine seed via
/// [`splitmix64`], so the per-queue sub-streams are a pure function of
/// (trace, seed, r) — reproducible across runs. Wire sources digest
/// from the raw header bytes ([`FlowHasher::digest_raw`], bit-identical
/// to the key-based digest), so the same flow lands on the same queue
/// regardless of which representation the engine replays.
fn split_streams(
    source: FrameSource<'_>,
    r: usize,
    seed: u64,
    hasher: &FlowHasher,
) -> Vec<QueueStream> {
    if r == 1 {
        return vec![QueueStream::All];
    }
    let salt = splitmix64(seed);
    let len = source.len();
    let mut picked: Vec<Vec<u32>> = (0..r).map(|_| Vec::with_capacity(len / r + 1)).collect();
    for i in 0..len {
        let digest = match source {
            FrameSource::Packets(packets) => hasher.hash_symmetric(&packets[i].key),
            FrameSource::Wire(store) => hasher.digest_raw(store.view(i).raw_tuple()).1,
        };
        picked[queue_for_digest(digest, salt, r)].push(i as u32);
    }
    picked.into_iter().map(QueueStream::Picked).collect()
}

/// The RTC pre-split: assign each packet to the fused core that owns
/// its shard partition — [`shard_for_digest`] over the flow digest
/// directly, with no salted queue remix in between. Each core's
/// sub-stream preserves global arrival order, so it is *exactly* the
/// stream its FlowCache partition would have received through the
/// dispatcher mesh. Untimed, like the RSS split (hardware flow
/// steering is free); the timed fused loop still digests every packet
/// itself, so per-packet work matches the pipeline's dispatcher and
/// the Mpps comparison stays honest.
fn split_rtc(source: FrameSource<'_>, n: usize, hasher: &FlowHasher) -> Vec<QueueStream> {
    if n == 1 {
        return vec![QueueStream::All];
    }
    let len = source.len();
    let mut picked: Vec<Vec<u32>> = (0..n).map(|_| Vec::with_capacity(len / n + 1)).collect();
    for i in 0..len {
        let digest = match source {
            FrameSource::Packets(packets) => hasher.hash_symmetric(&packets[i].key),
            FrameSource::Wire(store) => hasher.digest_raw(store.view(i).raw_tuple()).1,
        };
        picked[shard_for_digest(digest, n)].push(i as u32);
    }
    picked.into_iter().map(QueueStream::Picked).collect()
}

/// What a fused core hands back when its stream ends: the shard end
/// state and FlowCache (for the report and serve-mode carry), its
/// reusable pools (re-parked in the [`Garage`]), and whether it
/// stopped on a drain request.
struct RtcEnd {
    end: ShardEndState,
    cache: FlowCache,
    pool: BufferPool,
    frames: Option<FramePool>,
    interrupted: bool,
}

/// One fused run-to-completion core: a dispatcher-style ingest front
/// end and a [`ShardWorker`] back end in a single thread, with no lane
/// between them. The ingest side mirrors [`RxDispatcher`] — 256-packet
/// checkpoints (drain observation, live pace-override re-anchoring,
/// steering refresh, black-box coalescing, counter folds), steering
/// enforcement at ingest, [`PacePlan`] arrival scheduling — and stages
/// packets into one pooled buffer. At every `batch`-packet boundary
/// (exactly where the mesh dispatcher would have flushed a lane batch)
/// the core ticks the worker's control clock and processes the staged
/// batch in place, so per-shard decision streams are identical to the
/// pipeline's. Paced waits use the shard [`Backoff`] ladder — spin →
/// yield → park, counted as `idle_parks` — so an idle core at low
/// offered rates never busy-spins a CPU.
struct RtcCore<'a> {
    batch: usize,
    enforce_verdicts: bool,
    hasher: FlowHasher,
    /// Staging-buffer pool; one buffer lives for the whole run (there
    /// are no lanes to keep buffers in flight on).
    pool: BufferPool,
    /// Wire mode only: this core's frame pool (the software RX ring).
    frames: Option<FramePool>,
    /// This core's ingest books, under the same `queue=` labels the
    /// dispatchers use: in RTC the ingest unit *is* the core.
    queue: &'a QueueCounters,
    steer: Option<SnapshotReader<SteeringSnapshot>>,
    plan: PacePlan,
    pace_override: &'a AtomicU64,
    pace: PaceState,
    drain: &'a AtomicBool,
    start: Instant,
    flight: FlightRing,
    trace: Option<ThreadTrace>,
    /// Idle ladder for paced arrival gaps (parks count as
    /// `idle_parks`, same as a starved pipeline shard).
    backoff: Backoff,
    /// The fused processing back end; owns the FlowCache partition,
    /// detector suite, verdict sets and per-shard counters.
    worker: ShardWorker,
}

impl RtcCore<'_> {
    fn run(self, source: FrameSource<'_>, stream: QueueStream) -> RtcEnd {
        match source {
            FrameSource::Packets(packets) => match stream {
                QueueStream::All => self.run_packets(packets, 0..packets.len()),
                QueueStream::Picked(idx) => {
                    self.run_packets(packets, idx.into_iter().map(|i| i as usize))
                }
            },
            FrameSource::Wire(store) => match stream {
                QueueStream::All => self.run_frames(store, 0..store.len()),
                QueueStream::Picked(idx) => {
                    self.run_frames(store, idx.into_iter().map(|i| i as usize))
                }
            },
        }
    }

    /// Synthetic path: digest and process the core's sub-stream in
    /// arrival order, batch by batch, entirely on this thread.
    fn run_packets(mut self, packets: &[Packet], stream: impl Iterator<Item = usize>) -> RtcEnd {
        let paced = self.plan.paced();
        let mut buf: Vec<DigestedPacket> = self.pool.acquire();
        let mut local = QueueLocal::default();
        let mut block = BlockState {
            t0: self.start,
            sampled: false,
            idx: 0,
        };
        let mut interrupted = false;
        for (k, i) in stream.enumerate() {
            let pkt = &packets[i];
            if k.is_multiple_of(256) && self.checkpoint(k, i, paced, &mut local, &mut block) {
                interrupted = true;
                break;
            }
            local.offered += 1;
            let (canon, digest) = self.hasher.digest_symmetric(&pkt.key);
            let dp = DigestedPacket {
                pkt: *pkt,
                canon,
                digest,
                seq: i as u64,
            };
            self.ingest(dp, &mut buf, &mut local);
        }
        self.finish(buf, local, block, interrupted)
    }

    /// Zero-copy wire path: the same [`BURST`]-wide load → parse in
    /// place → `digest_batch8` front end as the mesh dispatcher, fused
    /// straight into this core's processing loop.
    fn run_frames(mut self, store: &FrameStore, stream: impl Iterator<Item = usize>) -> RtcEnd {
        let paced = self.plan.paced();
        let mut frames = self
            .frames
            .take()
            .expect("wire ingest requires a frame pool");
        let mut buf: Vec<DigestedPacket> = self.pool.acquire();
        let mut local = QueueLocal::default();
        let mut block = BlockState {
            t0: self.start,
            sampled: false,
            idx: 0,
        };
        let mut interrupted = false;
        let mut stream = stream;
        let mut k = 0usize;
        loop {
            let mut idx = [0usize; BURST];
            let mut m = 0;
            while m < BURST {
                match stream.next() {
                    Some(i) => {
                        idx[m] = i;
                        m += 1;
                    }
                    None => break,
                }
            }
            if m == 0 {
                break;
            }
            // BURST divides 256, so checkpoints land on burst starts.
            if k.is_multiple_of(256) && self.checkpoint(k, idx[0], paced, &mut local, &mut block) {
                interrupted = true;
                break;
            }
            let mut slots: [Option<FrameSlot>; BURST] = Default::default();
            for (slot, &i) in slots.iter_mut().zip(&idx[..m]) {
                *slot = Some(frames.load(store.frame(i)));
            }
            let mut burst: [Option<DigestedPacket>; BURST] = Default::default();
            {
                let mut tuples = [RawTuple::default(); BURST];
                let mut views: [Option<FrameView<'_>>; BURST] = Default::default();
                for j in 0..m {
                    let slot = slots[j].as_ref().expect("slot loaded");
                    let v = FrameView::parse(frames.frame(slot))
                        .expect("frame validated at store construction");
                    tuples[j] = v.raw_tuple();
                    views[j] = Some(v);
                }
                if m == BURST {
                    let digested = self.hasher.digest_batch8(&tuples);
                    for j in 0..BURST {
                        let v = views[j].expect("view parsed");
                        let (canon, digest) = digested[j];
                        burst[j] = Some(DigestedPacket {
                            pkt: store.meta(idx[j]).packet(&v),
                            canon,
                            digest,
                            seq: idx[j] as u64,
                        });
                    }
                } else {
                    for j in 0..m {
                        let v = views[j].expect("view parsed");
                        let (canon, digest) = self.hasher.digest_raw(tuples[j]);
                        burst[j] = Some(DigestedPacket {
                            pkt: store.meta(idx[j]).packet(&v),
                            canon,
                            digest,
                            seq: idx[j] as u64,
                        });
                    }
                }
            }
            for slot in slots.iter_mut() {
                if let Some(s) = slot.take() {
                    frames.release(s);
                }
            }
            for dp in burst.iter_mut().take(m) {
                local.offered += 1;
                self.ingest(dp.take().expect("digested"), &mut buf, &mut local);
            }
            k += m;
        }
        self.frames = Some(frames);
        self.finish(buf, local, block, interrupted)
    }

    /// The fused core's 256-packet checkpoint: drain observation, pace
    /// re-anchoring and the arrival wait, steering refresh, black-box
    /// coalescing and the live counter fold — the dispatcher checkpoint
    /// verbatim, except the paced wait runs on the shard [`Backoff`]
    /// ladder (spin → yield → park, parks counted as `idle_parks`)
    /// because the fused core is also the shard: at zero offered load
    /// it must not busy-spin the CPU its own processing runs on.
    fn checkpoint(
        &mut self,
        k: usize,
        global_i: usize,
        paced: bool,
        local: &mut QueueLocal,
        block: &mut BlockState,
    ) -> bool {
        if self.drain.load(Ordering::Acquire) {
            return true;
        }
        if paced {
            let bits = self.pace_override.load(Ordering::Acquire);
            if bits != self.pace.bits {
                let due = self.due_ns(global_i);
                self.pace = PaceState {
                    bits,
                    anchor_due: due,
                    anchor_i: global_i,
                };
            }
            let due = Duration::from_nanos(self.due_ns(global_i) as u64);
            while self.start.elapsed() < due {
                if self.backoff.idle() {
                    self.worker.counters.idle_parks.inc();
                }
            }
            self.backoff.reset();
        }
        if let Some(sr) = self.steer.as_mut() {
            sr.refresh();
        }
        if k > 0 {
            block.idx = (k / 256) as u64;
            if local.shed > 0 {
                self.flight
                    .record(FlightKind::ShedDrop, local.shed, block.idx);
            }
            if local.steer_dropped > 0 {
                self.flight
                    .record(FlightKind::SteerDrop, local.steer_dropped, block.idx);
            }
            self.queue.fold(local);
        }
        if let Some(tt) = self.trace.as_mut() {
            if k > 0 && block.sampled {
                tt.span_since(block.t0, "rtc block", "core");
            }
            block.sampled = tt.tick();
            if block.sampled {
                block.t0 = Instant::now();
            }
        }
        false
    }

    /// Arrival deadline of global packet `i` under the effective
    /// schedule (plan, or the live override from its anchor).
    fn due_ns(&self, i: usize) -> f64 {
        if self.pace.bits == 0 {
            self.plan.due_ns(i)
        } else {
            self.pace.anchor_due + (i - self.pace.anchor_i) as f64 * f64::from_bits(self.pace.bits)
        }
    }

    /// Ingest one digested packet: steering enforcement exactly as the
    /// dispatcher's `offer` (blacklist drop, shed filter — accounted
    /// per shard and per core), then stage; a full staging buffer is
    /// processed in place. The pre-split guarantees every packet here
    /// belongs to this core's partition, so there is no shard index to
    /// compute and nothing to route.
    fn ingest(
        &mut self,
        dp: DigestedPacket,
        buf: &mut Vec<DigestedPacket>,
        local: &mut QueueLocal,
    ) {
        if let Some(sr) = &self.steer {
            let snap = sr.current();
            if self.enforce_verdicts && snap.blacklist.contains(&dp.digest.0) {
                self.worker.counters.steer_dropped.inc();
                local.steer_dropped += 1;
                return;
            }
            if snap.shed && !snap.whitelist.contains(&dp.digest.0) {
                self.worker.counters.shed.inc();
                local.shed += 1;
                return;
            }
        }
        buf.push(dp);
        if buf.len() == self.batch {
            self.process_staged(buf, local);
        }
    }

    /// Process the staged batch in place: account ingest (a fused core
    /// never drops at ingest — with no lane to overrun, a paced core
    /// self-backpressures instead, so `ingest_dropped` stays 0), tick
    /// the worker's control clock at exactly the boundary the mesh
    /// would have flushed a lane batch, run the pipeline, fold the
    /// counters. There is no queue crossing — `runtime.stage.queue_ns`
    /// records nothing in RTC mode, which is the point.
    fn process_staged(&mut self, buf: &mut Vec<DigestedPacket>, local: &mut QueueLocal) {
        let len = buf.len() as u64;
        self.worker.counters.ingested.add(len);
        local.ingested += len;
        self.worker.stage.batch_pkts.record(len);
        self.worker.control_tick();
        self.worker.process_batch(buf);
        self.worker.flush_local();
        buf.clear();
    }

    /// End of stream (or drain): process the partial tail batch, close
    /// the sampled span, settle the books exactly, hand the pools back
    /// for re-parking and run the worker's stop tail (final verdicts,
    /// detector sweep, end-state freeze).
    fn finish(
        mut self,
        mut buf: Vec<DigestedPacket>,
        mut local: QueueLocal,
        block: BlockState,
        interrupted: bool,
    ) -> RtcEnd {
        if !buf.is_empty() {
            self.process_staged(&mut buf, &mut local);
        }
        if block.sampled {
            if let Some(tt) = &self.trace {
                tt.span_since(block.t0, "rtc block", "core");
            }
        }
        if local.shed > 0 {
            self.flight
                .record(FlightKind::ShedDrop, local.shed, block.idx + 1);
        }
        if local.steer_dropped > 0 {
            self.flight
                .record(FlightKind::SteerDrop, local.steer_dropped, block.idx + 1);
        }
        self.queue.fold(&mut local);
        self.pool.give_back(buf);
        let (end, cache) = self.worker.finish();
        RtcEnd {
            end,
            cache,
            pool: self.pool,
            frames: self.frames,
            interrupted,
        }
    }
}

/// Plain-integer per-queue tallies, folded into the shared
/// [`QueueCounters`] atomics at every 256-packet checkpoint (so live
/// readers — `/stats.json`, `/metrics` — see queue counters at most a
/// checkpoint stale) and once more at end of stream.
#[derive(Default)]
struct QueueLocal {
    offered: u64,
    ingested: u64,
    ingest_dropped: u64,
    shed: u64,
    steer_dropped: u64,
}

/// What a dispatcher thread hands back at end of stream: its reusable
/// pools (re-parked in the [`Garage`] for the next segment) and whether
/// it stopped on a drain request rather than end-of-trace.
struct DispatchEnd {
    pool: BufferPool,
    frames: Option<FramePool>,
    interrupted: bool,
}

/// Live pacing-override state, re-read at every 256-packet checkpoint.
/// When the override bits change, the arrival schedule re-anchors at
/// the current packet's due time so the new gap applies *forward* —
/// no retroactive burst, no stall. Releasing the override (bits = 0)
/// returns to the plan's absolute schedule.
#[derive(Default)]
struct PaceState {
    /// `f64::to_bits` of the overriding inter-arrival gap (ns); `0`
    /// mirrors "no override".
    bits: u64,
    /// Due time (ns) of the packet the override anchored at.
    anchor_due: f64,
    /// Global index of the anchor packet.
    anchor_i: usize,
}

/// One RX-queue dispatcher: owns its producers row of the mesh, its
/// buffer pool, its steering reader, and replays its sub-stream at the
/// globally-scheduled arrival times.
struct RxDispatcher<'a> {
    batch: usize,
    enforce_verdicts: bool,
    hasher: FlowHasher,
    /// Owned, not shared: a pool's receiver is single-consumer, so each
    /// dispatcher allocates from (and paced drops return to) its own.
    pool: BufferPool,
    /// Wire mode only: this dispatcher's frame pool (the software RX
    /// ring) — raw frames are loaded into its fixed-capacity slots,
    /// parsed in place and released per burst. `None` on the synthetic
    /// packet path.
    frames: Option<FramePool>,
    producers: Vec<Producer<ShardMsg>>,
    counters: &'a [ShardCounters],
    queue: &'a QueueCounters,
    steer: Option<SnapshotReader<SteeringSnapshot>>,
    plan: PacePlan,
    /// Engine-shared live rate override (see [`Engine::set_rate_override`]).
    pace_override: &'a AtomicU64,
    /// This dispatcher's current override anchoring.
    pace: PaceState,
    /// Engine-shared graceful-drain flag, observed at checkpoints.
    drain: &'a AtomicBool,
    start: Instant,
    /// This queue's flight-recorder ring (always on; drop events only).
    flight: FlightRing,
    /// Sampled dispatch-block trace track (`None` when tracing is off).
    trace: Option<ThreadTrace>,
}

/// Per-dispatch-block trace/flight state: blocks are the 256-packet
/// checkpoint windows; one sampling decision per block covers the whole
/// window's span.
struct BlockState {
    t0: Instant,
    sampled: bool,
    idx: u64,
}

/// Frames per wire-path burst. Must match the width of
/// [`FlowHasher::digest_batch8`] and divide the 256-packet checkpoint
/// window so checkpoints always land on burst boundaries.
const BURST: usize = 8;

impl RxDispatcher<'_> {
    fn run(self, source: FrameSource<'_>, stream: QueueStream) -> DispatchEnd {
        match source {
            FrameSource::Packets(packets) => match stream {
                QueueStream::All => self.dispatch(packets, 0..packets.len()),
                QueueStream::Picked(idx) => {
                    self.dispatch(packets, idx.into_iter().map(|i| i as usize))
                }
            },
            FrameSource::Wire(store) => match stream {
                QueueStream::All => self.dispatch_frames(store, 0..store.len()),
                QueueStream::Picked(idx) => {
                    self.dispatch_frames(store, idx.into_iter().map(|i| i as usize))
                }
            },
        }
    }

    fn dispatch(mut self, packets: &[Packet], stream: impl Iterator<Item = usize>) -> DispatchEnd {
        let n = self.producers.len();
        let paced = self.plan.paced();
        let mut bufs: Vec<Vec<DigestedPacket>> = (0..n).map(|_| self.pool.acquire()).collect();
        let mut local = QueueLocal::default();
        let mut block = BlockState {
            t0: self.start,
            sampled: false,
            idx: 0,
        };
        let mut interrupted = false;
        for (k, i) in stream.enumerate() {
            let pkt = &packets[i];
            if k.is_multiple_of(256) && self.checkpoint(k, i, paced, &mut local, &mut block) {
                interrupted = true;
                break;
            }
            local.offered += 1;
            let (canon, digest) = self.hasher.digest_symmetric(&pkt.key);
            let dp = DigestedPacket {
                pkt: *pkt,
                canon,
                digest,
                seq: i as u64,
            };
            self.offer(dp, paced, &mut bufs, &mut local);
        }
        self.finish(bufs, paced, local, block, interrupted)
    }

    /// The zero-copy wire path: replay packed frames in [`BURST`]-sized
    /// bursts. Each burst loads raw bytes into this dispatcher's
    /// [`FramePool`] slots (the DMA step of the RX-ring model), parses
    /// the headers in place with [`FrameView`], digests all eight flows
    /// straight from the header bytes ([`FlowHasher::digest_batch8`] —
    /// bit-identical to the key-based digest, so shard/queue placement
    /// and FlowCache rows match the synthetic path exactly), rebuilds
    /// the model [`Packet`]s from view + sideband, and releases the
    /// slots. Steady state touches no allocator: the pool's 8 slots
    /// recycle for the whole run.
    fn dispatch_frames(
        mut self,
        store: &FrameStore,
        stream: impl Iterator<Item = usize>,
    ) -> DispatchEnd {
        let n = self.producers.len();
        let paced = self.plan.paced();
        let mut frames = self
            .frames
            .take()
            .expect("wire dispatch requires a frame pool");
        let mut bufs: Vec<Vec<DigestedPacket>> = (0..n).map(|_| self.pool.acquire()).collect();
        let mut local = QueueLocal::default();
        let mut block = BlockState {
            t0: self.start,
            sampled: false,
            idx: 0,
        };
        let mut interrupted = false;
        let mut stream = stream;
        let mut k = 0usize;
        loop {
            // Gather the burst's global indices (full except the tail).
            let mut idx = [0usize; BURST];
            let mut m = 0;
            while m < BURST {
                match stream.next() {
                    Some(i) => {
                        idx[m] = i;
                        m += 1;
                    }
                    None => break,
                }
            }
            if m == 0 {
                break;
            }
            // BURST divides 256, so checkpoints land on burst starts.
            if k.is_multiple_of(256) && self.checkpoint(k, idx[0], paced, &mut local, &mut block) {
                interrupted = true;
                break;
            }
            // RX: copy the frames into pooled slots.
            let mut slots: [Option<FrameSlot>; BURST] = Default::default();
            for (slot, &i) in slots.iter_mut().zip(&idx[..m]) {
                *slot = Some(frames.load(store.frame(i)));
            }
            // Parse in place, digest from the header bytes, rebuild the
            // model packets. The views borrow the pool, so this scope
            // ends before the slots go back on the free list.
            let mut burst: [Option<DigestedPacket>; BURST] = Default::default();
            {
                let mut tuples = [RawTuple::default(); BURST];
                let mut views: [Option<FrameView<'_>>; BURST] = Default::default();
                for j in 0..m {
                    let slot = slots[j].as_ref().expect("slot loaded");
                    let v = FrameView::parse(frames.frame(slot))
                        .expect("frame validated at store construction");
                    tuples[j] = v.raw_tuple();
                    views[j] = Some(v);
                }
                if m == BURST {
                    let digested = self.hasher.digest_batch8(&tuples);
                    for j in 0..BURST {
                        let v = views[j].expect("view parsed");
                        let (canon, digest) = digested[j];
                        burst[j] = Some(DigestedPacket {
                            pkt: store.meta(idx[j]).packet(&v),
                            canon,
                            digest,
                            seq: idx[j] as u64,
                        });
                    }
                } else {
                    for j in 0..m {
                        let v = views[j].expect("view parsed");
                        let (canon, digest) = self.hasher.digest_raw(tuples[j]);
                        burst[j] = Some(DigestedPacket {
                            pkt: store.meta(idx[j]).packet(&v),
                            canon,
                            digest,
                            seq: idx[j] as u64,
                        });
                    }
                }
            }
            for slot in slots.iter_mut() {
                if let Some(s) = slot.take() {
                    frames.release(s);
                }
            }
            for dp in burst.iter_mut().take(m) {
                local.offered += 1;
                self.offer(dp.take().expect("digested"), paced, &mut bufs, &mut local);
            }
            k += m;
        }
        self.frames = Some(frames);
        self.finish(bufs, paced, local, block, interrupted)
    }

    /// The 256-packet checkpoint shared by both dispatch paths: observe
    /// a pending drain request (returns `true`: stop offering, quiesce),
    /// re-read the live pace override, pace to the block's first global
    /// arrival time, refresh the steering snapshot, coalesce the
    /// finished block's black-box deltas (`local` resets each
    /// checkpoint, so its values are exactly the per-block deltas), fold
    /// the live counters, and make the block's trace-sampling decision.
    fn checkpoint(
        &mut self,
        k: usize,
        global_i: usize,
        paced: bool,
        local: &mut QueueLocal,
        block: &mut BlockState,
    ) -> bool {
        // Check *before* pacing: a drain request must not wait out a
        // long inter-arrival sleep at low offered rates.
        if self.drain.load(Ordering::Acquire) {
            return true;
        }
        if paced {
            let bits = self.pace_override.load(Ordering::Acquire);
            if bits != self.pace.bits {
                // Re-anchor at this packet's due time under the *old*
                // schedule, so the new gap applies strictly forward.
                let due = self.due_ns(global_i);
                self.pace = PaceState {
                    bits,
                    anchor_due: due,
                    anchor_i: global_i,
                };
            }
            pace_until(
                self.start,
                Duration::from_nanos(self.due_ns(global_i) as u64),
            );
        }
        // One atomic load; re-clones the snapshot Arc only when the
        // controller published since the last check.
        if let Some(sr) = self.steer.as_mut() {
            sr.refresh();
        }
        if k > 0 {
            block.idx = (k / 256) as u64;
            if local.shed > 0 {
                self.flight
                    .record(FlightKind::ShedDrop, local.shed, block.idx);
            }
            if local.steer_dropped > 0 {
                self.flight
                    .record(FlightKind::SteerDrop, local.steer_dropped, block.idx);
            }
            self.queue.fold(local);
        }
        if let Some(tt) = self.trace.as_mut() {
            if k > 0 && block.sampled {
                tt.span_since(block.t0, "dispatch", "rxq");
            }
            block.sampled = tt.tick();
            if block.sampled {
                block.t0 = Instant::now();
            }
        }
        false
    }

    /// Arrival deadline of global packet `i` under the effective
    /// schedule: the run's [`PacePlan`] by default, or the live
    /// override's gap from its anchor when one is set.
    fn due_ns(&self, i: usize) -> f64 {
        if self.pace.bits == 0 {
            self.plan.due_ns(i)
        } else {
            self.pace.anchor_due + (i - self.pace.anchor_i) as f64 * f64::from_bits(self.pace.bits)
        }
    }

    /// Offer one digested packet: steering enforcement at dispatch
    /// (blacklisted flows drop here — prevention at the earliest point —
    /// and under load shedding only whitelisted flows pass; both are
    /// accounted per shard *and* per queue, so conservation includes
    /// them on both axes), then stage into the shard's batch buffer.
    fn offer(
        &self,
        dp: DigestedPacket,
        paced: bool,
        bufs: &mut [Vec<DigestedPacket>],
        local: &mut QueueLocal,
    ) {
        let s = shard_for_digest(dp.digest, bufs.len());
        if let Some(sr) = &self.steer {
            let snap = sr.current();
            if self.enforce_verdicts && snap.blacklist.contains(&dp.digest.0) {
                self.counters[s].steer_dropped.inc();
                local.steer_dropped += 1;
                return;
            }
            if snap.shed && !snap.whitelist.contains(&dp.digest.0) {
                self.counters[s].shed.inc();
                local.shed += 1;
                return;
            }
        }
        bufs[s].push(dp);
        if bufs[s].len() == self.batch {
            let batch = std::mem::replace(&mut bufs[s], self.pool.acquire());
            self.flush(s, batch, paced, local);
        }
    }

    /// End-of-stream tail shared by both dispatch paths — and by the
    /// graceful-drain path, which is the point: a drained dispatcher
    /// quiesces *exactly* like end-of-trace. Close the sampled trace
    /// span, flush every staged batch, send `Stop` down every lane
    /// (never dropped — blocks until a slot frees), record the final
    /// black-box deltas, fold the counters exactly, and hand the pools
    /// back for re-parking.
    fn finish(
        self,
        mut bufs: Vec<Vec<DigestedPacket>>,
        paced: bool,
        mut local: QueueLocal,
        block: BlockState,
        interrupted: bool,
    ) -> DispatchEnd {
        if block.sampled {
            if let Some(tt) = &self.trace {
                tt.span_since(block.t0, "dispatch", "rxq");
            }
        }
        for (s, buf) in bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let batch = std::mem::take(buf);
                self.flush(s, batch, paced, &mut local);
            }
            self.producers[s].push_blocking(ShardMsg::Stop);
        }
        if local.shed > 0 {
            self.flight
                .record(FlightKind::ShedDrop, local.shed, block.idx + 1);
        }
        if local.steer_dropped > 0 {
            self.flight
                .record(FlightKind::SteerDrop, local.steer_dropped, block.idx + 1);
        }
        self.queue.fold(&mut local);
        DispatchEnd {
            pool: self.pool,
            frames: self.frames,
            interrupted,
        }
    }

    fn flush(&self, s: usize, batch: Vec<DigestedPacket>, paced: bool, local: &mut QueueLocal) {
        let len = batch.len() as u64;
        let tx = &self.producers[s];
        let msg = ShardMsg::Batch(Batch {
            pkts: batch,
            sent: Instant::now(),
        });
        if paced {
            match tx.try_push(msg) {
                Ok(()) => {
                    self.counters[s].ingested.add(len);
                    local.ingested += len;
                }
                // Open loop: a full ring at arrival time is a loss, and
                // it is *accounted* — never silent. The buffer itself
                // goes straight back to the pool.
                Err(ShardMsg::Batch(b)) => {
                    self.counters[s].ingest_dropped.add(len);
                    local.ingest_dropped += len;
                    self.flight.record(FlightKind::IngestDrop, s as u64, len);
                    self.pool.give_back(b.pkts);
                }
                Err(ShardMsg::Stop) => unreachable!("flush only pushes batches"),
            }
        } else {
            tx.push_blocking(msg);
            self.counters[s].ingested.add(len);
            local.ingested += len;
        }
        // With R queues the gauge tracks this lane's depth (last writer
        // wins across queues; the peak gauge is a max, so it stays a
        // true high-water mark of any single lane).
        let depth = tx.len() as f64;
        self.counters[s].queue_depth.set(depth);
        self.counters[s].queue_depth_peak.set_max(depth);
    }
}

/// Observability wiring for the controller thread: its flight ring,
/// its optional trace track, and the shared decision-audit mirror that
/// live readers (`Engine::decisions`, `/stats.json`) poll mid-run.
struct CtrlObs {
    flight: FlightRing,
    trace: Option<ThreadTrace>,
    audit: Arc<Mutex<VecDeque<DecisionRecord>>>,
    audit_cap: usize,
    /// The engine's admin mailbox, drained once per epoch.
    admin: Arc<AdminQueue>,
    /// `runtime.admin.applied` — commands the controller acted on.
    admin_applied: Counter,
    /// `runtime.mem.rss_bytes` — sampled once per epoch so the soak
    /// harness gets a live residency trend without touching the engine.
    mem_rss: Gauge,
}

/// Stable numeric encoding of a FlowCache mode for flight-event args.
fn mode_code(m: Mode) -> u64 {
    match m {
        Mode::General => 0,
        Mode::Lite => 1,
    }
}

/// The controller thread body: one epoch per `epoch` period (or on
/// shutdown). Each epoch samples cumulative shard counters, drains the
/// verdict log and the heavy-hitter channel, feeds the pure
/// [`Controller`] state machine, applies its per-shard mode decisions
/// to the [`ModeCell`]s and publishes any new steering snapshot.
/// When `stop` is observed it runs one final epoch (counter tails +
/// late verdicts) and returns the report.
#[allow(clippy::too_many_arguments)]
fn controller_loop(
    mut ctrl: Controller,
    log: Arc<ControlLog>,
    reader: LogReader,
    heavy_rx: Receiver<(u64, u64)>,
    counters: Vec<ShardCounters>,
    host_processed: Counter,
    mode_cells: Vec<Arc<ModeCell>>,
    snap_cell: Arc<SnapshotCell<SteeringSnapshot>>,
    stop: Arc<AtomicBool>,
    epoch: Duration,
    mut obs: CtrlObs,
) -> ControlReport {
    let mut last = Instant::now();
    let mut prev_modes: Vec<Mode> = vec![Mode::General; counters.len()];
    let mut prev_shed = false;
    // Standing per-shard mode overrides (`AdminCmd::ForceMode`): a
    // controller-loop-local overlay applied *after* Algorithm 4 each
    // epoch, so releasing one hands the shard straight back to the
    // algorithm's current decision.
    let mut force_modes: Vec<Option<Mode>> = vec![None; counters.len()];
    loop {
        let done = stop.load(Ordering::Acquire);
        if !done {
            std::thread::park_timeout(epoch);
        }
        let now = Instant::now();
        let elapsed_secs = now.duration_since(last).as_secs_f64();
        last = now;
        obs.mem_rss.set(mem::rss_bytes() as f64);

        // Apply queued admin edits before the epoch decision: they
        // mutate the controller's private tables (marking it dirty), so
        // this epoch's snapshot publication carries them — the hot loop
        // only ever sees them through the RCU path.
        for cmd in obs.admin.drain() {
            let applied = match cmd {
                AdminCmd::BlacklistAdd(d) => {
                    ctrl.admin_blacklist_insert(d);
                    true
                }
                AdminCmd::BlacklistRemove(d) => {
                    ctrl.admin_blacklist_remove(d);
                    true
                }
                AdminCmd::WhitelistAdd(d) => {
                    ctrl.admin_whitelist_insert(d);
                    true
                }
                AdminCmd::WhitelistRemove(d) => {
                    ctrl.admin_whitelist_remove(d);
                    true
                }
                AdminCmd::ForceShed(f) => {
                    ctrl.admin_force_shed(f);
                    true
                }
                AdminCmd::ForceMode { shard, mode } => {
                    if let Some(slot) = force_modes.get_mut(shard) {
                        *slot = mode;
                        true
                    } else {
                        false
                    }
                }
            };
            if applied {
                obs.admin_applied.inc();
                obs.flight
                    .record(FlightKind::AdminEdit, cmd.code(), cmd.arg());
            }
        }

        // Escalation backlog: packets escalated but neither dropped at
        // the ring nor processed by the host yet. The pool is shared,
        // so every shard's sample carries the aggregate.
        let mut escalated = 0u64;
        let mut esc_dropped = 0u64;
        for c in &counters {
            escalated += c.escalated.get();
            esc_dropped += c.escalation_dropped.get();
        }
        let backlog = escalated
            .saturating_sub(esc_dropped)
            .saturating_sub(host_processed.get());

        let shards: Vec<ShardSample> = counters
            .iter()
            .map(|c| ShardSample {
                offered: c.ingested.get()
                    + c.ingest_dropped.get()
                    + c.shed.get()
                    + c.steer_dropped.get(),
                processed: c.processed.get(),
                shed: c.shed.get(),
                escalation_backlog: backlog,
            })
            .collect();
        let verdicts = log.poll(&reader);
        let mut heavy = Vec::new();
        while let Ok(h) = heavy_rx.try_recv() {
            heavy.push(h);
            if heavy.len() >= 16_384 {
                break;
            }
        }

        let decision = ctrl.epoch(&EpochInput {
            elapsed_secs,
            shards,
            verdicts,
            heavy,
        });
        // The effective modes are Algorithm 4's decision with any
        // standing admin overrides layered on top.
        let mut modes = decision.modes.clone();
        for (m, f) in modes.iter_mut().zip(&force_modes) {
            if let Some(forced) = f {
                *m = *forced;
            }
        }
        for (cell, &m) in mode_cells.iter().zip(&modes) {
            cell.set(m);
        }
        // Black-box the epoch's notable transitions before publishing:
        // per-shard mode flips, shed edges, promotions and evictions.
        let record = &decision.record;
        for (i, (&m, &p)) in modes.iter().zip(&prev_modes).enumerate() {
            if m != p {
                obs.flight
                    .record(FlightKind::ModeSwitch, i as u64, mode_code(m));
            }
        }
        prev_modes.clone_from(&modes);
        if record.shed != prev_shed {
            let kind = if record.shed {
                FlightKind::ShedOn
            } else {
                FlightKind::ShedOff
            };
            obs.flight.record(kind, record.epoch, record.max_backlog);
            prev_shed = record.shed;
        }
        if record.promotions > 0 {
            obs.flight
                .record(FlightKind::Promotion, record.promotions, record.epoch);
        }
        if record.whitelist_evictions > 0 {
            obs.flight.record(
                FlightKind::WhitelistEvict,
                record.whitelist_evictions,
                record.epoch,
            );
        }
        // Mirror the decision into the shared audit so live readers see
        // it without waiting for the final ControlReport.
        {
            let mut audit = obs.audit.lock().expect("decision audit poisoned");
            if audit.len() == obs.audit_cap {
                audit.pop_front();
            }
            audit.push_back(record.clone());
        }
        if let Some(snap) = decision.snapshot {
            snap_cell.publish(snap);
        }
        if let Some(tt) = obs.trace.as_mut() {
            if tt.tick() {
                tt.span_since(now, "epoch apply", "control");
            }
        }
        if done {
            log.release(reader);
            return ctrl.report();
        }
    }
}

/// Render a [`HistSnapshot`] as a JSON object — shared by
/// [`Engine::stats_json`] and the bench JSON artifacts.
pub fn hist_value(h: &HistSnapshot) -> Value {
    Value::Object(vec![
        ("count".into(), Value::Number(Number::U(h.count))),
        ("sum".into(), Value::Number(Number::U(h.sum))),
        ("min".into(), Value::Number(Number::U(h.min))),
        ("max".into(), Value::Number(Number::U(h.max))),
        ("mean".into(), Value::Number(Number::F(h.mean))),
        ("p50".into(), Value::Number(Number::U(h.p50))),
        ("p90".into(), Value::Number(Number::U(h.p90))),
        ("p99".into(), Value::Number(Number::U(h.p99))),
        ("p999".into(), Value::Number(Number::U(h.p999))),
    ])
}

/// Render a controller [`DecisionRecord`] as a JSON object — shared by
/// [`Engine::stats_json`] and the bench control timeline.
pub fn decision_value(d: &DecisionRecord) -> Value {
    Value::Object(vec![
        ("epoch".into(), Value::Number(Number::U(d.epoch))),
        (
            "offered_mpps".into(),
            Value::Number(Number::F(d.offered_mpps)),
        ),
        (
            "smoothed_mpps".into(),
            Value::Array(
                d.smoothed_mpps
                    .iter()
                    .map(|&f| Value::Number(Number::F(f)))
                    .collect(),
            ),
        ),
        (
            "max_backlog".into(),
            Value::Number(Number::U(d.max_backlog)),
        ),
        (
            "modes".into(),
            Value::Array(
                d.modes
                    .iter()
                    .map(|m| Value::String(m.label().into()))
                    .collect(),
            ),
        ),
        ("shed".into(), Value::Bool(d.shed)),
        ("promotions".into(), Value::Number(Number::U(d.promotions))),
        (
            "whitelist_evictions".into(),
            Value::Number(Number::U(d.whitelist_evictions)),
        ),
        (
            "whitelist_len".into(),
            Value::Number(Number::U(d.whitelist_len as u64)),
        ),
        (
            "blacklist_len".into(),
            Value::Number(Number::U(d.blacklist_len as u64)),
        ),
        (
            "snapshot_published".into(),
            Value::Bool(d.snapshot_published),
        ),
    ])
}

/// Per-RX-queue dispatcher counters, registered as
/// `runtime.queue.*{queue=Q}`.
#[derive(Clone)]
pub(crate) struct QueueCounters {
    /// Packets of the offered trace assigned to this queue.
    pub offered: Counter,
    /// Packets this queue enqueued onto its shard lanes.
    pub ingested: Counter,
    /// Packets dropped at this queue's lanes (full ring, paced mode).
    pub ingest_dropped: Counter,
    /// Packets this queue shed under controller load shedding.
    pub shed: Counter,
    /// Packets this queue dropped on the steering blacklist.
    pub steer_dropped: Counter,
}

impl QueueCounters {
    fn registered(reg: &Registry, queue: usize) -> QueueCounters {
        let q = queue.to_string();
        let l: &[(&str, &str)] = &[("queue", &q)];
        QueueCounters {
            offered: reg.counter("runtime.queue.offered", l),
            ingested: reg.counter("runtime.queue.ingested", l),
            ingest_dropped: reg.counter("runtime.queue.ingest_dropped", l),
            shed: reg.counter("runtime.queue.shed", l),
            steer_dropped: reg.counter("runtime.queue.steer_dropped", l),
        }
    }

    fn snapshot(&self) -> QueueStats {
        QueueStats {
            offered: self.offered.get(),
            ingested: self.ingested.get(),
            ingest_dropped: self.ingest_dropped.get(),
            shed: self.shed.get(),
            steer_dropped: self.steer_dropped.get(),
        }
    }

    /// Fold a dispatcher's plain-integer tallies into the shared
    /// atomics and reset them — called at checkpoints (live visibility)
    /// and at end of stream (exactness).
    fn fold(&self, local: &mut QueueLocal) {
        if local.offered > 0 {
            self.offered.add(local.offered);
        }
        if local.ingested > 0 {
            self.ingested.add(local.ingested);
        }
        if local.ingest_dropped > 0 {
            self.ingest_dropped.add(local.ingest_dropped);
        }
        if local.shed > 0 {
            self.shed.add(local.shed);
        }
        if local.steer_dropped > 0 {
            self.steer_dropped.add(local.steer_dropped);
        }
        *local = QueueLocal::default();
    }
}

/// Frozen per-RX-queue dispatcher statistics (the report view). The
/// queue-local conservation law is
/// `offered = ingested + ingest_dropped + shed + steer_dropped`.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Packets of the offered trace assigned to this queue by RSS.
    pub offered: u64,
    /// Packets enqueued onto this queue's shard lanes.
    pub ingested: u64,
    /// Packets dropped at full lanes (paced mode).
    pub ingest_dropped: u64,
    /// Packets shed under controller load shedding.
    pub shed: u64,
    /// Packets dropped on the steering blacklist.
    pub steer_dropped: u64,
}

/// Aggregate per-stage wall-clock distributions.
#[derive(Clone, Copy, Debug)]
pub struct StageSnapshot {
    /// Batch wait between dispatcher enqueue and shard dequeue, ns.
    pub queue_ns: HistSnapshot,
    /// FlowCache stage per sampled packet, ns.
    pub cache_ns: HistSnapshot,
    /// Detector-suite stage per sampled packet, ns.
    pub detect_ns: HistSnapshot,
    /// Host-escalation round trip (shard hand-off → verdict published),
    /// ns. Inline triage records its synchronous call here.
    pub escalate_ns: HistSnapshot,
    /// Delivered batch sizes, packets.
    pub batch_pkts: HistSnapshot,
}

/// Aggregate FlowCache behaviour across every shard partition: the
/// hit mix, the tag-filtered probe-length distribution, and how much
/// memory-level parallelism the batched lookup path actually achieved.
/// Every field is an exact counter summed over shards (no wall-clock
/// values), but the totals depend on how RSS split the trace, so this
/// section stays out of [`EngineReport::deterministic_summary`].
#[derive(Clone, Debug, Default)]
pub struct FlowCacheSummary {
    /// Configured lookup burst width (`EngineConfig::cache_burst`;
    /// `<= 1` means the per-packet reference path ran).
    pub burst: usize,
    /// Primary-buffer hits.
    pub p_hits: u64,
    /// Eviction-buffer hits.
    pub e_hits: u64,
    /// Misses (new-flow insertions).
    pub misses: u64,
    /// Fully-pinned-row escalations.
    pub to_host: u64,
    /// Records pushed to eviction rings by packet-path accesses.
    pub ring_pushes: u64,
    /// Probe-length histogram: slot `i` counts accesses that probed
    /// exactly `i` buckets (last slot absorbs longer probes).
    pub probe_hist: [u64; PROBE_HIST_SLOTS],
    /// Prefetch bursts issued by the batched path.
    pub bursts: u64,
    /// Packets covered by those bursts.
    pub burst_pkts: u64,
}

impl FlowCacheSummary {
    fn aggregate(burst: usize, ends: &[ShardEndState]) -> FlowCacheSummary {
        let mut out = FlowCacheSummary {
            burst,
            ..FlowCacheSummary::default()
        };
        for e in ends {
            out.p_hits += e.cache_mix.p_hits;
            out.e_hits += e.cache_mix.e_hits;
            out.misses += e.cache_mix.misses;
            out.to_host += e.cache_mix.to_host;
            out.ring_pushes += e.cache_mix.ring_pushes;
            for (acc, v) in out.probe_hist.iter_mut().zip(e.probe_hist) {
                *acc += v;
            }
            out.bursts += e.bursts;
            out.burst_pkts += e.burst_pkts;
        }
        out
    }

    /// Total packet-path cache accesses.
    pub fn accesses(&self) -> u64 {
        self.p_hits + self.e_hits + self.misses + self.to_host
    }

    /// Hit rate over cache-processed packets (to-host escalations
    /// excluded, matching `CacheStats::hit_rate`).
    pub fn hit_rate(&self) -> f64 {
        let p = self.p_hits + self.e_hits + self.misses;
        if p == 0 {
            0.0
        } else {
            (self.p_hits + self.e_hits) as f64 / p as f64
        }
    }

    /// Mean probe length per access, in buckets.
    pub fn mean_probe_len(&self) -> f64 {
        let (mut n, mut sum) = (0u64, 0u64);
        for (len, &count) in self.probe_hist.iter().enumerate() {
            n += count;
            sum += count * len as u64;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Mean packets per prefetch burst — how deep the memory-level
    /// parallel pipeline actually ran (`<= burst`; short tails and
    /// sub-burst groups drag it down).
    pub fn mean_burst_depth(&self) -> f64 {
        if self.bursts == 0 {
            0.0
        } else {
            self.burst_pkts as f64 / self.bursts as f64
        }
    }
}

/// Everything `Engine::run` measured.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Packets offered to the dispatcher.
    pub offered: u64,
    /// Wall-clock time from first dispatch to last shard joined (the
    /// drain included).
    pub elapsed: Duration,
    /// Per-shard statistics.
    pub shards: Vec<ShardStats>,
    /// Per-RX-queue dispatcher statistics, in queue order (canonical:
    /// queue 0 first — merge order never depends on thread timing).
    pub queues: Vec<QueueStats>,
    /// Escalated packets processed by the host tier (pool or inline).
    pub host_processed: u64,
    /// Verdicts published to the control log.
    pub verdicts_published: u64,
    /// True when the run stopped on a graceful-drain request instead of
    /// end-of-trace. `offered` then reflects what the dispatchers
    /// actually offered before stopping, so conservation still holds.
    pub interrupted: bool,
    /// Verdict-log entries still resident (slowest reader's lag) at
    /// mesh quiesce, before the controller's final drain — the soak
    /// harness trends this for leak detection.
    pub log_buffered: u64,
    /// Control-plane report (present when the engine ran with a
    /// controller attached).
    pub control: Option<ControlReport>,
    /// Per-stage latency/size distributions.
    pub stage: StageSnapshot,
    /// Aggregate FlowCache behaviour (hit mix, probe lengths, batch
    /// pipeline depth) summed across shard partitions.
    pub flowcache: FlowCacheSummary,
}

impl EngineReport {
    /// Packets fully processed across all shards.
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Packets dropped at ingest across all shards.
    pub fn ingest_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.ingest_dropped).sum()
    }

    /// Packets shed at dispatch under controller load shedding.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Packets dropped at dispatch by the steering blacklist.
    pub fn steer_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.steer_dropped).sum()
    }

    /// Packets escalated to the host tier.
    pub fn escalated(&self) -> u64 {
        self.shards.iter().map(|s| s.escalated).sum()
    }

    /// Escalations dropped at the host ring.
    pub fn escalation_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.escalation_dropped).sum()
    }

    /// Idle-loop parks across all shards (wall-clock dependent; excluded
    /// from [`EngineReport::deterministic_summary`]).
    pub fn idle_parks(&self) -> u64 {
        self.shards.iter().map(|s| s.idle_parks).sum()
    }

    /// Wall-clock throughput in million packets per second, over
    /// *processed* packets (drops excluded).
    pub fn mpps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.processed() as f64 / secs / 1e6
        }
    }

    /// Ingest drop fraction of offered packets.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.ingest_dropped() as f64 / self.offered as f64
        }
    }

    /// RX dispatcher queues the run used.
    pub fn rx_queues(&self) -> usize {
        self.queues.len()
    }

    /// The conservation invariant: every offered packet is either
    /// processed by exactly one shard or dropped with accounting
    /// (ingest overrun, load shed, or steering blacklist) — and the
    /// books balance on *both* axes of the mesh: per shard
    /// (`ingested = processed`) and per RX queue
    /// (`offered = ingested + ingest_dropped + shed + steer_dropped`),
    /// with the two sides agreeing on the totals.
    pub fn conserved(&self) -> bool {
        let shard_ingested: u64 = self.shards.iter().map(|s| s.ingested).sum();
        let shards_ok = shard_ingested + self.ingest_dropped() + self.shed() + self.steer_dropped()
            == self.offered
            && self.shards.iter().all(|s| s.ingested == s.processed);
        let queue_offered: u64 = self.queues.iter().map(|q| q.offered).sum();
        let queue_ingested: u64 = self.queues.iter().map(|q| q.ingested).sum();
        let queues_ok = self
            .queues
            .iter()
            .all(|q| q.offered == q.ingested + q.ingest_dropped + q.shed + q.steer_dropped)
            && queue_offered == self.offered
            && queue_ingested == shard_ingested;
        shards_ok && queues_ok
    }

    /// A byte-stable rendering of every *deterministic* quantity (exact
    /// counters; no wall-clock values). With one shard, inline triage
    /// (`host_workers = 0`) and the ordered lane merge, two same-seed
    /// runs produce identical strings *at any `rx_queues`* — the
    /// determinism tests diff exactly this. Per-shard lines merge the R
    /// queues' contributions canonically (each counter is the order-free
    /// sum over queues); per-queue breakdowns deliberately stay out of
    /// this rendering — they live in [`EngineReport::queues`] — because
    /// printing them would make the byte output depend on R.
    pub fn deterministic_summary(&self) -> String {
        let mut out = format!("offered={}\n", self.offered);
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "shard{i}: ingested={} dropped={} shed={} steer_dropped={} processed={} \
                 verdict_dropped={} fast_path={} escalated={} escalation_dropped={} \
                 ctrl_applied={} alerts={} blacklisted={} whitelisted={} cache_resident={}\n",
                s.ingested,
                s.ingest_dropped,
                s.shed,
                s.steer_dropped,
                s.processed,
                s.verdict_dropped,
                s.fast_path,
                s.escalated,
                s.escalation_dropped,
                s.ctrl_applied,
                s.alerts,
                s.blacklisted,
                s.whitelisted,
                s.cache_resident,
            ));
        }
        out.push_str(&format!(
            "host_processed={} verdicts={}\n",
            self.host_processed, self.verdicts_published
        ));
        out
    }
}
