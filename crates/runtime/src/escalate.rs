//! The host-side escalation tier: a worker pool generalising
//! [`smartwatch_host::NfWorker`] from one thread to N, fed by a bounded
//! MPSC channel that every shard shares.
//!
//! The paper bounds host escalation at ≤ 16% of packets (§3.4); the
//! engine enforces the same shape with a bounded channel — when host
//! workers fall behind, shards count `escalation_dropped` instead of
//! blocking the data path. Worker verdicts are published into the
//! [`ControlLog`](crate::control::ControlLog) with an epoch stamp, from
//! where shards apply them at batch boundaries.

use crate::control::ControlLog;
use crate::obs::TraceSpec;
use smartwatch_host::{HostNf, Verdict};
use smartwatch_net::{FlowKey, Packet};
use smartwatch_telemetry::{Counter, Histogram};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::mpsc::{sync_channel, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The engine's default host NF: per-source escalation triage.
///
/// Every escalated packet charges its source address; once a source has
/// crossed `threshold` escalations it is considered hostile and each of
/// its flows is blacklisted on first sight after that point. This is a
/// deliberately simple stand-in for the heavyweight host analyzers (Zeek
/// scripts, the timing wheel) — the point in the runtime is the
/// escalate→verdict→enforce round trip, not the verdict logic.
pub struct TriageNf {
    threshold: u64,
    seen: HashMap<Ipv4Addr, u64>,
    issued: HashSet<FlowKey>,
}

impl TriageNf {
    /// Triage flagging sources after `threshold` escalated packets.
    pub fn new(threshold: u64) -> TriageNf {
        TriageNf {
            threshold: threshold.max(1),
            seen: HashMap::new(),
            issued: HashSet::new(),
        }
    }
}

impl HostNf for TriageNf {
    fn on_packet(&mut self, pkt: &Packet) -> Vec<Verdict> {
        let count = self.seen.entry(pkt.key.src_ip).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            let canon = pkt.key.canonical().0;
            if self.issued.insert(canon) {
                return vec![Verdict::Blacklist(canon)];
            }
        }
        Vec::new()
    }

    fn name(&self) -> &str {
        "triage"
    }
}

/// One escalated packet in flight to the host tier, stamped with the
/// instant the shard handed it off so the host worker can account the
/// full shard→host round-trip latency (`runtime.stage.escalate_ns`).
pub(crate) struct Escalated {
    pub pkt: Packet,
    pub sent: Instant,
}

/// Observation sinks for the host pool: the escalation round-trip
/// histogram plus (optionally) sampled per-worker trace tracks.
#[derive(Clone)]
pub struct HostObs {
    escalate_ns: Histogram,
    trace: Option<TraceSpec>,
}

impl HostObs {
    /// An observation sink that records into nothing — for standalone
    /// pools and tests that don't care about latency accounting.
    pub fn detached() -> HostObs {
        HostObs {
            escalate_ns: Histogram::new(),
            trace: None,
        }
    }

    pub(crate) fn new(escalate_ns: Histogram, trace: Option<TraceSpec>) -> HostObs {
        HostObs { escalate_ns, trace }
    }
}

/// A pool of host NF workers draining one bounded escalation channel.
pub struct HostPool {
    tx: Option<SyncSender<Escalated>>,
    handles: Vec<JoinHandle<()>>,
    /// Escalated packets actually processed by a host worker.
    pub processed: Counter,
}

impl HostPool {
    /// Spawn `workers` threads, each owning its own NF built by
    /// `make_nf(worker_idx)`. `queue` bounds in-flight escalations across
    /// the whole pool (the SR-IOV RX ring stand-in). Verdicts go straight
    /// to `log`; round-trip latencies land in `obs`.
    pub fn spawn<F>(
        workers: usize,
        queue: usize,
        log: Arc<ControlLog>,
        processed: Counter,
        obs: HostObs,
        make_nf: F,
    ) -> HostPool
    where
        F: Fn(usize) -> Box<dyn HostNf>,
    {
        assert!(workers >= 1, "pool needs at least one worker");
        let (tx, rx) = sync_channel::<Escalated>(queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let log = Arc::clone(&log);
                let mut nf = make_nf(w);
                let processed = processed.clone();
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("sw-host-{w}"))
                    .spawn(move || {
                        let mut trace =
                            obs.trace.as_ref().map(|s| s.thread(format!("sw-host-{w}")));
                        let mut backoff = crate::batch::Backoff::new();
                        loop {
                            // Hold the receiver lock only for the non-blocking
                            // poll, so workers interleave rather than convoy.
                            let next = rx.lock().expect("pool receiver poisoned").try_recv();
                            match next {
                                Ok(esc) => {
                                    backoff.reset();
                                    processed.inc();
                                    for v in nf.on_packet(&esc.pkt) {
                                        log.publish(v);
                                    }
                                    // The full shard→verdict round trip,
                                    // queueing included.
                                    let rt = esc.sent.elapsed().as_nanos() as u64;
                                    obs.escalate_ns.record(rt);
                                    if let Some(tt) = trace.as_mut() {
                                        if tt.tick() {
                                            tt.span_at(
                                                esc.sent,
                                                rt,
                                                "escalation round-trip",
                                                "host",
                                            );
                                        }
                                    }
                                }
                                // Same spin→yield→park backoff as the shards:
                                // an idle host worker must not burn a core.
                                Err(TryRecvError::Empty) => {
                                    backoff.idle();
                                }
                                Err(TryRecvError::Disconnected) => return,
                            }
                        }
                    })
                    .expect("spawn host worker")
            })
            .collect();
        HostPool {
            tx: Some(tx),
            handles,
            processed,
        }
    }

    /// Enqueue one escalated packet; `false` means the pool ring was full
    /// (the caller must count the drop — never silent).
    pub fn try_send(&self, pkt: Packet) -> bool {
        self.tx.as_ref().is_some_and(|tx| {
            tx.try_send(Escalated {
                pkt,
                sent: Instant::now(),
            })
            .is_ok()
        })
    }

    /// A sender clone for a shard thread to own. The pool still shuts
    /// down cleanly only once every clone is dropped, so shards must be
    /// joined before `shutdown()` — the engine does exactly that.
    pub(crate) fn sender(&self) -> SyncSender<Escalated> {
        self.tx.as_ref().expect("pool already shut down").clone()
    }

    /// Close the channel, let workers drain every queued escalation, and
    /// join them. Verdicts published during the drain land in the log.
    pub fn shutdown(mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HostPool {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartwatch_net::{PacketBuilder, Ts};

    fn pkt(src_octet: u8, dport: u16) -> Packet {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, src_octet),
            40_000 + u16::from(src_octet),
            Ipv4Addr::new(10, 0, 1, 1),
            dport,
        );
        PacketBuilder::new(key, Ts::ZERO).build()
    }

    #[test]
    fn triage_blacklists_after_threshold_once_per_flow() {
        let mut nf = TriageNf::new(3);
        assert!(nf.on_packet(&pkt(1, 22)).is_empty());
        assert!(nf.on_packet(&pkt(1, 22)).is_empty());
        let v = nf.on_packet(&pkt(1, 22));
        assert_eq!(v.len(), 1, "third escalation crosses the threshold");
        assert!(matches!(v[0], Verdict::Blacklist(_)));
        assert!(
            nf.on_packet(&pkt(1, 22)).is_empty(),
            "same flow blacklisted once"
        );
        let other_flow = nf.on_packet(&pkt(1, 23));
        assert_eq!(other_flow.len(), 1, "new flow from a hostile source");
    }

    #[test]
    fn pool_processes_everything_and_publishes_verdicts() {
        let log = Arc::new(ControlLog::new());
        let hist = Histogram::new();
        let pool = HostPool::spawn(
            2,
            256,
            Arc::clone(&log),
            Counter::detached(),
            HostObs::new(hist.clone(), None),
            |_| Box::new(TriageNf::new(1)),
        );
        let mut sent = 0u64;
        for i in 0..100u8 {
            if pool.try_send(pkt(i, 22)) {
                sent += 1;
            }
        }
        assert_eq!(sent, 100, "queue of 256 never fills here");
        let processed = pool.processed.clone();
        pool.shutdown();
        assert_eq!(processed.get(), 100, "shutdown drains the queue");
        // threshold=1 and distinct flows ⇒ one blacklist per packet.
        assert_eq!(log.len(), 100);
        assert_eq!(hist.count(), 100, "every escalation records a round-trip");
        assert!(hist.max() > 0, "round-trip latency is a real duration");
    }

    #[test]
    fn full_pool_ring_rejects_without_blocking() {
        struct Stuck;
        impl HostNf for Stuck {
            fn on_packet(&mut self, _pkt: &Packet) -> Vec<Verdict> {
                std::thread::sleep(std::time::Duration::from_millis(250));
                Vec::new()
            }
            fn name(&self) -> &str {
                "stuck"
            }
        }
        let log = Arc::new(ControlLog::new());
        let pool = HostPool::spawn(1, 2, log, Counter::detached(), HostObs::detached(), |_| {
            Box::new(Stuck)
        });
        let mut rejected = false;
        for i in 0..64u8 {
            if !pool.try_send(pkt(i, 22)) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "bounded escalation ring must reject when full");
    }
}
