//! Fixed-capacity frame buffers for the wire ingest path — the RX-ring
//! model of the zero-copy data plane.
//!
//! When the engine replays packed wire frames
//! ([`smartwatch_net::FrameStore`]), each dispatcher "receives" bursts
//! of frames into a [`FramePool`]: an arena of fixed-capacity slots the
//! dispatcher loads raw bytes into (the software stand-in for NIC DMA
//! into pre-posted RX descriptors), parses in place with
//! [`smartwatch_net::FrameView`], digests, and releases. Slots recycle
//! through a free list, so after the first burst warms the pool up the
//! steady state allocates nothing per frame — the same zero-growth
//! discipline as the batch [`crate::batch::BufferPool`], pinned by the
//! same style of telemetry test (`runtime.frame_pool.allocated` /
//! `runtime.frame_pool.recycled`).

use smartwatch_telemetry::{Counter, Registry};

/// Handle to one loaded frame slot. Move-only: releasing consumes it,
/// so a slot cannot be freed twice or read after release.
#[derive(Debug)]
pub struct FrameSlot(u32);

/// An arena of fixed-capacity frame buffers with a free-list recycle
/// path.
///
/// Owned by one dispatcher (no sharing, no atomics on the frame path —
/// only the telemetry counters are shared). The arena grows by one slot
/// on every free-list miss (counted in `allocated`) and never shrinks;
/// hits count as `recycled`. A dispatcher that releases every slot it
/// loads therefore allocates only during its first burst.
pub struct FramePool {
    arena: Vec<u8>,
    lens: Vec<u32>,
    free: Vec<u32>,
    frame_cap: usize,
    /// Fresh slot allocations (free-list misses).
    pub allocated: Counter,
    /// Slots reused from the free list (hits).
    pub recycled: Counter,
}

impl FramePool {
    /// Pool of `frame_cap`-byte slots, publishing
    /// `runtime.frame_pool.*` into `registry`. Slots materialise on
    /// demand; `frame_cap` must cover the largest frame that will be
    /// loaded (e.g. [`smartwatch_net::FrameStore::max_frame_len`]).
    pub fn new(frame_cap: usize, registry: &Registry) -> FramePool {
        FramePool {
            arena: Vec::new(),
            lens: Vec::new(),
            free: Vec::new(),
            frame_cap: frame_cap.max(1),
            allocated: registry.counter("runtime.frame_pool.allocated", &[]),
            recycled: registry.counter("runtime.frame_pool.recycled", &[]),
        }
    }

    /// Slot capacity in bytes.
    pub fn frame_cap(&self) -> usize {
        self.frame_cap
    }

    /// Load (copy) `frame` into a slot — the DMA step of the RX model.
    /// Recycles a free slot when one exists, grows the arena otherwise.
    pub fn load(&mut self, frame: &[u8]) -> FrameSlot {
        assert!(
            frame.len() <= self.frame_cap,
            "frame of {} bytes exceeds the {}-byte slot capacity",
            frame.len(),
            self.frame_cap
        );
        let slot = match self.free.pop() {
            Some(s) => {
                self.recycled.inc();
                s
            }
            None => {
                let s = self.lens.len() as u32;
                self.arena.resize(self.arena.len() + self.frame_cap, 0);
                self.lens.push(0);
                self.allocated.inc();
                s
            }
        };
        let start = slot as usize * self.frame_cap;
        self.arena[start..start + frame.len()].copy_from_slice(frame);
        self.lens[slot as usize] = frame.len() as u32;
        FrameSlot(slot)
    }

    /// Borrow the bytes of a loaded slot.
    #[inline]
    pub fn frame(&self, slot: &FrameSlot) -> &[u8] {
        let start = slot.0 as usize * self.frame_cap;
        &self.arena[start..start + self.lens[slot.0 as usize] as usize]
    }

    /// Return a slot to the free list.
    pub fn release(&mut self, slot: FrameSlot) {
        self.free.push(slot.0);
    }

    /// Slots currently materialised in the arena (allocated − never
    /// freed; the high-water mark of concurrently loaded frames).
    pub fn slots(&self) -> usize {
        self.lens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_pool_recycles_without_growth_after_warmup() {
        let reg = Registry::new();
        let mut pool = FramePool::new(128, &reg);

        // Warm-up: the first burst of an empty pool must allocate.
        let mut in_flight: Vec<FrameSlot> = (0..8u8).map(|i| pool.load(&[i; 64])).collect();
        let warmup_allocs = pool.allocated.get();
        assert_eq!(warmup_allocs, 8);
        assert_eq!(pool.slots(), 8);

        // Steady state: release/load cycles — zero growth.
        for round in 0..1000u32 {
            let slot = in_flight.pop().expect("slot available");
            pool.release(slot);
            let slot = pool.load(&[(round % 251) as u8; 96]);
            assert_eq!(pool.frame(&slot).len(), 96);
            in_flight.push(slot);
        }
        assert_eq!(
            pool.allocated.get(),
            warmup_allocs,
            "steady state must not allocate"
        );
        assert_eq!(pool.recycled.get(), 1000);
        assert_eq!(pool.slots(), 8, "arena never grew past the warm-up");
    }

    #[test]
    fn loaded_frames_read_back_exactly_at_varying_lengths() {
        let reg = Registry::new();
        let mut pool = FramePool::new(256, &reg);
        for len in [1usize, 54, 96, 255, 256] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let slot = pool.load(&data);
            assert_eq!(pool.frame(&slot), &data[..]);
            pool.release(slot);
        }
        // A longer frame loaded into a recycled slot masks the old
        // contents entirely.
        let a = pool.load(&[0xAA; 200]);
        pool.release(a);
        let b = pool.load(&[0xBB; 10]);
        assert_eq!(pool.frame(&b), &[0xBB; 10]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_frame_panics() {
        let reg = Registry::new();
        let mut pool = FramePool::new(64, &reg);
        pool.load(&[0; 65]);
    }
}
