//! `smartwatch-runtime` — the sharded wall-clock data-plane engine.
//!
//! Everything else in the workspace runs under simulated time: traces
//! carry their own timestamps and components advance a virtual clock.
//! This crate executes the same pipeline — ingest → RSS shard →
//! FlowCache update → detector suite → host escalation → verdict — on
//! real OS threads at wall-clock speed, measured in Mpps.
//!
//! Layout:
//!
//! * `batch` — the hot-path currency: pre-digested packets (canonical
//!   key + symmetric hash computed once at dispatch), pooled batch
//!   buffers recycled shard→dispatcher, and the bounded idle backoff.
//! * [`frame`] — fixed-capacity frame buffers ([`FramePool`]) for the
//!   zero-copy wire ingest path: dispatchers load raw frames into pooled
//!   slots (the software RX-ring), parse them in place with
//!   [`smartwatch_net::FrameView`] and recycle the slots —
//!   allocation-free in steady state.
//! * [`spsc`] — bounded single-producer/single-consumer batch queues
//!   with explicit backpressure or accounted drops (never silent loss).
//! * [`control`] — the epoch-stamped verdict log fanning host decisions
//!   back to every shard at batch boundaries. Bounded: the applied
//!   prefix compacts away once every registered reader is past it.
//! * [`escalate`] — the host-side worker pool (a multi-threaded
//!   generalisation of [`smartwatch_host::NfWorker`]) plus the default
//!   [`TriageNf`] escalation triage.
//! * [`shard`] — the per-thread worker: one FlowCache partition, one
//!   detector suite, no cross-shard synchronisation on the packet path.
//!   Ingest arrives over R lanes merged under a [`MergePolicy`].
//! * [`engine`] — the [`Engine`]: R RX-queue dispatchers
//!   ([`EngineConfig::rx_queues`], the multi-queue NIC model) feeding
//!   the shards over an R×N mesh of SPSC lanes, pacing ([`Pace`]),
//!   graceful drain, and the merged [`EngineReport`]. A second thread
//!   topology, [`DatapathMode::Rtc`], fuses dispatcher and shard into
//!   C run-to-completion `sw-core-{i}` threads (pre-split by
//!   `shard_for_digest`, zero queue crossings on the fast path,
//!   optional [`EngineConfig::pin_cores`] CPU affinity) with decisions
//!   and counters identical to the mesh for the same seed.
//!
//! Every RSS dispatcher uses the *symmetric* shard mapping
//! [`smartwatch_net::hash::shard_for_digest`] over the dispatch-time
//! digest, so both directions of a flow always land on the same shard
//! and per-shard state needs no locks. The trace splits across the R
//! queues by [`smartwatch_net::hash::queue_for_digest`] — a salted
//! splitmix64 remix, flow-affine and statistically independent of the
//! shard mapping.
//!
//! Telemetry flows through [`smartwatch_telemetry`]: per-shard counters
//! (`runtime.shard.*{shard=N}`), per-queue dispatcher counters
//! (`runtime.queue.*{queue=Q}`), queue-depth gauges, and aggregate
//! per-stage latency histograms (`runtime.stage.*`).
//!
//! In service mode the engine stays resident across segments:
//! [`service`] carries the bounded admin mailbox ([`AdminCmd`]) drained
//! by the controller at epoch boundaries, [`Engine::request_drain`]
//! quiesces a running segment gracefully, and batch/frame pools (plus,
//! under [`EngineConfig::carry_flow_state`], the per-shard FlowCaches)
//! are parked between runs so steady state allocates nothing.
//!
//! With [`EngineConfig::with_control`] the engine additionally runs the
//! [`smartwatch_control`] adaptive control plane: a controller thread
//! closes the paper's feedback loop each epoch — Algorithm 4 mode
//! switching applied to the live per-shard FlowCaches, heavy-hitter
//! whitelist promotion, RCU-published steering snapshots enforced at
//! dispatch, and hysteretic load shedding with accounted drops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod batch;
pub mod control;
pub mod engine;
pub mod escalate;
pub mod frame;
pub(crate) mod obs;
pub mod service;
pub mod shard;
pub mod spsc;

pub use control::{ControlLog, LogReader};
pub use engine::{
    decision_value, hist_value, DatapathMode, Engine, EngineConfig, EngineReport, FlowCacheSummary,
    FrameSource, Pace, QueueStats, StageSnapshot,
};
pub use escalate::{HostObs, HostPool, TriageNf};
pub use frame::{FramePool, FrameSlot};
pub use service::AdminCmd;
pub use shard::{MergePolicy, ShardCounters, ShardStats};
pub use smartwatch_control::{ControlConfig, ControlEvent, ControlReport, DecisionRecord};
