//! Observability plumbing for the wall-clock engine: sampled per-thread
//! chrome-trace spans and the flight-recorder wiring.
//!
//! Tracing here is *wall-clock*: the engine anchors one
//! [`WallAnchor`] at `run()` entry and every thread maps its
//! `Instant`s onto the shared trace axis through it, so dispatcher,
//! shard, host-worker and controller tracks line up in Perfetto.
//! Spans are sampled 1-in-N units of work (batches, escalations,
//! dispatch blocks) with the counter starting at zero — the *first*
//! unit on every thread is always sampled, so every live thread owns
//! at least one span in the output regardless of N.

use smartwatch_net::Dur;
use smartwatch_telemetry::{TraceShard, Tracer, WallAnchor};
use std::time::Instant;

/// The run-wide tracing recipe an engine hands to each thread: the
/// shared [`Tracer`], the run's wall-clock anchor, and the 1-in-N
/// sampling period. Cheap to clone; `None`-like when tracing is off
/// (the engine simply doesn't build one).
#[derive(Clone)]
pub(crate) struct TraceSpec {
    pub tracer: Tracer,
    pub anchor: WallAnchor,
    /// Sample every `every`-th unit of work (≥ 1).
    pub every: u64,
}

impl TraceSpec {
    /// Open a named per-thread track with its own sampling counter.
    pub fn thread(&self, name: impl Into<String>) -> ThreadTrace {
        ThreadTrace {
            shard: self.tracer.shard(name),
            anchor: self.anchor,
            every: self.every.max(1),
            count: 0,
        }
    }
}

/// One thread's sampled tracing handle: a chrome-trace track plus a
/// local 1-in-N sampler. Not shared — each OS thread owns its own, so
/// the sampling counter is a plain integer.
pub(crate) struct ThreadTrace {
    shard: TraceShard,
    anchor: WallAnchor,
    every: u64,
    count: u64,
}

impl ThreadTrace {
    /// Advance the sampler; `true` means the unit of work that is about
    /// to start (or just finished) should emit spans. The first call
    /// always returns `true`.
    pub fn tick(&mut self) -> bool {
        let hit = self.count.is_multiple_of(self.every);
        self.count += 1;
        hit
    }

    /// Emit a complete span from `t0` until now.
    pub fn span_since(&self, t0: Instant, name: impl Into<String>, cat: &'static str) {
        let (ts, dur) = self.anchor.span_since(t0);
        self.shard.span(ts, dur, name, cat);
    }

    /// Emit a span that started at `at` and lasted `dur_ns` — for
    /// durations measured elsewhere (e.g. a batch's lane wait, whose
    /// start instant the *dispatcher* stamped).
    pub fn span_at(&self, at: Instant, dur_ns: u64, name: impl Into<String>, cat: &'static str) {
        self.shard
            .span(self.anchor.ts_of(at), Dur::from_nanos(dur_ns), name, cat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_unit_is_always_sampled() {
        let spec = TraceSpec {
            tracer: Tracer::new(16),
            anchor: WallAnchor::new(),
            every: 64,
        };
        let mut tt = spec.thread("t");
        assert!(tt.tick(), "unit 0 sampled regardless of period");
        for _ in 0..63 {
            assert!(!tt.tick());
        }
        assert!(tt.tick(), "unit 64 sampled at period 64");
    }

    #[test]
    fn spans_land_on_the_named_track() {
        let tracer = Tracer::new(16);
        let spec = TraceSpec {
            tracer: tracer.clone(),
            anchor: WallAnchor::new(),
            every: 1,
        };
        let tt = spec.thread("sw-test-0");
        let t0 = Instant::now();
        tt.span_since(t0, "work", "test");
        tt.span_at(t0, 1234, "wait", "test");
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"sw-test-0\""));
        assert!(json.contains("\"work\""));
        assert!(json.contains("\"wait\""));
    }
}
