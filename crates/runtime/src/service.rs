//! Service-mode primitives: the admin command queue and drain flag
//! that turn a run-to-completion engine into a steerable long-running
//! service.
//!
//! The admin surface (HTTP POST endpoints, config hot-reload, signal
//! handlers) never touches engine state directly. Commands are queued
//! through [`Engine::admin`](crate::Engine::admin) into a bounded
//! mailbox and drained by the **controller thread** once per epoch, so
//! every edit rides the existing lock-free publication machinery: the
//! controller mutates its private tables, marks itself dirty, and the
//! next epoch publishes a fresh [`SteeringSnapshot`] through the
//! `SnapshotCell` RCU path / [`ModeCell`] atomics. The packet hot loop
//! keeps taking zero locks.
//!
//! Graceful drain works the same way from the other side: callers
//! raise a flag ([`Engine::request_drain`](crate::Engine::request_drain));
//! dispatchers observe it at their 256-packet checkpoints, stop
//! offering, flush staged batches, and send the normal `Stop` markers
//! so the mesh quiesces exactly as at end-of-trace — every counter
//! folded, every verdict published, the segment report conserved.
//!
//! [`SteeringSnapshot`]: smartwatch_control::SteeringSnapshot
//! [`ModeCell`]: smartwatch_control::ModeCell

use smartwatch_snic::Mode;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One operator command, applied by the controller at the next epoch
/// boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminCmd {
    /// Blacklist a flow digest (drops at dispatch; revokes any standing
    /// whitelist entry).
    BlacklistAdd(u64),
    /// Remove a digest from the steering blacklist.
    BlacklistRemove(u64),
    /// Whitelist a flow digest (survives load shedding; revokes any
    /// standing blacklist entry — the operator is authoritative).
    WhitelistAdd(u64),
    /// Remove a digest from the whitelist.
    WhitelistRemove(u64),
    /// `Some(v)`: pin load shedding to `v`, pausing the hysteresis.
    /// `None`: hand shedding back to the controller.
    ForceShed(Option<bool>),
    /// `Some(mode)`: pin one shard's FlowCache mode, overriding
    /// Algorithm 4 for that shard. `None`: release the override.
    ForceMode {
        /// Shard index the override applies to.
        shard: usize,
        /// Pinned mode, or `None` to release.
        mode: Option<Mode>,
    },
}

impl AdminCmd {
    /// Stable numeric code for flight-recorder events
    /// (`admin_edit.cmd`).
    pub fn code(&self) -> u64 {
        match self {
            AdminCmd::BlacklistAdd(_) => 1,
            AdminCmd::BlacklistRemove(_) => 2,
            AdminCmd::WhitelistAdd(_) => 3,
            AdminCmd::WhitelistRemove(_) => 4,
            AdminCmd::ForceShed(_) => 5,
            AdminCmd::ForceMode { .. } => 6,
        }
    }

    /// Payload word for flight-recorder events (`admin_edit.arg`): the
    /// digest, the forced-shed encoding (0 = release, 1 = off, 2 = on),
    /// or the target shard.
    pub fn arg(&self) -> u64 {
        match *self {
            AdminCmd::BlacklistAdd(d)
            | AdminCmd::BlacklistRemove(d)
            | AdminCmd::WhitelistAdd(d)
            | AdminCmd::WhitelistRemove(d) => d,
            AdminCmd::ForceShed(None) => 0,
            AdminCmd::ForceShed(Some(false)) => 1,
            AdminCmd::ForceShed(Some(true)) => 2,
            AdminCmd::ForceMode { shard, .. } => shard as u64,
        }
    }
}

/// Bounded multi-producer mailbox between the admin surface and the
/// controller thread. Pushes beyond the bound are refused (the caller
/// reports back-pressure to the operator); the controller drains the
/// whole queue once per epoch, so the bound is only ever hit by a
/// runaway client.
pub(crate) struct AdminQueue {
    cmds: Mutex<VecDeque<AdminCmd>>,
    cap: usize,
}

impl AdminQueue {
    pub fn new(cap: usize) -> AdminQueue {
        AdminQueue {
            cmds: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
        }
    }

    /// Enqueue a command; `false` when the mailbox is full.
    pub fn push(&self, cmd: AdminCmd) -> bool {
        let mut q = self.cmds.lock().expect("admin queue poisoned");
        if q.len() >= self.cap {
            return false;
        }
        q.push_back(cmd);
        true
    }

    /// Take everything queued, in arrival order.
    pub fn drain(&self) -> Vec<AdminCmd> {
        let mut q = self.cmds.lock().expect("admin queue poisoned");
        q.drain(..).collect()
    }

    /// Commands currently waiting.
    pub fn len(&self) -> usize {
        self.cmds.lock().expect("admin queue poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bounds_and_preserves_order() {
        let q = AdminQueue::new(2);
        assert!(q.push(AdminCmd::BlacklistAdd(1)));
        assert!(q.push(AdminCmd::WhitelistAdd(2)));
        assert!(!q.push(AdminCmd::BlacklistAdd(3)), "bound refuses");
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.drain(),
            vec![AdminCmd::BlacklistAdd(1), AdminCmd::WhitelistAdd(2)]
        );
        assert_eq!(q.len(), 0);
        assert!(
            q.push(AdminCmd::ForceShed(Some(true))),
            "drained queue accepts again"
        );
    }

    #[test]
    fn flight_codes_are_stable_and_distinct() {
        let cmds = [
            AdminCmd::BlacklistAdd(7),
            AdminCmd::BlacklistRemove(7),
            AdminCmd::WhitelistAdd(7),
            AdminCmd::WhitelistRemove(7),
            AdminCmd::ForceShed(Some(true)),
            AdminCmd::ForceMode {
                shard: 3,
                mode: Some(Mode::Lite),
            },
        ];
        let codes: Vec<u64> = cmds.iter().map(AdminCmd::code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), cmds.len());
        assert_eq!(AdminCmd::BlacklistAdd(7).arg(), 7);
        assert_eq!(AdminCmd::ForceShed(None).arg(), 0);
        assert_eq!(AdminCmd::ForceShed(Some(false)).arg(), 1);
        assert_eq!(AdminCmd::ForceShed(Some(true)).arg(), 2);
    }
}
